"""Bench: regenerate Figure 9 (per-stage micro-step time)."""

from benchmarks.common import run_and_record


def test_figure9(benchmark):
    result = run_and_record(benchmark, "figure9", fast=False)
    rows = {row[0]: row for row in result.rows}

    def spread(name):
        return float(rows[name][-1][:-1])

    # -Full baselines are flat; Even Partitioning develops a front-loaded
    # slope (paper: 1.17x); AdaPipe re-flattens it.
    assert spread("DAPPLE-Full") < 1.10
    assert spread("Even Partitioning") > spread("DAPPLE-Full")
    assert spread("AdaPipe") < spread("Even Partitioning")

    even = [float(v) for v in rows["Even Partitioning"][1:9]]
    assert even[0] > even[-1]
