"""Bench: regenerate Figure 5 (Llama 2 end-to-end, cluster A)."""

from benchmarks.common import run_and_record


def test_figure5(benchmark):
    result = run_and_record(benchmark, "figure5")
    for row in result.rows:
        speedup_cell = row[-1]
        assert "x vs" in speedup_cell
        factor = float(speedup_cell.split("x")[0])
        # AdaPipe must at least match the best DAPPLE variant and stay in a
        # plausible band around the paper's 1.0-1.25x for Llama 2.
        assert 0.98 <= factor <= 1.6
    # At seq 16384, DAPPLE-Non exceeds 80 GB (the paper's OOM).
    long_seq = next(r for r in result.rows if r[0] == "16384")
    dapple_non = result.headers.index("DAPPLE-Non")
    assert long_seq[dapple_non] == "OOM"
