"""Bench: 1F1B vs the 2BP split backward — bubble ratio at p=4 and p=8.

The ISSUE's acceptance artifact: the 2BP family must strictly reduce
pipeline bubble time against plain 1F1B at identical per-device peak
activation memory, and the achieved ratios are tracked in the uploaded
``BENCH_schedules.json`` so regressions in the schedule builders or the
engine lowering show up in CI history.

Bubble time here is ``p * iteration_time - total_busy_time`` — the idle
device-seconds of one iteration. Both schedules carry identical
per-device work, so any iteration-time gap is pure bubble.
"""

import pytest

from repro.pipeline.schedules import one_f_one_b_2bp, one_f_one_b_schedule
from repro.pipeline.simulator import simulate
from repro.pipeline.tasks import StageCosts

N, HOP = 8, 0.1


def _costs(p):
    return [
        StageCosts(forward=1.0, backward=2.0, activation_bytes=1.0)
        for _ in range(p)
    ]


def _bubble(result, schedule):
    busy = sum(
        task.duration for tasks in schedule.device_tasks for task in tasks
    )
    return result.iteration_time * schedule.num_devices - busy


@pytest.mark.parametrize("p", [4, 8])
def test_2bp_bubble_ratio(benchmark, p):
    """Build + simulate both families; gate the strict bubble reduction
    at equal peaks and record the ratio."""
    costs = _costs(p)
    base_schedule = one_f_one_b_schedule(costs, N, hop_time=HOP)
    split_schedule = one_f_one_b_2bp(costs, N, hop_time=HOP)

    def _both():
        return (
            simulate(base_schedule, cache=False),
            simulate(split_schedule, cache=False),
        )

    base, split = benchmark(_both)
    assert split.iteration_time < base.iteration_time
    assert split.device_peak_bytes == base.device_peak_bytes

    base_bubble = _bubble(base, base_schedule)
    split_bubble = _bubble(split, split_schedule)
    assert split_bubble < base_bubble
    benchmark.extra_info.update(
        devices=p,
        micro_batches=N,
        hop_time=HOP,
        onef1b_iteration_s=round(base.iteration_time, 6),
        twobp_iteration_s=round(split.iteration_time, 6),
        onef1b_bubble_s=round(base_bubble, 6),
        twobp_bubble_s=round(split_bubble, 6),
        bubble_ratio=round(split_bubble / base_bubble, 4),
        peak_bytes=list(base.device_peak_bytes),
    )
