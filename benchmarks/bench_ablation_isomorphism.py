"""Ablation bench: the isomorphism cache (Section 5.3).

The partitioning DP touches O(pL^2) (stage, i, j) candidates; the paper's
observation is that homogeneity collapses them to O(pL) distinct inner-DP
solves. This bench runs Algorithm 1 with the cache and reports the
invocation count; the assertion pins the complexity class.
"""

from repro.config import ParallelConfig, TrainingConfig
from repro.core.isomorphism import StageEvaluator
from repro.core.partition_dp import optimize_partition
from repro.core.search import PlannerContext
from repro.hardware.cluster import cluster_a
from repro.model.spec import gpt3_175b


def test_isomorphism_cache_collapses_inner_dp(benchmark):
    train = TrainingConfig(sequence_length=4096, global_batch_size=32)
    ctx = PlannerContext(
        cluster_a(),
        gpt3_175b(),
        train,
        ParallelConfig(8, 8, 1),
        memory_limit_bytes=70 * 1024**3,
    )

    def run():
        evaluator = StageEvaluator(ctx.profiler, ctx.layers, ctx.capacity_bytes)
        result = optimize_partition(evaluator, 8, 32, hop_time=ctx.hop_time)
        return evaluator, result

    evaluator, result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.feasible
    p, L = 8, len(ctx.layers)
    candidates_touched = p * L * L // 2
    print(
        f"\ninner-DP invocations: {evaluator.inner_dp_invocations} "
        f"(vs ~{candidates_touched} (s,i,j) candidates without the cache)"
    )
    assert evaluator.inner_dp_invocations <= 16 * p * L  # O(pL), not O(pL^2)
    assert evaluator.inner_dp_invocations < candidates_touched / 20
