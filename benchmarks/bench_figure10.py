"""Bench: regenerate Figure 10 (convergence of AdaPipe vs DAPPLE-Full)."""

from benchmarks.common import run_and_record


def test_figure10(benchmark):
    result = run_and_record(benchmark, "figure10")
    first = float(result.rows[0][1])
    last = float(result.rows[-1][1])
    assert last < first - 0.5  # real learning happened
    # Recomputation/partitioning are gradient-exact: same-seed runs agree
    # to the last bit.
    assert any("0.00e+00" in note for note in result.notes)
