"""Bench: regenerate Figure 3 (the AdaPipe overview, executed)."""

from benchmarks.common import run_and_record


def test_figure3(benchmark):
    result = run_and_record(benchmark, "figure3")
    times = [float(row[1][:-1]) for row in result.rows]
    # full recompute -> adaptive recompute -> adaptive partitioning:
    # each optimization step strictly helps, the paper's Figure 3 arc.
    assert times[0] > times[1] >= times[2]
