"""Ablation bench: where each optimization matters (Section 3).

The paper predicts: with few micro-batches, warmup/ending dominate and
*adaptive recomputation* provides most of the win; with many, the steady
phase dominates and *adaptive partitioning* becomes important. This bench
sweeps the micro-batch count and measures the two deltas:

* recomputation gain  = DAPPLE-Full  ->  Even Partitioning
* partitioning gain   = Even Partitioning  ->  AdaPipe
"""

from repro.config import ParallelConfig, TrainingConfig
from repro.core.evaluate import evaluate_plan
from repro.core.search import (
    PlannerContext,
    plan_adapipe,
    plan_even_partitioning,
    plan_policy,
)
from repro.core.strategies import RecomputePolicy
from repro.hardware.cluster import cluster_a
from repro.model.spec import gpt3_175b


def _gains(num_micro_batches):
    train = TrainingConfig(
        sequence_length=16384, global_batch_size=num_micro_batches
    )
    ctx = PlannerContext(
        cluster_a(),
        gpt3_175b(),
        train,
        ParallelConfig(8, 8, 1),
        memory_limit_bytes=70 * 1024**3,
    )
    cluster = ctx.cluster
    full = evaluate_plan(
        plan_policy(ctx, RecomputePolicy.FULL, "DAPPLE-Full"), cluster
    ).iteration_time
    even = evaluate_plan(plan_even_partitioning(ctx), cluster).iteration_time
    ada = evaluate_plan(plan_adapipe(ctx), cluster).iteration_time
    return full / even, even / ada


def test_optimization_contributions_shift_with_micro_batches(benchmark):
    few = benchmark.pedantic(lambda: _gains(8), rounds=1, iterations=1)
    many = _gains(64)

    print(
        f"\nn=8:  recomputation gain {few[0]:.3f}x, partitioning gain {few[1]:.3f}x"
        f"\nn=64: recomputation gain {many[0]:.3f}x, partitioning gain {many[1]:.3f}x"
    )
    # Recomputation always helps; partitioning's relative share grows with n.
    assert few[0] > 1.05 and many[0] > 1.05
    partitioning_share_few = (few[1] - 1.0) / max(few[0] - 1.0, 1e-9)
    partitioning_share_many = (many[1] - 1.0) / max(many[0] - 1.0, 1e-9)
    assert partitioning_share_many >= partitioning_share_few * 0.9
