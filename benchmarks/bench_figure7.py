"""Bench: regenerate Figure 7 (cluster B end-to-end + weak scaling)."""

from benchmarks.common import run_and_record


def test_figure7(benchmark):
    result = run_and_record(benchmark, "figure7")
    non_column = result.headers.index("DAPPLE-Non")
    ada_column = result.headers.index("AdaPipe")
    for row in result.rows:
        # 32 GB Ascend devices: no-recompute OOMs even at seq 4096.
        assert row[non_column] == "OOM"
        assert row[ada_column] != "OOM"
        factor = float(row[-1].split("x")[0])
        assert factor >= 1.0  # paper: up to 1.22x over DAPPLE
