"""Bench: regenerate Table 3 (iteration time by 3D strategy)."""

from benchmarks.common import run_and_record


def test_table3(benchmark):
    result = run_and_record(benchmark, "table3")
    headers = result.headers
    full_col = headers.index("DAPPLE-Full")
    non_col = headers.index("DAPPLE-Non")
    even_col = headers.index("Even Partitioning")
    ada_col = headers.index("AdaPipe")
    for row in result.rows:
        tp = int(row[0].strip("()").split(",")[0])
        # The paper's pattern: DAPPLE-Non only fits at t = 8.
        if tp < 8:
            assert row[non_col] == "OOM"
        # Whenever the adaptive methods fit, they beat DAPPLE-Full.
        if row[ada_col] != "OOM" and row[full_col] != "OOM":
            assert float(row[ada_col][:-1]) < float(row[full_col][:-1])
        if row[even_col] != "OOM" and row[ada_col] != "OOM":
            assert float(row[ada_col][:-1]) <= float(row[even_col][:-1]) * 1.02
