"""Benchmark helpers: run an experiment once, record and print its table.

Every paper table/figure has one bench. ``pytest-benchmark`` measures the
end-to-end regeneration cost (planning + simulation); the reproduced rows
are printed and also written to ``results/<name>.txt`` so the numbers
survive the run.
"""

from __future__ import annotations

import pathlib

from repro.experiments import ExperimentResult, run_experiment

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def run_and_record(benchmark, name: str, fast: bool = True) -> ExperimentResult:
    """Run experiment ``name`` once under the benchmark timer and save it."""
    result_holder = {}

    def runner():
        result_holder["result"] = run_experiment(name, fast=fast)
        return result_holder["result"]

    benchmark.pedantic(runner, rounds=1, iterations=1)
    result = result_holder["result"]
    rendered = result.render()
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n")
    print("\n" + rendered)
    return result
