"""Ablation bench: combining AdaPipe with interleaved 1F1B (future work).

The paper applies adaptive recomputation to plain 1F1B. This bench extends
it to Megatron's interleaved schedule — per-stage in-flight multipliers are
*measured* from a schedule simulation (no closed form exists) and a
shared-budget knapsack runs per device across its chunks. Expected outcome:
the combination beats both plain AdaPipe (smaller bubbles) and
Interleaved-Full (less recomputation).
"""

from repro.baselines.extensions import evaluate_interleaved
from repro.config import ParallelConfig, TrainingConfig
from repro.core.evaluate import evaluate_plan
from repro.core.interleaved_adaptive import evaluate_interleaved_adaptive
from repro.core.search import PlannerContext, plan_adapipe
from repro.core.strategies import RecomputePolicy
from repro.hardware.cluster import cluster_a
from repro.model.spec import gpt3_175b


def test_adaptive_interleaved_combination(benchmark):
    train = TrainingConfig(sequence_length=16384, global_batch_size=32)
    ctx = PlannerContext(
        cluster_a(),
        gpt3_175b(),
        train,
        ParallelConfig(8, 8, 1),
        memory_limit_bytes=70 * 1024**3,
    )

    def run():
        return {
            "AdaPipe (1F1B)": evaluate_plan(plan_adapipe(ctx), ctx.cluster),
            "Interleaved-Full": evaluate_interleaved(ctx, RecomputePolicy.FULL, 2),
            "AdaPipe-Interleaved": evaluate_interleaved_adaptive(ctx, 2),
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for name, evaluation in rows.items():
        time = evaluation.iteration_time
        print(f"{name:22s} {'OOM' if time is None else f'{time:7.2f}s'}")

    combo = rows["AdaPipe-Interleaved"].iteration_time
    assert combo is not None
    assert combo < rows["AdaPipe (1F1B)"].iteration_time
    assert combo < rows["Interleaved-Full"].iteration_time
