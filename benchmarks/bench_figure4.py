"""Bench: regenerate Figure 4 (the computation-unit division)."""

from benchmarks.common import run_and_record


def test_figure4(benchmark):
    result = run_and_record(benchmark, "figure4")
    units = {row[1] for row in result.rows}
    assert {"attn.q", "attn.core", "attn.out", "ffn.in", "ffn.act",
            "ffn.out", "embed.lookup", "head.proj"} <= units
    always = {row[1] for row in result.rows if row[5] == "always saved"}
    assert always == {"attn.out", "ffn.out"}
