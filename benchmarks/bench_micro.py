"""Micro-benchmarks of the core primitives.

Not a paper artifact: these time the building blocks the search engine
leans on, so performance regressions in the hot paths (the knapsack DP and
the event-driven simulator) are visible in the benchmark history.
"""

import pytest

from repro.core.recompute_dp import UnitItem, optimize_stage_recompute
from repro.pipeline.schedules import one_f_one_b_schedule
from repro.pipeline.simulator import simulate
from repro.pipeline.tasks import StageCosts


@pytest.mark.parametrize("copies", [8, 32], ids=["small", "large"])
def test_knapsack_solve(benchmark, copies):
    items = [
        UnitItem(
            name=f"u{i}",
            value=1.0 + i * 0.37,
            weight_bytes=float((i + 1) * 4096 * 1024),
            copies=copies,
        )
        for i in range(8)
    ]
    budget = 8 * copies * 4096 * 1024 / 2

    result = benchmark(
        optimize_stage_recompute, items, budget, 4
    )
    assert result.feasible and result.saved_value > 0


@pytest.mark.parametrize("p,n", [(8, 64), (16, 128)], ids=["8x64", "16x128"])
def test_simulator_throughput(benchmark, p, n):
    costs = [
        StageCosts(forward=1.0, backward=2.0, activation_bytes=1.0)
        for _ in range(p)
    ]
    schedule = one_f_one_b_schedule(costs, n, hop_time=0.01)

    result = benchmark(simulate, schedule)
    assert result.iteration_time > 0
    tasks = 2 * p * n
    seconds = benchmark.stats.stats.mean
    print(f"\n{tasks} tasks in {seconds * 1e3:.1f} ms "
          f"({tasks / seconds:,.0f} tasks/s)")
