"""Bench: regenerate Figure 2 (GPipe vs 1F1B schedules)."""

from benchmarks.common import run_and_record


def test_figure2(benchmark):
    result = run_and_record(benchmark, "figure2")
    gpipe = next(r for r in result.rows if r[0] == "GPipe")
    onef1b = next(r for r in result.rows if "1F1B" in r[0])
    assert gpipe[1] == onef1b[1]  # same makespan
    assert gpipe[3] != onef1b[3]  # different memory profiles
