"""Bench: regenerate Table 4 (per-stage recomputation/partitioning config)."""

from benchmarks.common import run_and_record


def test_table4(benchmark):
    result = run_and_record(benchmark, "table4")
    for method in ("AdaPipe", "Even Partitioning"):
        saved = next(
            [int(v) for v in row[2:]]
            for row in result.rows
            if row[0] == method and row[1] == "Saved Units"
        )
        # Later stages afford to save substantially more (paper: 39 -> 124).
        assert saved[-1] > 1.4 * saved[0]
    ada_layers = next(
        [int(v) for v in row[2:]]
        for row in result.rows
        if row[0] == "AdaPipe" and row[1] == "# Layers"
    )
    even_layers = next(
        [int(v) for v in row[2:]]
        for row in result.rows
        if row[0] == "Even Partitioning" and row[1] == "# Layers"
    )
    assert sum(ada_layers) == sum(even_layers)  # both cover the whole model
    assert sum(ada_layers[4:]) >= sum(ada_layers[:4])  # layers move late
