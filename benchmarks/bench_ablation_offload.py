"""Ablation bench: recomputation vs host-memory offloading (Section 8).

The paper dismisses offloading because CPU-GPU transfers are hard to hide
as accelerators get faster. This bench sweeps the host-link quality and
shows how the three-way save/recompute/offload optimum responds: a slow or
poorly-overlapped link collapses to AdaPipe's recompute-only plan, and
even an optimistic link buys only a few percent.
"""

from repro.baselines.offload import OffloadModel, plan_offload
from repro.config import ParallelConfig, TrainingConfig
from repro.core.evaluate import evaluate_plan
from repro.core.search import PlannerContext, plan_even_partitioning
from repro.hardware.cluster import cluster_a
from repro.model.spec import gpt3_175b

SWEEP = [
    ("no offload (recompute only)", None),
    ("PCIe3 x16, 30% overlap", OffloadModel(12e9, 0.3)),
    ("PCIe4 x16, 50% overlap", OffloadModel(25e9, 0.5)),
    ("PCIe5/NVLink-C2C, 90% overlap", OffloadModel(64e9, 0.9)),
]


def test_offload_sweep(benchmark):
    train = TrainingConfig(sequence_length=16384, global_batch_size=32)
    ctx = PlannerContext(
        cluster_a(),
        gpt3_175b(),
        train,
        ParallelConfig(8, 8, 1),
        memory_limit_bytes=70 * 1024**3,
    )

    def run():
        rows = []
        for label, model in SWEEP:
            if model is None:
                plan = plan_even_partitioning(ctx)
            else:
                plan = plan_offload(ctx, model)
            rows.append((label, evaluate_plan(plan, ctx.cluster).iteration_time))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    base = rows[0][1]
    for label, time in rows:
        print(f"{label:32s} {time:7.2f}s  ({base / time:.3f}x vs recompute-only)")

    times = [time for _, time in rows]
    # Better links never hurt, and the best case stays a modest win —
    # the paper's argument for recomputation-first quantified.
    assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))
    assert times[-1] > 0.90 * base
