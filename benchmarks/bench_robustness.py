"""Bench: the robustness ensemble (the ISSUE's CI smoke job).

``evaluate_robustness`` runs 1 nominal + K ensemble + (p + 1) criticality
simulations per report; this bench pins the ensemble's wall time on a
p=4, K=8 configuration so regressions in the perturbation lowering or the
simulator engines show up in the uploaded ``BENCH_robustness.json``.

The ``batch``-named benches pin the batched vectorized path (uploaded
separately as ``BENCH_batch.json``): one p=4, K=32 ensemble executed as a
single numpy sweep must beat the scalar per-draw path by >= 10x — with
bit-identical results. The scalar benches here keep ``engine="compiled"``
explicitly, so they keep measuring the per-draw floor the batched path is
compared against.
"""

import random
import time

from repro.core.robust import evaluate_robustness
from repro.pipeline.perturb import PerturbationSpec, perturb_schedule
from repro.pipeline.schedules import one_f_one_b_schedule
from repro.pipeline.simulator import simulate
from repro.pipeline.tasks import StageCosts

P, N, DRAWS = 4, 64, 8

#: Ensemble size of the batched benches — the ISSUE's K >= 32 floor.
BATCH_DRAWS = 32

#: The batched sweep must be at least this much faster than the scalar
#: per-draw path on the same ensemble.
BATCH_SPEEDUP_FLOOR = 10.0


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _schedule():
    rng = random.Random(7)
    costs = [
        StageCosts(
            forward=rng.uniform(0.8, 1.2),
            backward=rng.uniform(1.6, 2.4),
            activation_bytes=rng.uniform(1.0, 8.0),
        )
        for _ in range(P)
    ]
    return one_f_one_b_schedule(costs, N, hop_time=0.05)


def _spec():
    return PerturbationSpec.build({2: 1.5, 3: 1.5}, jitter_sigma=0.05, seed=0)


def test_perturb_lowering_latency(benchmark):
    """One spec application — the per-draw overhead on top of simulate."""
    schedule = _schedule()
    spec = _spec()
    perturbed = benchmark(lambda: perturb_schedule(schedule, spec))
    assert perturbed is not schedule


def test_robustness_ensemble(benchmark):
    """The full p=4, K=8 report on the scalar per-draw path: ensemble +
    criticality differences. Pinned to ``engine="compiled"`` with caching
    off so the bench keeps measuring per-draw compute, not cache hits."""
    schedule = _schedule()
    spec = _spec()
    report = benchmark(
        lambda: evaluate_robustness(
            schedule, spec, DRAWS, engine="compiled", cache=False
        )
    )
    assert len(report.times) == DRAWS
    assert all(c >= 0.0 for c in report.device_criticality)
    benchmark.extra_info.update(
        devices=P,
        draws=DRAWS,
        tasks=2 * P * N,
        simulations_per_report=1 + DRAWS + P + 1,
        mean_slowdown=round(report.slowdown("mean"), 4),
        p95_slowdown=round(report.slowdown("p95"), 4),
    )


def test_ensemble_overhead_floor(benchmark):
    """A scalar report is K+p+2 simulations plus K+p+1 spec lowerings; the
    statistics/bookkeeping on top may not add more than ~3x slack."""
    schedule = _schedule()
    spec = _spec()
    sims = 1 + DRAWS + P + 1
    lowerings = DRAWS + P + 1

    def _sequential():
        return evaluate_robustness(
            schedule, spec, DRAWS, engine="compiled", cache=False
        )

    single = _best_of(lambda: simulate(schedule, cache=False))
    lower = _best_of(lambda: perturb_schedule(schedule, spec))
    ensemble = _best_of(_sequential)
    budget = sims * single + lowerings * lower
    benchmark.pedantic(_sequential, rounds=1, iterations=1)
    benchmark.extra_info.update(
        single_sim_s=round(single, 6),
        single_lowering_s=round(lower, 6),
        ensemble_s=round(ensemble, 6),
        overhead_ratio=round(ensemble / budget, 2),
    )
    assert ensemble <= 3.0 * budget


def test_batched_ensemble(benchmark):
    """The p=4, K=32 report on the batched path: one duration matrix, one
    numpy sweep. The first call pays the (bit-pinned, per-draw) jitter
    derivation; the memoized steady state is what downstream sweeps see,
    so that is what the bench records."""
    schedule = _schedule()
    spec = _spec()

    def _batched():
        return evaluate_robustness(
            schedule, spec, BATCH_DRAWS, engine="batched", cache=False
        )

    _batched()  # warm the jitter memo on the schedule's BatchedSchedule
    report = benchmark(_batched)
    assert len(report.times) == BATCH_DRAWS
    benchmark.extra_info.update(
        devices=P,
        draws=BATCH_DRAWS,
        tasks=2 * P * N,
        rows_per_sweep=2 + BATCH_DRAWS + P,
        mean_slowdown=round(report.slowdown("mean"), 4),
    )


def test_batched_vs_sequential_floor(benchmark):
    """The acceptance gate: at p=4, K=32 the batched sweep must beat the
    sequential scalar path by >= 10x, and the reports — every ensemble
    iteration time included — must be bit-identical."""
    schedule = _schedule()
    spec = _spec()

    def _batched():
        return evaluate_robustness(
            schedule, spec, BATCH_DRAWS, engine="batched", cache=False
        )

    def _sequential():
        return evaluate_robustness(
            schedule, spec, BATCH_DRAWS, engine="compiled", cache=False
        )

    batched_report = _batched()  # also warms the jitter memo
    sequential_report = _sequential()
    assert batched_report.times == sequential_report.times
    assert batched_report == sequential_report

    batched_s = _best_of(_batched)
    sequential_s = _best_of(_sequential, repeats=3)
    benchmark.pedantic(_batched, rounds=1, iterations=1)
    benchmark.extra_info.update(
        devices=P,
        draws=BATCH_DRAWS,
        tasks=2 * P * N,
        batched_s=round(batched_s, 6),
        sequential_s=round(sequential_s, 6),
        speedup=round(sequential_s / batched_s, 1),
    )
    assert sequential_s >= BATCH_SPEEDUP_FLOOR * batched_s, (
        f"batched sweep only {sequential_s / batched_s:.1f}x faster "
        f"(floor {BATCH_SPEEDUP_FLOOR}x)"
    )
