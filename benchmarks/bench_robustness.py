"""Bench: the robustness ensemble (the ISSUE's CI smoke job).

``evaluate_robustness`` runs 1 nominal + K ensemble + (p + 1) criticality
simulations per report; this bench pins the ensemble's wall time on a
p=4, K=8 configuration so regressions in the perturbation lowering or the
simulator engines show up in the uploaded ``BENCH_robustness.json``.
"""

import random


from repro.core.robust import evaluate_robustness
from repro.pipeline.perturb import PerturbationSpec, perturb_schedule
from repro.pipeline.schedules import one_f_one_b_schedule
from repro.pipeline.simulator import simulate
from repro.pipeline.tasks import StageCosts

P, N, DRAWS = 4, 64, 8


def _schedule():
    rng = random.Random(7)
    costs = [
        StageCosts(
            forward=rng.uniform(0.8, 1.2),
            backward=rng.uniform(1.6, 2.4),
            activation_bytes=rng.uniform(1.0, 8.0),
        )
        for _ in range(P)
    ]
    return one_f_one_b_schedule(costs, N, hop_time=0.05)


def _spec():
    return PerturbationSpec.build({2: 1.5, 3: 1.5}, jitter_sigma=0.05, seed=0)


def test_perturb_lowering_latency(benchmark):
    """One spec application — the per-draw overhead on top of simulate."""
    schedule = _schedule()
    spec = _spec()
    perturbed = benchmark(lambda: perturb_schedule(schedule, spec))
    assert perturbed is not schedule


def test_robustness_ensemble(benchmark):
    """The full p=4, K=8 report: ensemble + criticality differences."""
    schedule = _schedule()
    spec = _spec()
    report = benchmark(lambda: evaluate_robustness(schedule, spec, DRAWS))
    assert len(report.times) == DRAWS
    assert all(c >= 0.0 for c in report.device_criticality)
    benchmark.extra_info.update(
        devices=P,
        draws=DRAWS,
        tasks=2 * P * N,
        simulations_per_report=1 + DRAWS + P + 1,
        mean_slowdown=round(report.slowdown("mean"), 4),
        p95_slowdown=round(report.slowdown("p95"), 4),
    )


def test_ensemble_overhead_floor(benchmark):
    """A report is K+p+2 simulations plus K+p+1 spec lowerings; the
    statistics/bookkeeping on top may not add more than ~3x slack."""
    import time

    schedule = _schedule()
    spec = _spec()
    sims = 1 + DRAWS + P + 1
    lowerings = DRAWS + P + 1

    def _best_of(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    single = _best_of(lambda: simulate(schedule, cache=False))
    lower = _best_of(lambda: perturb_schedule(schedule, spec))
    ensemble = _best_of(lambda: evaluate_robustness(schedule, spec, DRAWS))
    budget = sims * single + lowerings * lower
    benchmark.pedantic(
        lambda: evaluate_robustness(schedule, spec, DRAWS),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(
        single_sim_s=round(single, 6),
        single_lowering_s=round(lower, 6),
        ensemble_s=round(ensemble, 6),
        overhead_ratio=round(ensemble / budget, 2),
    )
    assert ensemble <= 3.0 * budget
