"""Bench: heterogeneous placement + elastic replanning (BENCH_hetero.json).

``run_and_record`` times the full experiment (cold pool search plus the
three elastic scenarios, each differentially checked against a cold
sweep); the second bench re-runs the scenarios and asserts the headline
claims the ISSUE pins to CI:

* every warm replan selects a plan bit-identical to a cold sweep on the
  changed pool (so a replan is never worse than a cold search);
* warm replans reuse >= 80% of their stage-eval demand in aggregate, and
  each individual replan re-evaluates < 50% of the cold sweep's inner-DP
  invocations.
"""

from repro.experiments import heterogeneous

from .common import run_and_record

#: Aggregate warm-replan cache reuse across the elastic scenarios.
REUSE_FLOOR = 0.80

#: Per-scenario ceiling on re-evaluated stage evals vs the cold sweep.
RECOMPUTE_CEILING = 0.50


def test_heterogeneous_experiment(benchmark):
    """End-to-end regeneration cost of the heterogeneous experiment."""
    result = run_and_record(benchmark, "heterogeneous", fast=True)
    assert len(result.rows) == 4  # cold + leave / join / drift


def test_warm_replan_reuse_floor(benchmark):
    """The acceptance gate: warm == cold everywhere, reuse >= 80%."""
    holder = {}

    def _run():
        holder["rows"] = heterogeneous.run_scenarios(fast=True)
        return holder["rows"]

    benchmark.pedantic(_run, rounds=1, iterations=1)
    replans = [row for row in holder["rows"] if "reuse_rate" in row]
    assert len(replans) == 3

    for row in replans:
        assert row["identical_to_cold"] is True, (
            f"{row['scenario']}: warm replan diverged from cold sweep"
        )
        assert row["inner_dp"] < RECOMPUTE_CEILING * row["cold_inner_dp"], (
            f"{row['scenario']}: re-evaluated {row['inner_dp']} of "
            f"{row['cold_inner_dp']} cold inner-DP invocations"
        )

    reused = sum(row["reused"] for row in replans)
    recomputed = sum(row["inner_dp"] for row in replans)
    aggregate = reused / (reused + recomputed)
    benchmark.extra_info.update(
        scenarios=len(replans),
        evals_reused=reused,
        evals_recomputed=recomputed,
        aggregate_reuse=round(aggregate, 4),
        per_scenario_reuse=[round(row["reuse_rate"], 4) for row in replans],
    )
    assert aggregate >= REUSE_FLOOR, (
        f"aggregate warm-replan reuse {aggregate:.0%} below "
        f"{REUSE_FLOOR:.0%} floor"
    )
