"""Bench: regenerate Figure 6 (GPT-3 end-to-end, cluster A)."""

from benchmarks.common import run_and_record


def test_figure6(benchmark):
    result = run_and_record(benchmark, "figure6")
    non_column = result.headers.index("DAPPLE-Non")
    full_column = result.headers.index("DAPPLE-Full")
    ada_column = result.headers.index("AdaPipe")
    for row in result.rows:
        assert row[full_column] != "OOM"  # full recompute always fits
        assert row[ada_column] != "OOM"
    # GPT-3 at 16384: no-recompute baselines OOM, AdaPipe shows its largest
    # wins (paper: up to 1.32x).
    long_seq = next(r for r in result.rows if r[0] == "16384")
    assert long_seq[non_column] == "OOM"
    factor = float(long_seq[-1].split("x")[0])
    assert factor > 1.1
