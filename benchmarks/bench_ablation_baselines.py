"""Ablation bench: AdaPipe against the wider design space.

Compares AdaPipe to the memory-management alternatives the paper discusses
but does not plot (Sections 2.2 and 8): sqrt(L) segment checkpointing,
BPipe-style activation balancing, and Megatron's interleaved 1F1B — all on
GPT-3 at sequence length 8192, where activation memory is binding but not
hopeless (DAPPLE-Non OOMs, balanced no-recompute fits).
"""

from repro.baselines.extensions import (
    evaluate_interleaved,
    plan_bpipe,
    plan_sqrt_checkpoint,
)
from repro.config import ParallelConfig, TrainingConfig
from repro.core.evaluate import evaluate_plan
from repro.core.search import PlannerContext, plan_adapipe, plan_policy
from repro.core.strategies import RecomputePolicy
from repro.hardware.cluster import cluster_a
from repro.model.spec import gpt3_175b


def _context():
    train = TrainingConfig(sequence_length=8192, global_batch_size=64)
    return PlannerContext(cluster_a(), gpt3_175b(), train, ParallelConfig(8, 8, 1))


def test_design_space_comparison(benchmark):
    ctx = _context()

    def run():
        rows = {}
        rows["DAPPLE-Full"] = evaluate_plan(
            plan_policy(ctx, RecomputePolicy.FULL, "DAPPLE-Full"), ctx.cluster
        )
        rows["DAPPLE-Non"] = evaluate_plan(
            plan_policy(ctx, RecomputePolicy.NONE, "DAPPLE-Non"), ctx.cluster
        )
        rows["Checkpoint-sqrtL"] = evaluate_plan(
            plan_sqrt_checkpoint(ctx), ctx.cluster
        )
        rows["BPipe"] = evaluate_plan(plan_bpipe(ctx), ctx.cluster)
        rows["Interleaved-Full"] = evaluate_interleaved(ctx, RecomputePolicy.FULL, 2)
        rows["AdaPipe"] = evaluate_plan(plan_adapipe(ctx), ctx.cluster)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    for name, evaluation in rows.items():
        time = evaluation.iteration_time
        peak = max(evaluation.peak_memory_per_device()) / 1024**3
        print(f"{name:18s} {'OOM' if time is None else f'{time:7.2f}s'}  peak {peak:5.1f} GiB")

    times = {n: e.iteration_time for n, e in rows.items()}
    assert times["DAPPLE-Non"] is None  # OOM at 8192
    assert times["BPipe"] is not None  # balancing rescues no-recompute
    # AdaPipe wins the whole design space at this operating point.
    competitors = [t for n, t in times.items() if t is not None and n != "AdaPipe"]
    assert times["AdaPipe"] <= min(competitors) * 1.001
    # sqrt(L) checkpointing trades too much compute: slower than DAPPLE-Full.
    assert times["Checkpoint-sqrtL"] >= times["DAPPLE-Full"] * 0.99
