"""Ablation bench: recomputation granularity.

The paper argues (Section 2.2) that prior work's layer-level checkpointing
is too coarse because memory-hungry and compute-hungry operators coexist
inside one layer. This bench compares three granularities on the same
memory budget:

* unit-level (AdaPipe's): the knapsack over Figure 4's computation units;
* layer-level (vPipe-like): save or recompute whole Attention/FFN layers;
* stage-uniform (classic): one all-or-nothing choice per stage.

The finer the granularity, the more recompute time survives the budget.
"""

from repro.config import ParallelConfig, TrainingConfig
from repro.core.recompute_dp import UnitItem, optimize_stage_recompute
from repro.core.search import PlannerContext
from repro.hardware.cluster import cluster_a
from repro.model.layers import LayerKind
from repro.model.spec import gpt3_175b

LAYERS_PER_STAGE = 12
IN_FLIGHT = 8


def _profiles(ctx):
    return {
        kind: ctx.profiler.profile_layer(kind)
        for kind in (LayerKind.ATTENTION, LayerKind.FFN)
    }


def _unit_level(profiles, budget):
    items = [
        UnitItem(u.name, u.time_forward, u.saved_bytes, LAYERS_PER_STAGE)
        for profile in profiles.values()
        for u in profile.units
        if not u.always_saved
    ]
    return optimize_stage_recompute(items, budget, IN_FLIGHT).saved_value


def _layer_level(profiles, budget):
    items = [
        UnitItem(
            f"{kind.value}-layer",
            sum(u.time_forward for u in profile.units if not u.always_saved),
            sum(u.saved_bytes for u in profile.units if not u.always_saved),
            LAYERS_PER_STAGE,
        )
        for kind, profile in profiles.items()
    ]
    return optimize_stage_recompute(items, budget, IN_FLIGHT).saved_value


def _stage_uniform(profiles, budget):
    value = sum(
        u.time_forward
        for profile in profiles.values()
        for u in profile.units
        if not u.always_saved
    ) * LAYERS_PER_STAGE
    weight = sum(
        u.saved_bytes
        for profile in profiles.values()
        for u in profile.units
        if not u.always_saved
    ) * LAYERS_PER_STAGE
    return value if weight * IN_FLIGHT <= budget else 0.0


def test_finer_granularity_saves_more(benchmark):
    train = TrainingConfig(sequence_length=8192, global_batch_size=32)
    ctx = PlannerContext(cluster_a(), gpt3_175b(), train, ParallelConfig(8, 8, 1))
    profiles = _profiles(ctx)
    budget = 18 * 1024**3  # tight: forces partial recomputation

    unit_saved = benchmark.pedantic(
        lambda: _unit_level(profiles, budget), rounds=3, iterations=1
    )
    layer_saved = _layer_level(profiles, budget)
    uniform_saved = _stage_uniform(profiles, budget)

    print(
        f"\nsaved backward time — unit: {unit_saved * 1e3:.1f}ms, "
        f"layer: {layer_saved * 1e3:.1f}ms, stage-uniform: {uniform_saved * 1e3:.1f}ms"
    )
    assert unit_saved >= layer_saved >= uniform_saved
    assert unit_saved > 1.05 * layer_saved  # the fine grain buys real time
