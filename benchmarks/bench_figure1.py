"""Bench: regenerate Figure 1 (per-stage memory, GPT-3, full vs no recompute)."""

from benchmarks.common import run_and_record


def test_figure1(benchmark):
    result = run_and_record(benchmark, "figure1")
    # Shape assertions: no-recompute decreases with stage id and crosses
    # the 80 GB limit at seq 16384.
    no16k = next(r for r in result.rows if r[0].startswith("No") and r[1] == "16384")
    values = [float(v) for v in no16k[2:]]
    assert values == sorted(values, reverse=True)
    assert values[0] > 80.0 > values[-1]
