"""Bench: regenerate Figure 8 (peak per-stage memory of every method)."""

from benchmarks.common import run_and_record


def test_figure8(benchmark):
    result = run_and_record(benchmark, "figure8", fast=False)
    rows = {row[0]: row for row in result.rows}

    non = [float(v) for v in rows["DAPPLE-Non"][1:9]]
    assert rows["DAPPLE-Non"][-1] == "OOM"
    assert 2.0 < non[0] / non[-1] < 2.7  # paper: 2.33x imbalance

    chimera_non = [float(v) for v in rows["Chimera-Non"][1:9]]
    assert max(chimera_non[3:5]) >= max(chimera_non[0], chimera_non[-1])

    for name in ("Even Partitioning", "AdaPipe"):
        values = [float(v) for v in rows[name][1:9]]
        assert rows[name][-1] == "yes"
        # Balanced near the 70 GiB constraint on the pressured stages.
        assert max(values) <= 72.0
        assert min(values[:5]) >= 65.0
