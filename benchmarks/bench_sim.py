"""Bench: the simulator engines themselves.

The strategy sweep and the experiment harness both lean on ``simulate``;
this bench pins the compiled ready-queue engine's advantage over the
reference polling oracle on a large schedule (p=16, n=256 — 8192 tasks),
and the cross-run cache's replay speed on top.

Acceptance floors (asserted in ``test_speedup_floors``): compiled ≥ 5x
faster than reference with a warm lowering, cache replay ≥ 50x faster
than reference.
"""

import random
import time

import pytest

from repro.pipeline.schedules import one_f_one_b_schedule
from repro.pipeline.simulator import SimulationCache, simulate
from repro.pipeline.tasks import StageCosts

P, N = 16, 256


def _large_schedule():
    rng = random.Random(42)
    costs = [
        StageCosts(
            forward=rng.uniform(0.8, 1.2),
            backward=rng.uniform(1.6, 2.4),
            activation_bytes=rng.uniform(1.0, 8.0),
            static_bytes=rng.uniform(10.0, 20.0),
            buffer_bytes=rng.uniform(0.0, 2.0),
        )
        for _ in range(P)
    ]
    return one_f_one_b_schedule(costs, N, hop_time=0.05)


@pytest.mark.parametrize("engine", ["compiled", "reference"])
def test_sim_engine_latency(benchmark, engine):
    """Uncached single-run latency per engine (lowering pre-warmed by the
    generator's validate(), as in every real code path)."""
    schedule = _large_schedule()
    result = benchmark(lambda: simulate(schedule, engine=engine, cache=False))
    assert result.iteration_time > 0


def test_sim_cache_replay(benchmark):
    """Replay of a memoized result for a rebuilt (digest-equal) schedule."""
    cache = SimulationCache()
    simulate(_large_schedule(), cache=cache)  # populate
    schedule = _large_schedule()  # fresh object, same content
    result = benchmark(lambda: simulate(schedule, cache=cache))
    assert result.iteration_time > 0
    assert cache.hits > 0


def _best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_speedup_floors(benchmark):
    """The ISSUE's acceptance floors: compiled ≥5x, cache replay ≥50x."""
    schedule = _large_schedule()
    reference = _best_of(lambda: simulate(schedule, engine="reference", cache=False))
    compiled = _best_of(lambda: simulate(schedule, engine="compiled", cache=False))
    cache = SimulationCache()
    simulate(schedule, cache=cache)
    replay = _best_of(lambda: simulate(schedule, cache=cache))

    benchmark.pedantic(
        lambda: simulate(schedule, engine="compiled", cache=False),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(
        tasks=2 * P * N,
        reference_s=round(reference, 6),
        compiled_s=round(compiled, 6),
        cache_replay_s=round(replay, 6),
        compiled_speedup=round(reference / compiled, 2),
        replay_speedup=round(reference / replay, 2),
    )
    assert reference / compiled >= 5.0
    assert reference / replay >= 50.0
