"""Bench: the adalint pass over the real ``src/repro`` tree.

Three paths matter operationally:

* **cold** — a fresh process linting the whole tree (CI's static-analysis
  job): every file parsed, the project index and call graph built.
* **warm** — a re-run in the same process (editor/watch loops): the
  (path, mtime, size)-keyed parse cache short-circuits every parse, so
  the run should be dominated by rule evaluation, not ``ast.parse``.
* **changed-scope** — ``--changed``-style runs over a handful of files
  with relpaths still rooted at the tree (pre-commit hooks).

The floors asserted here are deliberately loose (CI runners jitter); the
point is the *shape* — warm must actually beat cold, and a small scoped
run must not pay the full-tree price.
"""

from pathlib import Path

from repro.analysis import run_lint
from repro.analysis.framework import clear_parse_cache

SRC_REPRO = Path(__file__).resolve().parents[1] / "src" / "repro"

#: A small, stable changed-set stand-in: the digest chain the
#: interprocedural rules anchor on.
CHANGED_SCOPE = [
    SRC_REPRO / "pipeline" / "simulator.py",
    SRC_REPRO / "pipeline" / "tasks.py",
    SRC_REPRO / "pipeline" / "compiled.py",
]


def _cold_lint():
    clear_parse_cache()
    return run_lint([SRC_REPRO])


def test_lint_cold_full_tree(benchmark):
    """Full walk from an empty parse cache — the CI-job path."""
    result = benchmark(_cold_lint)
    assert result.findings == [] and result.files_scanned > 50


def test_lint_warm_full_tree(benchmark):
    """Full walk with every parse cached — the watch-loop path."""
    clear_parse_cache()
    run_lint([SRC_REPRO])  # populate
    result = benchmark(lambda: run_lint([SRC_REPRO]))
    assert result.findings == [] and result.files_scanned > 50


def test_lint_changed_scope(benchmark):
    """A 3-file scoped run rooted at the tree — the pre-commit path."""
    clear_parse_cache()
    result = benchmark(lambda: run_lint(CHANGED_SCOPE, root=SRC_REPRO))
    assert result.findings == [] and result.files_scanned == len(CHANGED_SCOPE)


def test_warm_beats_cold():
    """The cache must be doing real work: warm < cold on a best-of basis,
    and the scoped run must undercut both."""
    import time

    def best_of(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    cold = best_of(_cold_lint)
    warm = best_of(lambda: run_lint([SRC_REPRO]))
    scoped = best_of(lambda: run_lint(CHANGED_SCOPE, root=SRC_REPRO))
    assert warm < cold, (warm, cold)
    assert scoped < cold, (scoped, cold)
