"""Ablation bench: robustness of the search to profiling noise.

The paper's profiler averages 5-10 measured iterations; real measurements
jitter. This bench plans with increasingly noisy unit profiles, then
re-prices every plan under the *clean* cost model and reports the regret
against the clean-searched plan — showing the two-level DP degrades
gracefully rather than chasing measurement noise.
"""

from repro.config import ParallelConfig, TrainingConfig
from repro.core.plan import PipelinePlan
from repro.core.search import PlannerContext, plan_adapipe
from repro.hardware.cluster import cluster_a
from repro.model.spec import gpt3_175b

NOISE_LEVELS = (0.0, 0.02, 0.05, 0.10)


def _clean_reprice(ctx: PlannerContext, plan: PipelinePlan) -> float:
    """Re-evaluate a plan's iteration time under the noise-free profiler."""
    from repro.core.search import evaluate_fixed_partition_from_evals
    from repro.core.isomorphism import StageEval
    from repro.profiler.memory import StageMemory

    evals = []
    for stage in plan.stages:
        layers = ctx.layers[stage.layer_start : stage.layer_end]
        forward = backward = 0.0
        remaining = dict(stage.saved_unit_counts)
        for layer in layers:
            profile = ctx.profiler.profile_layer(layer.kind)
            for unit in profile.units:
                forward += unit.time_forward
                backward += unit.time_backward
                if unit.always_saved:
                    remaining[unit.name] = remaining.get(unit.name, 0) - 1
                    continue
                if remaining.get(unit.name, 0) > 0:
                    remaining[unit.name] -= 1
                else:
                    backward += unit.time_forward  # recomputed
        evals.append(
            StageEval(
                feasible=True,
                forward=forward,
                backward=backward,
                saved_unit_counts=stage.saved_unit_counts,
                saved_bytes_per_microbatch=stage.memory.saved_per_microbatch,
                memory=StageMemory(0, 0, 0, 1),
            )
        )
    return evaluate_fixed_partition_from_evals(
        evals, ctx.num_micro_batches, ctx.hop_time
    )


def test_noise_robustness(benchmark):
    train = TrainingConfig(sequence_length=16384, global_batch_size=32)

    def context(noise):
        return PlannerContext(
            cluster_a(),
            gpt3_175b(),
            train,
            ParallelConfig(8, 8, 1),
            memory_limit_bytes=70 * 1024**3,
            profile_noise=noise,
        )

    clean_ctx = context(0.0)

    def run():
        results = []
        for noise in NOISE_LEVELS:
            plan = plan_adapipe(context(noise))
            results.append((noise, _clean_reprice(clean_ctx, plan)))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    base = results[0][1]
    print()
    for noise, repriced in results:
        print(f"noise {noise:4.0%}: clean-model time {repriced:7.2f}s "
              f"(regret {repriced / base - 1.0:+.2%})")
    # Even 10% measurement jitter costs only a few percent of plan quality.
    for _, repriced in results:
        assert repriced <= base * 1.05
