"""Bench: the two-level DP search itself.

Section 5.3 claims the entire search takes "only seconds" for GPT-3 and
Llama 2 thanks to the isomorphism cache and GCD quantization; this bench
measures the full AdaPipe planning time for the paper's headline configs.
"""

import pytest

from repro.config import ParallelConfig, TrainingConfig
from repro.core.search import PlannerContext, plan_adapipe
from repro.core.serialize import plan_signature
from repro.core.sweep import SweepConfig, run_sweep
from repro.hardware.cluster import cluster_a
from repro.model.spec import gpt3_175b, llama2_70b


@pytest.mark.parametrize(
    "spec_fn,parallel,seq,batch",
    [
        (gpt3_175b, ParallelConfig(8, 8, 1), 16384, 32),
        (llama2_70b, ParallelConfig(4, 8, 1), 16384, 32),
    ],
    ids=["gpt3-175b", "llama2-70b"],
)
def test_search_latency(benchmark, spec_fn, parallel, seq, batch):
    train = TrainingConfig(sequence_length=seq, global_batch_size=batch)
    ctx = PlannerContext(
        cluster_a(), spec_fn(), train, parallel, memory_limit_bytes=70 * 1024**3
    )

    plan = benchmark.pedantic(lambda: plan_adapipe(ctx), rounds=1, iterations=1)
    assert plan.feasible
    stats = benchmark.stats.stats
    assert stats.max < 60.0  # "the entire search process takes only seconds"


SWEEP_MODES = {
    # The exhaustive reference: one strategy after another, nothing shared.
    "serial": SweepConfig(workers=1, prune=False, share_cache=False),
    # The performance path: branch-and-bound pruning + shared evaluation
    # cache, parallel workers when the host has cores to spare.
    "optimized": SweepConfig(workers=0, prune=True, share_cache=True),
}


@pytest.mark.parametrize("mode", list(SWEEP_MODES), ids=lambda m: f"sweep-{m}")
def test_table3_sweep(benchmark, mode):
    """Full Table-3 strategy sweep for GPT-3 175B on cluster A, 64 GPUs.

    The sweep — not a single plan — is the search layer's real workload;
    both modes must select signature-identical best plans, with the
    optimized mode measurably faster (compare `sweep-serial` vs
    `sweep-optimized` in the report).
    """
    train = TrainingConfig(sequence_length=4096, global_batch_size=128)
    cluster = cluster_a(num_nodes=8)
    spec = gpt3_175b()

    result = benchmark.pedantic(
        lambda: run_sweep(
            cluster, spec, train, 64, config=SWEEP_MODES[mode],
            memory_limit_bytes=70 * 1024**3,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.best is not None and result.best.feasible
    stats = result.stats
    benchmark.extra_info.update(
        strategies_total=stats.strategies_total,
        strategies_planned=stats.strategies_planned,
        strategies_pruned=stats.strategies_pruned,
        inner_dp_invocations=stats.inner_dp_invocations,
        eval_cache_hit_rate=round(stats.eval_cache_hit_rate, 4),
        workers=stats.workers,
        best_strategy=str(result.best.parallel),
        best_signature_digest=_digest(result.best),
    )


def _digest(plan):
    import hashlib
    import json

    payload = json.dumps(plan_signature(plan), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


WORKER_COUNTS = (1, 2, 4)

# Cross-parametrization state of the worker-scaling bench: worker count ->
# (best-plan digest, wall seconds). Filled in parametrization order (1, 2,
# 4); the 4-worker run closes the comparison.
_scaling_runs = {}


@pytest.mark.parametrize("workers", WORKER_COUNTS, ids=lambda w: f"sweep-workers-{w}")
def test_table3_worker_scaling(benchmark, workers):
    """Orchestrated Table-3 sweep at 1/2/4 workers (GPT-3 175B, 64 GPUs).

    Every worker count must select the bit-identical best plan (the
    orchestrator's pinned invariant: work stealing, cache merge-back and
    incumbent broadcast never change the selection). On hosts with >= 4
    cores the 4-worker sweep must also clear a near-linear scaling floor
    over the 1-worker orchestrated run — >= 2x, i.e. at least half of
    ideal — which in particular beats the old submit-everything pool path
    (whose wall clock the 1-worker run upper-bounds).
    """
    import os

    train = TrainingConfig(sequence_length=4096, global_batch_size=128)
    cluster = cluster_a(num_nodes=8)
    spec = gpt3_175b()
    config = SweepConfig(
        workers=workers, min_parallel=1, prune=True, share_cache=True
    )

    result = benchmark.pedantic(
        lambda: run_sweep(
            cluster, spec, train, 64, config=config,
            memory_limit_bytes=70 * 1024**3,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.best is not None and result.best.feasible
    stats = result.stats
    wall = benchmark.stats.stats.max
    _scaling_runs[workers] = (_digest(result.best), wall)
    benchmark.extra_info.update(
        workers=stats.workers,
        strategies_total=stats.strategies_total,
        strategies_planned=stats.strategies_planned,
        strategies_pruned=stats.strategies_pruned,
        incumbent_prunes=stats.incumbent_prunes,
        coordinator_prunes=stats.coordinator_prunes,
        shards_dispatched=stats.shards_dispatched,
        cache_entries_merged=stats.cache_entries_merged,
        best_strategy=str(result.best.parallel),
        best_signature_digest=_digest(result.best),
    )

    digests = {digest for digest, _ in _scaling_runs.values()}
    assert len(digests) == 1, (
        f"worker counts disagree on the best plan: { _scaling_runs }"
    )
    cores = os.cpu_count() or 1
    if workers == 4 and 1 in _scaling_runs and cores >= 4:
        serial_wall = _scaling_runs[1][1]
        # Near-linear floor: 4 workers must at least halve the 1-worker
        # wall clock (>= 2x of the ideal 4x). Skipped on small hosts where
        # the cores simply don't exist.
        assert wall <= serial_wall / 2.0, (
            f"4-worker sweep {wall:.2f}s vs 1-worker {serial_wall:.2f}s: "
            "below the near-linear scaling floor"
        )
