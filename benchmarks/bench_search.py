"""Bench: the two-level DP search itself.

Section 5.3 claims the entire search takes "only seconds" for GPT-3 and
Llama 2 thanks to the isomorphism cache and GCD quantization; this bench
measures the full AdaPipe planning time for the paper's headline configs.
"""

import pytest

from repro.config import ParallelConfig, TrainingConfig
from repro.core.search import PlannerContext, plan_adapipe
from repro.hardware.cluster import cluster_a
from repro.model.spec import gpt3_175b, llama2_70b


@pytest.mark.parametrize(
    "spec_fn,parallel,seq,batch",
    [
        (gpt3_175b, ParallelConfig(8, 8, 1), 16384, 32),
        (llama2_70b, ParallelConfig(4, 8, 1), 16384, 32),
    ],
    ids=["gpt3-175b", "llama2-70b"],
)
def test_search_latency(benchmark, spec_fn, parallel, seq, batch):
    train = TrainingConfig(sequence_length=seq, global_batch_size=batch)
    ctx = PlannerContext(
        cluster_a(), spec_fn(), train, parallel, memory_limit_bytes=70 * 1024**3
    )

    plan = benchmark.pedantic(lambda: plan_adapipe(ctx), rounds=1, iterations=1)
    assert plan.feasible
    stats = benchmark.stats.stats
    assert stats.max < 60.0  # "the entire search process takes only seconds"
