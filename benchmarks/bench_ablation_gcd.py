"""Ablation bench: GCD quantization of the knapsack (Section 5.3).

Activation sizes share a large power-of-two GCD; dividing weights and
budget by it shrinks the DP table by orders of magnitude. This bench runs
the same stage-level knapsack with the GCD intact and with the GCD
destroyed (weights perturbed by one byte), comparing runtimes and showing
the solutions agree.
"""

import time

from repro.config import ParallelConfig, TrainingConfig
from repro.core.recompute_dp import UnitItem, optimize_stage_recompute
from repro.core.search import PlannerContext
from repro.hardware.cluster import cluster_a
from repro.model.layers import LayerKind
from repro.model.spec import gpt3_175b


def _stage_items(ctx, copies=12):
    items = []
    for kind in (LayerKind.ATTENTION, LayerKind.FFN):
        for unit in ctx.profiler.profile_layer(kind).units:
            if not unit.always_saved:
                items.append(
                    UnitItem(
                        name=unit.name,
                        value=unit.time_forward,
                        weight_bytes=unit.saved_bytes,
                        copies=copies,
                    )
                )
    return items


def test_gcd_quantization_speed_and_fidelity(benchmark):
    train = TrainingConfig(sequence_length=4096, global_batch_size=32)
    ctx = PlannerContext(cluster_a(), gpt3_175b(), train, ParallelConfig(8, 8, 1))
    items = _stage_items(ctx)
    budget = 20 * 1024**3

    aligned = benchmark.pedantic(
        lambda: optimize_stage_recompute(items, budget, in_flight=8),
        rounds=3,
        iterations=1,
    )

    # Destroy the GCD: weights off by one byte force a fallback to the
    # max_cells guard — still correct (conservative) but coarser/slower.
    ragged_items = [
        UnitItem(i.name, i.value, i.weight_bytes + 1.0, i.copies) for i in items
    ]
    started = time.perf_counter()
    ragged = optimize_stage_recompute(ragged_items, budget, in_flight=8)
    ragged_seconds = time.perf_counter() - started

    print(
        f"\naligned saved={aligned.saved_value * 1e3:.2f}ms "
        f"ragged saved={ragged.saved_value * 1e3:.2f}ms "
        f"(ragged solve {ragged_seconds * 1e3:.0f}ms)"
    )
    assert aligned.feasible and ragged.feasible
    # Quantization is conservative: it never overstates the achievable
    # saving, and the ragged variant stays within a few percent.
    assert ragged.saved_value <= aligned.saved_value * 1.001
    assert ragged.saved_value >= aligned.saved_value * 0.95
