#!/usr/bin/env python
"""Quickstart: plan GPT-3 training with AdaPipe and inspect the result.

Builds the paper's headline configuration — GPT-3 (175B) on a cluster of
A100-80GB nodes with (tensor, pipeline, data) parallelism (8, 8, 1) and a
16384-token sequence — runs AdaPipe's two-level dynamic program, and prints
the resulting per-stage recomputation and partitioning plan next to the
DAPPLE-Full baseline, together with simulated iteration times.

Run:  python examples/quickstart.py
"""

from repro.config import ParallelConfig, TrainingConfig
from repro.core.evaluate import evaluate_plan
from repro.core.search import PlannerContext, plan_adapipe, plan_policy
from repro.core.strategies import RecomputePolicy
from repro.hardware import cluster_a
from repro.model import gpt3_175b


def main() -> None:
    cluster = cluster_a()
    spec = gpt3_175b()
    train = TrainingConfig(sequence_length=16384, global_batch_size=32)
    parallel = ParallelConfig(tensor_parallel=8, pipeline_parallel=8, data_parallel=1)

    ctx = PlannerContext(
        cluster, spec, train, parallel, memory_limit_bytes=70 * 1024**3
    )

    print(f"model: {spec.name} ({spec.total_params() / 1e9:.0f}B params)")
    print(f"workload: seq={train.sequence_length}, "
          f"{train.num_micro_batches(parallel)} micro-batches, strategy {parallel}")
    print()

    adapipe = plan_adapipe(ctx)
    print(adapipe.describe())
    print()

    baseline = plan_policy(ctx, RecomputePolicy.FULL, "DAPPLE-Full")
    for plan in (baseline, adapipe):
        evaluation = evaluate_plan(plan, cluster)
        time = evaluation.iteration_time
        print(f"{plan.method:12s} simulated iteration: "
              f"{'OOM' if time is None else f'{time:.2f}s'}")

    base_time = evaluate_plan(baseline, cluster).iteration_time
    ada_time = evaluate_plan(adapipe, cluster).iteration_time
    if base_time and ada_time:
        print(f"\nAdaPipe speedup over DAPPLE-Full: {base_time / ada_time:.2f}x "
              f"(paper reports up to 1.32x on GPT-3)")


if __name__ == "__main__":
    main()
