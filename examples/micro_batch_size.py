#!/usr/bin/env python
"""Why the paper fixes the micro-batch size to 1.

Section 7.1: "The micro-batch size is set to 1 to save the memory of
intermediate results." This example makes the trade-off visible: for a
fixed global batch, growing ``b`` (a) multiplies every saved unit's
activation size by ``b``, squeezing the recomputation budget, and
(b) divides the micro-batch count ``n``, inflating the 1F1B bubble ratio
(p-1)/(n+p-1) — while slightly improving per-kernel efficiency that our
roofline model (like most) credits only weakly at transformer sizes.

Run:  python examples/micro_batch_size.py
"""

import dataclasses

from repro.baselines import evaluate_method
from repro.config import ParallelConfig, TrainingConfig
from repro.core.search import PlannerContext
from repro.hardware import cluster_a
from repro.model import gpt3_175b
from repro.model.tensors import gib


def main() -> None:
    cluster = cluster_a()
    spec = gpt3_175b()
    parallel = ParallelConfig(8, 8, 1)
    base = TrainingConfig(sequence_length=8192, global_batch_size=64)

    print(f"{spec.name}, seq {base.sequence_length}, global batch "
          f"{base.global_batch_size}, strategy {parallel}\n")
    print(f"{'b':>3} {'n':>5} {'bubble frac':>12} {'AdaPipe':>10} "
          f"{'saved units (s0..s7)':>28} {'peak GiB':>9}")
    for micro in (1, 2, 4, 8):
        train = dataclasses.replace(base, micro_batch_size=micro)
        ctx = PlannerContext(cluster, spec, train, parallel,
                             memory_limit_bytes=70 * 1024**3)
        n = ctx.num_micro_batches
        bubble = (parallel.pipeline_parallel - 1) / (n + parallel.pipeline_parallel - 1)
        evaluation = evaluate_method("AdaPipe", ctx)
        if evaluation.iteration_time is None:
            print(f"{micro:>3} {n:>5} {bubble:>11.1%} {'OOM':>10}")
            continue
        plan = evaluation.plan
        saved = plan.saved_unit_counts()
        peak = max(evaluation.peak_memory_per_device())
        print(f"{micro:>3} {n:>5} {bubble:>11.1%} "
              f"{evaluation.iteration_time:>9.2f}s "
              f"{str(saved):>28} {gib(peak):>8.1f}")

    print("\nlarger micro-batches shrink n (more bubbles) and scale every "
          "activation by b (less saved, more recompute) — b = 1 wins, as "
          "the paper assumes.")


if __name__ == "__main__":
    main()
