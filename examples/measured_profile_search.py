#!/usr/bin/env python
"""The full AdaPipe loop on real measurements: profile -> search -> execute.

The paper's search engine profiles each computation unit with a few
preliminary training iterations, feeds the measurements to the two-level
DP, and hands the plan to the execution engine (Section 6). This example
performs that exact loop inside the repository's numpy engine:

1. time every unit of a tiny Llama with wall-clock timestamps;
2. run the two-level DP on the measured profile under a tight budget;
3. execute the plan with the 1F1B executor and compare the *predicted*
   per-stage micro-step times against *measured* execution times.

Run:  python examples/measured_profile_search.py
"""

import time



from repro.config import ParallelConfig, TrainingConfig
from repro.model.spec import tiny_llama
from repro.profiler.measured import MeasuredProfiler, plan_with_measured_profile
from repro.model.layers import LayerKind
from repro.training import SyntheticTextDataset, build_model
from repro.training.pipeline_exec import PipelineExecutor

SEQ = 64
MICRO_BATCHES = 4


def main() -> None:
    spec = tiny_llama(num_layers=6, hidden_size=64, vocab_size=64)
    train = TrainingConfig(
        sequence_length=SEQ,
        global_batch_size=MICRO_BATCHES,
        micro_batch_size=1,
        sequence_parallel=False,
        flash_attention=False,
    )
    parallel = ParallelConfig(1, 2, 1)
    model = build_model(spec, seed=1)

    print("profiling computation units (5 timed iterations) ...")
    profiler = MeasuredProfiler(model, train, parallel, iterations=5)
    for kind in LayerKind:
        profile = profiler.profile_layer(kind)
        units = ", ".join(
            f"{u.name.split('.')[-1]}={u.time_forward * 1e6:.0f}us"
            for u in profile.units
        )
        print(f"  {kind}: {units}")

    plan = plan_with_measured_profile(
        model, train, parallel, capacity_bytes=6 * 1024**2, iterations=5
    )
    print("\nsearched plan (tight 6 MiB budget forces stage-0 recomputation):")
    print(plan.describe())

    executor = PipelineExecutor(model, plan)
    dataset = SyntheticTextDataset(vocab_size=spec.vocab_size)
    tokens, targets = next(dataset.batches(MICRO_BATCHES, SEQ, 1))

    started = time.perf_counter()
    stats = executor.train_step(tokens, targets)
    measured_iteration = time.perf_counter() - started
    predicted = plan.modeled_iteration_time

    print(f"\nexecuted one iteration: loss {stats.loss:.4f}")
    print(f"predicted iteration {predicted * 1e3:.1f} ms, "
          f"measured {measured_iteration * 1e3:.1f} ms "
          f"(ratio {measured_iteration / predicted:.2f} — single-process "
          f"execution serialises the stages, so ~p/2x is expected)")
    peaks = ", ".join(f"{p / 1024:.0f}K" for p in stats.peak_context_bytes)
    print(f"retained-context peaks per stage: [{peaks}] "
          f"(stage 0 recomputes, stage 1 saves)")


if __name__ == "__main__":
    main()
