#!/usr/bin/env python
"""Two execution engines, one plan: graph-style vs eager recomputation.

The paper implements AdaPipe twice — on MindSpore (whole-graph compiled)
and on PyTorch (eager). This repository mirrors that: the manual-backward
module engine plays the graph role, and a tape autograd with
torch-style ``checkpoint()`` plays the eager role. Both engines share the
same weight buffers, execute the same unit-granular recomputation choices,
and — as this example verifies — produce identical losses and
machine-epsilon-identical gradients.

Run:  python examples/eager_vs_graph_engines.py
"""

import time

import numpy as np

from repro.model.spec import tiny_llama
from repro.training.eager import EagerTransformer
from repro.training.modules import build_model

BATCH, SEQ = 4, 32


def main() -> None:
    spec = tiny_llama(num_layers=4, hidden_size=48, vocab_size=64)
    model = build_model(spec, seed=11)
    eager = EagerTransformer(model)  # shares the same weight arrays

    rng = np.random.default_rng(0)
    tokens = rng.integers(0, spec.vocab_size, size=(BATCH, SEQ))
    targets = rng.integers(0, spec.vocab_size, size=(BATCH, SEQ))

    # Graph-style engine: hand-written backward, replay-based recompute.
    started = time.perf_counter()
    manual_loss = model.loss_and_grad(tokens, targets)
    manual_seconds = time.perf_counter() - started
    manual_grads = {
        n: p.grad.copy() for n, p in model.named_parameters() if p.grad is not None
    }

    # Eager engine: dynamic tape, same math.
    started = time.perf_counter()
    loss = eager.loss(tokens, targets)
    loss.backward()
    eager_seconds = time.perf_counter() - started

    gap = max(
        np.abs(manual_grads[n] - eager.params[n].grad).max() for n in manual_grads
    )
    print(f"graph engine loss {manual_loss:.10f}  ({manual_seconds * 1e3:.1f} ms)")
    print(f"eager engine loss {float(loss.data):.10f}  ({eager_seconds * 1e3:.1f} ms)")
    print(f"max gradient gap: {gap:.2e}\n")

    # Unit-granular checkpointing in eager mode: recompute everything
    # except the attention core (the expensive-to-recompute unit).
    eager.zero_grad()
    saved = [{"attn.core"} for _ in model.layers]
    started = time.perf_counter()
    ckpt_loss = eager.loss(tokens, targets, saved)
    ckpt_loss.backward()
    ckpt_seconds = time.perf_counter() - started
    ckpt_gap = max(
        np.abs(manual_grads[n] - eager.params[n].grad).max() for n in manual_grads
    )
    print("eager with per-unit checkpoint (save only attn.core):")
    print(f"  loss {float(ckpt_loss.data):.10f}  ({ckpt_seconds * 1e3:.1f} ms, "
          f"~1 extra forward)")
    print(f"  max gradient gap vs graph engine: {ckpt_gap:.2e}")
    print("\nrecomputation is a pure memory/time trade — the gradients do "
          "not know it happened.")


if __name__ == "__main__":
    main()
