#!/usr/bin/env python
"""Strategy explorer: sweep (TP, PP, DP) and see where each method wins.

Reproduces the reasoning of Section 7.3 interactively: enumerate every
valid 3D-parallelism strategy for a device budget, plan AdaPipe and the
DAPPLE baselines on each, and print a ranked table explaining feasibility
(OOM) and the bubble-ratio / efficiency trade-off the paper discusses.

Run:  python examples/strategy_explorer.py [num_devices] [seq_len]
"""

import sys

from repro.baselines import evaluate_method
from repro.config import TrainingConfig
from repro.core.search import PlannerContext, enumerate_parallel_strategies
from repro.hardware import cluster_a
from repro.model import gpt3_175b

METHODS = ("DAPPLE-Full", "DAPPLE-Non", "AdaPipe")


def main() -> None:
    num_devices = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    seq_len = int(sys.argv[2]) if len(sys.argv) > 2 else 4096

    cluster = cluster_a(num_nodes=max(1, num_devices // 8))
    spec = gpt3_175b()
    train = TrainingConfig(sequence_length=seq_len, global_batch_size=128)
    strategies = enumerate_parallel_strategies(num_devices, cluster, spec, train)
    print(f"{len(strategies)} strategies for {num_devices} devices, "
          f"seq {seq_len}, model {spec.name}\n")

    header = f"{'(t,p,d)':>12} {'n':>4} {'bubble-frac':>11} " + " ".join(
        f"{m:>14}" for m in METHODS
    )
    print(header)
    rows = []
    for parallel in strategies:
        ctx = PlannerContext(cluster, spec, train, parallel)
        n = ctx.num_micro_batches
        p = parallel.pipeline_parallel
        bubble = (p - 1) / (n + p - 1)
        cells = []
        best_time = None
        for method in METHODS:
            evaluation = evaluate_method(method, ctx)
            time = evaluation.iteration_time
            cells.append("OOM" if time is None else f"{time:.2f}s")
            if method == "AdaPipe" and time is not None:
                best_time = time
        rows.append((best_time if best_time is not None else float("inf"),
                     parallel, n, bubble, cells))

    for _, parallel, n, bubble, cells in sorted(rows, key=lambda row: row[0]):
        print(f"{str(parallel.as_tuple()):>12} {n:>4} {bubble:>10.1%} "
              + " ".join(f"{c:>14}" for c in cells))

    print("\nLower tensor parallelism boosts per-op efficiency but raises the "
          "bubble ratio (larger p) or shrinks per-pipeline batches (larger d) "
          "— the trade-off of Table 3.")


if __name__ == "__main__":
    main()
