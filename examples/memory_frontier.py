#!/usr/bin/env python
"""Memory/time frontier: what another GiB of HBM is worth.

Section 7.4 of the paper notes AdaPipe was run against a conservative 70 GB
constraint and that "the memory constraint can be elevated for better
performance". This example sweeps the constraint for GPT-3 at sequence
length 8192 and prints the resulting Pareto frontier: iteration time vs the
memory the plan actually uses.

Run:  python examples/memory_frontier.py
"""

from repro.config import ParallelConfig, TrainingConfig
from repro.core.frontier import frontier_is_monotone, memory_time_frontier
from repro.core.search import PlannerContext
from repro.hardware import cluster_a
from repro.model import gpt3_175b

GIB = 1024**3


def main() -> None:
    ctx = PlannerContext(
        cluster_a(),
        gpt3_175b(),
        TrainingConfig(sequence_length=8192, global_batch_size=16),
        ParallelConfig(8, 8, 1),
    )
    limits = [48 * GIB, 52 * GIB, 56 * GIB, 60 * GIB, 65 * GIB, 70 * GIB, 74 * GIB]
    points = memory_time_frontier(ctx, limits)

    print("memory limit | feasible | modeled iter | simulated iter | peak used")
    for point in points:
        limit_gib = point.memory_limit_bytes / GIB
        if not point.feasible:
            print(f"{limit_gib:9.0f} GiB |    no    |      -       |       -        |    -")
            continue
        print(
            f"{limit_gib:9.0f} GiB |   yes    | {point.modeled_time:9.2f}s   | "
            f"{point.simulated_time:10.2f}s    | {point.peak_memory_bytes / GIB:5.1f} GiB"
        )

    assert frontier_is_monotone(points), "more memory should never be slower"
    feasible = [p for p in points if p.feasible]
    if len(feasible) >= 2:
        gained = feasible[0].modeled_time / feasible[-1].modeled_time
        span = (
            feasible[-1].memory_limit_bytes - feasible[0].memory_limit_bytes
        ) / GIB
        print(f"\nrelaxing the constraint by {span:.0f} GiB buys {gained:.2f}x "
              f"— recomputation traded back for memory, as in Fig. 8's note.")


if __name__ == "__main__":
    main()
