#!/usr/bin/env python
"""Train a tiny Llama under an AdaPipe plan — real forward/backward passes.

End-to-end demonstration of the execution engine: plan a 2-stage pipeline
for a tiny Llama-style model with a deliberately tight memory budget (so
the planner must recompute in stage 0 and can save more in stage 1), then
actually train it on the synthetic character stream and verify against a
monolithic reference run.

Run:  python examples/train_tiny_llama.py
"""

import numpy as np

from repro.config import ParallelConfig, TrainingConfig
from repro.core.search import PlannerContext, plan_adapipe
from repro.hardware import cluster_a
from repro.model.spec import tiny_llama
from repro.training import Adam, SyntheticTextDataset, build_model
from repro.training.pipeline_exec import PipelineExecutor

SEQ = 32
MICRO_BATCHES = 4
STEPS = 40


def main() -> None:
    spec = tiny_llama(num_layers=4, hidden_size=48, vocab_size=64)
    train_cfg = TrainingConfig(
        sequence_length=SEQ,
        global_batch_size=MICRO_BATCHES,
        micro_batch_size=1,
        sequence_parallel=False,
        flash_attention=False,
    )
    ctx = PlannerContext(
        cluster_a(1),
        spec,
        train_cfg,
        ParallelConfig(1, 2, 1),
        memory_limit_bytes=24 * 1024**2,
    )
    plan = plan_adapipe(ctx)
    print(plan.describe())
    print(f"saved units per stage: {plan.saved_unit_counts()}\n")

    model = build_model(spec, seed=7)
    executor = PipelineExecutor(model, plan)
    optimizer = Adam(model.named_parameters(), lr=3e-3)
    dataset = SyntheticTextDataset(vocab_size=spec.vocab_size)

    losses = []
    for step, (tokens, targets) in enumerate(
        dataset.batches(MICRO_BATCHES, SEQ, STEPS)
    ):
        model.zero_grad()
        stats = executor.train_step(tokens, targets)
        optimizer.step()
        losses.append(stats.loss)
        if step % 10 == 0 or step == STEPS - 1:
            peaks = ", ".join(f"{p / 1024:.0f}K" for p in stats.peak_context_bytes)
            print(f"step {step:3d}  loss {stats.loss:.4f}  "
                  f"peak saved-context bytes per stage: [{peaks}]")

    print(f"\nloss: {losses[0]:.4f} -> {losses[-1]:.4f} "
          f"(drop {losses[0] - losses[-1]:.4f})")

    # Cross-check one gradient step against the monolithic reference.
    reference = build_model(spec, seed=7)
    tokens, targets = next(dataset.batches(MICRO_BATCHES, SEQ, 1, stream_seed=99))
    ref_loss = reference.loss_and_grad(tokens, targets)
    fresh = build_model(spec, seed=7)
    stats = PipelineExecutor(fresh, plan).train_step(tokens, targets)
    gap = max(
        np.abs(rp.grad - pp.grad).max()
        for (_, rp), (_, pp) in zip(
            reference.named_parameters(), fresh.named_parameters()
        )
        if rp.grad is not None
    )
    print(f"pipelined loss {stats.loss:.6f} vs reference {ref_loss:.6f}; "
          f"max gradient gap {gap:.2e}")


if __name__ == "__main__":
    main()
