#!/usr/bin/env python
"""Long-context Llama 2 training: how the memory wall moves with sequence length.

The paper's motivating scenario (Section 1): long-context training blows up
activation memory, unevenly across pipeline stages. This example sweeps
Llama 2 (70B) over 4k/8k/16k sequences on 32 A100s, showing for each
sequence length which baselines OOM, what recomputation AdaPipe chooses per
stage, and the resulting speedups.

Run:  python examples/long_context_llama.py
"""

from repro.baselines import evaluate_method
from repro.config import ParallelConfig, TrainingConfig
from repro.core.search import PlannerContext
from repro.hardware import cluster_a
from repro.model import llama2_70b
from repro.model.tensors import gib

METHODS = ("DAPPLE-Full", "DAPPLE-Non", "Even Partitioning", "AdaPipe")


def main() -> None:
    cluster = cluster_a(num_nodes=4)
    spec = llama2_70b()
    parallel = ParallelConfig(4, 8, 1)
    base = TrainingConfig(sequence_length=4096, global_batch_size=128)

    for seq in (4096, 8192, 16384):
        train = base.with_sequence_length(seq)
        ctx = PlannerContext(cluster, spec, train, parallel)
        print(f"=== seq {seq}, global batch {train.global_batch_size}, "
              f"{train.num_micro_batches(parallel)} micro-batches ===")
        times = {}
        for method in METHODS:
            evaluation = evaluate_method(method, ctx)
            if evaluation.iteration_time is None:
                print(f"  {method:18s} OOM "
                      f"(stage peaks up to "
                      f"{gib(max(evaluation.peak_memory_per_device())):.0f} GiB)")
            else:
                times[method] = evaluation.iteration_time
                print(f"  {method:18s} {evaluation.iteration_time:6.2f}s")
        if "AdaPipe" in times:
            feasible_baselines = [t for m, t in times.items() if m.startswith("DAPPLE")]
            if feasible_baselines:
                print(f"  -> AdaPipe speedup over best DAPPLE: "
                      f"{min(feasible_baselines) / times['AdaPipe']:.2f}x")

        # Show how the chosen strategy shifts with memory pressure.
        evaluation = evaluate_method("AdaPipe", ctx)
        saved = evaluation.plan.saved_unit_counts()
        print(f"  AdaPipe saved units per stage: {saved}")
        print(f"  AdaPipe layers per stage:      {evaluation.plan.layer_counts()}")
        print()


if __name__ == "__main__":
    main()
