#!/usr/bin/env python
"""Schedule playground: visualise pipeline schedules as ASCII timelines.

Renders GPipe, 1F1B, interleaved 1F1B, Chimera, and ChimeraD executing the
same workload, printing makespan, bubble ratio, and per-device peak
activation counts — a hands-on version of the paper's Figure 2 and of the
Chimera discussion in Section 7.2.

Run:  python examples/schedule_playground.py [micro_batches] [stages]
"""

import sys

from repro.pipeline import (
    chimera_schedule,
    gpipe_schedule,
    interleaved_1f1b_schedule,
    one_f_one_b_schedule,
    render_timeline,
    simulate,
)
from repro.pipeline.tasks import StageCosts


def main() -> None:
    num_micro_batches = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    num_stages = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    # One activation "byte" per micro-batch makes peak memory read as a
    # count of in-flight micro-batches.
    costs = [
        StageCosts(forward=1.0, backward=2.0, activation_bytes=1.0)
        for _ in range(num_stages)
    ]
    half_costs = [
        StageCosts(forward=0.5, backward=1.0, activation_bytes=0.5)
        for _ in range(2 * num_stages)
    ]

    schedules = [
        gpipe_schedule(costs, num_micro_batches),
        one_f_one_b_schedule(costs, num_micro_batches),
        interleaved_1f1b_schedule(half_costs, num_micro_batches, num_stages),
    ]
    if num_stages % 2 == 0 and num_micro_batches % 4 == 0:
        schedules.append(chimera_schedule(costs, num_micro_batches))
        schedules.append(
            chimera_schedule(costs, num_micro_batches, forward_doubling=True)
        )

    for schedule in schedules:
        result = simulate(schedule)
        print(render_timeline(result, width=90))
        peaks = ", ".join(f"{p:.1f}" for p in result.device_peak_bytes)
        print(f"in-flight activation peaks per device: [{peaks}]")
        print()


if __name__ == "__main__":
    main()
