"""AdaPipe (ASPLOS 2024) reproduction.

Adaptive recomputation and adaptive partitioning for pipeline-parallel LLM
training, reproduced as a self-contained Python library: the two-level DP
search engine, analytic cost/memory models, an event-driven pipeline
simulator, all evaluated baselines, and a real (numpy) training engine
that executes the searched plans.

Quick start::

    from repro import (
        ParallelConfig, TrainingConfig, PlannerContext,
        plan_adapipe, evaluate_plan, cluster_a, gpt3_175b,
    )

    ctx = PlannerContext(
        cluster_a(), gpt3_175b(),
        TrainingConfig(sequence_length=16384, global_batch_size=32),
        ParallelConfig(8, 8, 1),
    )
    plan = plan_adapipe(ctx)
    print(plan.describe())
    print(evaluate_plan(plan, ctx.cluster).iteration_time)

See README.md for the tour, DESIGN.md for the system inventory, and
docs/USAGE.md for recipes.
"""

from repro.config import ParallelConfig, TrainingConfig
from repro.core.evaluate import evaluate_plan
from repro.core.plan import PipelinePlan, StagePlan
from repro.core.search import (
    PlannerContext,
    enumerate_parallel_strategies,
    plan_adapipe,
    plan_even_partitioning,
    plan_policy,
)
from repro.core.strategies import RecomputePolicy
from repro.hardware.cluster import cluster_a, cluster_b
from repro.model.spec import gpt3_175b, llama2_70b, model_by_name

__version__ = "1.0.0"

__all__ = [
    "ParallelConfig",
    "PipelinePlan",
    "PlannerContext",
    "RecomputePolicy",
    "StagePlan",
    "TrainingConfig",
    "cluster_a",
    "cluster_b",
    "enumerate_parallel_strategies",
    "evaluate_plan",
    "gpt3_175b",
    "llama2_70b",
    "model_by_name",
    "plan_adapipe",
    "plan_even_partitioning",
    "plan_policy",
    "__version__",
]
