"""Cluster topologies.

A :class:`ClusterSpec` couples a device type with the two bandwidth tiers
that matter to 3D parallelism: intra-node links (used by tensor parallelism)
and the inter-node network (used by pipeline point-to-point transfers and
data-parallel gradient reduction).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.config import ConfigError, ParallelConfig
from repro.hardware.device import DeviceSpec, a100_80gb, ascend910_32gb


@dataclass(frozen=True)
class ClusterSpec:
    """An accelerator cluster, homogeneous by default.

    Attributes:
        name: identifier used in reports ("A" / "B").
        device: the accelerator installed in every slot; also the nominal
            roofline part that the planner prices layers against.
        num_nodes: node count.
        devices_per_node: accelerators per node.
        intra_node_bandwidth: per-direction bytes/s between two devices in
            one node (NVLink for A, on-board mesh for B).
        inter_node_bandwidth: per-device bytes/s across nodes.
        link_latency: per-message latency in seconds.
        device_factors: optional per-pipeline-rank sustained slowdown
            factors for a heterogeneous (or degraded) cluster; rank ``r``
            runs ``device_factors[r]`` times slower than nominal.
            **Fallback (documented, tested):** the tuple may be shorter
            than the pipeline depth — ranks beyond it fall back to
            ``device.slowdown`` (nominal when the base part is
            underated). The pipeline depth is not known at construction
            time, so the length cannot be validated here; callers that
            know ``p`` should pass a full-length tuple. The planners'
            roofline model stays nominal — the factors feed robustness
            evaluation (:func:`repro.core.robust.cluster_perturbation`).
        device_pool: optional per-pipeline-rank device specs for a mixed
            fleet (e.g. A100 + derated A100 + Ascend). Unlike
            ``device_factors``, a pool is planner-visible: the placement
            search (:mod:`repro.core.placement`) decides which device
            class serves which stage, pricing each rank with that class's
            compute scale and memory capacity. A pool fixes the pipeline
            depth to ``len(device_pool)`` (enforced by
            :meth:`validate_parallel`); ``device_factors`` and
            ``device_pool`` are mutually exclusive.
    """

    name: str
    device: DeviceSpec
    num_nodes: int
    devices_per_node: int
    intra_node_bandwidth: float
    inter_node_bandwidth: float
    link_latency: float = 5e-6
    device_factors: Optional[Tuple[float, ...]] = None
    device_pool: Optional[Tuple[DeviceSpec, ...]] = None

    def __post_init__(self) -> None:
        if self.device_factors is not None and any(
            factor <= 0 for factor in self.device_factors
        ):
            raise ValueError(
                f"device factors must all be > 0, got {self.device_factors}"
            )
        if self.device_pool is not None:
            if not self.device_pool:
                raise ValueError("device pool must name at least one device")
            if len(self.device_pool) > self.num_devices:
                raise ValueError(
                    f"device pool has {len(self.device_pool)} slots but "
                    f"cluster {self.name} has only {self.num_devices} devices"
                )
            if self.device_factors is not None:
                raise ValueError(
                    "device_factors and device_pool are mutually exclusive; "
                    "encode per-rank derating in the pool's DeviceSpec.slowdown"
                )

    @property
    def num_devices(self) -> int:
        return self.num_nodes * self.devices_per_node

    @property
    def heterogeneous(self) -> bool:
        """True when some rank is derated relative to a nominal part."""
        if self.device_factors and any(f != 1.0 for f in self.device_factors):
            return True
        if self.device_pool:
            if any(self.pool_compute_factor(d) != 1.0 for d in self.device_pool):
                return True
            if any(
                d.usable_memory_bytes != self.device.usable_memory_bytes
                for d in self.device_pool
            ):
                return True
        return self.device.slowdown != 1.0

    def rank_device(self, rank: int) -> DeviceSpec:
        """The device spec serving pipeline rank ``rank``.

        Pool slot ``rank`` for pooled clusters (the pool fixes the
        pipeline depth, so an out-of-range rank is a config error); the
        uniform ``device`` otherwise.
        """
        if self.device_pool:
            if rank >= len(self.device_pool):
                raise ConfigError(
                    f"pipeline rank {rank} out of range for a device pool "
                    f"of {len(self.device_pool)} slots"
                )
            return self.device_pool[rank]
        return self.device

    def pool_compute_factor(self, device: DeviceSpec) -> float:
        """Planner-visible slowdown of one pool part vs the nominal roofline.

        The planner prices every layer with ``self.device``'s roofline
        and scales stage times by this factor: the part's sustained
        ``slowdown`` derating times the peak-throughput ratio to the base
        part. A pool slot equal to the base device scales by exactly
        ``1.0``, keeping homogeneous-pool planning bit-identical to the
        poolless planner.
        """
        return device.slowdown * (self.device.peak_flops / device.peak_flops)

    def rank_compute_factor(self, rank: int) -> float:
        """Planner compute scale for pipeline rank ``rank``.

        Pool-derived for pooled clusters; exactly ``1.0`` otherwise —
        planner-side scaling activates only with an explicit pool, so
        poolless plans (including ones with ``device_factors`` or a
        derated base ``device``, which affect robustness pricing only)
        stay bit-identical to the pre-placement planner.
        """
        if self.device_pool:
            return self.pool_compute_factor(self.rank_device(rank))
        return 1.0

    def device_factor(self, rank: int) -> float:
        """Sustained slowdown factor of pipeline rank ``rank``.

        Resolution order: an explicit ``device_factors`` entry, then the
        pool part's planner compute factor, then ``device.slowdown``
        (the documented fallback for ranks past a short factors tuple —
        see the class docstring).
        """
        if self.device_factors and rank < len(self.device_factors):
            return self.device_factors[rank]
        if self.device_pool and rank < len(self.device_pool):
            return self.pool_compute_factor(self.device_pool[rank])
        return self.device.slowdown

    def with_device_factors(self, factors: Iterable[float]) -> "ClusterSpec":
        """A copy of this cluster with per-rank slowdown factors."""
        return dataclasses.replace(self, device_factors=tuple(factors))

    def with_device_pool(self, devices: Iterable[DeviceSpec]) -> "ClusterSpec":
        """A copy of this cluster with a per-rank device pool."""
        return dataclasses.replace(
            self, device_pool=tuple(devices), device_factors=None
        )

    def validate_parallel(self, parallel: ParallelConfig, num_devices: int) -> None:
        """Check that a 3D strategy fits this cluster.

        Mirrors the paper's constraints: the strategy must use exactly
        ``num_devices`` accelerators and keep tensor parallelism inside one
        node (cross-node TP saturates the network, Section 7.1).
        """
        if parallel.num_devices != num_devices:
            raise ConfigError(
                f"strategy {parallel} uses {parallel.num_devices} devices, "
                f"expected {num_devices}"
            )
        if num_devices > self.num_devices:
            raise ConfigError(
                f"{num_devices} devices requested but cluster {self.name} "
                f"has only {self.num_devices}"
            )
        if parallel.tensor_parallel > self.devices_per_node:
            raise ConfigError(
                f"tensor parallel size {parallel.tensor_parallel} exceeds "
                f"{self.devices_per_node} devices per node"
            )
        if (
            self.device_pool is not None
            and parallel.pipeline_parallel != len(self.device_pool)
        ):
            raise ConfigError(
                f"device pool has {len(self.device_pool)} slots but strategy "
                f"{parallel} runs {parallel.pipeline_parallel} pipeline "
                f"stages; a pool fixes the pipeline depth"
            )

    def tensor_parallel_bandwidth(self, tensor_parallel: int) -> float:
        """Bandwidth seen by tensor-parallel collectives (intra-node)."""
        del tensor_parallel
        return self.intra_node_bandwidth

    def pipeline_bandwidth(self) -> float:
        """Bandwidth of a stage-to-stage point-to-point transfer.

        Pipeline neighbours normally live on different nodes, which is
        exactly why pipeline parallelism is used at the inter-node level.
        """
        return self.inter_node_bandwidth


def cluster_a(num_nodes: int = 8) -> ClusterSpec:
    """Cluster A: DGX-A100 nodes, NVLink intra-node, 800 Gbps InfiniBand."""
    return ClusterSpec(
        name="A",
        device=a100_80gb(),
        num_nodes=num_nodes,
        devices_per_node=8,
        intra_node_bandwidth=300e9,   # NVLink 3, per direction
        inter_node_bandwidth=100e9,   # 800 Gbps HCA shared by 8 GPUs
    )


def cluster_b(num_nodes: int = 32) -> ClusterSpec:
    """Cluster B: Atlas 800 nodes, meshed NPU boards, 100 Gbps NICs."""
    return ClusterSpec(
        name="B",
        device=ascend910_32gb(),
        num_nodes=num_nodes,
        devices_per_node=8,
        intra_node_bandwidth=30e9,    # 30 GB/s board mesh links
        inter_node_bandwidth=12.5e9,  # 100 Gbps NIC per NPU
    )
