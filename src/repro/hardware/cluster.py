"""Cluster topologies.

A :class:`ClusterSpec` couples a device type with the two bandwidth tiers
that matter to 3D parallelism: intra-node links (used by tensor parallelism)
and the inter-node network (used by pipeline point-to-point transfers and
data-parallel gradient reduction).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.config import ConfigError, ParallelConfig
from repro.hardware.device import DeviceSpec, a100_80gb, ascend910_32gb


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous accelerator cluster.

    Attributes:
        name: identifier used in reports ("A" / "B").
        device: the accelerator installed in every slot.
        num_nodes: node count.
        devices_per_node: accelerators per node.
        intra_node_bandwidth: per-direction bytes/s between two devices in
            one node (NVLink for A, on-board mesh for B).
        inter_node_bandwidth: per-device bytes/s across nodes.
        link_latency: per-message latency in seconds.
        device_factors: optional per-pipeline-rank sustained slowdown
            factors for a heterogeneous (or degraded) cluster; rank ``r``
            runs ``device_factors[r]`` times slower than nominal, and
            ranks beyond the tuple fall back to ``device.slowdown``.
            The planners' roofline model stays nominal — the factors
            feed robustness evaluation
            (:func:`repro.core.robust.cluster_perturbation`).
    """

    name: str
    device: DeviceSpec
    num_nodes: int
    devices_per_node: int
    intra_node_bandwidth: float
    inter_node_bandwidth: float
    link_latency: float = 5e-6
    device_factors: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.device_factors is not None and any(
            factor <= 0 for factor in self.device_factors
        ):
            raise ValueError(
                f"device factors must all be > 0, got {self.device_factors}"
            )

    @property
    def num_devices(self) -> int:
        return self.num_nodes * self.devices_per_node

    @property
    def heterogeneous(self) -> bool:
        """True when some rank is derated relative to a nominal part."""
        if self.device_factors and any(f != 1.0 for f in self.device_factors):
            return True
        return self.device.slowdown != 1.0

    def device_factor(self, rank: int) -> float:
        """Sustained slowdown factor of pipeline rank ``rank``."""
        if self.device_factors and rank < len(self.device_factors):
            return self.device_factors[rank]
        return self.device.slowdown

    def with_device_factors(self, factors: Iterable[float]) -> "ClusterSpec":
        """A copy of this cluster with per-rank slowdown factors."""
        return dataclasses.replace(self, device_factors=tuple(factors))

    def validate_parallel(self, parallel: ParallelConfig, num_devices: int) -> None:
        """Check that a 3D strategy fits this cluster.

        Mirrors the paper's constraints: the strategy must use exactly
        ``num_devices`` accelerators and keep tensor parallelism inside one
        node (cross-node TP saturates the network, Section 7.1).
        """
        if parallel.num_devices != num_devices:
            raise ConfigError(
                f"strategy {parallel} uses {parallel.num_devices} devices, "
                f"expected {num_devices}"
            )
        if num_devices > self.num_devices:
            raise ConfigError(
                f"{num_devices} devices requested but cluster {self.name} "
                f"has only {self.num_devices}"
            )
        if parallel.tensor_parallel > self.devices_per_node:
            raise ConfigError(
                f"tensor parallel size {parallel.tensor_parallel} exceeds "
                f"{self.devices_per_node} devices per node"
            )

    def tensor_parallel_bandwidth(self, tensor_parallel: int) -> float:
        """Bandwidth seen by tensor-parallel collectives (intra-node)."""
        del tensor_parallel
        return self.intra_node_bandwidth

    def pipeline_bandwidth(self) -> float:
        """Bandwidth of a stage-to-stage point-to-point transfer.

        Pipeline neighbours normally live on different nodes, which is
        exactly why pipeline parallelism is used at the inter-node level.
        """
        return self.inter_node_bandwidth


def cluster_a(num_nodes: int = 8) -> ClusterSpec:
    """Cluster A: DGX-A100 nodes, NVLink intra-node, 800 Gbps InfiniBand."""
    return ClusterSpec(
        name="A",
        device=a100_80gb(),
        num_nodes=num_nodes,
        devices_per_node=8,
        intra_node_bandwidth=300e9,   # NVLink 3, per direction
        inter_node_bandwidth=100e9,   # 800 Gbps HCA shared by 8 GPUs
    )


def cluster_b(num_nodes: int = 32) -> ClusterSpec:
    """Cluster B: Atlas 800 nodes, meshed NPU boards, 100 Gbps NICs."""
    return ClusterSpec(
        name="B",
        device=ascend910_32gb(),
        num_nodes=num_nodes,
        devices_per_node=8,
        intra_node_bandwidth=30e9,    # 30 GB/s board mesh links
        inter_node_bandwidth=12.5e9,  # 100 Gbps NIC per NPU
    )
