"""Communication cost model.

Three communication patterns matter to the cost model:

* tensor-parallel collectives inside each layer (all-reduce, or
  reduce-scatter/all-gather pairs under sequence parallelism);
* pipeline point-to-point activation/gradient transfers between stages;
* the per-iteration data-parallel gradient reduction (ZeRO-1
  reduce-scatter + later all-gather of updated parameters).

All are modelled with the standard alpha-beta (latency + size/bandwidth)
ring-collective formulas, which is as much fidelity as an iteration-time
estimate needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ParallelConfig, TrainingConfig
from repro.hardware.cluster import ClusterSpec


@dataclass(frozen=True)
class CommModel:
    """Communication time estimates on a concrete cluster."""

    cluster: ClusterSpec

    def p2p_time(self, num_bytes: float) -> float:
        """One stage-to-stage activation (or gradient) transfer."""
        if num_bytes <= 0:
            return 0.0
        return self.cluster.link_latency + num_bytes / self.cluster.pipeline_bandwidth()

    def allreduce_time(self, num_bytes: float, group_size: int, intra_node: bool) -> float:
        """Ring all-reduce of ``num_bytes`` over ``group_size`` ranks."""
        if group_size <= 1 or num_bytes <= 0:
            return 0.0
        bandwidth = (
            self.cluster.intra_node_bandwidth
            if intra_node
            else self.cluster.inter_node_bandwidth
        )
        steps = 2 * (group_size - 1)
        return steps * self.cluster.link_latency + (
            2.0 * num_bytes * (group_size - 1) / group_size / bandwidth
        )

    def reduce_scatter_time(
        self, num_bytes: float, group_size: int, intra_node: bool
    ) -> float:
        """Ring reduce-scatter (half an all-reduce)."""
        return 0.5 * self.allreduce_time(num_bytes, group_size, intra_node)

    def all_gather_time(self, num_bytes: float, group_size: int, intra_node: bool) -> float:
        """Ring all-gather (half an all-reduce)."""
        return 0.5 * self.allreduce_time(num_bytes, group_size, intra_node)

    # -- composite costs used by the planners --------------------------------

    def stage_boundary_bytes(self, hidden_size: int, train: TrainingConfig) -> float:
        """Size of the tensor crossing a pipeline stage boundary."""
        elements = train.sequence_length * train.micro_batch_size * hidden_size
        if train.sequence_parallel:
            # Megatron transfers the sequence-sharded tensor and re-gathers.
            return elements * train.bytes_per_value
        return elements * train.bytes_per_value

    def pipeline_hop_time(self, hidden_size: int, train: TrainingConfig) -> float:
        """Time to ship one micro-batch activation to the next stage."""
        return self.p2p_time(self.stage_boundary_bytes(hidden_size, train))

    def tensor_parallel_overhead_per_layer(
        self,
        hidden_size: int,
        train: TrainingConfig,
        parallel: ParallelConfig,
    ) -> float:
        """Per-layer, per-micro-batch TP collective time (forward pass).

        Each Attention or FFN layer performs one all-reduce of the
        ``(seq, batch, hidden)`` activation in forward and one in backward
        (or the equivalent reduce-scatter/all-gather pair under sequence
        parallelism, which moves the same volume).
        """
        t = parallel.tensor_parallel
        if t <= 1:
            return 0.0
        elements = train.sequence_length * train.micro_batch_size * hidden_size
        return self.allreduce_time(elements * train.bytes_per_value, t, intra_node=True)

    def gradient_sync_time(self, stage_params: int, parallel: ParallelConfig) -> float:
        """Per-iteration ZeRO-1 gradient reduce-scatter + param all-gather."""
        d = parallel.data_parallel
        if d <= 1:
            return 0.0
        grad_bytes = 2.0 * stage_params / parallel.tensor_parallel
        return self.reduce_scatter_time(grad_bytes, d, intra_node=False) + (
            self.all_gather_time(grad_bytes, d, intra_node=False)
        )
