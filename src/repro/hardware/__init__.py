"""Hardware models: accelerators, clusters, and communication costs.

Only three hardware properties enter AdaPipe's cost model — per-device
memory capacity, compute throughput, and link bandwidths — so the package
models exactly those for the paper's two testbeds:

* Cluster A: 8 nodes x 8 NVIDIA A100 80GB, NVLink intra-node, 800 Gbps IB.
* Cluster B: 32 nodes x 8 Huawei Ascend 910 32GB, meshed boards, 100 Gbps NIC.
"""

from repro.hardware.cluster import ClusterSpec, cluster_a, cluster_b
from repro.hardware.comm import CommModel
from repro.hardware.device import DeviceSpec, a100_80gb, ascend910_32gb

__all__ = [
    "ClusterSpec",
    "CommModel",
    "DeviceSpec",
    "a100_80gb",
    "ascend910_32gb",
    "cluster_a",
    "cluster_b",
]
