"""Accelerator specifications.

The roofline timing model (``repro.profiler.timing``) needs, per device, the
peak dense half-precision throughput, the memory bandwidth, and realistic
efficiency factors per operator class — dense GEMMs reach a large fraction of
peak, while norms and elementwise ops are bandwidth-bound. The memory model
needs the capacity and the slice the framework reserves (CUDA context,
workspaces, fragmentation).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.model.units import OpKind

# Fraction of peak FLOPS that each operator class achieves in practice.
_DEFAULT_EFFICIENCY: Dict[OpKind, float] = {
    OpKind.GEMM: 0.55,
    OpKind.FLASH_ATTENTION: 0.45,
    OpKind.NORM: 0.04,
    OpKind.ELEMENTWISE: 0.04,
    OpKind.EMBEDDING: 0.03,
    OpKind.CROSS_ENTROPY: 0.05,
}


@dataclass(frozen=True)
class DeviceSpec:
    """One accelerator.

    Attributes:
        name: marketing name.
        memory_bytes: HBM capacity.
        reserved_bytes: capacity the framework cannot use for model state
            (context, comm buffers, fragmentation slack).
        peak_flops: dense fp16/bf16 throughput, FLOP/s.
        memory_bandwidth: HBM bandwidth, bytes/s.
        efficiency: achieved fraction of ``peak_flops`` per operator class.
        kernel_launch_overhead: fixed seconds added per operator.
        slowdown: sustained performance derating of this accelerator
            relative to a healthy part (1.0 = nominal, 1.2 = runs 20%
            slow). The roofline model prices nominal parts; the derating
            feeds robustness evaluation
            (:func:`repro.core.robust.cluster_perturbation`) as the
            default per-device slowdown factor.
    """

    name: str
    memory_bytes: int
    reserved_bytes: int
    peak_flops: float
    memory_bandwidth: float
    efficiency: Dict[OpKind, float] = field(
        default_factory=lambda: dict(_DEFAULT_EFFICIENCY)
    )
    kernel_launch_overhead: float = 5e-6
    slowdown: float = 1.0

    def __post_init__(self) -> None:
        if self.slowdown <= 0:
            raise ValueError(f"device slowdown must be > 0, got {self.slowdown}")

    @property
    def usable_memory_bytes(self) -> int:
        """Capacity available to parameters, states, and activations."""
        return self.memory_bytes - self.reserved_bytes

    def achieved_flops(self, kind: OpKind) -> float:
        """Effective FLOP/s for an operator class."""
        return self.peak_flops * self.efficiency.get(kind, 0.1)


def a100_80gb() -> DeviceSpec:
    """NVIDIA A100-SXM4-80GB (cluster A)."""
    return DeviceSpec(
        name="A100-80GB",
        memory_bytes=80 * 1024**3,
        reserved_bytes=6 * 1024**3,
        peak_flops=312e12,
        memory_bandwidth=2.0e12,
    )


def ascend910_32gb() -> DeviceSpec:
    """Huawei Ascend 910 32GB (cluster B)."""
    return DeviceSpec(
        name="Ascend910-32GB",
        memory_bytes=32 * 1024**3,
        reserved_bytes=3 * 1024**3,
        peak_flops=256e12,
        memory_bandwidth=1.2e12,
    )


def derated(device: DeviceSpec, slowdown: float) -> DeviceSpec:
    """A copy of ``device`` running ``slowdown`` times slower than nominal.

    The derated part keeps its memory and roofline shape — only the
    sustained ``slowdown`` changes (thermal throttling, a flaky HBM stack
    remapped at reduced clocks). The name records the derating so mixed
    pools stay legible in reports.
    """
    name = device.name if slowdown == 1.0 else f"{device.name}*{slowdown:g}"
    return dataclasses.replace(device, name=name, slowdown=slowdown)


#: CLI-facing preset registry: ``--device-pool a100,ascend*1.2`` resolves
#: each part name here, with an optional ``*slowdown`` derating suffix.
DEVICE_PRESETS: Dict[str, Callable[[], DeviceSpec]] = {
    "a100": a100_80gb,
    "a100_80gb": a100_80gb,
    "ascend": ascend910_32gb,
    "ascend910_32gb": ascend910_32gb,
}


def device_preset(name: str) -> DeviceSpec:
    """Resolve a preset device by registry name (case-insensitive)."""
    key = name.strip().lower()
    if key not in DEVICE_PRESETS:
        known = ", ".join(sorted(DEVICE_PRESETS))
        raise ValueError(f"unknown device preset {name!r} (known: {known})")
    return DEVICE_PRESETS[key]()
