"""Single-process execution of a pipeline plan on the real mini-model.

This is the reproduction's execution engine (Section 6): it takes a
:class:`~repro.core.plan.PipelinePlan` — layer ranges and per-stage saved
computation units — and runs actual 1F1B training with it. Stages are
virtual (one process plays all devices), but the execution order is the
*scheduled* order (tasks sorted by their simulated start times), per-stage
activation retention is real (live `LayerContext` bytes are metered), and
gradients/losses are bit-comparable to a monolithic reference run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.plan import PipelinePlan
from repro.model.layers import LayerKind
from repro.pipeline.schedules import one_f_one_b_schedule
from repro.pipeline.simulator import simulate
from repro.pipeline.tasks import TaskKind
from repro.training.modules import HeadLayer, TransformerModel
from repro.training.optimizer import Adam


def saved_units_per_layer(
    model: TransformerModel, plan: PipelinePlan
) -> List[Set[str]]:
    """Expand a plan's per-stage unit counts into per-layer save sets.

    A stage's count for unit type ``u`` means "save ``u`` in that many of
    this stage's layers"; instances are assigned to the stage's *last*
    eligible layers (their backwards run first, shortening the window the
    recompute buffer is live — any assignment is cost-equivalent).
    """
    per_layer: List[Set[str]] = [set() for _ in model.layers]
    for stage in plan.stages:
        layer_indices = list(range(stage.layer_start, stage.layer_end))
        for unit_name, count in stage.saved_unit_counts.items():
            kind = _unit_kind(unit_name)
            eligible = [
                i for i in layer_indices if model.descriptors[i].kind == kind
            ]
            for index in eligible[max(0, len(eligible) - count) :] if count else []:
                per_layer[index].add(unit_name)
    return per_layer


def _unit_kind(unit_name: str) -> LayerKind:
    prefix = unit_name.split(".", 1)[0]
    return {
        "attn": LayerKind.ATTENTION,
        "ffn": LayerKind.FFN,
        "embed": LayerKind.EMBEDDING,
        "head": LayerKind.HEAD,
    }[prefix]


@dataclass
class ExecutionStats:
    """Observability from one executed iteration."""

    loss: float
    peak_context_bytes: List[float] = field(default_factory=list)
    tasks_executed: int = 0


class PipelineExecutor:
    """Runs 1F1B training of a real model under a pipeline plan.

    Args:
        model: the mini transformer (its layer list must match the plan's
            layer sequence length).
        plan: stage partition + recomputation strategy to execute.
    """

    def __init__(self, model: TransformerModel, plan: PipelinePlan) -> None:
        if plan.stages[-1].layer_end != len(model.layers):
            raise ValueError(
                f"plan covers {plan.stages[-1].layer_end} layers, model has "
                f"{len(model.layers)}"
            )
        self.model = model
        self.plan = plan
        self.saved_per_layer = saved_units_per_layer(model, plan)
        self._stage_ranges = [
            (stage.layer_start, stage.layer_end) for stage in plan.stages
        ]
        self._task_order = self._scheduled_order()
        self._iteration = 0

    def _scheduled_order(self) -> List[Tuple[int, int, TaskKind]]:
        """(stage, micro_batch, kind) triples in simulated start order.

        Executors rebuilt from the same plan (e.g. across checkpoint
        restarts) produce an identical schedule, so this simulation replays
        from the cross-run simulation cache. Ties at equal start times are
        broken by (stage, forward-first, micro_batch) so the serialised
        order is deterministic and engine-independent.
        """
        n = self._num_micro_batches()
        schedule = one_f_one_b_schedule(list(self.plan.stage_costs()), n)
        result = simulate(schedule)
        ordered = sorted(
            result.start_times.items(),
            key=lambda kv: (
                kv[1],
                kv[0].stage,
                kv[0].kind is TaskKind.BACKWARD,
                kv[0].micro_batch,
            ),
        )
        return [(k.stage, k.micro_batch, k.kind) for k, _ in ordered]

    def _num_micro_batches(self) -> int:
        return self.plan.train.num_micro_batches(self.plan.parallel)

    def train_step(self, tokens: np.ndarray, targets: np.ndarray) -> ExecutionStats:
        """One full iteration: n micro-batches through 1F1B, grads
        accumulated into the model (caller runs the optimizer step).

        ``tokens``/``targets`` have shape (n * micro_batch, seq) and are
        split row-wise into micro-batches.
        """
        n = self._num_micro_batches()
        micro = self.plan.train.micro_batch_size
        if tokens.shape[0] != n * micro:
            raise ValueError(
                f"batch of {tokens.shape[0]} rows != {n} micro-batches x {micro}"
            )
        head: HeadLayer = self.model.head
        p = len(self._stage_ranges)

        contexts: Dict[Tuple[int, int], list] = {}
        boundary: Dict[Tuple[int, int], object] = {}
        grad_boundary: Dict[Tuple[int, int], object] = {}
        losses: List[float] = []
        live_bytes = [0.0] * p
        peak_bytes = [0.0] * p
        executed = 0

        for stage, mb, kind in self._task_order:
            lo, hi = self._stage_ranges[stage]
            mb_tokens = tokens[mb * micro : (mb + 1) * micro]
            mb_targets = targets[mb * micro : (mb + 1) * micro]
            if kind == TaskKind.FORWARD:
                value = mb_tokens if stage == 0 else boundary.pop((stage - 1, mb))
                if hi == len(self.model.layers):
                    head.set_targets(mb_targets)
                rng_tag = self._iteration * n + mb  # fresh masks per micro-batch
                ctxs = []
                for index in range(lo, hi):
                    layer = self.model.layers[index]
                    layer.set_rng_tag(rng_tag)
                    value, ctx = layer.forward(value, self.saved_per_layer[index])
                    ctxs.append(ctx)
                contexts[(stage, mb)] = ctxs
                if hi == len(self.model.layers):
                    losses.append(float(value))
                else:
                    boundary[(stage, mb)] = value
                live_bytes[stage] += _context_bytes(ctxs)
                peak_bytes[stage] = max(peak_bytes[stage], live_bytes[stage])
            else:
                ctxs = contexts.pop((stage, mb))
                if hi == len(self.model.layers):
                    head.set_targets(mb_targets)  # replay may re-run the loss
                    grad: object = 1.0 / n
                else:
                    grad = grad_boundary.pop((stage, mb))
                for index in range(hi - 1, lo - 1, -1):
                    grad = self.model.layers[index].backward(
                        ctxs[index - lo], grad
                    )
                if stage > 0:
                    grad_boundary[(stage - 1, mb)] = grad
                live_bytes[stage] -= _context_bytes(ctxs)
            executed += 1

        self._iteration += 1
        return ExecutionStats(
            loss=float(np.mean(losses)),
            peak_context_bytes=peak_bytes,
            tasks_executed=executed,
        )


def _context_bytes(contexts: Sequence) -> float:
    total = 0.0
    for ctx in contexts:
        for output, cache in ctx.saved.values():
            total += _tree_bytes(output) + _tree_bytes(cache)
    return total


def _tree_bytes(obj: object) -> float:
    if isinstance(obj, np.ndarray):
        return float(obj.nbytes)
    if isinstance(obj, (tuple, list)):
        return sum(_tree_bytes(item) for item in obj)
    return 0.0


def train_reference(
    model: TransformerModel,
    batches,
    optimizer: Optional[Adam] = None,
    saved_units: Optional[Sequence[Optional[Set[str]]]] = None,
) -> List[float]:
    """Monolithic (non-pipelined) training loop; returns per-step losses."""
    losses = []
    for tokens, targets in batches:
        model.zero_grad()
        loss = model.loss_and_grad(tokens, targets, saved_units)
        if optimizer is not None:
            optimizer.step()
        losses.append(loss)
    return losses


def train_with_plan(
    model: TransformerModel,
    plan: PipelinePlan,
    batches,
    optimizer: Optional[Adam] = None,
) -> List[float]:
    """Pipelined training loop under ``plan``; returns per-step losses."""
    executor = PipelineExecutor(model, plan)
    losses = []
    for tokens, targets in batches:
        model.zero_grad()
        stats = executor.train_step(tokens, targets)
        if optimizer is not None:
            optimizer.step()
        losses.append(stats.loss)
    return losses
