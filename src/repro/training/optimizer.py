"""Optimizers for the mini training engine.

FP32 Adam with two moment states — the optimizer whose ``k = 2 x 4`` bytes
per parameter the paper's memory model assumes — plus plain SGD and a
static loss scaler mirroring the mixed-precision setup the paper tunes
("we adjust the value of the initial loss scale to ensure there is no
overflow").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.training.modules import Parameter


class Adam:
    """Standard Adam with bias correction.

    Args:
        named_params: iterable of (name, Parameter) pairs to optimize.
        lr: learning rate.
        betas: moment decay rates.
        eps: denominator stabiliser.
        weight_decay: decoupled (AdamW-style) weight decay.
    """

    def __init__(
        self,
        named_params: Iterable[Tuple[str, Parameter]],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.95),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.params: List[Tuple[str, Parameter]] = list(named_params)
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.step_count = 0
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}

    def state_bytes(self) -> int:
        """Bytes of optimizer state (the paper's ``kN`` term, with k=8
        when states are FP32; float64 here doubles it)."""
        return sum(m.nbytes + v.nbytes for m, v in zip(self._m.values(), self._v.values()))

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        self.step_count += 1
        beta1, beta2 = self.betas
        bias1 = 1.0 - beta1**self.step_count
        bias2 = 1.0 - beta2**self.step_count
        for name, param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            m = self._m.setdefault(name, np.zeros_like(param.data))
            v = self._v.setdefault(name, np.zeros_like(param.data))
            m *= beta1
            m += (1.0 - beta1) * grad
            v *= beta2
            v += (1.0 - beta2) * grad * grad
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            param.data -= self.lr * update

    def zero_grad(self) -> None:
        for _, param in self.params:
            param.zero_grad()


class SGD:
    """Plain SGD with optional momentum (used by fast tests)."""

    def __init__(
        self,
        named_params: Iterable[Tuple[str, Parameter]],
        lr: float = 0.1,
        momentum: float = 0.0,
    ) -> None:
        self.params = list(named_params)
        self.lr = lr
        self.momentum = momentum
        self._velocity: Dict[str, np.ndarray] = {}

    def step(self) -> None:
        for name, param in self.params:
            if param.grad is None:
                continue
            if self.momentum:
                vel = self._velocity.setdefault(name, np.zeros_like(param.data))
                vel *= self.momentum
                vel += param.grad
                param.data -= self.lr * vel
            else:
                param.data -= self.lr * param.grad

    def zero_grad(self) -> None:
        for _, param in self.params:
            param.zero_grad()


@dataclass
class LossScaler:
    """Static loss scaling with overflow backoff.

    The forward loss is multiplied by ``scale`` before backward and
    gradients divided by it before the update; a non-finite gradient skips
    the step and halves the scale, as mixed-precision trainers do.
    """

    scale: float = 2.0**10
    backoff: float = 0.5
    growth: float = 2.0
    growth_interval: int = 200
    _good_steps: int = field(default=0, repr=False)

    def unscale_and_check(self, params: Iterable[Tuple[str, Parameter]]) -> bool:
        """Divide grads by the scale; returns False (skip step) on overflow."""
        pairs = list(params)
        for _, param in pairs:
            if param.grad is not None and not np.isfinite(param.grad).all():
                self.scale *= self.backoff
                self._good_steps = 0
                return False
        for _, param in pairs:
            if param.grad is not None:
                param.grad /= self.scale
        self._good_steps += 1
        if self._good_steps >= self.growth_interval:
            self.scale *= self.growth
            self._good_steps = 0
        return True
