"""Transformer modules with unit-granular save-or-recompute execution.

Each layer mirrors the computation-unit split of
:mod:`repro.model.units`: its forward pass runs unit by unit, retaining the
``(output, backward-cache)`` pair only for units configured *saved*. The
backward pass first *replays* the forward from the layer input, skipping
every saved unit (their tensors are reused) and recomputing only the
dropped ones — exactly the buffer-then-backward procedure of Section 4.2 —
then walks the units in reverse applying the hand-written backward ops.

This makes a plan's per-stage recomputation strategy directly executable:
``saved`` is just a set of unit names per layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.model.layers import Layer, LayerKind, build_layer_sequence
from repro.model.spec import ModelSpec
from repro.training import ops

Array = np.ndarray


@dataclass
class Parameter:
    """A trainable array and its accumulated gradient."""

    data: Array
    grad: Optional[Array] = None

    def zero_grad(self) -> None:
        self.grad = None

    def add_grad(self, grad: Array) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad


class Module:
    """Base class: a named bag of parameters."""

    def __init__(self) -> None:
        self.params: Dict[str, Parameter] = {}

    def add_param(self, name: str, data: Array) -> Parameter:
        param = Parameter(np.asarray(data, dtype=np.float64))
        self.params[name] = param
        return param

    def named_parameters(self, prefix: str = "") -> Iterable[Tuple[str, Parameter]]:
        for name, param in self.params.items():
            yield f"{prefix}{name}", param

    def zero_grad(self) -> None:
        for param in self.params.values():
            param.zero_grad()

    def num_params(self) -> int:
        return sum(p.data.size for p in self.params.values())


@dataclass
class LayerContext:
    """What a layer retains between forward and backward.

    ``saved`` maps unit name to its ``(output, cache)``; the layer input is
    always retained (it is the previous layer's always-saved output).
    ``rng_tag`` records the dropout-mask seed tag active at forward time so
    a recomputing backward regenerates identical masks.
    """

    layer_input: object
    saved: Dict[str, tuple] = field(default_factory=dict)
    rng_tag: int = 0


class UnitLayer(Module):
    """A layer executed as a sequence of computation units.

    Subclasses define ``unit_names`` (execution order) and implement
    ``_run_unit(name, inputs) -> (output, cache)`` plus
    ``_backward_unit(name, cache, grads) -> upstream grads``; this base
    class provides forward-with-selective-saving and
    replay-then-backward.
    """

    unit_names: Tuple[str, ...] = ()
    always_saved_units: Tuple[str, ...] = ()
    #: dropout probability on this layer's designated dropout unit; masks
    #: are regenerated deterministically from (layer_seed, rng_tag, unit).
    dropout_prob: float = 0.0

    def set_rng_tag(self, tag: int) -> None:
        """Select the dropout-mask stream (e.g. per micro-batch)."""
        self._rng_tag = tag

    def _unit_rng(self, name: str) -> np.random.Generator:
        import zlib

        layer_seed = getattr(self, "layer_seed", 0)
        tag = getattr(self, "_rng_tag", 0)
        # crc32 keeps the seed stable across processes (str hashing is
        # salted), so checkpointed runs resume with identical masks.
        digest = zlib.crc32(f"{layer_seed}:{tag}:{name}".encode())
        return np.random.default_rng(digest + 1)

    def forward(self, x, saved_units: Optional[Set[str]] = None):
        """Run the layer, retaining only ``saved_units`` (plus the
        always-saved closing unit). Returns ``(output, LayerContext)``."""
        keep = set(self.always_saved_units)
        if saved_units is not None:
            keep |= set(saved_units) & set(self.unit_names)
        else:
            keep |= set(self.unit_names)
        ctx = LayerContext(layer_input=x, rng_tag=getattr(self, "_rng_tag", 0))
        values = {"__input__": x}
        output = None
        for name in self.unit_names:
            output, cache = self._run_unit(name, values)
            values[name] = output
            if name in keep:
                ctx.saved[name] = (output, cache)
        return output, ctx

    def backward(self, ctx: LayerContext, dout):
        """Replay dropped units, then backpropagate through all of them.

        The forward-time RNG tag is restored first, so any recomputed
        dropout unit regenerates bit-identical masks.
        """
        self.set_rng_tag(ctx.rng_tag)
        values = {"__input__": ctx.layer_input}
        caches: Dict[str, tuple] = {}
        for name in self.unit_names:
            if name in ctx.saved:
                values[name], caches[name] = ctx.saved[name]
            else:
                values[name], caches[name] = self._run_unit(name, values)
        grads: Dict[str, object] = {self.unit_names[-1]: dout}
        for name in reversed(self.unit_names):
            self._backward_unit(name, caches[name], grads)
        return grads["__input__"]

    # Subclass hooks -----------------------------------------------------

    def _run_unit(self, name: str, values: Dict[str, object]):
        raise NotImplementedError

    def _backward_unit(self, name: str, cache: tuple, grads: Dict[str, object]):
        raise NotImplementedError

    @staticmethod
    def _accumulate(grads: Dict[str, object], key: str, value) -> None:
        if key in grads and grads[key] is not None:
            grads[key] = grads[key] + value
        else:
            grads[key] = value


def _init(rng: np.random.Generator, *shape: int, scale: float = 0.02) -> Array:
    return rng.normal(0.0, scale, size=shape)


class AttentionLayer(UnitLayer):
    """Pre-norm causal self-attention with optional grouped-query heads."""

    unit_names = ("attn.norm", "attn.q", "attn.k", "attn.v", "attn.core", "attn.out")
    always_saved_units = ("attn.out",)

    def __init__(self, spec: ModelSpec, rng: np.random.Generator) -> None:
        super().__init__()
        self.spec = spec
        h = spec.hidden_size
        kv = spec.kv_hidden_size
        self.add_param("wq", _init(rng, h, h))
        self.add_param("wk", _init(rng, h, kv))
        self.add_param("wv", _init(rng, h, kv))
        self.add_param("wo", _init(rng, h, h, scale=0.02 / math.sqrt(2 * spec.num_layers)))
        if spec.linear_bias:
            for name, width in (("bq", h), ("bk", kv), ("bv", kv), ("bo", h)):
                self.add_param(name, np.zeros(width))
        if spec.rmsnorm:
            self.add_param("norm_g", np.ones(h))
        else:
            self.add_param("norm_g", np.ones(h))
            self.add_param("norm_b", np.zeros(h))

    def _bias(self, name: str) -> Optional[Array]:
        param = self.params.get(name)
        return param.data if param is not None else None

    def _run_unit(self, name: str, values: Dict[str, object]):
        spec = self.spec
        if name == "attn.norm":
            x = values["__input__"]
            if spec.rmsnorm:
                return ops.rmsnorm(x, self.params["norm_g"].data)
            return ops.layernorm(
                x, self.params["norm_g"].data, self.params["norm_b"].data
            )
        if name in ("attn.q", "attn.k", "attn.v"):
            h1 = values["attn.norm"]
            key = name[-1]
            out, cache = ops.linear(
                h1, self.params[f"w{key}"].data, self._bias(f"b{key}")
            )
            heads = spec.num_heads if key == "q" else spec.num_kv_heads
            return ops.split_heads(out, heads), (cache, heads)
        if name == "attn.core":
            repeats = spec.num_heads // spec.num_kv_heads
            q = values["attn.q"]
            k = ops.repeat_kv(values["attn.k"], repeats)
            v = ops.repeat_kv(values["attn.v"], repeats)
            scale = 1.0 / math.sqrt(spec.head_dim)
            out, cache = ops.causal_attention(q, k, v, scale)
            merged = ops.merge_heads(out)
            dropped, drop_cache = ops.dropout(
                merged, self.dropout_prob, self._unit_rng(name)
            )
            return dropped, (cache, repeats, drop_cache)
        if name == "attn.out":
            merged = values["attn.core"]
            y0, cache = ops.linear(merged, self.params["wo"].data, self._bias("bo"))
            return values["__input__"] + y0, cache
        raise KeyError(name)

    def _backward_unit(self, name: str, cache: tuple, grads: Dict[str, object]):
        spec = self.spec
        dout = grads.pop(name)
        if name == "attn.out":
            dmerged, dwo, dbo = ops.linear_backward(cache, dout)
            self.params["wo"].add_grad(dwo)
            if dbo is not None:
                self.params["bo"].add_grad(dbo)
            self._accumulate(grads, "attn.core", dmerged)
            self._accumulate(grads, "__input__", dout)  # residual branch
        elif name == "attn.core":
            attn_cache, repeats, drop_cache = cache
            dout = ops.dropout_backward(drop_cache, dout)
            b, s, h = dout.shape
            dheads = ops.split_heads(dout, spec.num_heads)
            dq, dk, dv = ops.causal_attention_backward(attn_cache, dheads)
            self._accumulate(grads, "attn.q", dq)
            self._accumulate(grads, "attn.k", ops.repeat_kv_backward(dk, repeats))
            self._accumulate(grads, "attn.v", ops.repeat_kv_backward(dv, repeats))
        elif name in ("attn.q", "attn.k", "attn.v"):
            lin_cache, heads = cache
            dmerged = ops.merge_heads(dout)
            dx, dw, db = ops.linear_backward(lin_cache, dmerged)
            key = name[-1]
            self.params[f"w{key}"].add_grad(dw)
            if db is not None:
                self.params[f"b{key}"].add_grad(db)
            self._accumulate(grads, "attn.norm", dx)
        elif name == "attn.norm":
            if spec.rmsnorm:
                dx, dgamma = ops.rmsnorm_backward(cache, dout)
                self.params["norm_g"].add_grad(dgamma)
            else:
                dx, dgamma, dbeta = ops.layernorm_backward(cache, dout)
                self.params["norm_g"].add_grad(dgamma)
                self.params["norm_b"].add_grad(dbeta)
            self._accumulate(grads, "__input__", dx)
        else:
            raise KeyError(name)


class FFNLayer(UnitLayer):
    """Pre-norm feed-forward layer: GELU MLP or gated SwiGLU."""

    unit_names = ("ffn.norm", "ffn.in", "ffn.act", "ffn.out")
    always_saved_units = ("ffn.out",)

    def __init__(self, spec: ModelSpec, rng: np.random.Generator) -> None:
        super().__init__()
        self.spec = spec
        h, f = spec.hidden_size, spec.ffn_hidden_size
        self.add_param("w_in", _init(rng, h, f))
        if spec.gated_ffn:
            self.add_param("w_gate", _init(rng, h, f))
        self.add_param("w_out", _init(rng, f, h, scale=0.02 / math.sqrt(2 * spec.num_layers)))
        if spec.linear_bias:
            self.add_param("b_in", np.zeros(f))
            self.add_param("b_out", np.zeros(h))
        if spec.rmsnorm:
            self.add_param("norm_g", np.ones(h))
        else:
            self.add_param("norm_g", np.ones(h))
            self.add_param("norm_b", np.zeros(h))

    def _bias(self, name: str) -> Optional[Array]:
        param = self.params.get(name)
        return param.data if param is not None else None

    def _run_unit(self, name: str, values: Dict[str, object]):
        spec = self.spec
        if name == "ffn.norm":
            x = values["__input__"]
            if spec.rmsnorm:
                return ops.rmsnorm(x, self.params["norm_g"].data)
            return ops.layernorm(
                x, self.params["norm_g"].data, self.params["norm_b"].data
            )
        if name == "ffn.in":
            h1 = values["ffn.norm"]
            up, up_cache = ops.linear(h1, self.params["w_in"].data, self._bias("b_in"))
            if spec.gated_ffn:
                gate, gate_cache = ops.linear(h1, self.params["w_gate"].data, None)
                return (gate, up), (up_cache, gate_cache)
            return up, (up_cache, None)
        if name == "ffn.act":
            if spec.gated_ffn:
                gate, up = values["ffn.in"]
                out, act_cache = ops.swiglu(gate, up)
            else:
                out, act_cache = ops.gelu(values["ffn.in"])
            dropped, drop_cache = ops.dropout(
                out, self.dropout_prob, self._unit_rng(name)
            )
            return dropped, (act_cache, drop_cache)
        if name == "ffn.out":
            act = values["ffn.act"]
            y0, cache = ops.linear(act, self.params["w_out"].data, self._bias("b_out"))
            return values["__input__"] + y0, cache
        raise KeyError(name)

    def _backward_unit(self, name: str, cache: tuple, grads: Dict[str, object]):
        spec = self.spec
        dout = grads.pop(name)
        if name == "ffn.out":
            dact, dw, db = ops.linear_backward(cache, dout)
            self.params["w_out"].add_grad(dw)
            if db is not None:
                self.params["b_out"].add_grad(db)
            self._accumulate(grads, "ffn.act", dact)
            self._accumulate(grads, "__input__", dout)
        elif name == "ffn.act":
            act_cache, drop_cache = cache
            dout = ops.dropout_backward(drop_cache, dout)
            if spec.gated_ffn:
                dgate, dup = ops.swiglu_backward(act_cache, dout)
                self._accumulate(grads, "ffn.in", (dgate, dup))
            else:
                self._accumulate(grads, "ffn.in", ops.gelu_backward(act_cache, dout))
        elif name == "ffn.in":
            up_cache, gate_cache = cache
            if spec.gated_ffn:
                # The gated unit's gradient is the (dgate, dup) pair coming
                # from swiglu; ffn.act is its only consumer so no tuple
                # accumulation ever occurs.
                dgate, dup = dout
                dx_up, dw_up, db_up = ops.linear_backward(up_cache, dup)
                dx_gate, dw_gate, _ = ops.linear_backward(gate_cache, dgate)
                self.params["w_in"].add_grad(dw_up)
                if db_up is not None:
                    self.params["b_in"].add_grad(db_up)
                self.params["w_gate"].add_grad(dw_gate)
                self._accumulate(grads, "ffn.norm", dx_up + dx_gate)
            else:
                dx, dw, db = ops.linear_backward(up_cache, dout)
                self.params["w_in"].add_grad(dw)
                if db is not None:
                    self.params["b_in"].add_grad(db)
                self._accumulate(grads, "ffn.norm", dx)
        elif name == "ffn.norm":
            if spec.rmsnorm:
                dx, dgamma = ops.rmsnorm_backward(cache, dout)
                self.params["norm_g"].add_grad(dgamma)
            else:
                dx, dgamma, dbeta = ops.layernorm_backward(cache, dout)
                self.params["norm_g"].add_grad(dgamma)
                self.params["norm_b"].add_grad(dbeta)
            self._accumulate(grads, "__input__", dx)
        else:
            raise KeyError(name)


class EmbeddingLayer(UnitLayer):
    """Token (+ learned positional) embedding."""

    unit_names = ("embed.lookup",)
    always_saved_units = ()

    def __init__(self, spec: ModelSpec, rng: np.random.Generator) -> None:
        super().__init__()
        self.spec = spec
        self.add_param("table", _init(rng, spec.vocab_size, spec.hidden_size))
        if spec.max_position_embeddings:
            self.add_param(
                "positions", _init(rng, spec.max_position_embeddings, spec.hidden_size)
            )

    def _run_unit(self, name: str, values: Dict[str, object]):
        tokens = values["__input__"]
        out, cache = ops.embedding(tokens, self.params["table"].data)
        if "positions" in self.params:
            seq = tokens.shape[1]
            out = out + self.params["positions"].data[:seq]
        return out, (cache, tokens.shape)

    def _backward_unit(self, name: str, cache: tuple, grads: Dict[str, object]):
        dout = grads.pop(name)
        embed_cache, token_shape = cache
        self.params["table"].add_grad(ops.embedding_backward(embed_cache, dout))
        if "positions" in self.params:
            seq = token_shape[1]
            dpos = np.zeros_like(self.params["positions"].data)
            dpos[:seq] = dout.sum(axis=0)
            self.params["positions"].add_grad(dpos)
        grads["__input__"] = None  # token ids carry no gradient


class HeadLayer(UnitLayer):
    """Final norm + vocabulary projection + cross-entropy loss.

    ``forward`` needs the target tokens; set them with :meth:`set_targets`
    before each micro-batch (the pipeline executor does this).
    """

    unit_names = ("head.norm", "head.proj")
    always_saved_units = ()

    def __init__(self, spec: ModelSpec, rng: np.random.Generator) -> None:
        super().__init__()
        self.spec = spec
        h = spec.hidden_size
        self.add_param("w_head", _init(rng, h, spec.vocab_size))
        if spec.rmsnorm:
            self.add_param("norm_g", np.ones(h))
        else:
            self.add_param("norm_g", np.ones(h))
            self.add_param("norm_b", np.zeros(h))
        self._targets: Optional[Array] = None

    def set_targets(self, targets: Array) -> None:
        self._targets = targets

    def _run_unit(self, name: str, values: Dict[str, object]):
        if name == "head.norm":
            x = values["__input__"]
            if self.spec.rmsnorm:
                return ops.rmsnorm(x, self.params["norm_g"].data)
            return ops.layernorm(
                x, self.params["norm_g"].data, self.params["norm_b"].data
            )
        if name == "head.proj":
            if self._targets is None:
                raise RuntimeError("HeadLayer.set_targets() not called")
            logits, lin_cache = ops.linear(
                values["head.norm"], self.params["w_head"].data, None
            )
            loss, ce_cache = ops.cross_entropy(logits, self._targets)
            return loss, (lin_cache, ce_cache)
        raise KeyError(name)

    def _backward_unit(self, name: str, cache: tuple, grads: Dict[str, object]):
        dout = grads.pop(name)
        if name == "head.proj":
            lin_cache, ce_cache = cache
            dlogits = ops.cross_entropy_backward(ce_cache, dout)
            dx, dw, _ = ops.linear_backward(lin_cache, dlogits)
            self.params["w_head"].add_grad(dw)
            self._accumulate(grads, "head.norm", dx)
        elif name == "head.norm":
            if self.spec.rmsnorm:
                dx, dgamma = ops.rmsnorm_backward(cache, dout)
                self.params["norm_g"].add_grad(dgamma)
            else:
                dx, dgamma, dbeta = ops.layernorm_backward(cache, dout)
                self.params["norm_g"].add_grad(dgamma)
                self.params["norm_b"].add_grad(dbeta)
            self._accumulate(grads, "__input__", dx)
        else:
            raise KeyError(name)


class TransformerModel:
    """The full layer sequence, executable with per-layer save sets.

    Layers align one-to-one with :func:`repro.model.layers.build_layer_sequence`
    — the same sequence the planner partitions — so a
    :class:`~repro.core.plan.PipelinePlan`'s layer ranges index directly
    into ``self.layers``.
    """

    def __init__(self, spec: ModelSpec, seed: int = 0, dropout: float = 0.0) -> None:
        self.spec = spec
        self.dropout = dropout
        self.descriptors: List[Layer] = build_layer_sequence(spec)
        rng = np.random.default_rng(seed)
        self.layers: List[UnitLayer] = []
        for descriptor in self.descriptors:
            if descriptor.kind == LayerKind.EMBEDDING:
                self.layers.append(EmbeddingLayer(spec, rng))
            elif descriptor.kind == LayerKind.ATTENTION:
                self.layers.append(AttentionLayer(spec, rng))
            elif descriptor.kind == LayerKind.FFN:
                self.layers.append(FFNLayer(spec, rng))
            else:
                self.layers.append(HeadLayer(spec, rng))
        for index, layer in enumerate(self.layers):
            layer.layer_seed = seed * 100_003 + index
            if isinstance(layer, (AttentionLayer, FFNLayer)):
                layer.dropout_prob = dropout

    def set_rng_tag(self, tag: int) -> None:
        """Select the dropout-mask stream on every layer."""
        for layer in self.layers:
            layer.set_rng_tag(tag)

    @property
    def head(self) -> HeadLayer:
        return self.layers[-1]

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    def named_parameters(self) -> Iterable[Tuple[str, Parameter]]:
        for index, layer in enumerate(self.layers):
            yield from layer.named_parameters(prefix=f"layer{index}.")

    def num_params(self) -> int:
        return sum(layer.num_params() for layer in self.layers)

    def loss_and_grad(
        self,
        tokens: Array,
        targets: Array,
        saved_units: Optional[Sequence[Optional[Set[str]]]] = None,
        rng_tag: int = 0,
    ) -> float:
        """Single-process full forward+backward (the reference path).

        Args:
            tokens: (batch, seq) int token ids.
            targets: (batch, seq) int next-token targets.
            saved_units: per layer, the units to save (``None`` = save all).
            rng_tag: dropout-mask stream selector (vary per step).
        """
        self.set_rng_tag(rng_tag)
        self.head.set_targets(targets)
        contexts = []
        value: object = tokens
        for index, layer in enumerate(self.layers):
            keep = None if saved_units is None else saved_units[index]
            value, ctx = layer.forward(value, keep)
            contexts.append(ctx)
        loss = float(value)
        grad: object = 1.0
        for layer, ctx in zip(reversed(self.layers), reversed(contexts)):
            grad = layer.backward(ctx, grad)
        return loss


def build_model(
    spec: ModelSpec, seed: int = 0, dropout: float = 0.0
) -> TransformerModel:
    """Construct a trainable model (weight tying is not replicated; tied
    specs train with independent head weights, which only affects parameter
    counts, not the recomputation semantics under test)."""
    return TransformerModel(spec, seed=seed, dropout=dropout)
