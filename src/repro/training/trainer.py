"""A full training loop: plan execution + optimizer + mixed-precision-style
loss scaling + checkpoint/resume.

``Trainer`` is the adoption-grade wrapper over the pipeline executor: it
owns the optimizer and loss scaler, logs per-step metrics, and can save its
*complete* state (weights, Adam moments, scaler state, step counter, RNG
position) to a single ``.npz`` file and resume bit-exactly — the test suite
asserts interrupted-and-resumed training matches an uninterrupted run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.core.plan import PipelinePlan
from repro.training.modules import TransformerModel
from repro.training.optimizer import Adam, LossScaler
from repro.training.pipeline_exec import PipelineExecutor

CHECKPOINT_VERSION = 1


@dataclass
class StepRecord:
    """Metrics of one training step."""

    step: int
    loss: float
    skipped: bool
    loss_scale: float
    peak_context_bytes: float


@dataclass
class Trainer:
    """Trains a model under a pipeline plan.

    Attributes:
        model: the mini transformer.
        plan: partition + recomputation strategy to execute.
        learning_rate: Adam step size.
        use_loss_scaling: enable overflow-guarded scaling (the mechanism the
            paper tunes via "the initial loss scale"); with float64 math it
            never triggers, but the machinery is exercised end-to-end.
        history: per-step records, appended by :meth:`train_step`.
    """

    model: TransformerModel
    plan: PipelinePlan
    learning_rate: float = 3e-3
    use_loss_scaling: bool = False
    history: List[StepRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._executor = PipelineExecutor(self.model, self.plan)
        self._optimizer = Adam(
            list(self.model.named_parameters()), lr=self.learning_rate
        )
        self._scaler = LossScaler() if self.use_loss_scaling else None
        self.step = 0

    # -- training ----------------------------------------------------------

    def train_step(self, tokens: np.ndarray, targets: np.ndarray) -> StepRecord:
        """One iteration: 1F1B execution, unscale/check, optimizer step."""
        self.model.zero_grad()
        stats = self._executor.train_step(tokens, targets)
        skipped = False
        if self._scaler is not None:
            params = list(self.model.named_parameters())
            for _, parameter in params:
                if parameter.grad is not None:
                    parameter.grad *= self._scaler.scale
            if not self._scaler.unscale_and_check(params):
                skipped = True
        if not skipped:
            self._optimizer.step()
            self.step += 1
        record = StepRecord(
            step=self.step,
            loss=stats.loss,
            skipped=skipped,
            loss_scale=self._scaler.scale if self._scaler else 1.0,
            peak_context_bytes=max(stats.peak_context_bytes, default=0.0),
        )
        self.history.append(record)
        return record

    def train(self, batches: Iterator[Tuple[np.ndarray, np.ndarray]]) -> List[float]:
        """Run through an iterator of batches; returns the losses."""
        return [self.train_step(tokens, targets).loss for tokens, targets in batches]

    # -- checkpointing -------------------------------------------------------

    def save_checkpoint(self, path: str) -> None:
        """Serialise the complete training state to one ``.npz`` file."""
        arrays: Dict[str, np.ndarray] = {}
        for name, parameter in self.model.named_parameters():
            arrays[f"param::{name}"] = parameter.data
        for name, moment in self._optimizer._m.items():
            arrays[f"adam_m::{name}"] = moment
        for name, moment in self._optimizer._v.items():
            arrays[f"adam_v::{name}"] = moment
        meta = {
            "version": CHECKPOINT_VERSION,
            "step": self.step,
            "optimizer_step_count": self._optimizer.step_count,
            "loss_scale": self._scaler.scale if self._scaler else None,
            "learning_rate": self.learning_rate,
            "model": self.model.spec.name,
        }
        arrays["__meta__"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez(path, **arrays)

    def load_checkpoint(self, path: str) -> None:
        """Restore a state saved by :meth:`save_checkpoint`."""
        archive = np.load(path if path.endswith(".npz") else path + ".npz")
        meta = json.loads(bytes(archive["__meta__"]).decode())
        if meta["version"] != CHECKPOINT_VERSION:
            raise ValueError(
                f"checkpoint version {meta['version']} unsupported "
                f"(want {CHECKPOINT_VERSION})"
            )
        if meta["model"] != self.model.spec.name:
            raise ValueError(
                f"checkpoint is for {meta['model']!r}, model is "
                f"{self.model.spec.name!r}"
            )
        for name, parameter in self.model.named_parameters():
            parameter.data[...] = archive[f"param::{name}"]
            parameter.grad = None
        self._optimizer._m = {
            key[len("adam_m::"):]: archive[key].copy()
            for key in archive.files
            if key.startswith("adam_m::")
        }
        self._optimizer._v = {
            key[len("adam_v::"):]: archive[key].copy()
            for key in archive.files
            if key.startswith("adam_v::")
        }
        self.step = int(meta["step"])
        self._optimizer.step_count = int(meta["optimizer_step_count"])
        if self._scaler is not None and meta["loss_scale"] is not None:
            self._scaler.scale = float(meta["loss_scale"])

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, batches: Iterator[Tuple[np.ndarray, np.ndarray]]) -> float:
        """Mean loss over held-out batches, no gradient bookkeeping kept."""
        losses = []
        for tokens, targets in batches:
            self.model.zero_grad()
            losses.append(self.model.loss_and_grad(tokens, targets))
        self.model.zero_grad()
        return float(np.mean(losses))
