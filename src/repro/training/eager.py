"""The transformer on the eager (tape) engine.

``EagerTransformer`` *shares weight arrays* with a
:class:`~repro.training.modules.TransformerModel`: both engines read and
write the same float64 buffers, so losses and gradients can be compared
directly. Its forward pass is built entirely from the primitives in
:mod:`repro.training.autograd`, and any subset of each layer's computation
units can be wrapped in :func:`~repro.training.autograd.checkpoint` —
eager-mode unit-granular recomputation, the PyTorch side of the paper's
dual implementation.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Set

import numpy as np

from repro.model.layers import LayerKind
from repro.model.spec import ModelSpec
from repro.training import autograd as ag
from repro.training.autograd import Tensor, checkpoint
from repro.training.modules import TransformerModel


def _split_heads(x: Tensor, num_heads: int) -> Tensor:
    b, s, h = x.shape
    return ag.transpose(
        ag.reshape(x, (b, s, num_heads, h // num_heads)), (0, 2, 1, 3)
    )


def _merge_heads(x: Tensor) -> Tensor:
    b, heads, s, d = x.shape
    return ag.reshape(ag.transpose(x, (0, 2, 1, 3)), (b, s, heads * d))


def _repeat_kv(x: Tensor, repeats: int) -> Tensor:
    """GQA head expansion via broadcasting (backward sums over repeats)."""
    if repeats == 1:
        return x
    b, heads, s, d = x.shape
    expanded = ag.reshape(x, (b, heads, 1, s, d))
    ones = Tensor(np.ones((1, 1, repeats, 1, 1)))
    return ag.reshape(ag.mul(expanded, ones), (b, heads * repeats, s, d))


class EagerTransformer:
    """Define-by-run twin of the manual-backward model.

    Args:
        model: the graph-style model whose Parameter buffers are shared.
    """

    def __init__(self, model: TransformerModel) -> None:
        self.model = model
        self.spec: ModelSpec = model.spec
        # Tensor wraps the same float64 ndarray (np.asarray is a no-copy
        # view for matching dtype), so optimizer updates through either
        # engine are visible to both.
        self.params: Dict[str, Tensor] = {
            name: Tensor(parameter.data, requires_grad=True)
            for name, parameter in model.named_parameters()
        }

    def zero_grad(self) -> None:
        for tensor in self.params.values():
            tensor.grad = None

    # -- unit functions ---------------------------------------------------

    def _norm(self, prefix: str, index: int):
        spec = self.spec
        gamma = self.params[f"layer{index}.norm_g"]
        if spec.rmsnorm:
            def rmsnorm(x: Tensor) -> Tensor:
                ms = ag.mean(ag.mul(x, x), axis=-1, keepdims=True)
                inv = ag.power(ag.add(ms, Tensor(1e-5)), -0.5)
                return ag.mul(ag.mul(x, inv), gamma)

            return rmsnorm
        beta = self.params[f"layer{index}.norm_b"]

        def layernorm(x: Tensor) -> Tensor:
            mu = ag.mean(x, axis=-1, keepdims=True)
            centered = ag.add(x, ag.mul(mu, Tensor(-1.0)))
            var = ag.mean(ag.mul(centered, centered), axis=-1, keepdims=True)
            inv = ag.power(ag.add(var, Tensor(1e-5)), -0.5)
            return ag.add(ag.mul(ag.mul(centered, inv), gamma), beta)

        return layernorm

    def _linear(self, index: int, weight: str, bias: Optional[str]):
        w = self.params[f"layer{index}.{weight}"]
        b = self.params.get(f"layer{index}.{bias}") if bias else None

        def linear(x: Tensor) -> Tensor:
            out = ag.matmul(x, w)
            if b is not None:
                out = ag.add(out, b)
            return out

        return linear

    def _attention_units(self, index: int):
        spec = self.spec
        scale = 1.0 / math.sqrt(spec.head_dim)
        norm = self._norm("attn", index)
        q_proj = self._linear(index, "wq", "bq" if spec.linear_bias else None)
        k_proj = self._linear(index, "wk", "bk" if spec.linear_bias else None)
        v_proj = self._linear(index, "wv", "bv" if spec.linear_bias else None)
        o_proj = self._linear(index, "wo", "bo" if spec.linear_bias else None)
        repeats = spec.num_heads // spec.num_kv_heads

        def q_unit(h1: Tensor) -> Tensor:
            return _split_heads(q_proj(h1), spec.num_heads)

        def k_unit(h1: Tensor) -> Tensor:
            return _split_heads(k_proj(h1), spec.num_kv_heads)

        def v_unit(h1: Tensor) -> Tensor:
            return _split_heads(v_proj(h1), spec.num_kv_heads)

        def core_unit(q: Tensor, k: Tensor, v: Tensor) -> Tensor:
            k = _repeat_kv(k, repeats)
            v = _repeat_kv(v, repeats)
            seq = q.shape[2]
            scores = ag.mul(ag.matmul(q, ag.transpose(k, (0, 1, 3, 2))), Tensor(scale))
            mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
            scores = ag.where_const(~mask, scores, -1e30)
            probs = ag.softmax(scores, axis=-1)
            return _merge_heads(ag.matmul(probs, v))

        return {
            "attn.norm": norm,
            "attn.q": q_unit,
            "attn.k": k_unit,
            "attn.v": v_unit,
            "attn.core": core_unit,
            "attn.out": o_proj,
        }

    def _ffn_units(self, index: int):
        spec = self.spec
        norm = self._norm("ffn", index)
        w_in = self._linear(index, "w_in", "b_in" if spec.linear_bias else None)
        w_out = self._linear(index, "w_out", "b_out" if spec.linear_bias else None)

        if spec.gated_ffn:
            w_gate = self._linear(index, "w_gate", None)

            def act_unit(gate: Tensor, up: Tensor) -> Tensor:
                return ag.mul(ag.mul(gate, ag.sigmoid(gate)), up)

            return {
                "ffn.norm": norm,
                "ffn.in": w_in,
                "ffn.gate": w_gate,
                "ffn.act": act_unit,
                "ffn.out": w_out,
            }

        def gelu_unit(x: Tensor) -> Tensor:
            inner = ag.mul(
                ag.add(x, ag.mul(ag.power(x, 3.0), Tensor(0.044715))),
                Tensor(math.sqrt(2.0 / math.pi)),
            )
            return ag.mul(
                ag.mul(x, ag.add(ag.tanh(inner), Tensor(1.0))), Tensor(0.5)
            )

        return {
            "ffn.norm": norm,
            "ffn.in": w_in,
            "ffn.act": gelu_unit,
            "ffn.out": w_out,
        }

    # -- forward -----------------------------------------------------------

    def _maybe_checkpoint(self, saved: Optional[Set[str]], name: str, fn, *args):
        if saved is None or name in saved:
            return fn(*args)
        return checkpoint(fn, *args)

    def loss(
        self,
        tokens: np.ndarray,
        targets: np.ndarray,
        saved_units: Optional[Sequence[Optional[Set[str]]]] = None,
    ) -> Tensor:
        """Mean cross-entropy; ``saved_units[i]`` selects which of layer
        ``i``'s units keep their tape (others are checkpointed)."""
        spec = self.spec
        descriptors = self.model.descriptors

        def layer_saved(index: int) -> Optional[Set[str]]:
            if saved_units is None:
                return None
            return saved_units[index]

        # Embedding (token table + optional learned positions).
        table = self.params["layer0.table"]
        value = self._add_positions(ag.gather_rows(table, tokens), tokens)

        for index, descriptor in enumerate(descriptors):
            saved = layer_saved(index)
            if descriptor.kind == LayerKind.ATTENTION:
                units = self._attention_units(index)
                h1 = self._maybe_checkpoint(saved, "attn.norm", units["attn.norm"], value)
                q = self._maybe_checkpoint(saved, "attn.q", units["attn.q"], h1)
                k = self._maybe_checkpoint(saved, "attn.k", units["attn.k"], h1)
                v = self._maybe_checkpoint(saved, "attn.v", units["attn.v"], h1)
                core = self._maybe_checkpoint(saved, "attn.core", units["attn.core"], q, k, v)
                value = ag.add(value, units["attn.out"](core))
            elif descriptor.kind == LayerKind.FFN:
                units = self._ffn_units(index)
                h1 = self._maybe_checkpoint(saved, "ffn.norm", units["ffn.norm"], value)
                if spec.gated_ffn:
                    up = self._maybe_checkpoint(saved, "ffn.in", units["ffn.in"], h1)
                    gate = self._maybe_checkpoint(saved, "ffn.in", units["ffn.gate"], h1)
                    act = self._maybe_checkpoint(saved, "ffn.act", units["ffn.act"], gate, up)
                else:
                    up = self._maybe_checkpoint(saved, "ffn.in", units["ffn.in"], h1)
                    act = self._maybe_checkpoint(saved, "ffn.act", units["ffn.act"], up)
                value = ag.add(value, units["ffn.out"](act))
            elif descriptor.kind == LayerKind.HEAD:
                head_index = index
                norm = self._norm("head", head_index)
                value = self._maybe_checkpoint(saved, "head.norm", norm, value)
                w_head = self.params[f"layer{head_index}.w_head"]
                logits = ag.matmul(value, w_head)
                value = _cross_entropy(logits, targets)
        return value

    def _add_positions(self, value: Tensor, tokens: np.ndarray) -> Tensor:
        key = "layer0.positions"
        if key not in self.params:
            return value
        seq = tokens.shape[1]
        positions = self.params[key]
        indices = np.arange(seq)
        return ag.add(value, ag.gather_rows(positions, indices))

    def sync_grads_to_model(self) -> None:
        """Copy eager gradients into the shared model's Parameter.grad."""
        for name, parameter in self.model.named_parameters():
            tensor = self.params[name]
            parameter.grad = None if tensor.grad is None else tensor.grad.copy()


def _cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    shifted = ag.add(logits, ag.mul(ag.max_keepdim(logits, -1), Tensor(-1.0)))
    logsumexp = ag.log(ag.sum_(ag.exp(shifted), axis=-1, keepdims=True))
    logp = ag.add(shifted, ag.mul(logsumexp, Tensor(-1.0)))
    picked = ag.take_along_last(logp, targets)
    return ag.mul(ag.mean(picked), Tensor(-1.0))
