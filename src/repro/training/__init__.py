"""A real (laptop-scale) training engine, built from scratch on numpy.

This package exists for two reasons:

1. **Figure 10** — the paper validates that AdaPipe's recomputation and
   repartitioning do not change convergence. We reproduce that with actual
   training: a numpy transformer with hand-written backward passes,
   unit-granular activation checkpointing, Adam, and a single-process 1F1B
   pipeline executor that consumes :class:`~repro.core.plan.PipelinePlan`
   objects.
2. **Correctness evidence** — recomputation must be a mathematical no-op;
   the test suite asserts bit-identical gradients between checkpointed and
   fully-saved execution, and between pipelined and single-stage execution.

Nothing here depends on a GPU; models are tiny but architecturally faithful
(pre-norm decoder blocks, causal attention, gated FFN option, weight tying
option).
"""

from repro.training.data import SyntheticTextDataset
from repro.training.modules import TransformerModel, build_model
from repro.training.optimizer import Adam, LossScaler, SGD
from repro.training.pipeline_exec import (
    PipelineExecutor,
    train_reference,
    train_with_plan,
)

__all__ = [
    "Adam",
    "LossScaler",
    "PipelineExecutor",
    "SGD",
    "SyntheticTextDataset",
    "TransformerModel",
    "build_model",
    "train_reference",
    "train_with_plan",
]
