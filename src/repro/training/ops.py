"""Primitive operators with hand-written backward passes.

Every op follows the same contract::

    out, cache = op(*inputs)
    grads = op_backward(cache, dout)

The caches are exactly the tensors a framework would keep for backward —
they are what activation checkpointing drops and recomputes.

All math is float64 by default so that gradient identities (checkpointed
vs. saved, pipelined vs. monolithic) can be asserted bit-exactly in tests.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

Array = np.ndarray


# -- linear ------------------------------------------------------------------


def linear(x: Array, weight: Array, bias: Array = None) -> Tuple[Array, tuple]:
    """``y = x @ W (+ b)`` with ``x: (..., in)``, ``W: (in, out)``."""
    y = x @ weight
    if bias is not None:
        y = y + bias
    return y, (x, weight, bias is not None)


def linear_backward(cache: tuple, dout: Array) -> Tuple[Array, Array, Array]:
    x, weight, has_bias = cache
    dx = dout @ weight.T
    flat_x = x.reshape(-1, x.shape[-1])
    flat_d = dout.reshape(-1, dout.shape[-1])
    dw = flat_x.T @ flat_d
    db = flat_d.sum(axis=0) if has_bias else None
    return dx, dw, db


# -- normalisation -----------------------------------------------------------


def layernorm(x: Array, gamma: Array, beta: Array, eps: float = 1e-5):
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    xhat = (x - mean) * inv
    return xhat * gamma + beta, (xhat, inv, gamma)


def layernorm_backward(cache: tuple, dout: Array):
    xhat, inv, gamma = cache
    n = xhat.shape[-1]
    dgamma = (dout * xhat).reshape(-1, n).sum(axis=0)
    dbeta = dout.reshape(-1, n).sum(axis=0)
    dxhat = dout * gamma
    dx = inv * (
        dxhat
        - dxhat.mean(axis=-1, keepdims=True)
        - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
    )
    return dx, dgamma, dbeta


def rmsnorm(x: Array, gamma: Array, eps: float = 1e-5):
    ms = (x * x).mean(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(ms + eps)
    xhat = x * inv
    return xhat * gamma, (x, xhat, inv, gamma)


def rmsnorm_backward(cache: tuple, dout: Array):
    x, xhat, inv, gamma = cache
    n = x.shape[-1]
    dgamma = (dout * xhat).reshape(-1, n).sum(axis=0)
    dxhat = dout * gamma
    dx = inv * (dxhat - xhat * (dxhat * x).mean(axis=-1, keepdims=True) * inv)
    return dx, dgamma


# -- activations -------------------------------------------------------------

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


def gelu(x: Array):
    """tanh-approximated GELU (the transformer default)."""
    inner = _SQRT_2_OVER_PI * (x + 0.044715 * x**3)
    t = np.tanh(inner)
    return 0.5 * x * (1.0 + t), (x, t)


def gelu_backward(cache: tuple, dout: Array) -> Array:
    x, t = cache
    dinner = _SQRT_2_OVER_PI * (1.0 + 3 * 0.044715 * x**2)
    dx = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner
    return dout * dx


def silu(x: Array):
    sig = 1.0 / (1.0 + np.exp(-x))
    return x * sig, (x, sig)


def silu_backward(cache: tuple, dout: Array) -> Array:
    x, sig = cache
    return dout * (sig + x * sig * (1.0 - sig))


def swiglu(gate: Array, up: Array):
    """SwiGLU combine: ``silu(gate) * up`` (Llama-style gated FFN)."""
    act, cache = silu(gate)
    return act * up, (cache, act, up)


def swiglu_backward(cache: tuple, dout: Array) -> Tuple[Array, Array]:
    silu_cache, act, up = cache
    dgate = silu_backward(silu_cache, dout * up)
    dup = dout * act
    return dgate, dup


# -- attention ---------------------------------------------------------------


def causal_attention(q: Array, k: Array, v: Array, scale: float):
    """Scaled dot-product attention with a causal mask.

    Shapes: ``q/k/v: (batch, heads, seq, head_dim)``. Mathematically
    identical to FlashAttention (which only changes what is materialised),
    so recompute-vs-save equivalence statements carry over.
    """
    seq = q.shape[2]
    scores = (q @ k.transpose(0, 1, 3, 2)) * scale
    mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
    scores = np.where(mask, -1e30, scores)
    scores -= scores.max(axis=-1, keepdims=True)
    exp = np.exp(scores)
    probs = exp / exp.sum(axis=-1, keepdims=True)
    out = probs @ v
    return out, (q, k, v, probs, scale)


def causal_attention_backward(cache: tuple, dout: Array):
    q, k, v, probs, scale = cache
    dv = probs.transpose(0, 1, 3, 2) @ dout
    dprobs = dout @ v.transpose(0, 1, 3, 2)
    dscores = probs * (dprobs - (dprobs * probs).sum(axis=-1, keepdims=True))
    dq = (dscores @ k) * scale
    dk = (dscores.transpose(0, 1, 3, 2) @ q) * scale
    return dq, dk, dv


def split_heads(x: Array, num_heads: int) -> Array:
    """(batch, seq, hidden) -> (batch, heads, seq, head_dim)."""
    b, s, h = x.shape
    return x.reshape(b, s, num_heads, h // num_heads).transpose(0, 2, 1, 3)


def merge_heads(x: Array) -> Array:
    """(batch, heads, seq, head_dim) -> (batch, seq, hidden)."""
    b, heads, s, d = x.shape
    return x.transpose(0, 2, 1, 3).reshape(b, s, heads * d)


def repeat_kv(x: Array, repeats: int) -> Array:
    """Expand grouped KV heads to match query heads (GQA)."""
    if repeats == 1:
        return x
    return np.repeat(x, repeats, axis=1)


def repeat_kv_backward(dx: Array, repeats: int) -> Array:
    if repeats == 1:
        return dx
    b, heads, s, d = dx.shape
    return dx.reshape(b, heads // repeats, repeats, s, d).sum(axis=2)


# -- embedding and loss ------------------------------------------------------


def embedding(tokens: Array, table: Array):
    return table[tokens], (tokens, table.shape[0])


def embedding_backward(cache: tuple, dout: Array) -> Array:
    tokens, vocab = cache
    dtable = np.zeros((vocab, dout.shape[-1]), dtype=dout.dtype)
    np.add.at(dtable, tokens.reshape(-1), dout.reshape(-1, dout.shape[-1]))
    return dtable


def cross_entropy(logits: Array, targets: Array):
    """Mean token-level cross entropy. ``logits: (batch, seq, vocab)``."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=-1, keepdims=True)
    b, s, _ = logits.shape
    picked = probs[np.arange(b)[:, None], np.arange(s)[None, :], targets]
    loss = -np.log(np.maximum(picked, 1e-30)).mean()
    return loss, (probs, targets)


def cross_entropy_backward(cache: tuple, dloss: float = 1.0) -> Array:
    probs, targets = cache
    b, s, _ = probs.shape
    grad = probs.copy()
    grad[np.arange(b)[:, None], np.arange(s)[None, :], targets] -= 1.0
    return grad * (dloss / (b * s))


# -- dropout -------------------------------------------------------------------


def dropout(x: Array, prob: float, rng: np.random.Generator):
    """Inverted dropout: zero with probability ``prob``, scale by 1/(1-p).

    The mask is drawn from the generator the caller seeds — recomputation
    reproduces the identical mask by re-seeding from the same
    (layer seed, rng tag, unit) triple, the RNG-state-stashing trick real
    checkpointing implementations use.
    """
    if prob <= 0.0:
        return x, (None, 0.0)
    mask = rng.random(x.shape) >= prob
    scale = 1.0 / (1.0 - prob)
    return x * mask * scale, (mask, scale)


def dropout_backward(cache: tuple, dout: Array) -> Array:
    mask, scale = cache
    if mask is None:
        return dout
    return dout * mask * scale
