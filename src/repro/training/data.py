"""Synthetic text data.

The paper's artifact trains on enwik8 (character-level Wikipedia text).
Offline we substitute a deterministic second-order Markov character source:
it has real learnable structure (bigram-conditioned distributions with
skewed mass, word-like runs separated by spaces), so loss curves show the
genuine fast-then-slow descent of language-model training rather than the
flat line a uniform random stream would give.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np


@dataclass
class SyntheticTextDataset:
    """Deterministic enwik8-like character stream.

    Attributes:
        vocab_size: number of distinct symbols.
        seed: generator seed (fixing it makes runs reproducible).
        order_states: number of hidden bigram states conditioning the next
            character (more states = more structure to learn).
    """

    vocab_size: int = 64
    seed: int = 1234
    order_states: int = 32

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        # Each hidden state has a sparse, skewed next-char distribution,
        # like character bigram statistics in natural text.
        logits = rng.gumbel(size=(self.order_states, self.vocab_size)) * 2.0
        top = np.argsort(logits, axis=1)[:, : self.vocab_size - 8]
        for row, cols in enumerate(top):
            logits[row, cols] -= 6.0
        self._probs = np.exp(logits)
        self._probs /= self._probs.sum(axis=1, keepdims=True)
        self._transition = rng.integers(
            0, self.order_states, size=(self.order_states, self.vocab_size)
        )

    def generate(self, length: int, stream_seed: int = 0) -> np.ndarray:
        """Generate a token stream of ``length`` symbols."""
        rng = np.random.default_rng(self.seed * 1_000_003 + stream_seed)
        state = 0
        out = np.empty(length, dtype=np.int64)
        for i in range(length):
            token = rng.choice(self.vocab_size, p=self._probs[state])
            out[i] = token
            state = self._transition[state, token]
        return out

    def batches(
        self,
        batch_size: int,
        sequence_length: int,
        num_batches: int,
        stream_seed: int = 0,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield (tokens, next-token targets) pairs."""
        stream = self.generate(
            batch_size * num_batches * (sequence_length + 1), stream_seed
        )
        cursor = 0
        for _ in range(num_batches):
            tokens = np.empty((batch_size, sequence_length), dtype=np.int64)
            targets = np.empty((batch_size, sequence_length), dtype=np.int64)
            for row in range(batch_size):
                chunk = stream[cursor : cursor + sequence_length + 1]
                tokens[row] = chunk[:-1]
                targets[row] = chunk[1:]
                cursor += sequence_length + 1
            yield tokens, targets
