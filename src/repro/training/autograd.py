"""A tape-based reverse-mode autodiff engine on numpy.

The paper implements its execution engine twice — on MindSpore (a
graph-compiled framework) and on PyTorch (eager, define-by-run). The
repository mirrors that duality: :mod:`repro.training.modules` is the
graph-style engine (hand-written backwards, explicit unit replay), and
this module is the eager one — a dynamic tape with a
``torch.utils.checkpoint``-style :func:`checkpoint` wrapper, on which
:mod:`repro.training.eager` builds the same transformer. The test suite
asserts the two engines produce matching losses and gradients from shared
weight arrays.

Design notes:

* ``Tensor`` wraps a float64 ndarray; ops record a backward closure and
  parent links on the output, and ``backward()`` walks the tape in reverse
  topological order accumulating ``grad`` on leaves (and on any tensor
  while it is being differentiated through).
* Broadcasting is handled generically: every op's input gradient is
  reduced back to the input's shape with :func:`_unbroadcast`.
* ``no_grad()`` suspends taping; :func:`checkpoint` runs a function
  untaped during forward and re-runs it taped during backward — dropping
  every intermediate inside, exactly what activation recomputation does.
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

Array = np.ndarray

_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Suspend tape construction inside the block."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def is_grad_enabled() -> bool:
    return _grad_enabled


class Tensor:
    """A node on the tape.

    Attributes:
        data: the float64 value.
        grad: accumulated gradient (populated by ``backward``).
        requires_grad: whether gradients flow into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward_fn", "_parents")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward_fn: Optional[Callable[[Array], Sequence[Optional[Array]]]] = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[Array] = None
        self.requires_grad = requires_grad
        self._parents = parents
        self._backward_fn = backward_fn

    # -- graph construction ------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def is_leaf(self) -> bool:
        return self._backward_fn is None

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def backward(self, grad: Optional[Array] = None) -> None:
        """Reverse-mode sweep from this tensor."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without grad needs a scalar output")
            grad = np.ones_like(self.data)
        order = _topological_order(self)
        grads = {id(self): np.asarray(grad, dtype=np.float64)}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node.is_leaf:
                node.grad = node_grad if node.grad is None else node.grad + node_grad
            if node._backward_fn is None:
                continue
            parent_grads = node._backward_fn(node_grad)
            for parent, parent_grad in zip(node._parents, parent_grads):
                if parent_grad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + parent_grad
                else:
                    grads[key] = parent_grad

    # -- operator sugar ------------------------------------------------------

    def __add__(self, other):
        return add(self, _wrap(other))

    __radd__ = __add__

    def __sub__(self, other):
        return add(self, mul(_wrap(other), _wrap(-1.0)))

    def __rsub__(self, other):
        return add(_wrap(other), mul(self, _wrap(-1.0)))

    def __mul__(self, other):
        return mul(self, _wrap(other))

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = _wrap(other)
        return mul(self, power(other, -1.0))

    def __matmul__(self, other):
        return matmul(self, _wrap(other))

    def __neg__(self):
        return mul(self, _wrap(-1.0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"


def _wrap(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def _topological_order(root: Tensor) -> List[Tensor]:
    order: List[Tensor] = []
    seen = set()
    stack: List[Tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for parent in node._parents:
            stack.append((parent, False))
    order.reverse()
    return order


def _unbroadcast(grad: Array, shape: Tuple[int, ...]) -> Array:
    """Reduce a broadcasted gradient back to ``shape``."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


def _make(data, parents, backward_fn) -> Tensor:
    requires = _grad_enabled and any(p.requires_grad for p in parents)
    if not requires:
        return Tensor(data)
    return Tensor(data, requires_grad=True, parents=parents, backward_fn=backward_fn)


# -- primitive ops ------------------------------------------------------------


def add(a: Tensor, b: Tensor) -> Tensor:
    out = a.data + b.data

    def backward(grad):
        return _unbroadcast(grad, a.shape), _unbroadcast(grad, b.shape)

    return _make(out, (a, b), backward)


def mul(a: Tensor, b: Tensor) -> Tensor:
    out = a.data * b.data

    def backward(grad):
        return (
            _unbroadcast(grad * b.data, a.shape),
            _unbroadcast(grad * a.data, b.shape),
        )

    return _make(out, (a, b), backward)


def matmul(a: Tensor, b: Tensor) -> Tensor:
    out = a.data @ b.data

    def backward(grad):
        grad_a = grad @ np.swapaxes(b.data, -1, -2)
        grad_b = np.swapaxes(a.data, -1, -2) @ grad
        return _unbroadcast(grad_a, a.shape), _unbroadcast(grad_b, b.shape)

    return _make(out, (a, b), backward)


def power(a: Tensor, exponent: float) -> Tensor:
    out = a.data**exponent

    def backward(grad):
        return (grad * exponent * a.data ** (exponent - 1.0),)

    return _make(out, (a,), backward)


def exp(a: Tensor) -> Tensor:
    out = np.exp(a.data)

    def backward(grad):
        return (grad * out,)

    return _make(out, (a,), backward)


def log(a: Tensor) -> Tensor:
    out = np.log(a.data)

    def backward(grad):
        return (grad / a.data,)

    return _make(out, (a,), backward)


def tanh(a: Tensor) -> Tensor:
    out = np.tanh(a.data)

    def backward(grad):
        return (grad * (1.0 - out * out),)

    return _make(out, (a,), backward)


def sigmoid(a: Tensor) -> Tensor:
    out = 1.0 / (1.0 + np.exp(-a.data))

    def backward(grad):
        return (grad * out * (1.0 - out),)

    return _make(out, (a,), backward)


def sum_(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    out = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad):
        grad = np.asarray(grad)
        if axis is not None and not keepdims:
            grad = np.expand_dims(grad, axis)
        return (np.broadcast_to(grad, a.shape).copy(),)

    return _make(out, (a,), backward)


def mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    count = a.data.size if axis is None else a.data.shape[axis]
    return mul(sum_(a, axis=axis, keepdims=keepdims), _wrap(1.0 / count))


def reshape(a: Tensor, shape: Tuple[int, ...]) -> Tensor:
    out = a.data.reshape(shape)

    def backward(grad):
        return (grad.reshape(a.shape),)

    return _make(out, (a,), backward)


def transpose(a: Tensor, axes: Tuple[int, ...]) -> Tensor:
    out = a.data.transpose(axes)
    inverse = tuple(np.argsort(axes))

    def backward(grad):
        return (grad.transpose(inverse),)

    return _make(out, (a,), backward)


def where_const(condition: Array, a: Tensor, fill_value: float) -> Tensor:
    """``where(condition, a, fill)`` with a constant fill (masking)."""
    out = np.where(condition, a.data, fill_value)

    def backward(grad):
        return (np.where(condition, grad, 0.0),)

    return _make(out, (a,), backward)


def maximum_const(a: Tensor, threshold: float) -> Tensor:
    out = np.maximum(a.data, threshold)

    def backward(grad):
        return (grad * (a.data > threshold),)

    return _make(out, (a,), backward)


def max_keepdim(a: Tensor, axis: int) -> Tensor:
    """Max along an axis (keepdims), with subgradient to the arg-max."""
    out = a.data.max(axis=axis, keepdims=True)

    def backward(grad):
        mask = a.data == out
        counts = mask.sum(axis=axis, keepdims=True)
        return (grad * mask / counts,)

    return _make(out, (a,), backward)


def gather_rows(table: Tensor, indices: Array) -> Tensor:
    """Embedding lookup: ``table[indices]`` with scatter-add backward."""
    out = table.data[indices]

    def backward(grad):
        grad_table = np.zeros_like(table.data)
        np.add.at(grad_table, indices.reshape(-1), grad.reshape(-1, grad.shape[-1]))
        return (grad_table,)

    return _make(out, (table,), backward)


def take_along_last(a: Tensor, indices: Array) -> Tensor:
    """``a[..., indices]`` pointwise along the last axis (loss picking)."""
    expanded = indices[..., None]
    out = np.take_along_axis(a.data, expanded, axis=-1)[..., 0]

    def backward(grad):
        grad_a = np.zeros_like(a.data)
        np.put_along_axis(grad_a, expanded, grad[..., None], axis=-1)
        return (grad_a,)

    return _make(out, (a,), backward)


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    shifted = add(a, mul(max_keepdim(a, axis), _wrap(-1.0)))
    exps = exp(shifted)
    return mul(exps, power(sum_(exps, axis=axis, keepdims=True), -1.0))


# -- checkpointing -------------------------------------------------------------


def checkpoint(fn: Callable[..., Tensor], *inputs: Tensor) -> Tensor:
    """Activation checkpointing for the eager engine.

    Runs ``fn`` without taping (no intermediates retained); during
    backward, re-runs it taped from the saved inputs and routes gradients
    through the fresh subgraph — semantically identical to executing ``fn``
    normally, but trading the intermediates for one extra forward.
    """
    with no_grad():
        output_data = fn(*[t.detach() for t in inputs]).data

    if not (_grad_enabled and any(t.requires_grad for t in inputs)):
        return Tensor(output_data)

    def backward(grad):
        replay_inputs = [
            Tensor(t.data, requires_grad=t.requires_grad) for t in inputs
        ]
        output = fn(*replay_inputs)
        output.backward(grad)
        return tuple(t.grad for t in replay_inputs)

    return Tensor(
        output_data, requires_grad=True, parents=tuple(inputs), backward_fn=backward
    )


def dropout(a: Tensor, prob: float, seed: int) -> Tensor:
    """Seeded inverted dropout.

    The mask derives from ``seed`` alone (not a global RNG), which is what
    makes :func:`checkpoint` sound around it: the replayed forward draws the
    identical mask. ``tests/test_autograd.py`` demonstrates that a
    global-RNG dropout under checkpointing silently corrupts gradients —
    the failure mode torch's checkpoint avoids by stashing RNG state.
    """
    if prob <= 0.0:
        return a
    mask = np.random.default_rng(seed).random(a.data.shape) >= prob
    scale = 1.0 / (1.0 - prob)
    out = a.data * mask * scale

    def backward(grad):
        return (grad * mask * scale,)

    return _make(out, (a,), backward)
