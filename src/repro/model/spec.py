"""Named transformer architectures.

A :class:`ModelSpec` is a purely architectural description — dimensions,
layer counts, activation functions — from which the rest of the system
derives parameter counts, activation sizes, and FLOPs. The two models the
paper evaluates (GPT-3 175B and Llama 2 70B) are provided as presets,
together with BERT-large (mentioned in Section 4.1 as covered by the same
unit division) and tiny variants used by the real-training convergence
experiment (Figure 10) and by fast tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ConfigError


@dataclass(frozen=True)
class ModelSpec:
    """Architecture of a decoder-only (or encoder-only) transformer.

    Attributes:
        name: human-readable identifier.
        hidden_size: model dimension ``h``.
        num_layers: number of decoder blocks ``L`` (each contributes one
            Attention layer and one Feed-Forward layer to the sequence).
        num_heads: attention heads (must divide ``hidden_size``).
        num_kv_heads: key/value heads; ``< num_heads`` means grouped-query
            attention as in Llama 2 70B.
        ffn_hidden_size: feed-forward inner dimension.
        vocab_size: token vocabulary.
        max_position_embeddings: learned positional embedding table length;
            0 for rotary-position models (Llama) which have no such table.
        gated_ffn: True for SwiGLU-style FFNs (three weight matrices).
        tied_embeddings: whether the decoding head shares the embedding
            matrix (GPT-3 ties them; Llama 2 does not).
        linear_bias: whether linear layers carry bias terms (GPT-3 yes,
            Llama 2 no).
        rmsnorm: True when normalisation is RMSNorm (one weight vector)
            rather than LayerNorm (weight and bias).
    """

    name: str
    hidden_size: int
    num_layers: int
    num_heads: int
    num_kv_heads: int
    ffn_hidden_size: int
    vocab_size: int
    max_position_embeddings: int = 0
    gated_ffn: bool = False
    tied_embeddings: bool = False
    linear_bias: bool = True
    rmsnorm: bool = False

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ConfigError(
                f"hidden size {self.hidden_size} not divisible by "
                f"{self.num_heads} heads"
            )
        if self.num_heads % self.num_kv_heads != 0:
            raise ConfigError(
                f"{self.num_heads} heads not divisible by "
                f"{self.num_kv_heads} kv heads"
            )

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def kv_hidden_size(self) -> int:
        """Total width of the K (or V) projection output."""
        return self.num_kv_heads * self.head_dim

    # -- parameter counts (whole model, not yet divided by tensor parallel) --

    def attention_params(self) -> int:
        """Parameters of one Attention layer, including its pre-norm."""
        h = self.hidden_size
        qkv = h * h + 2 * h * self.kv_hidden_size
        out = h * h
        bias = (h + 2 * self.kv_hidden_size + h) if self.linear_bias else 0
        norm = h if self.rmsnorm else 2 * h
        return qkv + out + bias + norm

    def ffn_params(self) -> int:
        """Parameters of one Feed-Forward layer, including its pre-norm."""
        h, f = self.hidden_size, self.ffn_hidden_size
        weights = 3 * h * f if self.gated_ffn else 2 * h * f
        bias = (f + h) if self.linear_bias else 0
        norm = h if self.rmsnorm else 2 * h
        return weights + bias + norm

    def embedding_params(self) -> int:
        return self.vocab_size * self.hidden_size + (
            self.max_position_embeddings * self.hidden_size
        )

    def head_params(self) -> int:
        """Decoding head parameters, including the final norm.

        Tied embeddings contribute no extra weight matrix but the final
        normalisation still lives in the last stage.
        """
        norm = self.hidden_size if self.rmsnorm else 2 * self.hidden_size
        if self.tied_embeddings:
            return norm
        return self.vocab_size * self.hidden_size + norm

    def total_params(self) -> int:
        return (
            self.embedding_params()
            + self.num_layers * (self.attention_params() + self.ffn_params())
            + self.head_params()
        )


def gpt3_175b() -> ModelSpec:
    """GPT-3 175B (Brown et al. 2020), as trained in the paper's Figure 6."""
    return ModelSpec(
        name="gpt3-175b",
        hidden_size=12288,
        num_layers=96,
        num_heads=96,
        num_kv_heads=96,
        ffn_hidden_size=4 * 12288,
        vocab_size=51200,
        max_position_embeddings=16384,
        tied_embeddings=True,
        linear_bias=True,
    )


def llama2_70b() -> ModelSpec:
    """Llama 2 70B (Touvron et al. 2023), as trained in the paper's Figure 5."""
    return ModelSpec(
        name="llama2-70b",
        hidden_size=8192,
        num_layers=80,
        num_heads=64,
        num_kv_heads=8,
        ffn_hidden_size=28672,
        vocab_size=32000,
        gated_ffn=True,
        tied_embeddings=False,
        linear_bias=False,
        rmsnorm=True,
    )


def gpt3_13b() -> ModelSpec:
    """GPT-3 13B — the mid-size variant, handy for smaller device budgets."""
    return ModelSpec(
        name="gpt3-13b",
        hidden_size=5120,
        num_layers=40,
        num_heads=40,
        num_kv_heads=40,
        ffn_hidden_size=4 * 5120,
        vocab_size=51200,
        max_position_embeddings=16384,
        tied_embeddings=True,
        linear_bias=True,
    )


def llama2_13b() -> ModelSpec:
    """Llama 2 13B (no GQA at this scale, plain multi-head attention)."""
    return ModelSpec(
        name="llama2-13b",
        hidden_size=5120,
        num_layers=40,
        num_heads=40,
        num_kv_heads=40,
        ffn_hidden_size=13824,
        vocab_size=32000,
        gated_ffn=True,
        tied_embeddings=False,
        linear_bias=False,
        rmsnorm=True,
    )


def llama2_7b() -> ModelSpec:
    """Llama 2 7B."""
    return ModelSpec(
        name="llama2-7b",
        hidden_size=4096,
        num_layers=32,
        num_heads=32,
        num_kv_heads=32,
        ffn_hidden_size=11008,
        vocab_size=32000,
        gated_ffn=True,
        tied_embeddings=False,
        linear_bias=False,
        rmsnorm=True,
    )


def bert_large() -> ModelSpec:
    """BERT-large; Section 4.1 notes the unit division covers it too."""
    return ModelSpec(
        name="bert-large",
        hidden_size=1024,
        num_layers=24,
        num_heads=16,
        num_kv_heads=16,
        ffn_hidden_size=4096,
        vocab_size=30522,
        max_position_embeddings=512,
        tied_embeddings=True,
    )


def tiny_gpt(num_layers: int = 4, hidden_size: int = 64, vocab_size: int = 128) -> ModelSpec:
    """A laptop-scale GPT used by tests and the convergence experiment."""
    return ModelSpec(
        name=f"tiny-gpt-{num_layers}x{hidden_size}",
        hidden_size=hidden_size,
        num_layers=num_layers,
        num_heads=max(1, hidden_size // 16),
        num_kv_heads=max(1, hidden_size // 16),
        ffn_hidden_size=4 * hidden_size,
        vocab_size=vocab_size,
        max_position_embeddings=512,
        tied_embeddings=False,
    )


def tiny_llama(num_layers: int = 4, hidden_size: int = 64, vocab_size: int = 128) -> ModelSpec:
    """A laptop-scale Llama-style model (gated FFN, RMSNorm, no bias)."""
    heads = max(2, hidden_size // 16)
    return ModelSpec(
        name=f"tiny-llama-{num_layers}x{hidden_size}",
        hidden_size=hidden_size,
        num_layers=num_layers,
        num_heads=heads,
        num_kv_heads=max(1, heads // 2),
        ffn_hidden_size=int(hidden_size * 8 / 3) // 8 * 8 or 8,
        vocab_size=vocab_size,
        gated_ffn=True,
        linear_bias=False,
        rmsnorm=True,
    )


_REGISTRY = {
    "gpt3-175b": gpt3_175b,
    "gpt3-13b": gpt3_13b,
    "llama2-70b": llama2_70b,
    "llama2-13b": llama2_13b,
    "llama2-7b": llama2_7b,
    "bert-large": bert_large,
}


def model_by_name(name: str) -> ModelSpec:
    """Look up a preset model by its registry name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ConfigError(
            f"unknown model {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
