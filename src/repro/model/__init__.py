"""Transformer model descriptions used by the AdaPipe search.

The search engine never touches real weights: it only needs the *architecture*
(layer sequence, parameter counts, activation shapes). This package provides:

* :mod:`repro.model.spec` — named architectures (GPT-3 175B, Llama 2 70B, ...)
* :mod:`repro.model.layers` — the layer sequence the partitioner cuts
  (Embedding, Attention, Feed-Forward, Decoding Head)
* :mod:`repro.model.units` — the computation-unit split of Figure 4
* :mod:`repro.model.tensors` — shape and byte accounting helpers
"""

from repro.model.layers import Layer, LayerKind, build_layer_sequence
from repro.model.spec import (
    ModelSpec,
    bert_large,
    gpt3_175b,
    llama2_70b,
    tiny_gpt,
    tiny_llama,
)
from repro.model.tensors import TensorShape
from repro.model.units import ComputationUnit, OpDesc, OpKind, units_for_layer

__all__ = [
    "ComputationUnit",
    "Layer",
    "LayerKind",
    "ModelSpec",
    "OpDesc",
    "OpKind",
    "TensorShape",
    "bert_large",
    "build_layer_sequence",
    "gpt3_175b",
    "llama2_70b",
    "tiny_gpt",
    "tiny_llama",
    "units_for_layer",
]
