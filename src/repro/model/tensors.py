"""Tensor shape and byte accounting helpers.

Everything downstream (memory model, roofline timing) reasons about tensors
as element counts and byte sizes; this module centralises that arithmetic so
the formulas appear exactly once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class TensorShape:
    """A named tensor shape with an element width.

    Attributes:
        dims: the shape, e.g. ``(seq, batch, hidden)``.
        bytes_per_value: element width in bytes.
    """

    dims: Tuple[int, ...]
    bytes_per_value: int = 2

    @property
    def elements(self) -> int:
        return math.prod(self.dims)

    @property
    def bytes(self) -> int:
        return self.elements * self.bytes_per_value


def gib(num_bytes: float) -> float:
    """Bytes to GiB, for reports that mirror the paper's GB axes."""
    return num_bytes / (1024.0**3)


def mib(num_bytes: float) -> float:
    """Bytes to MiB."""
    return num_bytes / (1024.0**2)


def ceil_div(a: int, b: int) -> int:
    return -(-a // b)
