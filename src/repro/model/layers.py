"""The layer sequence partitioned across pipeline stages.

Section 5 of the paper treats the model as a sequence of layers — the
Embedding layer, ``L`` alternating Attention and Feed-Forward layers, and the
Decoding Head layer — and assigns each stage a contiguous sub-sequence.
Cutting between any two layers never adds communication because the tensor
crossing every boundary has the same ``(seq, batch, hidden)`` shape.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence

from repro.model.spec import ModelSpec


class LayerKind(enum.Enum):
    """The four layer types of the partitionable sequence (Section 5)."""

    EMBEDDING = "embedding"
    ATTENTION = "attention"
    FFN = "ffn"
    HEAD = "head"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Layer:
    """One element of the partitionable layer sequence.

    Attributes:
        kind: which of the four layer types this is.
        index: position in the full sequence (0 = embedding).
        block_index: which decoder block an Attention/FFN layer belongs to
            (-1 for embedding/head).
        params: parameter count of the layer across the whole tensor-parallel
            group (i.e. *not* divided by ``t``).
    """

    kind: LayerKind
    index: int
    block_index: int
    params: int

    @property
    def is_transformer(self) -> bool:
        return self.kind in (LayerKind.ATTENTION, LayerKind.FFN)


def build_layer_sequence(spec: ModelSpec) -> List[Layer]:
    """Expand a model spec into its partitionable layer sequence.

    Returns ``[Embedding, Att_0, FFN_0, ..., Att_{L-1}, FFN_{L-1}, Head]``,
    the exact sequence Algorithm 1 partitions.
    """
    layers: List[Layer] = [
        Layer(LayerKind.EMBEDDING, 0, -1, spec.embedding_params())
    ]
    attention_params = spec.attention_params()
    ffn_params = spec.ffn_params()
    for block in range(spec.num_layers):
        layers.append(
            Layer(LayerKind.ATTENTION, len(layers), block, attention_params)
        )
        layers.append(Layer(LayerKind.FFN, len(layers), block, ffn_params))
    layers.append(Layer(LayerKind.HEAD, len(layers), -1, spec.head_params()))
    return layers


def sequence_params(layers: Sequence[Layer]) -> int:
    """Total parameter count of a (sub-)sequence of layers."""
    return sum(layer.params for layer in layers)


def describe_partition(layers: Sequence[Layer], boundaries: Sequence[int]) -> str:
    """Human-readable summary of a stage partition.

    ``boundaries`` holds, for each stage, the index of its first layer; an
    implicit final boundary at ``len(layers)`` closes the last stage.
    """
    parts = []
    bounds = list(boundaries) + [len(layers)]
    for stage, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
        kinds = [str(layer.kind)[:3] for layer in layers[lo:hi]]
        parts.append(f"stage {stage}: layers [{lo}, {hi}) = {'+'.join(kinds)}")
    return "\n".join(parts)
