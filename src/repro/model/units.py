"""Computation-unit split of transformer layers (Figure 4 of the paper).

A *computation unit* is the minimal group of operators that is recomputed or
saved together. Operators whose intermediates are never saved even without
recomputation (transpose, addition, scaling, ...) are merged into the unit of
the nearest tensor that *is* saved; each saved tensor therefore has exactly
one *parent unit* (Section 4.1).

The split implemented here follows Figure 4:

* Attention layer → ``attn.norm``, ``attn.q``, ``attn.k``, ``attn.v``,
  ``attn.core`` (FlashAttention, which also saves small internal softmax
  statistics), and ``attn.out`` (the closing GEMM, restricted to
  *always saved* per Section 4.2 so the recompute buffer never spans layers).
* Feed-Forward layer → ``ffn.norm``, ``ffn.in`` (one GEMM, or two for gated
  SwiGLU FFNs), ``ffn.act``, and ``ffn.out`` (always saved).
* Embedding layer → a single ``embed.lookup`` unit.
* Decoding head → ``head.norm`` and ``head.proj`` (logits + loss).

All element counts are per micro-batch and already divided by the tensor
parallel size where Megatron would shard them; sequence parallelism further
divides the norm/residual tensors by ``t``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.config import TrainingConfig
from repro.model.layers import LayerKind
from repro.model.spec import ModelSpec


class OpKind(enum.Enum):
    """Operator classes with distinct roofline efficiency profiles."""

    GEMM = "gemm"
    FLASH_ATTENTION = "flash_attention"
    NORM = "norm"
    ELEMENTWISE = "elementwise"
    EMBEDDING = "embedding"
    CROSS_ENTROPY = "cross_entropy"


@dataclass(frozen=True)
class OpDesc:
    """One operator inside a computation unit.

    Attributes:
        kind: operator class (drives compute efficiency in the roofline).
        flops_forward: forward floating point operations.
        flops_backward: backward FLOPs (dgrad + wgrad for GEMMs).
        moved_elements: elements read+written in the forward pass, for the
            bandwidth term of the roofline.
    """

    kind: OpKind
    flops_forward: float
    flops_backward: float
    moved_elements: float


@dataclass(frozen=True)
class ComputationUnit:
    """A recompute-or-save decision point (Section 4.1).

    Attributes:
        name: stable identifier, e.g. ``"attn.core"``.
        layer_kind: which layer of the sequence the unit belongs to.
        ops: the operators fused into this unit.
        saved_output_elements: elements of the unit's child tensors that are
            kept when the unit is configured *saved* (its output plus any
            non-boundary intermediates bound to it).
        internal_saved_elements: tensors some kernels save internally along
            with their output (e.g. FlashAttention softmax statistics);
            counted when the unit is saved.
        always_saved: units whose outputs the model restricts to be saved
            (the closing GEMMs of the Attention and Feed-Forward layers).
    """

    name: str
    layer_kind: LayerKind
    ops: Tuple[OpDesc, ...]
    saved_output_elements: float
    internal_saved_elements: float = 0.0
    always_saved: bool = False

    @property
    def flops_forward(self) -> float:
        return sum(op.flops_forward for op in self.ops)

    @property
    def flops_backward(self) -> float:
        return sum(op.flops_backward for op in self.ops)

    @property
    def saved_elements(self) -> float:
        """Elements held in memory when this unit is saved."""
        return self.saved_output_elements + self.internal_saved_elements


def _gemm(b_tokens: float, n: float, k: float) -> OpDesc:
    """A GEMM of ``b_tokens x k`` by ``k x n`` with standard 2x backward."""
    flops = 2.0 * b_tokens * n * k
    moved = b_tokens * k + k * n + b_tokens * n
    return OpDesc(OpKind.GEMM, flops, 2.0 * flops, moved)


def units_for_layer(
    kind: LayerKind,
    spec: ModelSpec,
    train: TrainingConfig,
    tensor_parallel: int,
) -> List[ComputationUnit]:
    """Build the computation units of one layer, with concrete sizes.

    Args:
        kind: the layer type to split.
        spec: model architecture.
        train: workload (sequence length, micro-batch size, seq-parallel and
            FlashAttention switches).
        tensor_parallel: tensor parallel size ``t`` sharding the layer.

    Returns:
        Units in execution order. Element counts are per device and per
        micro-batch.
    """
    t = tensor_parallel
    s = train.sequence_length
    b = train.micro_batch_size
    h = spec.hidden_size
    tokens = float(s * b)
    # Sequence parallelism shards the norm/residual activations by t.
    norm_tokens = tokens / t if train.sequence_parallel else tokens

    if kind == LayerKind.ATTENTION:
        return _attention_units(spec, train, t, tokens, norm_tokens)
    if kind == LayerKind.FFN:
        return _ffn_units(spec, train, t, tokens, norm_tokens)
    if kind == LayerKind.EMBEDDING:
        return _embedding_units(spec, t, tokens, norm_tokens)
    if kind == LayerKind.HEAD:
        return _head_units(spec, t, tokens, norm_tokens)
    raise ValueError(f"unknown layer kind {kind!r}")


def _norm_unit(name: str, spec: ModelSpec, norm_tokens: float) -> ComputationUnit:
    h = spec.hidden_size
    flops = (4.0 if spec.rmsnorm else 5.0) * norm_tokens * h
    op = OpDesc(OpKind.NORM, flops, 2.0 * flops, 2.0 * norm_tokens * h)
    kind = LayerKind.ATTENTION if name.startswith("attn") else (
        LayerKind.HEAD if name.startswith("head") else LayerKind.FFN
    )
    return ComputationUnit(
        name=name,
        layer_kind=kind,
        ops=(op,),
        saved_output_elements=norm_tokens * h,
    )


def _attention_units(
    spec: ModelSpec,
    train: TrainingConfig,
    t: int,
    tokens: float,
    norm_tokens: float,
) -> List[ComputationUnit]:
    h = spec.hidden_size
    kv = spec.kv_hidden_size
    s = train.sequence_length
    b = train.micro_batch_size

    units = [_norm_unit("attn.norm", spec, norm_tokens)]

    # Q/K/V projections. The Q unit also absorbs the bias add, head
    # transpose and 1/sqrt(d) scaling mentioned in Section 4.1; those ops
    # are bandwidth-bound and folded into the moved-elements term.
    units.append(
        ComputationUnit(
            name="attn.q",
            layer_kind=LayerKind.ATTENTION,
            ops=(_gemm(tokens, h / t, h),),
            saved_output_elements=tokens * h / t,
        )
    )
    for name in ("attn.k", "attn.v"):
        units.append(
            ComputationUnit(
                name=name,
                layer_kind=LayerKind.ATTENTION,
                ops=(_gemm(tokens, kv / t, h),),
                saved_output_elements=tokens * kv / t,
            )
        )

    # Attention core. With FlashAttention the probability matrix never
    # materialises; only per-row softmax statistics are kept internally.
    core_flops = 4.0 * b * float(s) * float(s) * h / t
    heads_per_device = spec.num_heads / t
    if train.flash_attention:
        internal = 2.0 * b * float(s) * heads_per_device  # running max + sum
        moved = 3.0 * tokens * h / t
        # Flash backward re-runs the forward tiling: ~2.5x forward FLOPs.
        core_op = OpDesc(OpKind.FLASH_ATTENTION, core_flops, 2.5 * core_flops, moved)
    else:
        internal = b * float(s) * float(s) * heads_per_device  # attn probs
        if train.attention_dropout > 0:
            # 1-byte mask per probability, in bytes_per_value-sized elements.
            internal += internal / train.bytes_per_value
        moved = 3.0 * tokens * h / t + internal
        core_op = OpDesc(OpKind.FLASH_ATTENTION, core_flops, 2.0 * core_flops, moved)
    units.append(
        ComputationUnit(
            name="attn.core",
            layer_kind=LayerKind.ATTENTION,
            ops=(core_op,),
            saved_output_elements=tokens * h / t,
            internal_saved_elements=internal,
        )
    )

    # Closing projection + residual add: restricted to always-saved so the
    # recompute buffer never exceeds one decoder layer (Section 4.2). With
    # hidden dropout enabled, the post-projection mask (1 byte/element)
    # lives here too.
    units.append(
        ComputationUnit(
            name="attn.out",
            layer_kind=LayerKind.ATTENTION,
            ops=(_gemm(tokens, h, h / t),),
            saved_output_elements=norm_tokens * h,
            internal_saved_elements=_dropout_mask_elements(train, norm_tokens * h),
            always_saved=True,
        )
    )
    return units


def _dropout_mask_elements(train: TrainingConfig, masked_elements: float) -> float:
    """1-byte dropout masks, expressed in ``bytes_per_value`` elements."""
    if train.hidden_dropout <= 0:
        return 0.0
    return masked_elements / train.bytes_per_value


def _ffn_units(
    spec: ModelSpec,
    train: TrainingConfig,
    t: int,
    tokens: float,
    norm_tokens: float,
) -> List[ComputationUnit]:
    h = spec.hidden_size
    f = spec.ffn_hidden_size

    units = [_norm_unit("ffn.norm", spec, norm_tokens)]

    in_gemms: Tuple[OpDesc, ...]
    if spec.gated_ffn:
        in_gemms = (_gemm(tokens, f / t, h), _gemm(tokens, f / t, h))
        in_saved = 2.0 * tokens * f / t
    else:
        in_gemms = (_gemm(tokens, f / t, h),)
        in_saved = tokens * f / t
    units.append(
        ComputationUnit(
            name="ffn.in",
            layer_kind=LayerKind.FFN,
            ops=in_gemms,
            saved_output_elements=in_saved,
        )
    )

    act_flops = 8.0 * tokens * f / t
    units.append(
        ComputationUnit(
            name="ffn.act",
            layer_kind=LayerKind.FFN,
            ops=(
                OpDesc(OpKind.ELEMENTWISE, act_flops, act_flops, 2.0 * tokens * f / t),
            ),
            saved_output_elements=tokens * f / t,
        )
    )

    units.append(
        ComputationUnit(
            name="ffn.out",
            layer_kind=LayerKind.FFN,
            ops=(_gemm(tokens, h, f / t),),
            saved_output_elements=norm_tokens * h,
            internal_saved_elements=_dropout_mask_elements(train, norm_tokens * h),
            always_saved=True,
        )
    )
    return units


def _embedding_units(
    spec: ModelSpec, t: int, tokens: float, norm_tokens: float
) -> List[ComputationUnit]:
    h = spec.hidden_size
    lookup = OpDesc(OpKind.EMBEDDING, 2.0 * tokens * h, 2.0 * tokens * h, tokens * h)
    return [
        ComputationUnit(
            name="embed.lookup",
            layer_kind=LayerKind.EMBEDDING,
            ops=(lookup,),
            saved_output_elements=norm_tokens * h,
        )
    ]


def _head_units(
    spec: ModelSpec, t: int, tokens: float, norm_tokens: float
) -> List[ComputationUnit]:
    h = spec.hidden_size
    vocab = spec.vocab_size
    units = [_norm_unit("head.norm", spec, norm_tokens)]
    proj = _gemm(tokens, vocab / t, h)
    ce_flops = 6.0 * tokens * vocab / t
    ce = OpDesc(OpKind.CROSS_ENTROPY, ce_flops, ce_flops, 2.0 * tokens * vocab / t)
    units.append(
        ComputationUnit(
            name="head.proj",
            layer_kind=LayerKind.HEAD,
            ops=(proj, ce),
            saved_output_elements=tokens * vocab / t,
        )
    )
    return units
