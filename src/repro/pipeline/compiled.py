"""One-time lowering of a :class:`Schedule` into integer-indexed task arrays.

The simulator's inner loop used to hash :class:`TaskKey` dataclasses on every
dependency check. Lowering replaces every key with a dense integer index and
every dependency with a precomputed edge, so executing the schedule touches
only flat lists:

* per task: duration, device, a signed memory delta (``+activation_bytes``
  pinned at forward start, ``-activation_bytes`` released at the end of the
  forward's *releasing* twin — grad-weight when the backward is split,
  the plain backward otherwise), and the number of incoming edges (unique
  dependencies plus the implicit device-order edge to the previous task on
  the same device);
* per edge: the successor index and the hop addend (``hop_time`` — or the
  link's ``Schedule.link_hops`` override — when the edge crosses devices,
  ``0.0`` otherwise), stored in CSR layout. A destination task with a
  compute/comm overlap window (``Task.overlap``) has the window folded
  into its cross-device addends (``hop - overlap``): the longest-path
  recurrence then evaluates ``end = max(local_ready + dur, end[src] + hop
  + dur - overlap)`` with no engine change.

Per-device aggregates that do not depend on execution at all — busy time
(durations summed in list order, preserving the reference engine's float
accumulation order) and weighted micro-batch passes — are folded out of the
run entirely and precomputed here.

The lowering also subsumes the structural checks ``Schedule.validate`` and
the simulator used to perform separately (each building its own
``TaskKey -> Task`` map): duplicate keys and unresolvable dependencies are
rejected exactly once, here, and the result is memoized on the schedule via
:meth:`Schedule.compiled`, so validated schedules reach the simulator
already lowered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.pipeline.tasks import Schedule, Task, TaskKey, TaskKind


class SimulationError(RuntimeError):
    """Raised on malformed schedules (unresolvable dependencies)."""


@dataclass
class CompiledSchedule:
    """A schedule lowered to arrays, ready for the ready-queue engine.

    Task indices follow enumeration order: device 0's tasks in list order,
    then device 1's, and so on — consecutive tasks of one device therefore
    have consecutive indices.

    Attributes:
        schedule: the source schedule.
        tasks: task index -> source :class:`Task`.
        keys: task index -> :class:`TaskKey` (for building result dicts).
        index: key -> task index.
        device: task index -> executing device.
        duration: task index -> seconds of device time.
        mem_delta: task index -> signed activation bytes (positive deltas
            apply at the task's start, negative at its end, zero means no
            memory event).
        indegree: incoming-edge count per task (unique dependencies + the
            device-order edge).
        succ_ptr / succ_idx / succ_add: CSR adjacency over outgoing edges;
            ``succ_add`` is the communication addend of each edge.
        rows: per-task ``(duration, device, mem_delta, successors)`` tuples,
            with ``successors`` a tuple of ``(successor index, addend)``
            pairs — the same data as the columnar arrays, packed so the
            engine's hot loop does one list index and one unpack per task.
        dep_indices: unique dependency indices per task (diagnostics).
        device_last: last task index per device (``-1`` when idle all
            iteration).
        device_busy: per-device busy seconds, summed in list order.
        device_passes: per-device weighted micro-batch passes (``weight``
            summed over the device's tasks).
        same_device_twins: True when every releasing task's forward twin
            runs on the releasing task's own device — the invariant the
            incremental memory tracker relies on (``Schedule.validate``
            enforces it; the engine falls back to the reference path when
            it is absent).
        num_edges: total edge count (dependency + device-order).
    """

    schedule: Schedule
    tasks: List[Task]
    keys: List[TaskKey]
    index: Dict[TaskKey, int]
    device: List[int]
    duration: List[float]
    mem_delta: List[float]
    indegree: List[int]
    succ_ptr: List[int]
    succ_idx: List[int]
    succ_add: List[float]
    rows: List[Tuple[float, int, float, Tuple[Tuple[int, float], ...]]]
    dep_indices: List[Tuple[int, ...]]
    device_last: List[int]
    device_busy: List[float]
    device_passes: List[int]
    same_device_twins: bool
    num_edges: int

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    def topological_order(self) -> List[int]:
        """One topological order over all edges, computed once (memoized).

        A single Kahn pass over the CSR arrays (``indegree`` /
        ``succ_ptr`` / ``succ_idx``). The batched executor precomputes
        its level-wavefront execution plan from this order; the scalar
        engines never need it (their ready queue discovers an order
        dynamically). The traversal is fixed, so the order is
        deterministic — but no consumer may depend on *which* valid
        order is returned: the longest-path recurrence the engines
        evaluate is order-independent (ALGORITHMS.md section 11).

        Raises:
            SimulationError: when the dependency graph has a cycle (the
                same schedules the scalar engines report as deadlocked).
        """
        cached = getattr(self, "_topo_order", None)
        if cached is None:
            indegree = list(self.indegree)
            frontier = [i for i in range(self.num_tasks) if indegree[i] == 0]
            order: List[int] = []
            cursor = 0
            frontier.sort()
            while cursor < len(frontier):
                i = frontier[cursor]
                cursor += 1
                order.append(i)
                for e in range(self.succ_ptr[i], self.succ_ptr[i + 1]):
                    j = self.succ_idx[e]
                    indegree[j] -= 1
                    if indegree[j] == 0:
                        frontier.append(j)
            if len(order) != self.num_tasks:
                stuck = [
                    str(self.keys[i])
                    for i in range(self.num_tasks)
                    if indegree[i] > 0
                ]
                raise SimulationError(
                    "schedule deadlocked (dependency cycle); unfinished: "
                    + ", ".join(stuck[:8])
                    + ("..." if len(stuck) > 8 else "")
                )
            self._topo_order = cached = order  # type: ignore[attr-defined]
        return cached

    def validate_twins(self) -> None:
        """Enforce the per-kind completeness contract (the structural
        guarantee ``Schedule.validate`` promises).

        Per ``(pipe, stage, micro_batch)``:

        * a ``FORWARD`` needs a complete backward: either one plain
          ``BACKWARD``, or a ``BACKWARD_INPUT``/``BACKWARD_WEIGHT`` pair —
          never a mix of the split and unsplit forms;
        * every backward (or half), and every ``RECOMPUTE``, needs the
          matching ``FORWARD``;
        * all of a micro-batch's twins run on the forward's device (the
          invariant the incremental memory tracker relies on).

        Unlike the deadlock diagnostics' single-edge reports, twin
        violations are *collected*: the raised ``ValueError`` names every
        missing or conflicting key, grouped per device, so a malformed
        generator is diagnosed in one pass.
        """
        violations: List[Tuple[int, str]] = []
        for i, task in enumerate(self.tasks):
            key = task.key
            device_i = self.device[i]

            def twin(kind: TaskKind) -> "TaskKey":
                return TaskKey(key.pipe, key.stage, key.micro_batch, kind)

            if key.kind == TaskKind.FORWARD:
                plain = self.index.get(twin(TaskKind.BACKWARD))
                grad_in = self.index.get(twin(TaskKind.BACKWARD_INPUT))
                grad_w = self.index.get(twin(TaskKind.BACKWARD_WEIGHT))
                if plain is None and grad_in is None and grad_w is None:
                    violations.append(
                        (device_i, f"forward {key} has no backward twin")
                    )
                elif plain is not None and (
                    grad_in is not None or grad_w is not None
                ):
                    violations.append((
                        device_i,
                        f"forward {key} has both a plain backward and a "
                        "split grad-input/grad-weight backward",
                    ))
                elif plain is None:
                    if grad_in is None:
                        violations.append((
                            device_i,
                            f"forward {key} has a grad-weight twin but no "
                            f"grad-input {twin(TaskKind.BACKWARD_INPUT)}",
                        ))
                    if grad_w is None:
                        violations.append((
                            device_i,
                            f"forward {key} has a grad-input twin but no "
                            f"grad-weight {twin(TaskKind.BACKWARD_WEIGHT)} "
                            "(activations would never be released)",
                        ))
                for j in (plain, grad_in, grad_w):
                    if j is not None and self.device[j] != device_i:
                        violations.append((
                            device_i,
                            f"{key} and {self.keys[j]} run on different devices",
                        ))
            else:
                j = self.index.get(twin(TaskKind.FORWARD))
                if j is None:
                    violations.append(
                        (device_i, f"{key} has no forward twin")
                    )
                elif key.kind == TaskKind.RECOMPUTE and self.device[j] != device_i:
                    violations.append((
                        device_i,
                        f"{key} and {self.keys[j]} run on different devices",
                    ))
        if violations:
            by_device: Dict[int, List[str]] = {}
            for device_i, message in violations:
                by_device.setdefault(device_i, []).append(message)
            report = "; ".join(
                f"device {device_i}: " + ", ".join(messages)
                for device_i, messages in sorted(by_device.items())
            )
            raise ValueError(
                f"schedule twin contract violated ({len(violations)} "
                f"violation{'s' if len(violations) != 1 else ''}): {report}"
            )


def compile_schedule(schedule: Schedule) -> CompiledSchedule:
    """Lower ``schedule`` into a :class:`CompiledSchedule`.

    Raises:
        ValueError: on duplicate task keys (matching ``Schedule.task_map``),
            on a nonzero ``activation_bytes`` on any non-forward task (the
            forward carries the pinned bytes — see ``Task``), or on a
            negative ``overlap``.
        SimulationError: when a task depends on a key absent from the
            schedule.
    """
    tasks: List[Task] = []
    index: Dict[TaskKey, int] = {}
    for device_list in schedule.device_tasks:
        for task in device_list:
            if task.key in index:
                raise ValueError(f"duplicate task {task.key}")
            index[task.key] = len(tasks)
            tasks.append(task)

    num_tasks = len(tasks)
    keys = [task.key for task in tasks]
    device = [task.device for task in tasks]
    duration = [task.duration for task in tasks]
    indegree = [0] * num_tasks
    successors: List[List[Tuple[int, float]]] = [[] for _ in range(num_tasks)]
    dep_indices: List[Tuple[int, ...]] = []
    hop = schedule.hop_time
    link_hops = schedule.link_hops or {}

    for i, task in enumerate(tasks):
        if task.overlap < 0.0:
            raise ValueError(
                f"{task.key}: overlap must be >= 0, got {task.overlap!r}"
            )
        # Duplicate deps must not double-count indegree. The filter keeps
        # first-seen edge order (it feeds `dep_indices` and the CSR edge
        # layout) but tests membership against a set — lists made this
        # O(deps^2) per task, which bites schedules with heavily repeated
        # dependency keys.
        seen: List[int] = []
        seen_set: Set[int] = set()
        for dep in task.deps:
            j = index.get(dep)
            if j is None:
                raise SimulationError(f"{task.key} depends on missing task {dep}")
            if j in seen_set:
                continue
            seen_set.add(j)
            seen.append(j)
            if device[j] != device[i]:
                add = link_hops.get((device[j], device[i]), hop) if link_hops else hop
                if task.overlap:
                    # Compute/comm overlap window: up to `overlap` seconds
                    # of task i's duration run while this hop is in
                    # flight, so the edge contributes
                    # `end[j] + hop - overlap` to i's start — i.e.
                    # `end[i] = max(local_ready + dur, end[j] + hop +
                    # dur - overlap)`. The device-order edge (addend 0)
                    # keeps the local floor, so a negative effective
                    # addend never starts i before its own device frees.
                    add -= task.overlap
            else:
                add = 0.0
            successors[j].append((i, add))
        dep_indices.append(tuple(seen))
        indegree[i] = len(seen)

    # Device-order edges: each task waits for its predecessor in the
    # device's list (consecutive indices by construction).
    position = 0
    for device_list in schedule.device_tasks:
        for offset in range(1, len(device_list)):
            i = position + offset
            successors[i - 1].append((i, 0.0))
            indegree[i] += 1
        position += len(device_list)

    succ_ptr = [0] * (num_tasks + 1)
    succ_idx: List[int] = []
    succ_add: List[float] = []
    for i in range(num_tasks):
        for j, add in successors[i]:
            succ_idx.append(j)
            succ_add.append(add)
        succ_ptr[i + 1] = len(succ_idx)

    mem_delta = [0.0] * num_tasks
    same_device_twins = True
    for i, task in enumerate(tasks):
        kind = task.key.kind
        if kind == TaskKind.FORWARD:
            if task.activation_bytes > 0:
                mem_delta[i] = task.activation_bytes
            continue
        if task.activation_bytes:
            # The Task contract says forwards carry the pinned bytes; a
            # nonzero value anywhere else used to be silently dropped,
            # which 2BP's deferred-release accounting cannot afford.
            raise ValueError(
                f"{task.key}: activation_bytes={task.activation_bytes!r} on "
                f"a {kind.value} task; activations are carried by the "
                "forward and released by its backward (grad-weight) twin"
            )
        if kind in (TaskKind.BACKWARD_INPUT, TaskKind.RECOMPUTE):
            # Grad-input and recomputation never release: the activations
            # stay pinned until grad-weight (split backward) or the plain
            # backward consumes them.
            continue
        if kind == TaskKind.BACKWARD and (
            TaskKey(
                task.key.pipe, task.key.stage, task.key.micro_batch,
                TaskKind.BACKWARD_WEIGHT,
            )
            in index
        ):
            # Defensive: mixed plain/split backwards fail validate_twins,
            # but lowering must not double-release if asked anyway.
            continue
        twin = TaskKey(
            task.key.pipe, task.key.stage, task.key.micro_batch,
            TaskKind.FORWARD,
        )
        j = index.get(twin)
        if j is not None and tasks[j].activation_bytes > 0:
            mem_delta[i] = -tasks[j].activation_bytes
            if device[j] != device[i]:
                same_device_twins = False

    rows = [
        (duration[i], device[i], mem_delta[i], tuple(successors[i]))
        for i in range(num_tasks)
    ]

    device_last = [-1] * schedule.num_devices
    device_busy = [0.0] * schedule.num_devices
    device_passes = [0] * schedule.num_devices
    position = 0
    for d, device_list in enumerate(schedule.device_tasks):
        busy = 0.0
        passes = 0
        for task in device_list:
            busy += task.duration
            passes += task.weight
        device_busy[d] = busy
        device_passes[d] = passes
        if device_list:
            device_last[d] = position + len(device_list) - 1
        position += len(device_list)

    return CompiledSchedule(
        schedule=schedule,
        tasks=tasks,
        keys=keys,
        index=index,
        device=device,
        duration=duration,
        mem_delta=mem_delta,
        indegree=indegree,
        succ_ptr=succ_ptr,
        succ_idx=succ_idx,
        succ_add=succ_add,
        rows=rows,
        dep_indices=dep_indices,
        device_last=device_last,
        device_busy=device_busy,
        device_passes=device_passes,
        same_device_twins=same_device_twins,
        num_edges=len(succ_idx),
    )
