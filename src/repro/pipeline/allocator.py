"""First-fit arena allocator: validating the recompute-buffer bound.

Section 4.2 restricts the Attention/Feed-Forward closing outputs to be
always saved *so that* the backward pass re-materialises at most one
decoder layer at a time, and notes that the true buffer size "is influenced
by many aspects, like the memory allocation algorithm". This module makes
that concrete: a first-fit free-list allocator replays the alloc/free
sequence of a recomputing backward pass, and its high-water mark (including
fragmentation) is compared against the model's one-layer bound — the test
suite asserts the bound holds with a small fragmentation slack.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple


class AllocationError(RuntimeError):
    """Raised on double-free or freeing an unknown block."""


@dataclass
class ArenaAllocator:
    """A first-fit allocator over a byte arena of unbounded length.

    Tracks the high-water mark of the *addressed* space, so fragmentation
    (holes that first-fit cannot reuse for larger blocks) shows up exactly
    as it would in a real caching allocator.
    """

    alignment: int = 256
    _blocks: Dict[int, Tuple[int, int]] = field(default_factory=dict)  # id -> (offset, size)
    _free: List[Tuple[int, int]] = field(default_factory=list)  # (offset, size)
    _top: int = 0
    high_water: int = 0
    _next_id: int = 0

    def _align(self, size: int) -> int:
        return -(-size // self.alignment) * self.alignment

    def alloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns a block id."""
        size = self._align(max(1, size))
        offset = None
        for index, (free_offset, free_size) in enumerate(self._free):
            if free_size >= size:
                offset = free_offset
                remaining = free_size - size
                if remaining:
                    self._free[index] = (free_offset + size, remaining)
                else:
                    del self._free[index]
                break
        if offset is None:
            offset = self._top
            self._top += size
            self.high_water = max(self.high_water, self._top)
        block_id = self._next_id
        self._next_id += 1
        self._blocks[block_id] = (offset, size)
        return block_id

    def free(self, block_id: int) -> None:
        """Release a block, coalescing adjacent free ranges."""
        if block_id not in self._blocks:
            raise AllocationError(f"unknown or double-freed block {block_id}")
        offset, size = self._blocks.pop(block_id)
        self._free.append((offset, size))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for range_offset, range_size in self._free:
            if merged and merged[-1][0] + merged[-1][1] == range_offset:
                merged[-1] = (merged[-1][0], merged[-1][1] + range_size)
            else:
                merged.append((range_offset, range_size))
        # Shrink the arena top when the last range is free.
        if merged and merged[-1][0] + merged[-1][1] == self._top:
            self._top = merged[-1][0]
            merged.pop()
        self._free = merged

    @property
    def live_bytes(self) -> int:
        return sum(size for _, size in self._blocks.values())


def replay_recompute_backward(
    layer_unit_bytes: Iterable[Iterable[float]],
    allocator: ArenaAllocator = None,
) -> ArenaAllocator:
    """Replay the backward pass of a stage under full recomputation.

    For each layer (walked last to first) the backward (1) re-materialises
    the layer's intermediates into the buffer, (2) runs the unit backwards
    in reverse order, freeing each unit's tensors as its gradient is done —
    the procedure Section 4.2's buffer bound models.

    Args:
        layer_unit_bytes: per layer, the saved sizes of its recomputed units
            in execution order.
        allocator: optionally a pre-used allocator (to model carried state).

    Returns:
        The allocator, whose ``high_water`` is the empirical buffer size.
    """
    allocator = allocator or ArenaAllocator()
    for units in reversed([list(layer) for layer in layer_unit_bytes]):
        block_ids = [allocator.alloc(int(size)) for size in units]
        for block_id in reversed(block_ids):
            allocator.free(block_id)
    return allocator
