"""Batched vectorized simulation: lower once, execute K duration vectors.

The scalar engines walk a ready queue task-by-task for every simulation.
Robustness ensembles (``repro.core.robust``) and robust-objective sweeps
(``repro.core.sweep``) run ``1 + K + p + 1`` simulations whose schedules
differ *only in task durations and hop addends* — the DAG is frozen by
the perturbation contract (ALGORITHMS.md section 9). This module exploits
that: lower the DAG once, then execute any number of duration vectors as
one numpy sweep (the lower-once/execute-many idiom of ngraph's numpy
transformer).

Why this is exact, not approximate (ALGORITHMS.md section 11):

* Both scalar engines evaluate the longest-path recurrence
  ``finish[i] = max(0, max_j(finish[j] + add_ij)) + dur[i]`` over the
  task's unique in-edges (dependency edges plus the implicit
  device-order edge). ``max`` over IEEE-754 doubles selects one operand
  bit-for-bit and is commutative/associative, and each task's finish
  depends only on its predecessors' finishes — so *any* topological
  order yields bit-identical floats to the ready-queue discovery order.
  The executor therefore precomputes one Kahn order
  (:meth:`CompiledSchedule.topological_order`), groups tasks into
  dependency levels, and evaluates each level for all K duration rows
  at once with ``np.maximum.reduceat`` / ``add`` over flattened edge
  arrays. Elementwise float64 numpy arithmetic is the same IEEE double
  arithmetic the scalar engines perform, in the same per-task operand
  order, hence bit-identical iteration times (fuzz-pinned in
  ``tests/test_batched.py``).

* Batched rows carry no memory tracking: per-device memory events occur
  in device list order regardless of durations, so peak bytes are
  invariant under pure duration/hop transforms (ALGORITHMS.md section
  8). The nominal scalar simulation already reports the peaks valid for
  every row.

The public surface is :func:`batched_simulator` (a per-``Schedule`` memo
of :class:`BatchedSchedule`, mirroring ``Schedule.compiled``) and
:func:`shape_digest` (groups schedules that may share one lowering —
what robust sweeps key their batches by).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.pipeline.compiled import CompiledSchedule
from repro.pipeline.perturb import jitter_multiplier
from repro.pipeline.tasks import Schedule

__all__ = [
    "BatchedSchedule",
    "batched_simulator",
    "shape_digest",
]

#: Jitter vectors memoized per BatchedSchedule ((seed, sigma) -> vector).
#: Each entry is num_tasks float64s; 1024 of them bound the memo at a few
#: MB for the largest schedules the sweeps build.
_JITTER_MEMO_LIMIT = 1024


def shape_digest(compiled: CompiledSchedule) -> str:
    """Digest of everything the batched executor lowers — except durations.

    Two schedules with equal shape digests share task identities, device
    assignment, dependency structure, per-device order, hop time and link
    overrides, so one :class:`BatchedSchedule` built from either executes
    duration vectors of both (and their spec lowerings — factors, stall
    delays, jitter vectors — coincide). Per-task ``overlap`` windows are
    *included*: they are folded into the lowered edge addends, so two
    schedules differing only in overlap must not share a lowering. Task
    durations, activation bytes and weights are deliberately excluded:
    none of them affect the execution plan or the iteration-time
    recurrence.

    This digest keys *batch grouping only*; result caching uses the full
    content digests (``schedule.digest()`` × spec) — see
    ``repro.core.robust.ensemble_digest``.
    """
    cached = getattr(compiled, "_shape_digest", None)
    if cached is not None:
        return cached
    schedule = compiled.schedule
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(f"batch-shape-v2|{schedule.num_devices}|{schedule.hop_time!r}".encode())
    for pair, hop in sorted((schedule.link_hops or {}).items()):
        hasher.update(f"|L{pair[0]}>{pair[1]}:{hop!r}".encode())
    for device, tasks in enumerate(schedule.device_tasks):
        hasher.update(f"|d{device}:{len(tasks)}".encode())
        for task in tasks:
            key = task.key
            hasher.update(
                f"|t{key.pipe},{key.stage},{key.micro_batch},{key.kind.value}"
                f",{task.overlap!r}".encode()
            )
            for dep in task.deps:
                hasher.update(
                    f"<{dep.pipe},{dep.stage},{dep.micro_batch},{dep.kind.value}".encode()
                )
    digest = hasher.hexdigest()
    compiled._shape_digest = digest  # type: ignore[attr-defined]  # per-instance memo
    return digest


class BatchedSchedule:
    """One schedule's DAG lowered into a level-wavefront execution plan.

    Construction performs the one-time work: a Kahn topological order,
    dependency levels, and per-level flattened in-edge arrays (predecessor
    indices, edge ids into the global addend vector, and segment starts
    for ``np.maximum.reduceat``). Execution then touches only numpy
    reductions, whatever the number of duration rows.

    Raises:
        SimulationError: at construction, when the dependency graph has a
            cycle (via :meth:`CompiledSchedule.topological_order`).
    """

    def __init__(self, compiled: CompiledSchedule) -> None:
        self.compiled = compiled
        schedule = compiled.schedule
        n = compiled.num_tasks
        self.num_tasks = n
        self._hop_time = schedule.hop_time

        order = compiled.topological_order()

        # In-edges per task, rebuilt from the CSR out-edge arrays. Each
        # in-edge keeps its global edge id so hop-addend overrides index
        # one flat vector.
        pred_of: List[List[int]] = [[] for _ in range(n)]
        eid_of: List[List[int]] = [[] for _ in range(n)]
        succ_ptr, succ_idx = compiled.succ_ptr, compiled.succ_idx
        for j in range(n):
            for e in range(succ_ptr[j], succ_ptr[j + 1]):
                i = succ_idx[e]
                pred_of[i].append(j)
                eid_of[i].append(e)

        # Dependency levels: level[i] = 1 + max(level of predecessors).
        # Tasks in one level have no edges among themselves, so a level is
        # evaluated as one wavefront.
        level = [0] * n
        depth = 0
        for i in order:
            preds = pred_of[i]
            if preds:
                level[i] = 1 + max(level[j] for j in preds)
                if level[i] > depth:
                    depth = level[i]
        self.num_levels = depth + 1 if n else 0

        by_level: List[List[int]] = [[] for _ in range(self.num_levels)]
        for i in range(n):
            by_level[level[i]].append(i)
        self._level0 = np.asarray(by_level[0] if by_level else [], dtype=np.intp)

        # Per level >= 1: task indices, flattened predecessor/edge-id
        # arrays and reduceat segment starts.
        plan: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        for tasks in by_level[1:]:
            preds_flat: List[int] = []
            eids_flat: List[int] = []
            seg: List[int] = []
            for i in tasks:
                seg.append(len(preds_flat))
                preds_flat.extend(pred_of[i])
                eids_flat.extend(eid_of[i])
            plan.append((
                np.asarray(tasks, dtype=np.intp),
                np.asarray(preds_flat, dtype=np.intp),
                np.asarray(eids_flat, dtype=np.intp),
                np.asarray(seg, dtype=np.intp),
            ))
        self._plan = plan

        # Global edge addends (base = the schedule's own hops), plus the
        # edge ids of every cross-device link for hop overrides.
        self._base_add = np.asarray(compiled.succ_add, dtype=np.float64)
        self._base_add.flags.writeable = False
        device = compiled.device
        link_edges: Dict[Tuple[int, int], List[int]] = {}
        for j in range(n):
            for e in range(succ_ptr[j], succ_ptr[j + 1]):
                i = succ_idx[e]
                if device[j] != device[i]:
                    link_edges.setdefault((device[j], device[i]), []).append(e)
        self._link_edges: List[Tuple[Tuple[int, int], np.ndarray]] = [
            (pair, np.asarray(eids, dtype=np.intp))
            for pair, eids in sorted(link_edges.items())
        ]

        # Overlap windows folded into cross-device addends at lowering
        # (`hop - overlap` in compiled.succ_add). Hop overrides overwrite
        # the addend wholesale, so the overlapped edges and their windows
        # are kept to re-apply the subtraction after an override.
        overlap_eids: List[int] = []
        overlap_vals: List[float] = []
        tasks = compiled.tasks
        for j in range(n):
            for e in range(succ_ptr[j], succ_ptr[j + 1]):
                i = succ_idx[e]
                if device[j] != device[i] and tasks[i].overlap:
                    overlap_eids.append(e)
                    overlap_vals.append(tasks[i].overlap)
        self._overlap_eids = np.asarray(overlap_eids, dtype=np.intp)
        self._overlap_vals = np.asarray(overlap_vals, dtype=np.float64)

        # Addend columns per level for the base mapping, precomputed (the
        # common case: no degraded links).
        self._base_addcols = [
            np.ascontiguousarray(self._base_add[eids][:, np.newaxis])
            for _, _, eids, _ in plan
        ]

        self._device_last = np.asarray(
            [i for i in compiled.device_last if i >= 0], dtype=np.intp
        )
        self._raw_durations = np.asarray(compiled.duration, dtype=np.float64)
        self._raw_durations.flags.writeable = False
        self._jitter_memo: "OrderedDict[Tuple[int, float], np.ndarray]" = OrderedDict()

    @property
    def raw_durations(self) -> np.ndarray:
        """The schedule's own per-task durations (read-only float64)."""
        return self._raw_durations

    @property
    def shape_digest(self) -> str:
        """See :func:`shape_digest`."""
        return shape_digest(self.compiled)

    def jitter_vector(self, seed: int, sigma: float) -> np.ndarray:
        """Per-task jitter multipliers of one ensemble draw (memoized).

        Elementwise :func:`repro.pipeline.perturb.jitter_multiplier` —
        the draw depends only on ``(seed, task key, sigma)``, never on
        durations, which is what makes the vector legitimate lowering
        state: it is shared across repeated ensembles and across every
        schedule with this schedule's shape. The memo is FIFO-bounded
        and entries are returned read-only.
        """
        if sigma == 0.0:
            return np.ones(self.num_tasks, dtype=np.float64)
        memo_key = (seed, sigma)
        vector = self._jitter_memo.get(memo_key)
        if vector is None:
            vector = np.array(
                [
                    jitter_multiplier(seed, key, sigma)
                    for key in self.compiled.keys
                ],
                dtype=np.float64,
            )
            vector.flags.writeable = False
            if len(self._jitter_memo) >= _JITTER_MEMO_LIMIT:
                self._jitter_memo.popitem(last=False)
            self._jitter_memo[memo_key] = vector
        return vector

    def _addend_columns(
        self, link_hops: Optional[Dict[Tuple[int, int], float]]
    ) -> List[np.ndarray]:
        if link_hops is None:
            return self._base_addcols
        add = np.array(self._base_add)
        hop = self._hop_time
        for pair, eids in self._link_edges:
            add[eids] = link_hops.get(pair, hop)
        if self._overlap_eids.size:
            # Re-fold the compute/comm overlap windows the override just
            # clobbered — same single `hop - overlap` float subtraction
            # the compiled lowering performs, keeping rows bit-identical
            # to the scalar engines under degraded links.
            add[self._overlap_eids] -= self._overlap_vals
        return [add[eids][:, np.newaxis] for _, _, eids, _ in self._plan]

    def _sweep(
        self,
        durations: np.ndarray,
        link_hops: Optional[Dict[Tuple[int, int], float]],
    ) -> np.ndarray:
        """Finish times of every task for every duration row: ``(n, R)``."""
        dur = np.asarray(durations, dtype=np.float64)
        if dur.ndim == 1:
            dur = dur[np.newaxis, :]
        if dur.ndim != 2 or dur.shape[1] != self.num_tasks:
            raise ValueError(
                f"duration matrix must be (rows, {self.num_tasks}), "
                f"got shape {dur.shape}"
            )
        rows = dur.shape[0]
        durT = np.ascontiguousarray(dur.T)
        finish = np.empty((self.num_tasks, rows), dtype=np.float64)
        if self._level0.size:
            # Ready time 0.0; finish = duration.
            finish[self._level0] = durT[self._level0]
        addcols = self._addend_columns(link_hops)
        for (tasks, preds, _eids, seg), addcol in zip(self._plan, addcols):
            candidates = finish[preds] + addcol
            ready = np.maximum.reduceat(candidates, seg, axis=0)
            # The scalar engines seed every ready time at 0.0 before
            # folding in dependency candidates; keep that exact floor.
            np.maximum(ready, 0.0, out=ready)
            finish[tasks] = ready + durT[tasks]
        return finish

    def finish_matrix(
        self,
        durations: np.ndarray,
        link_hops: Optional[Dict[Tuple[int, int], float]] = None,
    ) -> np.ndarray:
        """Per-task finish times, one row per duration vector: ``(R, n)``.

        Row ``r``, column ``i`` equals the scalar engines' end time of
        task ``i`` under duration vector ``r`` (and, when given, the
        ``link_hops`` hop overrides), bit for bit.
        """
        return np.ascontiguousarray(self._sweep(durations, link_hops).T)

    def iteration_times(
        self,
        durations: np.ndarray,
        link_hops: Optional[Dict[Tuple[int, int], float]] = None,
    ) -> np.ndarray:
        """Iteration time of every duration row: ``(R,)``.

        Accepts a single ``(n,)`` vector (returning shape ``(1,)``) or an
        ``(R, n)`` matrix. ``link_hops`` overrides the hop addend of every
        cross-device edge, exactly like a perturbed schedule's
        ``link_hops`` mapping — absent links fall back to the schedule's
        ``hop_time``.
        """
        finish = self._sweep(durations, link_hops)
        if self._device_last.size == 0:
            return np.zeros(finish.shape[1], dtype=np.float64)
        times = finish[self._device_last].max(axis=0)
        np.maximum(times, 0.0, out=times)
        return times


def batched_simulator(schedule: Schedule) -> BatchedSchedule:
    """The schedule's batched executor, built once (memoized).

    Mirrors :meth:`Schedule.compiled`: the lowering assumes
    ``device_tasks`` is not mutated afterwards.
    """
    cached = getattr(schedule, "_batched", None)
    if cached is None:
        cached = BatchedSchedule(schedule.compiled())
        schedule._batched = cached  # type: ignore[attr-defined]  # per-instance memo
    return cached
