"""Pipeline-parallel scheduling and simulation.

This package is the execution-engine substitute: schedule generators emit a
per-device ordered task list (forward/backward of each micro-batch on each
stage), and an event-driven simulator executes the task graph against a cost
assignment, producing the iteration time, per-device utilisation, bubble
ratio, and a full per-device memory trace with OOM detection — the
quantities the paper measures on its clusters.
"""

from repro.pipeline.simulator import (
    SimulationCache,
    SimulationError,
    SimulationResult,
    global_simulation_cache,
    schedule_digest,
    simulate,
    simulate_reference,
    simulate_with_info,
)
from repro.pipeline.tasks import Schedule, StageCosts, Task, TaskKey, TaskKind
from repro.pipeline.schedules import (
    chimera_schedule,
    gpipe_schedule,
    interleaved_1f1b_schedule,
    one_f_one_b_schedule,
)
from repro.pipeline.visualize import render_timeline

__all__ = [
    "Schedule",
    "SimulationCache",
    "SimulationError",
    "SimulationResult",
    "StageCosts",
    "Task",
    "TaskKey",
    "TaskKind",
    "chimera_schedule",
    "global_simulation_cache",
    "gpipe_schedule",
    "interleaved_1f1b_schedule",
    "one_f_one_b_schedule",
    "render_timeline",
    "schedule_digest",
    "simulate",
    "simulate_reference",
    "simulate_with_info",
]
