"""Declarative perturbation injection for pipeline schedules.

AdaPipe's planners assume every device and link performs exactly as the
roofline profile says; this module asks the follow-up question — *how
fragile is a chosen plan when they don't?* A :class:`PerturbationSpec`
declares four failure modes observed on real clusters:

* **per-device slowdown** — a multiplicative factor on every task the
  device runs (thermal throttling, a sick HBM stack, a noisy neighbour);
* **per-task jitter** — seeded lognormal multiplicative noise, drawn
  independently per task (OS/interconnect scheduling noise);
* **transient stalls** — a fixed delay added to a window of consecutive
  tasks on one device (ECC scrub, garbage collection, a checkpoint write);
* **link degradation** — a multiplier plus latency addend on the hop time
  of one directed device-to-device link (flaky NIC, congested switch).

All four lower onto the schedule as a *pure duration / hop transform*:
:func:`perturb_schedule` returns a new :class:`Schedule` whose tasks carry
transformed durations and whose ``link_hops`` mapping overrides the hop
time of degraded links. Crucially, the task DAG — keys, dependencies,
devices, activation bytes, weights — is untouched, so:

* both simulator engines consume the perturbed schedule through their
  ordinary entry points, and the compiled-vs-reference bit-equivalence
  guarantee carries over to every perturbed run for free (the fuzz suite
  in ``tests/test_sim_engine.py`` drives exactly this);
* the simulator's exact peak-memory accounting is preserved verbatim —
  perturbations move *when* allocations and frees happen, never *whether*
  or *in what device-order* they happen (see ALGORITHMS.md section 9).

Determinism contract: the jitter draw for a task depends only on
``(spec.seed, task key)`` — never on iteration order — so a spec applied
twice to equal schedules yields digest-identical results, and the
simulation cache stays sound because the transform's full content (the
durations it wrote and the link hops it attached) is covered by
:func:`repro.pipeline.simulator.schedule_digest`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.pipeline.tasks import Schedule, TaskKey

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.pipeline.compiled import CompiledSchedule

__all__ = [
    "LinkDegradation",
    "PerturbationSpec",
    "TransientStall",
    "jitter_multiplier",
    "lower_spec_components",
    "lower_spec_durations",
    "lowered_link_hops",
    "perturb_schedule",
]


@dataclass(frozen=True)
class TransientStall:
    """A fixed delay injected into a window of one device's task list.

    Attributes:
        device: the stalled device.
        delay: seconds added to each affected task's duration.
        first_task: index (in the device's execution order) of the first
            affected task.
        length: number of consecutive tasks affected.
    """

    device: int
    delay: float
    first_task: int = 0
    length: int = 1

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"stall delay must be >= 0, got {self.delay}")
        if self.first_task < 0 or self.length < 1:
            raise ValueError("stall window must be non-empty and start at >= 0")


@dataclass(frozen=True)
class LinkDegradation:
    """Degradation of one directed device-to-device link.

    The schedule's hop time for dependencies crossing ``src -> dst``
    becomes ``hop * factor + added_latency``.

    Attributes:
        src: upstream device of the link.
        dst: downstream device.
        factor: bandwidth-degradation multiplier (>= 0; 1.0 = nominal).
        added_latency: seconds added per hop.
    """

    src: int
    dst: int
    factor: float = 1.0
    added_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.factor < 0:
            raise ValueError(f"link factor must be >= 0, got {self.factor}")
        if self.added_latency < 0:
            raise ValueError(
                f"link added latency must be >= 0, got {self.added_latency}"
            )


@dataclass(frozen=True)
class PerturbationSpec:
    """A declarative, hashable bundle of schedule perturbations.

    Attributes:
        device_factors: ``(device, factor)`` pairs; each listed device's
            task durations are multiplied by ``factor`` (> 0). Devices not
            listed run at nominal speed.
        jitter_sigma: sigma of the lognormal per-task jitter multiplier
            (0 disables jitter). The multiplier's median is exactly 1.
        seed: base seed of the jitter draws; see :func:`jitter_multiplier`.
        stalls: transient stall windows.
        links: degraded links.
    """

    device_factors: Tuple[Tuple[int, float], ...] = ()
    jitter_sigma: float = 0.0
    seed: int = 0
    stalls: Tuple[TransientStall, ...] = ()
    links: Tuple[LinkDegradation, ...] = ()

    def __post_init__(self) -> None:
        if self.jitter_sigma < 0:
            raise ValueError(f"jitter sigma must be >= 0, got {self.jitter_sigma}")
        for device, factor in self.device_factors:
            if factor <= 0:
                raise ValueError(
                    f"device {device} slowdown factor must be > 0, got {factor}"
                )

    @classmethod
    def build(
        cls,
        device_factors: Union[Mapping[int, float], Sequence[float], None] = None,
        jitter_sigma: float = 0.0,
        seed: int = 0,
        stalls: Sequence[TransientStall] = (),
        links: Sequence[LinkDegradation] = (),
    ) -> "PerturbationSpec":
        """Normalising constructor: accepts a ``device -> factor`` mapping
        or a dense per-device factor sequence."""
        if device_factors is None:
            pairs: Tuple[Tuple[int, float], ...] = ()
        elif isinstance(device_factors, Mapping):
            pairs = tuple(sorted(
                (int(d), float(f)) for d, f in device_factors.items()
            ))
        else:
            pairs = tuple(
                (d, float(f)) for d, f in enumerate(device_factors)
            )
        return cls(
            device_factors=pairs,
            jitter_sigma=jitter_sigma,
            seed=seed,
            stalls=tuple(stalls),
            links=tuple(links),
        )

    def factor_for(self, device: int) -> float:
        for d, factor in self.device_factors:
            if d == device:
                return factor
        return 1.0

    def is_identity(self) -> bool:
        """True when applying this spec provably changes nothing."""
        return (
            all(factor == 1.0 for _, factor in self.device_factors)
            and self.jitter_sigma == 0.0
            and all(stall.delay == 0.0 for stall in self.stalls)
            and all(
                link.factor == 1.0 and link.added_latency == 0.0
                for link in self.links
            )
        )

    def content_digest(self) -> str:
        """Stable digest of everything that moves a perturbed number."""
        parts = [f"perturb-v1|{self.jitter_sigma!r}|{self.seed}"]
        parts.extend(f"d{d}:{f!r}" for d, f in self.device_factors)
        parts.extend(
            f"s{s.device}:{s.delay!r}:{s.first_task}:{s.length}"
            for s in self.stalls
        )
        parts.extend(
            f"l{link.src}>{link.dst}:{link.factor!r}:{link.added_latency!r}"
            for link in self.links
        )
        return hashlib.blake2b("|".join(parts).encode(), digest_size=16).hexdigest()

    def reseeded(self, offset: int) -> "PerturbationSpec":
        """The same spec with its jitter seed shifted — one ensemble draw."""
        if offset == 0:
            return self
        return dataclasses.replace(self, seed=self.seed + offset)

    def with_device_factor(self, device: int, factor: float) -> "PerturbationSpec":
        """A copy with ``device``'s slowdown factor replaced."""
        pairs = tuple(
            (d, f) for d, f in self.device_factors if d != device
        ) + ((device, factor),)
        return dataclasses.replace(
            self, device_factors=tuple(sorted(pairs))
        )


def jitter_multiplier(seed: int, key: TaskKey, sigma: float) -> float:
    """The deterministic lognormal jitter multiplier of one task.

    Keyed off ``(seed, task identity)`` only — independent of the order
    tasks are visited in — so two applications of one spec agree bit-for-
    bit, and the multiplier of a task is unchanged by perturbing other
    tasks. ``sigma == 0`` returns exactly 1.0.
    """
    if sigma == 0.0:
        return 1.0
    digest = hashlib.blake2b(
        f"{seed}|{key.pipe}|{key.stage}|{key.micro_batch}|{key.kind.value}".encode(),
        digest_size=8,
    ).digest()
    gauss = random.Random(int.from_bytes(digest, "big")).gauss(0.0, 1.0)
    return math.exp(sigma * gauss)


def _stall_delays(
    spec: PerturbationSpec, num_devices: int
) -> Dict[int, Dict[int, float]]:
    """Per device, the summed stall delay per task position."""
    delays: Dict[int, Dict[int, float]] = {}
    for stall in spec.stalls:
        if stall.device >= num_devices:
            raise ValueError(
                f"stall targets device {stall.device} but the schedule has "
                f"{num_devices} devices"
            )
        per_device = delays.setdefault(stall.device, {})
        for offset in range(stall.length):
            position = stall.first_task + offset
            per_device[position] = per_device.get(position, 0.0) + stall.delay
    return delays


def _link_hops(spec: PerturbationSpec, schedule: Schedule) -> Dict[Tuple[int, int], float]:
    """The perturbed hop time of every degraded link, merged over the
    schedule's existing overrides (degradations compound on them)."""
    hops: Dict[Tuple[int, int], float] = dict(schedule.link_hops or {})
    for link in spec.links:
        base = hops.get((link.src, link.dst), schedule.hop_time)
        hops[(link.src, link.dst)] = base * link.factor + link.added_latency
    return hops


def perturb_schedule(schedule: Schedule, spec: PerturbationSpec) -> Schedule:
    """Lower ``spec`` onto ``schedule`` as a pure duration/hop transform.

    Returns a new, structurally identical :class:`Schedule` whose task
    durations and link hop times reflect the injected perturbations. An
    identity spec returns ``schedule`` itself (same object), so the
    zero-perturbation path is bit-identical *including* its memoized
    lowering and content digest.
    """
    if spec.is_identity():
        return schedule
    stalls = _stall_delays(spec, schedule.num_devices)
    sigma = spec.jitter_sigma
    seed = spec.seed
    device_tasks = []
    for device, tasks in enumerate(schedule.device_tasks):
        factor = spec.factor_for(device)
        device_stalls = stalls.get(device, {})
        perturbed = []
        for position, task in enumerate(tasks):
            duration = task.duration * factor
            if sigma:
                duration *= jitter_multiplier(seed, task.key, sigma)
            delay = device_stalls.get(position, 0.0)
            if delay:
                duration += delay
            if duration == task.duration:
                perturbed.append(task)
            else:
                perturbed.append(dataclasses.replace(task, duration=duration))
        device_tasks.append(perturbed)
    return Schedule(
        name=schedule.name,
        num_devices=schedule.num_devices,
        device_tasks=device_tasks,
        hop_time=schedule.hop_time,
        device_static_bytes=schedule.device_static_bytes,
        device_buffer_bytes=schedule.device_buffer_bytes,
        num_micro_batches=schedule.num_micro_batches,
        link_hops=_link_hops(spec, schedule) if spec.links else schedule.link_hops,
    )


# ---------------------------------------------------------------------------
# Duration-only lowering: a spec as vectors against a compiled schedule.
#
# The batched engine (repro.pipeline.batched) never materialises perturbed
# Schedule objects. These helpers map a spec straight onto the task arrays of
# an existing CompiledSchedule, and are contractually bit-identical to what
# perturb_schedule would have produced: every elementwise float64 operation
# below is IEEE-754 double arithmetic, exactly the operation (and operation
# *order*) the scalar transform performs per task — multiply by the device
# factor, then by the jitter multiplier, then add the stall delay. The fuzz
# suite in tests/test_batched.py pins the equivalence.
# ---------------------------------------------------------------------------


def lower_spec_components(
    compiled: "CompiledSchedule", spec: PerturbationSpec
) -> Tuple[np.ndarray, np.ndarray]:
    """The spec's deterministic per-task vectors: ``(factors, delays)``.

    ``factors[i]`` is the slowdown factor of task ``i``'s device and
    ``delays[i]`` the summed stall delay landing on the task's position —
    everything in the spec except jitter and link degradations, which are
    keyed by seed and link rather than task. Both vectors depend only on
    the schedule's *shape* (device assignment and per-device positions),
    never on durations, so batched sweeps share them across every
    schedule with the same shape digest.

    Raises:
        ValueError: when a stall targets a device the schedule does not
            have (matching :func:`perturb_schedule`).
    """
    schedule = compiled.schedule
    num_tasks = compiled.num_tasks
    factor_by_device = np.array(
        [spec.factor_for(d) for d in range(schedule.num_devices)],
        dtype=np.float64,
    )
    factors = factor_by_device[np.asarray(compiled.device, dtype=np.intp)]
    delays = np.zeros(num_tasks, dtype=np.float64)
    if spec.stalls:
        stall_map = _stall_delays(spec, schedule.num_devices)
        base = 0
        for device, tasks in enumerate(schedule.device_tasks):
            per_device = stall_map.get(device)
            if per_device:
                for position, delay in per_device.items():
                    if position < len(tasks):
                        delays[base + position] = delay
            base += len(tasks)
    return factors, delays


def lower_spec_durations(
    compiled: "CompiledSchedule", spec: PerturbationSpec
) -> np.ndarray:
    """``spec`` lowered to the perturbed per-task duration vector.

    Bit-identical to the durations ``perturb_schedule(schedule, spec)``
    would write, without building any ``Task`` or ``Schedule`` objects.
    """
    factors, delays = lower_spec_components(compiled, spec)
    durations = np.asarray(compiled.duration, dtype=np.float64) * factors
    if spec.jitter_sigma:
        jitter = np.array(
            [
                jitter_multiplier(spec.seed, key, spec.jitter_sigma)
                for key in compiled.keys
            ],
            dtype=np.float64,
        )
        durations = durations * jitter
    if delays.any():
        durations = durations + delays
    return durations


def lowered_link_hops(
    spec: PerturbationSpec, schedule: Schedule
) -> Optional[Dict[Tuple[int, int], float]]:
    """The ``link_hops`` mapping a perturbed schedule would carry.

    ``None`` means the spec leaves hop times untouched (no degraded
    links) — the batched executor then keeps its precompiled edge
    addends instead of overriding them.
    """
    if not spec.links:
        return None
    return _link_hops(spec, schedule)
