"""GPipe scheduling (Figure 2a of the paper).

Every stage runs the forward passes of all micro-batches in order, then the
backward passes in reverse order. Simple, but each stage pins the
activations of *all* ``n`` micro-batches at once — the O(n) memory cost that
motivated 1F1B.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.pipeline.schedules.common import (
    backward_deps,
    backward_key,
    build_schedule,
    forward_deps,
    forward_key,
)
from repro.pipeline.tasks import Schedule, StageCosts, Task


def gpipe_schedule(
    stage_costs: Sequence[StageCosts],
    num_micro_batches: int,
    hop_time: float = 0.0,
) -> Schedule:
    """Build a GPipe schedule over ``len(stage_costs)`` stages."""
    p = len(stage_costs)
    n = num_micro_batches
    device_tasks: List[List[Task]] = []
    for stage, costs in enumerate(stage_costs):
        tasks: List[Task] = []
        for m in range(n):
            tasks.append(
                Task(
                    key=forward_key(stage, m),
                    device=stage,
                    duration=costs.forward,
                    deps=forward_deps(stage, m, p),
                    activation_bytes=costs.activation_bytes,
                )
            )
        for m in reversed(range(n)):
            tasks.append(
                Task(
                    key=backward_key(stage, m),
                    device=stage,
                    duration=costs.backward,
                    deps=backward_deps(stage, m, p),
                )
            )
        device_tasks.append(tasks)
    return build_schedule("GPipe", stage_costs, device_tasks, hop_time, n)
