"""1F1B with overlapped recomputation (recompute hidden under hop windows).

When a stage discards activations, its backward must first re-execute the
forward to rebuild them. The classic lowering bakes that recompute time
into ``StageCosts.backward`` — serialized *after* the gradient hop from
the next stage arrives. But recomputation needs only locally saved state
(the stage's own forward inputs), never the incoming gradient, so it can
run *while the gradient is still in flight*: the compute/comm overlap
window of "Optimizing Large Model Training through Overlapped Activation
Recomputation" (PAPERS.md).

Two equivalent lowerings are provided (their makespans agree to float
round-off; tests pin it):

* **explicit** (default): a ``RECOMPUTE`` task per micro-batch, depending
  only on its forward, placed immediately before the (pure) backward in
  device order. The backward waits on ``max(recompute end, gradient end +
  hop)`` — the engines' ordinary longest-path recurrence evaluates the
  overlap with no special casing.
* **fused** (``fused=True``): one backward task of the full duration with
  ``Task.overlap`` set to the recompute portion — the engines evaluate
  ``end = max(local_ready + dur, grad_end + hop + dur - overlap)``, the
  overlap-window recurrence folded into the edge addends at lowering
  (ALGORITHMS.md §13).

Activation liveness is identical to plain 1F1B — recompute neither pins
nor releases the forward's bytes — so the exact in-flight count stays
``min(n, p - s)``. The recompute *buffer* is already accounted by
``StageCosts.buffer_bytes``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.pipeline.schedules.common import (
    backward_key,
    build_schedule,
    forward_deps,
    forward_key,
    recompute_key,
)
from repro.pipeline.tasks import Schedule, StageCosts, Task


def default_recompute_times(
    stage_costs: Sequence[StageCosts],
) -> List[float]:
    """Recompute seconds carved out of each stage's backward by default.

    The cost model's no-recompute backward is ~2x the forward (two GEMMs
    per saved one), so anything a plan's ``backward`` carries beyond
    ``2 * forward`` is recomputation — the same convention the
    recomputation DP uses when it credits ``Time_f`` per discarded unit.
    Clamped into ``[0, backward]``.
    """
    return [
        min(max(0.0, costs.backward - 2.0 * costs.forward), costs.backward)
        for costs in stage_costs
    ]


def one_f_one_b_overlapped(
    stage_costs: Sequence[StageCosts],
    num_micro_batches: int,
    hop_time: float = 0.0,
    recompute_times: Optional[Sequence[float]] = None,
    fused: bool = False,
    name: str = "1F1B-OR",
) -> Schedule:
    """Build the overlapped-recomputation schedule.

    Args:
        stage_costs: per-stage costs; ``backward`` *includes* the
            recompute time, which this builder splits off (explicit) or
            declares as an overlap window (fused).
        num_micro_batches: micro-batches per iteration.
        hop_time: cross-device dependency delay — the window the
            recompute hides under.
        recompute_times: per-stage recompute seconds; ``None`` derives
            them via :func:`default_recompute_times`. Each must lie in
            ``[0, backward]``.
        fused: lower recompute as ``Task.overlap`` on the backward
            instead of an explicit ``RECOMPUTE`` task.
        name: schedule label.
    """
    p = len(stage_costs)
    n = num_micro_batches
    if recompute_times is None:
        recompute_times = default_recompute_times(stage_costs)
    if len(recompute_times) != p:
        raise ValueError(
            f"need one recompute time per stage ({p}), got "
            f"{len(recompute_times)}"
        )
    for stage, (costs, recompute) in enumerate(zip(stage_costs, recompute_times)):
        if not 0.0 <= recompute <= costs.backward:
            raise ValueError(
                f"stage {stage}: recompute time {recompute!r} outside "
                f"[0, backward={costs.backward!r}]"
            )
    device_tasks: List[List[Task]] = []
    for stage, costs in enumerate(stage_costs):
        tasks: List[Task] = []
        recompute_time = float(recompute_times[stage])

        def forward(m: int) -> Task:
            return Task(
                key=forward_key(stage, m),
                device=stage,
                duration=costs.forward,
                deps=forward_deps(stage, m, p),
                activation_bytes=costs.activation_bytes,
            )

        def recompute(m: int) -> Task:
            return Task(
                key=recompute_key(stage, m),
                device=stage,
                duration=recompute_time,
                deps=(forward_key(stage, m),),
            )

        def backward(m: int, explicit_recompute: bool) -> Task:
            deps = [forward_key(stage, m)]
            if explicit_recompute:
                deps.append(recompute_key(stage, m))
            if stage < p - 1:
                deps.append(backward_key(stage + 1, m))
            if explicit_recompute:
                duration = costs.backward - recompute_time
                overlap = 0.0
            else:
                duration = costs.backward
                overlap = recompute_time
            return Task(
                key=backward_key(stage, m),
                device=stage,
                duration=duration,
                deps=tuple(deps),
                overlap=overlap,
            )

        explicit = not fused and recompute_time > 0.0
        warmup = min(p - stage - 1, n)
        for m in range(warmup):
            tasks.append(forward(m))
        for i in range(n - warmup):
            tasks.append(forward(warmup + i))
            if explicit:
                tasks.append(recompute(i))
            tasks.append(backward(i, explicit))
        for m in range(n - warmup, n):
            if explicit:
                tasks.append(recompute(m))
            tasks.append(backward(m, explicit))
        device_tasks.append(tasks)
    return build_schedule(name, stage_costs, device_tasks, hop_time, n)
