"""Megatron-LM interleaved 1F1B scheduling.

Each device hosts ``v`` model chunks: device ``d`` runs global stages
``d, d + p, ..., d + (v-1)p``. Micro-batches flow through all ``v * p``
global stages, which shrinks each bubble to ``1/v`` of its 1F1B size at the
cost of ``v`` times the stage-boundary communication (Section 2.1).

The task order per device follows Megatron's published algorithm: a warmup
of ``2(p - d - 1) + (v - 1)p`` virtual forwards, a steady 1F1B phase over
virtual micro-batches, and a backward drain. Virtual micro-batch ``k`` maps
to chunk ``(k // p) % v`` and real micro-batch ``(k // (vp)) * p + k % p``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.config import ConfigError
from repro.pipeline.schedules.common import (
    backward_deps,
    backward_key,
    build_schedule,
    forward_deps,
    forward_key,
)
from repro.pipeline.tasks import Schedule, StageCosts, Task


def _virtual_to_concrete(
    k: int, p: int, v: int, backward: bool
) -> Tuple[int, int]:
    """Map a virtual micro-batch index to (chunk, real micro-batch)."""
    chunk = (k // p) % v
    if backward:
        chunk = v - 1 - chunk
    micro_batch = (k // (p * v)) * p + (k % p)
    return chunk, micro_batch


def interleaved_1f1b_schedule(
    stage_costs: Sequence[StageCosts],
    num_micro_batches: int,
    num_devices: int,
    hop_time: float = 0.0,
) -> Schedule:
    """Build an interleaved 1F1B schedule.

    Args:
        stage_costs: one entry per *global* stage; the length must be a
            multiple of ``num_devices`` (the multiple is the chunk count).
        num_micro_batches: must be a multiple of ``num_devices``
            (Megatron's constraint).
        num_devices: pipeline group size ``p``.
        hop_time: stage-boundary communication time.
    """
    p = num_devices
    total_stages = len(stage_costs)
    if total_stages % p != 0:
        raise ConfigError(
            f"{total_stages} global stages not divisible by {p} devices"
        )
    v = total_stages // p
    n = num_micro_batches
    if n % p != 0:
        raise ConfigError(
            f"interleaved 1F1B needs micro-batches ({n}) divisible by p ({p})"
        )

    total_virtual = n * v
    device_tasks: List[List[Task]] = [[] for _ in range(p)]
    for device in range(p):
        tasks = device_tasks[device]

        def forward(k: int) -> Task:
            chunk, m = _virtual_to_concrete(k, p, v, backward=False)
            stage = chunk * p + device
            costs = stage_costs[stage]
            return Task(
                key=forward_key(stage, m),
                device=device,
                duration=costs.forward,
                deps=forward_deps(stage, m, total_stages),
                activation_bytes=costs.activation_bytes,
            )

        def backward(k: int) -> Task:
            chunk, m = _virtual_to_concrete(k, p, v, backward=True)
            stage = chunk * p + device
            costs = stage_costs[stage]
            return Task(
                key=backward_key(stage, m),
                device=device,
                duration=costs.backward,
                deps=backward_deps(stage, m, total_stages),
            )

        warmup = min(2 * (p - device - 1) + (v - 1) * p, total_virtual)
        for k in range(warmup):
            tasks.append(forward(k))
        for i in range(total_virtual - warmup):
            tasks.append(forward(warmup + i))
            tasks.append(backward(i))
        for k in range(total_virtual - warmup, total_virtual):
            tasks.append(backward(k))

    statics = [0.0] * p
    buffers = [0.0] * p
    for stage, costs in enumerate(stage_costs):
        statics[stage % p] += costs.static_bytes
        buffers[stage % p] = max(buffers[stage % p], costs.buffer_bytes)
    return build_schedule(
        f"Interleaved-1F1B(v={v})",
        stage_costs,
        device_tasks,
        hop_time,
        n,
        device_static_bytes=statics,
        device_buffer_bytes=buffers,
    )
