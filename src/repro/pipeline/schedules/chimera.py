"""Chimera bidirectional pipeline scheduling (Li & Hoefler, SC'21).

Chimera runs two pipeline replicas in opposite directions: the *down*
replica places stage ``s`` on device ``s``, the *up* replica on device
``p - 1 - s``, so every device hosts two stages (and a full second copy of
its model shard — the memory duplication the paper notes). One *scheduling
unit* processes ``p`` micro-batches, ``p/2`` per direction; iterations with
``n > p`` micro-batches concatenate units, and because backward passes are
longer than forwards, bubbles appear between consecutive units — exactly why
the paper finds Chimera slower than DAPPLE at large ``n``.

The concrete per-device order is derived with a greedy list scheduler over
the bidirectional task graph: backwards are preferred when ready (as in
1F1B), and the per-direction in-flight window is capped at
``min(p - s, p/2)``, which yields Chimera's characteristic middle-heavy
activation profile (Figure 8 of the paper).

``forward_doubling=True`` models ChimeraD: pairs of micro-batches are merged
into one forward pass (halving the number of scheduling units, doubling the
pinned activations), which trades bubbles for memory.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.config import ConfigError
from repro.pipeline.tasks import Schedule, StageCosts, Task, TaskKey, TaskKind


def chimera_schedule(
    stage_costs: Sequence[StageCosts],
    num_micro_batches: int,
    hop_time: float = 0.0,
    forward_doubling: bool = False,
) -> Schedule:
    """Build a (bidirectional) Chimera schedule.

    Args:
        stage_costs: per-stage costs; ``len(stage_costs)`` must be even.
        num_micro_batches: total micro-batches per iteration; must split
            evenly between the two directions (and into pairs for ChimeraD).
        hop_time: stage-boundary communication time.
        forward_doubling: model ChimeraD's doubled forward passes.
    """
    p = len(stage_costs)
    if p % 2 != 0:
        raise ConfigError(f"Chimera needs an even stage count, got {p}")
    weight = 2 if forward_doubling else 1
    if num_micro_batches % (2 * weight) != 0:
        raise ConfigError(
            f"{num_micro_batches} micro-batches do not split over two "
            f"directions with weight {weight}"
        )
    entities_per_pipe = num_micro_batches // (2 * weight)

    tasks = _build_tasks(stage_costs, entities_per_pipe, weight)
    device_tasks = _list_schedule(tasks, stage_costs, p, hop_time)

    statics = [2.0 * costs.static_bytes for costs in stage_costs]
    buffers = [2.0 * costs.buffer_bytes for costs in stage_costs]
    name = "ChimeraD" if forward_doubling else "Chimera"
    schedule = Schedule(
        name=name,
        num_devices=p,
        device_tasks=device_tasks,
        hop_time=hop_time,
        device_static_bytes=statics,
        device_buffer_bytes=buffers,
        num_micro_batches=num_micro_batches,
    )
    schedule.validate()
    return schedule


def _device_of(pipe: int, stage: int, p: int) -> int:
    return stage if pipe == 0 else p - 1 - stage


def _build_tasks(
    stage_costs: Sequence[StageCosts], entities_per_pipe: int, weight: int
) -> Dict[TaskKey, Task]:
    p = len(stage_costs)
    tasks: Dict[TaskKey, Task] = {}
    for pipe in (0, 1):
        for stage in range(p):
            device = _device_of(pipe, stage, p)
            costs = stage_costs[stage]
            for m in range(entities_per_pipe):
                fkey = TaskKey(pipe, stage, m, TaskKind.FORWARD)
                fdeps: Tuple[TaskKey, ...] = ()
                if stage > 0:
                    fdeps = (TaskKey(pipe, stage - 1, m, TaskKind.FORWARD),)
                tasks[fkey] = Task(
                    key=fkey,
                    device=device,
                    duration=weight * costs.forward,
                    deps=fdeps,
                    activation_bytes=weight * costs.activation_bytes,
                    weight=weight,
                )
                bkey = TaskKey(pipe, stage, m, TaskKind.BACKWARD)
                bdeps = [fkey]
                if stage < p - 1:
                    bdeps.append(TaskKey(pipe, stage + 1, m, TaskKind.BACKWARD))
                tasks[bkey] = Task(
                    key=bkey,
                    device=device,
                    duration=weight * costs.backward,
                    deps=tuple(bdeps),
                    weight=weight,
                )
    return tasks


def _list_schedule(
    tasks: Dict[TaskKey, Task],
    stage_costs: Sequence[StageCosts],
    p: int,
    hop_time: float,
) -> List[List[Task]]:
    """Greedy list scheduling producing per-device total orders.

    Repeatedly dispatches the schedulable task with the earliest possible
    start time, breaking ties in favour of backwards (they release memory
    and unblock upstream stages, as in 1F1B) and then lower micro-batch
    index. Forwards additionally respect the per-direction in-flight window
    ``min(p - s, p/2)``.
    """
    end_times: Dict[TaskKey, float] = {}
    device_free = [0.0] * p
    in_flight: Dict[Tuple[int, int], int] = {}
    window = {stage: min(p - stage, p // 2) for stage in range(p)}
    order: List[List[Task]] = [[] for _ in range(p)]
    pending = dict(tasks)

    while pending:
        best_key = None
        best_rank: Tuple = ()
        for key, task in pending.items():
            if any(dep not in end_times for dep in task.deps):
                continue
            if key.kind == TaskKind.FORWARD:
                flight_key = (key.pipe, key.stage)
                if in_flight.get(flight_key, 0) >= window[key.stage]:
                    continue
            est = device_free[task.device]
            for dep in task.deps:
                dep_end = end_times[dep]
                if tasks[dep].device != task.device:
                    dep_end += hop_time
                est = max(est, dep_end)
            rank = (est, 0 if key.kind == TaskKind.BACKWARD else 1, key.micro_batch, key.pipe, key.stage)
            if best_key is None or rank < best_rank:
                best_key, best_rank = key, rank
        if best_key is None:
            raise ConfigError("Chimera list scheduling wedged (internal error)")
        task = pending.pop(best_key)
        start = best_rank[0]
        end_times[best_key] = start + task.duration
        device_free[task.device] = start + task.duration
        flight_key = (best_key.pipe, best_key.stage)
        if best_key.kind == TaskKind.FORWARD:
            in_flight[flight_key] = in_flight.get(flight_key, 0) + 1
        else:
            in_flight[flight_key] = in_flight.get(flight_key, 0) - 1
        order[task.device].append(task)
    return order
