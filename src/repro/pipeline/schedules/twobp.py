"""1F1B with 2BP split backward (grad-input / grad-weight).

2BP splits each backward pass into its two chain-rule halves: *grad-input*
(``Bi``) propagates the activation gradient to the previous stage, and
*grad-weight* (``Bw``) accumulates the weight gradient. Only grad-input
sits on the inter-stage critical path — the upstream stage unblocks as
soon as ``Bi`` finishes — while grad-weight is deferrable filler work the
device can run whenever it would otherwise idle.

This builder keeps the 1F1B skeleton and defers exactly the *drain-phase*
grad-weights: during the steady phase every micro-batch runs
``F, Bi, Bw`` back to back (same per-cycle work as 1F1B, so the steady
in-flight window is unchanged), and the ``warmup``-many micro-batches of
the drain run their grad-input chain first, then fill the tail bubble
with the deferred grad-weights. Two consequences (ALGORITHMS.md §13):

* the tail critical path shrinks from a chain of full backwards to a
  chain of grad-inputs — stage 0 stops ``(p - 1) * Bw`` earlier, which is
  the bubble 2BP removes;
* activations stay live until *grad-weight* (not grad-input), but since
  deferral is confined to the drain — where liveness only declines — the
  peak in-flight count stays exactly ``min(n, p - s)``, matching 1F1B's
  memory profile byte for byte.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.pipeline.schedules.common import (
    backward_input_key,
    backward_weight_key,
    build_schedule,
    forward_deps,
    forward_key,
)
from repro.pipeline.tasks import Schedule, StageCosts, Task


def one_f_one_b_2bp(
    stage_costs: Sequence[StageCosts],
    num_micro_batches: int,
    hop_time: float = 0.0,
    weight_fraction: float = 0.5,
    name: str = "1F1B-2BP",
) -> Schedule:
    """Build the 2BP split-backward schedule over ``len(stage_costs)`` stages.

    Args:
        stage_costs: per-stage costs; each stage's ``backward`` is split
            into the two halves.
        num_micro_batches: micro-batches per iteration.
        hop_time: cross-device dependency delay.
        weight_fraction: fraction of the backward that is grad-weight
            (``Bw = backward * weight_fraction``, ``Bi = backward - Bw``);
            the default even split keeps ``Bi + Bw`` bit-equal to the
            unsplit backward. Must lie in ``(0, 1)``.
        name: schedule label.
    """
    if not 0.0 < weight_fraction < 1.0:
        raise ValueError(
            f"weight_fraction must lie in (0, 1), got {weight_fraction!r}"
        )
    p = len(stage_costs)
    n = num_micro_batches
    device_tasks: List[List[Task]] = []
    for stage, costs in enumerate(stage_costs):
        tasks: List[Task] = []
        grad_weight_time = costs.backward * weight_fraction
        grad_input_time = costs.backward - grad_weight_time

        def forward(m: int) -> Task:
            return Task(
                key=forward_key(stage, m),
                device=stage,
                duration=costs.forward,
                deps=forward_deps(stage, m, p),
                activation_bytes=costs.activation_bytes,
            )

        def grad_input(m: int) -> Task:
            deps = [forward_key(stage, m)]
            if stage < p - 1:
                # Only the *grad-input* half of the next stage gates this
                # one — the whole point of the split.
                deps.append(backward_input_key(stage + 1, m))
            return Task(
                key=backward_input_key(stage, m),
                device=stage,
                duration=grad_input_time,
                deps=tuple(deps),
            )

        def grad_weight(m: int) -> Task:
            return Task(
                key=backward_weight_key(stage, m),
                device=stage,
                duration=grad_weight_time,
                deps=(backward_input_key(stage, m),),
            )

        warmup = min(p - stage - 1, n)
        for m in range(warmup):
            tasks.append(forward(m))
        for i in range(n - warmup):
            tasks.append(forward(warmup + i))
            tasks.append(grad_input(i))
            tasks.append(grad_weight(i))
        # Drain: propagate the remaining grad-input chain first, then fill
        # the tail bubble with the deferred grad-weights.
        for m in range(n - warmup, n):
            tasks.append(grad_input(m))
        for m in range(n - warmup, n):
            tasks.append(grad_weight(m))
        device_tasks.append(tasks)
    return build_schedule(name, stage_costs, device_tasks, hop_time, n)
