"""Pipeline schedule generators.

Every generator consumes per-stage :class:`~repro.pipeline.tasks.StageCosts`
and emits a :class:`~repro.pipeline.tasks.Schedule` the simulator can
execute:

* :func:`gpipe_schedule` — all forwards then all backwards (Figure 2a).
* :func:`one_f_one_b_schedule` — DAPPLE/PipeDream 1F1B (Figure 2b); the
  schedule AdaPipe builds on.
* :func:`one_f_one_b_2bp` — 1F1B with the 2BP split backward: grad-input
  unblocks the upstream stage immediately, grad-weight fills the drain
  bubble.
* :func:`one_f_one_b_overlapped` — 1F1B with recomputation hidden under
  the cross-device gradient hop (explicit ``RECOMPUTE`` tasks or the
  fused ``Task.overlap`` lowering).
* :func:`interleaved_1f1b_schedule` — Megatron's interleaved variant with
  multiple model chunks per device.
* :func:`chimera_schedule` — bidirectional pipelines (two replicas in
  opposite directions), optionally with forward doubling (ChimeraD).
"""

from repro.pipeline.schedules.chimera import chimera_schedule
from repro.pipeline.schedules.gpipe import gpipe_schedule
from repro.pipeline.schedules.interleaved import interleaved_1f1b_schedule
from repro.pipeline.schedules.onef1b import one_f_one_b_schedule
from repro.pipeline.schedules.overlapped import (
    default_recompute_times,
    one_f_one_b_overlapped,
)
from repro.pipeline.schedules.twobp import one_f_one_b_2bp

__all__ = [
    "chimera_schedule",
    "default_recompute_times",
    "gpipe_schedule",
    "interleaved_1f1b_schedule",
    "one_f_one_b_2bp",
    "one_f_one_b_overlapped",
    "one_f_one_b_schedule",
]
