"""Pipeline schedule generators.

Every generator consumes per-stage :class:`~repro.pipeline.tasks.StageCosts`
and emits a :class:`~repro.pipeline.tasks.Schedule` the simulator can
execute:

* :func:`gpipe_schedule` — all forwards then all backwards (Figure 2a).
* :func:`one_f_one_b_schedule` — DAPPLE/PipeDream 1F1B (Figure 2b); the
  schedule AdaPipe builds on.
* :func:`interleaved_1f1b_schedule` — Megatron's interleaved variant with
  multiple model chunks per device.
* :func:`chimera_schedule` — bidirectional pipelines (two replicas in
  opposite directions), optionally with forward doubling (ChimeraD).
"""

from repro.pipeline.schedules.chimera import chimera_schedule
from repro.pipeline.schedules.gpipe import gpipe_schedule
from repro.pipeline.schedules.interleaved import interleaved_1f1b_schedule
from repro.pipeline.schedules.onef1b import one_f_one_b_schedule

__all__ = [
    "chimera_schedule",
    "gpipe_schedule",
    "interleaved_1f1b_schedule",
    "one_f_one_b_schedule",
]
