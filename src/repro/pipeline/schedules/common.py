"""Shared helpers for schedule generators."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.pipeline.tasks import Schedule, StageCosts, Task, TaskKey, TaskKind


def forward_key(stage: int, micro_batch: int, pipe: int = 0) -> TaskKey:
    return TaskKey(pipe, stage, micro_batch, TaskKind.FORWARD)


def backward_key(stage: int, micro_batch: int, pipe: int = 0) -> TaskKey:
    return TaskKey(pipe, stage, micro_batch, TaskKind.BACKWARD)


def backward_input_key(stage: int, micro_batch: int, pipe: int = 0) -> TaskKey:
    return TaskKey(pipe, stage, micro_batch, TaskKind.BACKWARD_INPUT)


def backward_weight_key(stage: int, micro_batch: int, pipe: int = 0) -> TaskKey:
    return TaskKey(pipe, stage, micro_batch, TaskKind.BACKWARD_WEIGHT)


def recompute_key(stage: int, micro_batch: int, pipe: int = 0) -> TaskKey:
    return TaskKey(pipe, stage, micro_batch, TaskKind.RECOMPUTE)


def forward_deps(
    stage: int, micro_batch: int, num_stages: int, pipe: int = 0
) -> tuple:
    """A forward waits for the same micro-batch on the previous stage."""
    del num_stages
    if stage == 0:
        return ()
    return (forward_key(stage - 1, micro_batch, pipe),)


def backward_deps(
    stage: int, micro_batch: int, num_stages: int, pipe: int = 0
) -> tuple:
    """A backward waits for its own forward and the next stage's backward."""
    deps = [forward_key(stage, micro_batch, pipe)]
    if stage < num_stages - 1:
        deps.append(backward_key(stage + 1, micro_batch, pipe))
    return tuple(deps)


def single_stage_statics(
    stage_costs: Sequence[StageCosts],
) -> tuple:
    """Per-device static and buffer bytes when device i hosts stage i."""
    statics = [costs.static_bytes for costs in stage_costs]
    buffers = [costs.buffer_bytes for costs in stage_costs]
    return statics, buffers


def build_schedule(
    name: str,
    stage_costs: Sequence[StageCosts],
    device_tasks: List[List[Task]],
    hop_time: float,
    num_micro_batches: int,
    device_static_bytes: Optional[List[float]] = None,
    device_buffer_bytes: Optional[List[float]] = None,
) -> Schedule:
    """Assemble and validate a schedule.

    ``validate()`` builds the schedule's compiled lowering
    (:meth:`Schedule.compiled`), which is memoized and reused by the
    simulator — generator-produced schedules reach ``simulate`` with the
    lowering already warm.
    """
    if device_static_bytes is None or device_buffer_bytes is None:
        statics, buffers = single_stage_statics(stage_costs)
        device_static_bytes = device_static_bytes or statics
        device_buffer_bytes = device_buffer_bytes or buffers
    schedule = Schedule(
        name=name,
        num_devices=len(device_tasks),
        device_tasks=device_tasks,
        hop_time=hop_time,
        device_static_bytes=device_static_bytes,
        device_buffer_bytes=device_buffer_bytes,
        num_micro_batches=num_micro_batches,
    )
    schedule.validate()
    return schedule
