"""1F1B scheduling (PipeDream / DAPPLE; Figure 2b of the paper).

Stage ``s`` of ``p`` runs a warmup of ``p - s - 1`` forwards, then
alternates forward/backward through the steady phase, then drains the
remaining backwards. At most ``p - s`` micro-batches are in flight on stage
``s`` — the imbalanced O(p) memory profile AdaPipe exploits.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.pipeline.schedules.common import (
    backward_deps,
    backward_key,
    build_schedule,
    forward_deps,
    forward_key,
)
from repro.pipeline.tasks import Schedule, StageCosts, Task


def one_f_one_b_schedule(
    stage_costs: Sequence[StageCosts],
    num_micro_batches: int,
    hop_time: float = 0.0,
    name: str = "1F1B",
) -> Schedule:
    """Build the 1F1B schedule over ``len(stage_costs)`` stages."""
    p = len(stage_costs)
    n = num_micro_batches
    device_tasks: List[List[Task]] = []
    for stage, costs in enumerate(stage_costs):
        tasks: List[Task] = []

        def forward(m: int) -> Task:
            return Task(
                key=forward_key(stage, m),
                device=stage,
                duration=costs.forward,
                deps=forward_deps(stage, m, p),
                activation_bytes=costs.activation_bytes,
            )

        def backward(m: int) -> Task:
            return Task(
                key=backward_key(stage, m),
                device=stage,
                duration=costs.backward,
                deps=backward_deps(stage, m, p),
            )

        warmup = min(p - stage - 1, n)
        for m in range(warmup):
            tasks.append(forward(m))
        for i in range(n - warmup):
            tasks.append(forward(warmup + i))
            tasks.append(backward(i))
        for m in range(n - warmup, n):
            tasks.append(backward(m))
        device_tasks.append(tasks)
    return build_schedule(name, stage_costs, device_tasks, hop_time, n)
