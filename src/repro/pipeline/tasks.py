"""Task-graph representation of a pipeline schedule.

A *schedule* is, per device, a total order over *tasks*; each task is one
pass of one micro-batch through one stage of one pipeline replica (Chimera
runs two replicas in opposite directions, hence the ``pipe`` coordinate):
a forward, a backward — possibly split into grad-input and grad-weight
halves (2BP) — or an explicit recomputation. Tasks carry explicit
dependency keys, so the simulator needs no knowledge of any particular
scheduling policy — it just executes each device's list in order, waiting
on dependencies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


class TaskKind(enum.Enum):
    """The kinds of device work a schedule can express.

    ``FORWARD``/``BACKWARD`` are the classic twins every schedule family
    used to be built from. Two further families split or extend them:

    * ``BACKWARD_INPUT`` / ``BACKWARD_WEIGHT`` — the 2BP split backward:
      grad-input propagates the activation gradient upstream (so the
      previous stage unblocks as soon as it finishes), grad-weight is
      deferrable filler work. A micro-batch's activations stay pinned
      until its *grad-weight* completes, so ``BACKWARD_WEIGHT`` (not
      ``BACKWARD_INPUT``) is the releasing twin of the forward.
    * ``RECOMPUTE`` — explicit re-execution of discarded activations
      before a backward. It depends only on locally saved state (its own
      forward), never on the incoming gradient, which is what lets its
      duration overlap the cross-device hop window of the backward that
      consumes it.
    """

    FORWARD = "F"
    BACKWARD = "B"
    BACKWARD_INPUT = "Bi"
    BACKWARD_WEIGHT = "Bw"
    RECOMPUTE = "R"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Kinds that release their forward twin's pinned activations when they
#: finish. ``BACKWARD`` only releases when no ``BACKWARD_WEIGHT`` twin
#: exists (the per-kind completeness contract forbids mixing the two for
#: one micro-batch; lowering is defensive about it regardless).
RELEASE_KINDS = (TaskKind.BACKWARD, TaskKind.BACKWARD_WEIGHT)


@dataclass(frozen=True)
class TaskKey:
    """Globally unique identity of a task.

    Attributes:
        pipe: pipeline replica index (0 for everything except Chimera's
            second, reversed pipeline).
        stage: pipeline stage the task runs on.
        micro_batch: micro-batch index within the replica.
        kind: the :class:`TaskKind` of the pass.
    """

    pipe: int
    stage: int
    micro_batch: int
    kind: TaskKind

    def __post_init__(self) -> None:
        # Keys are hashed constantly (dependency lookups, per-task result
        # dicts); precomputing keeps that off the simulator's hot paths.
        object.__setattr__(
            self,
            "_hash",
            hash((self.pipe, self.stage, self.micro_batch, self.kind)),
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]  # set in __post_init__

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.kind}(p{self.pipe},s{self.stage},m{self.micro_batch})"


@dataclass(frozen=True)
class Task:
    """One unit of device work.

    Attributes:
        key: the task's identity.
        device: executing device.
        duration: seconds of device time.
        deps: keys this task waits for. Cross-device dependencies incur the
            schedule's communication hop time.
        activation_bytes: intermediates pinned by this micro-batch on this
            stage from the *start of the forward* until the *end of the
            releasing backward twin* — ``BACKWARD_WEIGHT`` when the
            backward is split, plain ``BACKWARD`` otherwise. Only forwards
            may carry a nonzero value; ``compile_schedule`` rejects it on
            any other kind (the matching forward carries it).
        weight: micro-batches processed (2 for ChimeraD's doubled forwards).
            The simulator sums it into
            ``SimulationResult.device_micro_batch_passes``, the weighted
            useful-work count backing throughput accounting.
        overlap: seconds of this task's leading duration that do not need
            its cross-device inputs — the compute/comm overlap window. The
            engines evaluate ``end = max(local_ready + duration,
            comm_ready + duration - overlap)``: up to ``overlap`` seconds
            of the task run while the hop is still in flight. ``0.0``
            (the default) reproduces the fully serialized hop addend. The
            fused lowering of overlapped recomputation sets it to the
            recompute portion of a backward's duration.
    """

    key: TaskKey
    device: int
    duration: float
    deps: Tuple[TaskKey, ...] = ()
    activation_bytes: float = 0.0
    weight: int = 1
    overlap: float = 0.0


@dataclass(frozen=True)
class StageCosts:
    """Per-micro-batch costs of one stage, as the simulator consumes them.

    Attributes:
        forward: forward time of one micro-batch through the stage.
        backward: backward time (including any recomputation the stage's
            plan performs).
        activation_bytes: intermediates one micro-batch pins on the stage.
        static_bytes: parameters/gradients/optimizer state of the stage.
        buffer_bytes: recompute-buffer high-water mark during backward.
    """

    forward: float
    backward: float
    activation_bytes: float = 0.0
    static_bytes: float = 0.0
    buffer_bytes: float = 0.0


@dataclass
class Schedule:
    """A complete pipeline schedule over one iteration.

    Attributes:
        name: scheduling policy label ("1F1B", "GPipe", ...).
        num_devices: devices in the pipeline group.
        device_tasks: per device, tasks in execution order.
        hop_time: communication delay applied to cross-device dependencies.
        device_static_bytes: static memory per device (sums both of a
            device's stages under Chimera).
        device_buffer_bytes: recompute-buffer bound per device.
        num_micro_batches: micro-batches per iteration per replica.
        link_hops: optional per-link overrides of ``hop_time``, keyed by
            the directed ``(src_device, dst_device)`` pair — how
            perturbation injection expresses degraded p2p links. Links
            absent from the mapping use ``hop_time``.
    """

    name: str
    num_devices: int
    device_tasks: List[List[Task]]
    hop_time: float = 0.0
    device_static_bytes: Optional[List[float]] = None
    device_buffer_bytes: Optional[List[float]] = None
    num_micro_batches: int = 0
    link_hops: Optional[Dict[Tuple[int, int], float]] = None

    def hop_for(self, src_device: int, dst_device: int) -> float:
        """Hop time of a dependency crossing ``src -> dst``."""
        if self.link_hops:
            return self.link_hops.get((src_device, dst_device), self.hop_time)
        return self.hop_time

    def all_tasks(self) -> List[Task]:
        return [task for tasks in self.device_tasks for task in tasks]

    def task_map(self) -> Dict[TaskKey, Task]:
        mapping: Dict[TaskKey, Task] = {}
        for task in self.all_tasks():
            if task.key in mapping:
                raise ValueError(f"duplicate task {task.key}")
            mapping[task.key] = task
        return mapping

    def compiled(self):
        """The schedule's integer-indexed lowering, computed once.

        Both :meth:`validate` and the compiled simulator engine run off this
        :class:`~repro.pipeline.compiled.CompiledSchedule`, so validated
        schedules reach the simulator without rebuilding the task map. The
        lowering (and :meth:`digest`) assume ``device_tasks`` is not mutated
        afterwards.
        """
        cached = getattr(self, "_compiled", None)
        if cached is None:
            from repro.pipeline.compiled import compile_schedule

            cached = compile_schedule(self)
            self._compiled = cached  # type: ignore[attr-defined]  # per-instance memo
        return cached

    def digest(self) -> str:
        """Content digest keying the cross-run simulation cache (memoized)."""
        cached = getattr(self, "_digest", None)
        if cached is None:
            from repro.pipeline.simulator import schedule_digest

            cached = schedule_digest(self)
            self._digest = cached  # type: ignore[attr-defined]  # per-instance memo
        return cached

    def validate(self) -> None:
        """Check structural sanity: unique keys, resolvable dependencies,
        and the per-kind completeness contract — every forward has a
        complete set of same-device backward twins (a plain backward, or a
        grad-input/grad-weight pair, never both) and every auxiliary task
        (recompute, backward halves) has its forward. Violations are
        collected and reported together, grouped per device.

        Runs on the shared :meth:`compiled` lowering, so the task map built
        here is the one the simulator executes."""
        from repro.pipeline.compiled import SimulationError

        try:
            compiled = self.compiled()
        except SimulationError as err:
            # Lowering reports unresolvable dependencies as simulation
            # errors; validation's contract is ValueError.
            raise ValueError(str(err)) from None
        compiled.validate_twins()
