"""Differential audit: memory model vs simulator, per stage and device.

The Section 4.2 memory model gates the entire search — knapsack budgets,
partition feasibility, the sweep's pruning bound — so a wrong in-flight
count silently corrupts every plan. This module cross-checks the model
against the simulator's ground truth: the analytic per-stage in-flight
counts of :func:`repro.profiler.memory.in_flight_micro_batches` against
the measured :func:`repro.pipeline.tracing.stage_in_flight_micro_batch_peaks`,
and the modelled per-device peaks against ``SimulationResult.device_peak_bytes``.

The contract being audited:

* **Conservativeness** — the model must never under-state: modelled
  in-flight >= simulated in-flight on every (pipe, stage), and modelled
  device peak >= simulated device peak on every device, for every
  schedule kind. (The converse — a model that under-counts — is exactly
  the planner-admits-OOM failure mode this audit exists to catch.)
* **Tightness for the 1F1B family** — the plain 1F1B, 2BP split-backward
  and overlapped-recomputation counts are exact (ALGORITHMS.md §13: 2BP
  defers grad-weight releases only into the drain; recompute tasks do not
  touch liveness), so modelled and simulated peaks must agree to
  floating-point tolerance there — the audit reports them "exact", not
  merely "conservative".

``adapipe audit`` runs this over the schedule zoo; ``adapipe validate``
registers it as a differential check; :func:`repro.core.evaluate.evaluate_plan`
surfaces the summary numbers in plan metadata next to the ``sim_*`` keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.pipeline.simulator import SimulationResult, simulate
from repro.pipeline.tasks import Schedule, TaskKind
from repro.pipeline.tracing import stage_in_flight_micro_batch_peaks
from repro.profiler.memory import in_flight_micro_batches

#: Relative slack below which modelled < simulated is treated as float
#: noise rather than an under-count.
_REL_TOLERANCE = 1e-9


@dataclass(frozen=True)
class StageFlightAudit:
    """In-flight accounting for one (pipe, stage): model vs measurement."""

    pipe: int
    stage: int
    device: int
    modeled_in_flight: int
    simulated_in_flight: int
    saved_per_microbatch: float

    @property
    def conservative(self) -> bool:
        return self.modeled_in_flight >= self.simulated_in_flight

    @property
    def exact(self) -> bool:
        return self.modeled_in_flight == self.simulated_in_flight


@dataclass(frozen=True)
class DeviceAudit:
    """Peak-memory accounting for one device: model vs simulator.

    ``capacity_bytes`` is the device's *own* usable capacity when the
    audit runs against a heterogeneous pool (each rank gets the budget of
    the part the plan placed there); ``None`` on homogeneous clusters,
    where the caller compares against the uniform capacity itself.
    """

    device: int
    modeled_peak_bytes: float
    simulated_peak_bytes: float
    capacity_bytes: Optional[float] = None

    @property
    def gap_bytes(self) -> float:
        """Modelled minus simulated; negative means the model under-counts."""
        return self.modeled_peak_bytes - self.simulated_peak_bytes

    @property
    def rel_gap(self) -> float:
        denom = max(abs(self.simulated_peak_bytes), 1.0)
        return self.gap_bytes / denom

    @property
    def conservative(self) -> bool:
        return self.rel_gap >= -_REL_TOLERANCE

    @property
    def within_budget(self) -> bool:
        """Simulated peak within this rank's own capacity (True if unknown)."""
        if self.capacity_bytes is None:
            return True
        return self.simulated_peak_bytes <= self.capacity_bytes


@dataclass(frozen=True)
class MemoryAuditReport:
    """Full differential report for one schedule."""

    schedule_kind: str
    schedule_name: str
    stages: Tuple[StageFlightAudit, ...]
    devices: Tuple[DeviceAudit, ...]

    @property
    def conservative(self) -> bool:
        """True when the model never under-states memory anywhere."""
        return all(s.conservative for s in self.stages) and all(
            d.conservative for d in self.devices
        )

    @property
    def max_rel_gap(self) -> float:
        """Largest relative over-statement across devices (0 if exact)."""
        return max((d.rel_gap for d in self.devices), default=0.0)

    @property
    def max_abs_rel_gap(self) -> float:
        """Largest |relative gap| — 0 means model == simulator everywhere."""
        return max((abs(d.rel_gap) for d in self.devices), default=0.0)

    @property
    def within_budget(self) -> bool:
        """Every rank's simulated peak fits its own device's capacity.

        Trivially True when the audit ran without per-rank capacities
        (homogeneous cluster).
        """
        return all(d.within_budget for d in self.devices)

    def summary(self) -> Dict[str, object]:
        """JSON-compatible numbers for plan metadata / reports."""
        return {
            "schedule_kind": self.schedule_kind,
            "conservative": self.conservative,
            "within_budget": self.within_budget,
            "max_rel_gap": self.max_rel_gap,
            "modeled_peak_bytes": max(
                (d.modeled_peak_bytes for d in self.devices), default=0.0
            ),
            "simulated_peak_bytes": max(
                (d.simulated_peak_bytes for d in self.devices), default=0.0
            ),
            "stages_exact": sum(1 for s in self.stages if s.exact),
            "stages_total": len(self.stages),
        }

    def describe(self) -> str:
        """Human-readable per-stage / per-device discrepancy table."""
        lines = [
            f"memory audit: {self.schedule_name} [{self.schedule_kind}] — "
            + ("model conservative" if self.conservative else "MODEL UNDER-COUNTS")
        ]
        lines.append("  pipe stage device  in-flight model/sim   saved/mb")
        for s in self.stages:
            flag = "" if s.conservative else "  << UNDER"
            lines.append(
                f"  {s.pipe:4d} {s.stage:5d} {s.device:6d}  "
                f"{s.modeled_in_flight:9d}/{s.simulated_in_flight:<9d} "
                f"{s.saved_per_microbatch / 1024**2:8.1f}MiB{flag}"
            )
        lines.append("  device  peak model / sim (GiB)    rel gap")
        for d in self.devices:
            flag = "" if d.conservative else "  << UNDER"
            lines.append(
                f"  {d.device:6d}  {d.modeled_peak_bytes / 1024**3:10.3f} / "
                f"{d.simulated_peak_bytes / 1024**3:<10.3f} "
                f"{d.rel_gap:+9.2%}{flag}"
            )
        return "\n".join(lines)


def _stage_layout(
    schedule: Schedule,
) -> Dict[Tuple[int, int], Tuple[int, float]]:
    """Per (pipe, stage): (device, per-micro-batch activation bytes)."""
    layout: Dict[Tuple[int, int], Tuple[int, float]] = {}
    for task in schedule.all_tasks():
        if task.key.kind != TaskKind.FORWARD:
            continue
        key = (task.key.pipe, task.key.stage)
        per_mb = task.activation_bytes / max(task.weight, 1)
        prev = layout.get(key)
        if prev is None or per_mb > prev[1]:
            layout[key] = (task.device, per_mb)
    return layout


def modeled_stage_in_flight(
    schedule: Schedule, schedule_kind: str
) -> Dict[Tuple[int, int], int]:
    """Analytic in-flight counts for every (pipe, stage) of ``schedule``."""
    layout = _stage_layout(schedule)
    num_stages = max((stage for _, stage in layout), default=-1) + 1
    counts: Dict[Tuple[int, int], int] = {}
    for pipe, stage in layout:
        counts[(pipe, stage)] = in_flight_micro_batches(
            schedule_kind,
            stage,
            num_stages,
            schedule.num_micro_batches,
            num_devices=schedule.num_devices,
        )
    return counts


def modeled_device_peaks(schedule: Schedule, schedule_kind: str) -> List[float]:
    """The memory model's per-device peak for ``schedule``.

    Statics and recompute buffers are taken from the schedule itself (so
    Chimera's two-stages-per-device doubling is included), and each hosted
    stage contributes ``in_flight * saved_per_microbatch`` with the
    schedule-aware analytic count.
    """
    statics = schedule.device_static_bytes or [0.0] * schedule.num_devices
    buffers = schedule.device_buffer_bytes or [0.0] * schedule.num_devices
    peaks = [float(s) + float(b) for s, b in zip(statics, buffers)]
    layout = _stage_layout(schedule)
    flights = modeled_stage_in_flight(schedule, schedule_kind)
    for key, (device, per_mb) in layout.items():
        peaks[device] += flights[key] * per_mb
    return peaks


def audit_schedule_memory(
    schedule: Schedule,
    schedule_kind: str,
    result: Optional[SimulationResult] = None,
    capacities: Optional[Sequence[float]] = None,
) -> MemoryAuditReport:
    """Differential model-vs-simulator audit of one schedule.

    ``capacities`` (per-device usable bytes, heterogeneous pools) makes
    every :class:`DeviceAudit` carry its own budget so the report's
    ``within_budget`` reflects per-rank limits instead of a uniform one.
    """
    if result is None:
        result = simulate(schedule)
    layout = _stage_layout(schedule)
    flights = modeled_stage_in_flight(schedule, schedule_kind)
    measured = stage_in_flight_micro_batch_peaks(result)
    stages = tuple(
        StageFlightAudit(
            pipe=pipe,
            stage=stage,
            device=layout[(pipe, stage)][0],
            modeled_in_flight=flights[(pipe, stage)],
            simulated_in_flight=measured.get((pipe, stage), 0),
            saved_per_microbatch=layout[(pipe, stage)][1],
        )
        for pipe, stage in sorted(layout)
    )
    modeled = modeled_device_peaks(schedule, schedule_kind)
    devices = tuple(
        DeviceAudit(
            device=device,
            modeled_peak_bytes=modeled[device],
            simulated_peak_bytes=result.device_peak_bytes[device],
            capacity_bytes=(
                float(capacities[device])
                if capacities is not None and device < len(capacities)
                else None
            ),
        )
        for device in range(schedule.num_devices)
    )
    return MemoryAuditReport(
        schedule_kind=schedule_kind,
        schedule_name=schedule.name,
        stages=stages,
        devices=devices,
    )


def audit_plan_memory(
    plan,
    cluster,
    schedule_kind: str = "1f1b",
    result: Optional[SimulationResult] = None,
) -> MemoryAuditReport:
    """Audit a :class:`~repro.core.plan.PipelinePlan` under one schedule.

    On a pooled (heterogeneous) cluster each device audit carries the
    capacity of the part the plan's placement metadata puts on that rank,
    so ``report.within_budget`` checks per-rank peaks against per-rank
    budgets.
    """
    # Imported lazily: core.evaluate imports this module for metadata.
    from repro.core.evaluate import build_schedule_for_plan

    schedule = build_schedule_for_plan(plan, cluster, schedule_kind)
    capacities: Optional[List[float]] = None
    if getattr(cluster, "device_pool", None):
        from repro.core.placement import apply_plan_placement

        placed = apply_plan_placement(cluster, plan)
        capacities = [
            float(device.usable_memory_bytes) for device in placed.device_pool
        ]
    return audit_schedule_memory(
        schedule, schedule_kind, result=result, capacities=capacities
    )


def audit_plan_over_schedules(
    plan,
    cluster,
    schedule_kinds: Sequence[str] = (
        "1f1b",
        "2bp",
        "overlap",
        "gpipe",
        "chimera",
        "chimerad",
    ),
) -> Mapping[str, MemoryAuditReport]:
    """Audit a plan across the schedule zoo; skips kinds the plan can't run.

    A kind is skipped (absent from the result) when the schedule builder
    rejects the configuration — e.g. Chimera needs an even stage count.
    """
    reports: Dict[str, MemoryAuditReport] = {}
    for kind in schedule_kinds:
        try:
            reports[kind] = audit_plan_memory(plan, cluster, kind)
        except (ValueError, KeyError):
            continue
    return reports
