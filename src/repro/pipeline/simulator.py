"""Event-driven execution of a pipeline schedule.

Each device executes its task list strictly in order; a task starts once the
device is free and all its dependencies have completed (cross-device
dependencies add the schedule's hop time). This is exactly how a static
pipeline schedule executes on a real cluster, so the resulting makespan *is*
the iteration time.

The simulator also tracks activation memory per device: a micro-batch's
intermediates are pinned from the start of its forward until the end of its
releasing backward twin — the grad-weight half when the backward is split
(2BP), the plain backward otherwise — sitting on top of the device's static
state and recompute buffer.
The per-device high-water mark supports the paper's Figure 1/Figure 8 memory
profiles and OOM detection for infeasible baselines.

Two engines implement these semantics:

* ``"compiled"`` (the default) lowers the schedule once into integer-indexed
  arrays (:mod:`repro.pipeline.compiled`) and executes them with an
  indegree/ready-queue pass that is O(tasks + edges) — no ``TaskKey``
  hashing, no repeated device rescans, and incremental memory tracking with
  no end-of-run event sort.
* ``"reference"`` is the original O(devices x passes) polling loop, kept
  verbatim as the equivalence oracle: both engines produce bit-identical
  results (asserted by tests/test_sim_engine.py). Select it with
  ``simulate(..., engine="reference")`` or ``REPRO_SIM_ENGINE=reference``.

On top sits a digest-keyed cross-run :class:`SimulationCache`: experiments
that re-simulate structurally identical schedules (the same plan evaluated
for several figures, repeated probe simulations, rebuilt executors) reuse
the memoized :class:`SimulationResult` instead of re-running the engine.
The cache is keyed by :func:`schedule_digest` — schedule *content*, not
identity — plus the engine name, and can be disabled with ``cache=False``
or ``REPRO_SIM_CACHE=0``. Cached results share their timing/memory
structures; treat :class:`SimulationResult` as read-only.

A third execution path lives in :mod:`repro.pipeline.batched`: many
duration vectors over one unchanged DAG, swept as a single numpy matrix.
It is not an engine here (it answers iteration times, not full
:class:`SimulationResult` objects) but is bit-equivalent to both scalar
engines row by row; robustness ensembles run on it by default
(``repro.core.robust``). Its ensemble-level cache honours the same
``REPRO_SIM_CACHE`` switch via :func:`simulation_cache_disabled`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.pipeline.compiled import SimulationError
from repro.pipeline.tasks import Schedule, Task, TaskKey, TaskKind

__all__ = [
    "SimulationCache",
    "SimulationError",
    "SimulationResult",
    "global_simulation_cache",
    "schedule_digest",
    "simulate",
    "simulate_reference",
    "simulate_with_info",
    "simulation_cache_disabled",
]

ENGINES = ("compiled", "reference")
_ENGINE_ENV = "REPRO_SIM_ENGINE"
_CACHE_ENV = "REPRO_SIM_CACHE"


@dataclass
class SimulationResult:
    """Outcome of simulating one training iteration.

    Attributes:
        iteration_time: makespan in seconds.
        start_times / end_times: per-task timing.
        device_busy_time: seconds each device spent computing.
        device_peak_bytes: memory high-water mark per device (static +
            buffer + activations).
        device_micro_batch_passes: weighted useful work per device — the
            sum of ``Task.weight`` over the device's tasks, counting each
            forward or backward micro-batch pass once (so ChimeraD's
            doubled forwards count as 2).
        schedule: the simulated schedule (for rendering).
    """

    iteration_time: float
    start_times: Dict[TaskKey, float]
    end_times: Dict[TaskKey, float]
    device_busy_time: List[float]
    device_peak_bytes: List[float]
    device_micro_batch_passes: List[int]
    schedule: Schedule

    @property
    def bubble_ratio(self) -> float:
        """Fraction of device-time spent idle inside the iteration."""
        total = self.iteration_time * len(self.device_busy_time)
        if total == 0:
            return 0.0
        return 1.0 - sum(self.device_busy_time) / total

    @property
    def micro_batch_passes(self) -> int:
        """Total weighted forward+backward micro-batch passes executed."""
        return sum(self.device_micro_batch_passes)

    def peak_bytes(self) -> float:
        return max(self.device_peak_bytes, default=0.0)

    def oom_devices(self, capacity_bytes: float) -> List[int]:
        """Devices whose peak memory exceeds ``capacity_bytes``."""
        return [
            d
            for d, peak in enumerate(self.device_peak_bytes)
            if peak > capacity_bytes
        ]


# -- simulation cache ---------------------------------------------------------


def schedule_digest(schedule: Schedule) -> str:
    """Content digest of everything that determines a simulation's numbers.

    Covers devices, hop time, per-link hop overrides, per-device
    static/buffer bytes and every task's identity, device, duration,
    activation bytes, weight, overlap window, and dependencies. The
    schedule ``name`` and ``num_micro_batches`` are deliberately excluded — they label the
    schedule but do not move any simulated quantity, so e.g. a relabelled
    1F1B schedule replays a cached result. Memoized per instance via
    :meth:`Schedule.digest`.

    The ``link_hops`` coverage is load-bearing for perturbation injection
    (:mod:`repro.pipeline.perturb`): a link-degraded schedule is
    structurally identical to its nominal twin — same tasks, durations and
    edges — so without it the cache would serve a nominal result to a
    perturbed run (and vice versa). An empty/absent mapping digests like
    no mapping at all, since the two simulate identically.
    """
    parts: List[str] = [
        f"sim-v2|{schedule.num_devices}|{schedule.hop_time!r}",
        repr(schedule.device_static_bytes),
        repr(schedule.device_buffer_bytes),
    ]
    if schedule.link_hops:
        parts.append(
            "links:" + ";".join(
                f"{src}>{dst}:{hop!r}"
                for (src, dst), hop in sorted(schedule.link_hops.items())
            )
        )
    append = parts.append
    for tasks in schedule.device_tasks:
        append("|device")
        for task in tasks:
            k = task.key
            append(
                f"{k.pipe},{k.stage},{k.micro_batch},{k.kind.value},"
                f"{task.device},{task.duration!r},{task.activation_bytes!r},"
                f"{task.weight},{task.overlap!r}"
            )
            for dep in task.deps:
                append(f"<{dep.pipe},{dep.stage},{dep.micro_batch},{dep.kind.value}")
    digest = hashlib.blake2b("\n".join(parts).encode(), digest_size=16)
    return digest.hexdigest()


class SimulationCache:
    """Cross-run memo of :class:`SimulationResult` keyed by (engine, digest).

    Entries are evicted FIFO past ``max_entries``. Hits return the stored
    result with only its ``schedule`` field re-pointed at the requesting
    schedule (timing dicts and memory lists are shared — read-only by
    contract).
    """

    def __init__(self, max_entries: int = 256) -> None:
        self._entries: "OrderedDict[Tuple[str, str], SimulationResult]" = (
            OrderedDict()
        )
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def get(self, key: Tuple[str, str]) -> Optional[SimulationResult]:
        found = self._entries.get(key)
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def put(self, key: Tuple[str, str], result: SimulationResult) -> None:
        self._entries[key] = result
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_GLOBAL_CACHE = SimulationCache()


def global_simulation_cache() -> SimulationCache:
    """The process-wide cache ``simulate`` consults by default."""
    return _GLOBAL_CACHE


def _resolve_engine(engine: Optional[str]) -> str:
    engine = engine or os.environ.get(_ENGINE_ENV) or "compiled"
    if engine not in ENGINES:
        raise ValueError(f"unknown simulator engine {engine!r}; pick from {ENGINES}")
    return engine


def simulation_cache_disabled() -> bool:
    """True when ``REPRO_SIM_CACHE`` disables digest-keyed caching
    process-wide — honoured by this module's :class:`SimulationCache`
    default and by the ensemble cache in ``repro.core.robust``."""
    return os.environ.get(_CACHE_ENV, "").lower() in ("0", "off", "false")


def _resolve_cache(
    cache: Union[SimulationCache, bool, None]
) -> Optional[SimulationCache]:
    if cache is None:
        if simulation_cache_disabled():
            return None
        return _GLOBAL_CACHE
    if cache is False:
        return None
    return cache  # an explicit SimulationCache


# -- public entry points ------------------------------------------------------


def simulate(
    schedule: Schedule,
    *,
    engine: Optional[str] = None,
    cache: Union[SimulationCache, bool, None] = None,
) -> SimulationResult:
    """Execute ``schedule`` and return timing and memory results.

    Args:
        schedule: the schedule to execute.
        engine: ``"compiled"`` (default) or ``"reference"``; ``None`` reads
            ``REPRO_SIM_ENGINE`` and falls back to the compiled engine.
        cache: ``None`` uses the global :class:`SimulationCache` (unless
            ``REPRO_SIM_CACHE=0``), ``False`` disables caching, or pass a
            cache instance to scope memoization explicitly.

    Raises:
        SimulationError: if the schedule deadlocks (a device's next task
            waits on a task that can never run) or references unknown tasks.
    """
    return simulate_with_info(schedule, engine=engine, cache=cache)[0]


def simulate_with_info(
    schedule: Schedule,
    *,
    engine: Optional[str] = None,
    cache: Union[SimulationCache, bool, None] = None,
) -> Tuple[SimulationResult, Dict[str, object]]:
    """:func:`simulate` plus an observability record.

    The second element carries ``engine`` (the engine that produced the
    result), ``cache_hit`` (whether this call replayed a memoized result),
    and the consulted cache's cumulative ``cache_hits``/``cache_misses``
    (zeros when caching is off) — the counters plan metadata surfaces.
    """
    engine = _resolve_engine(engine)
    runner = _run_compiled if engine == "compiled" else simulate_reference
    use_cache = _resolve_cache(cache)
    if use_cache is None:
        return runner(schedule), {
            "engine": engine,
            "cache_hit": False,
            "cache_hits": 0,
            "cache_misses": 0,
        }
    key = (engine, schedule.digest())
    found = use_cache.get(key)
    if found is None:
        found = runner(schedule)
        use_cache.put(key, found)
        hit = False
    else:
        found = dataclasses.replace(found, schedule=schedule)
        hit = True
    return found, {
        "engine": engine,
        "cache_hit": hit,
        "cache_hits": use_cache.hits,
        "cache_misses": use_cache.misses,
    }


# -- compiled ready-queue engine ----------------------------------------------


def _run_compiled(schedule: Schedule) -> SimulationResult:
    """O(tasks + edges) execution of the lowered schedule.

    Start times satisfy ``start[i] = max(end[prev-on-device], max over deps
    j of end[j] + hop)`` — a longest-path recurrence over a DAG, so any
    topological processing order yields the same floats as the reference
    polling loop (``max`` is exact; the only additions are the same
    ``end + hop`` terms). Memory is tracked incrementally: each device's
    events are generated in nondecreasing time order (allocs at forward
    start, releases at same-device backward end), so buffering just the
    current timestamp's deltas — applied frees-before-allocs like the
    reference sort's tie-break — reproduces the sorted sweep exactly,
    without the end-of-run sort.
    """
    compiled = schedule.compiled()
    if not compiled.same_device_twins:
        # A backward releasing activations on a *different* device breaks
        # the nondecreasing-event-time invariant; such schedules fail
        # Schedule.validate and only the reference semantics define them.
        return simulate_reference(schedule)

    num_tasks = compiled.num_tasks
    num_devices = schedule.num_devices
    rows = compiled.rows

    # ``ready`` doubles as the start-time array: once a task pops off the
    # stack all its predecessors are done, so its entry is final.
    ready = [0.0] * num_tasks
    ends = [0.0] * num_tasks
    indegree = list(compiled.indegree)

    # Incremental per-device memory tracking: level/peak plus the deltas of
    # the timestamp currently being grouped (frees apply before allocs at
    # equal times, preserved by sorting each tiny group by delta).
    level = [0.0] * num_devices
    peak = [0.0] * num_devices
    pending_time: List[Optional[float]] = [None] * num_devices
    pending: List[List[float]] = [[] for _ in range(num_devices)]

    stack = [i for i in range(num_tasks) if not indegree[i]]
    executed = 0
    while stack:
        i = stack.pop()
        executed += 1
        dur, d, delta, succs = rows[i]
        end = ready[i] + dur
        ends[i] = end
        if delta:
            when = ready[i] if delta > 0.0 else end
            if when == pending_time[d]:
                pending[d].append(delta)
            else:
                group = pending[d]
                if group:
                    if len(group) > 1:
                        group.sort()
                    running = level[d]
                    high = peak[d]
                    for step in group:
                        running += step
                        if running > high:
                            high = running
                    level[d] = running
                    peak[d] = high
                pending_time[d] = when
                pending[d] = [delta]
        for j, add in succs:
            candidate = end + add
            if candidate > ready[j]:
                ready[j] = candidate
            left = indegree[j] - 1
            indegree[j] = left
            if not left:
                stack.append(j)

    if executed < num_tasks:
        finished = {
            compiled.keys[i] for i in range(num_tasks) if not indegree[i]
        }
        raise SimulationError(_deadlock_message(schedule, finished))

    for d in range(num_devices):
        group = pending[d]
        if group:
            if len(group) > 1:
                group.sort()
            running = level[d]
            high = peak[d]
            for step in group:
                running += step
                if running > high:
                    high = running
            level[d] = running
            peak[d] = high

    statics = schedule.device_static_bytes or [0.0] * num_devices
    buffers = schedule.device_buffer_bytes or [0.0] * num_devices
    peaks = [statics[d] + buffers[d] + peak[d] for d in range(num_devices)]
    iteration = 0.0
    for d, last in enumerate(compiled.device_last):
        if last >= 0 and ends[last] > iteration:
            iteration = ends[last]

    keys = compiled.keys
    return SimulationResult(
        iteration_time=iteration,
        start_times=dict(zip(keys, ready)),
        end_times=dict(zip(keys, ends)),
        device_busy_time=list(compiled.device_busy),
        device_peak_bytes=peaks,
        device_micro_batch_passes=list(compiled.device_passes),
        schedule=schedule,
    )


def _deadlock_message(schedule: Schedule, finished: Iterable[TaskKey]) -> str:
    """Per device, name the next waiting task *and* its unmet dependencies,
    so malformed schedules point straight at the broken edge."""
    finished = set(finished)
    stuck: List[str] = []
    for d in range(schedule.num_devices):
        for task in schedule.device_tasks[d]:
            if task.key in finished:
                continue
            unmet = ", ".join(
                str(dep) for dep in task.deps if dep not in finished
            )
            stuck.append(f"{task.key} (device {d}) waiting on [{unmet}]")
            break
    return f"schedule deadlock; waiting tasks: [{'; '.join(stuck)}]"


# -- reference engine (equivalence oracle) ------------------------------------


def simulate_reference(schedule: Schedule) -> SimulationResult:
    """The original round-robin polling engine, kept as the oracle.

    O(devices x passes) with per-dependency ``TaskKey`` dict lookups and an
    end-of-run memory-event sort — slow, but defined directly from the
    scheduling semantics. The compiled engine must match it bit-for-bit.
    """
    task_map = schedule.task_map()
    for task in task_map.values():
        for dep in task.deps:
            if dep not in task_map:
                raise SimulationError(f"{task.key} depends on missing task {dep}")

    end_times: Dict[TaskKey, float] = {}
    start_times: Dict[TaskKey, float] = {}
    device_time = [0.0] * schedule.num_devices
    device_busy = [0.0] * schedule.num_devices
    device_passes = [0] * schedule.num_devices
    pointers = [0] * schedule.num_devices
    remaining = sum(len(tasks) for tasks in schedule.device_tasks)

    # Memory bookkeeping: activations pinned between forward start and
    # backward end, tracked as (time, delta) events per device.
    memory_events: List[List[Tuple[float, float]]] = [
        [] for _ in range(schedule.num_devices)
    ]
    forward_device: Dict[TaskKey, int] = {}

    while remaining > 0:
        progressed = False
        for device in range(schedule.num_devices):
            tasks = schedule.device_tasks[device]
            while pointers[device] < len(tasks):
                task = tasks[pointers[device]]
                ready_at = device_time[device]
                blocked = False
                for dep in task.deps:
                    if dep not in end_times:
                        blocked = True
                        break
                    dep_end = end_times[dep]
                    if task_map[dep].device != device:
                        add = schedule.hop_for(task_map[dep].device, device)
                        if task.overlap:
                            # Compute/comm overlap window: the task's
                            # first `overlap` seconds run while the hop is
                            # in flight. Same float ops as the compiled
                            # lowering's `hop - overlap` addend, so both
                            # engines stay bit-identical.
                            add -= task.overlap
                        dep_end += add
                    ready_at = max(ready_at, dep_end)
                if blocked:
                    break
                start_times[task.key] = ready_at
                end = ready_at + task.duration
                end_times[task.key] = end
                device_time[device] = end
                device_busy[device] += task.duration
                device_passes[device] += task.weight
                _record_memory(
                    task, ready_at, end, device, memory_events, forward_device, task_map
                )
                pointers[device] += 1
                remaining -= 1
                progressed = True
        if not progressed:
            raise SimulationError(_deadlock_message(schedule, end_times))

    peaks = _memory_peaks(schedule, memory_events)
    return SimulationResult(
        iteration_time=max(device_time, default=0.0),
        start_times=start_times,
        end_times=end_times,
        device_busy_time=device_busy,
        device_peak_bytes=peaks,
        device_micro_batch_passes=device_passes,
        schedule=schedule,
    )


def _record_memory(
    task: Task,
    start: float,
    end: float,
    device: int,
    memory_events: List[List[Tuple[float, float]]],
    forward_device: Dict[TaskKey, int],
    task_map: Dict[TaskKey, Task],
) -> None:
    """Pin activations at forward start, release them at the end of the
    forward's releasing twin (grad-weight under a split backward, the
    plain backward otherwise). Grad-input and recompute tasks touch no
    activation accounting."""
    del end  # backward release uses its own end below
    kind = task.key.kind
    if kind == TaskKind.FORWARD:
        if task.activation_bytes > 0:
            memory_events[device].append((start, task.activation_bytes))
        forward_device[task.key] = device
        return
    if kind in (TaskKind.BACKWARD_INPUT, TaskKind.RECOMPUTE):
        return
    if kind == TaskKind.BACKWARD and (
        TaskKey(
            task.key.pipe, task.key.stage, task.key.micro_batch,
            TaskKind.BACKWARD_WEIGHT,
        )
        in task_map
    ):
        # Mixed plain/split backwards fail validation; mirror the compiled
        # lowering and never double-release regardless.
        return
    twin = TaskKey(
        task.key.pipe, task.key.stage, task.key.micro_batch, TaskKind.FORWARD
    )
    twin_task = task_map.get(twin)
    if twin_task is not None and twin_task.activation_bytes > 0:
        release_at = start + task.duration
        memory_events[forward_device.get(twin, device)].append(
            (release_at, -twin_task.activation_bytes)
        )


def _memory_peaks(
    schedule: Schedule, memory_events: List[List[Tuple[float, float]]]
) -> List[float]:
    statics = schedule.device_static_bytes or [0.0] * schedule.num_devices
    buffers = schedule.device_buffer_bytes or [0.0] * schedule.num_devices
    peaks: List[float] = []
    for device in range(schedule.num_devices):
        level = 0.0
        peak = 0.0
        # Frees sort before allocations at equal timestamps so an exactly
        # back-to-back free/alloc pair does not inflate the peak.
        for _, delta in sorted(memory_events[device], key=lambda item: (item[0], item[1])):
            level += delta
            peak = max(peak, level)
        peaks.append(statics[device] + buffers[device] + peak)
    return peaks
