"""Event-driven execution of a pipeline schedule.

Each device executes its task list strictly in order; a task starts once the
device is free and all its dependencies have completed (cross-device
dependencies add the schedule's hop time). This is exactly how a static
pipeline schedule executes on a real cluster, so the resulting makespan *is*
the iteration time.

The simulator also tracks activation memory per device: a micro-batch's
intermediates are pinned from the start of its forward until the end of its
backward, sitting on top of the device's static state and recompute buffer.
The per-device high-water mark supports the paper's Figure 1/Figure 8 memory
profiles and OOM detection for infeasible baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.pipeline.tasks import Schedule, Task, TaskKey, TaskKind


class SimulationError(RuntimeError):
    """Raised on malformed schedules (unresolvable dependencies)."""


@dataclass
class SimulationResult:
    """Outcome of simulating one training iteration.

    Attributes:
        iteration_time: makespan in seconds.
        start_times / end_times: per-task timing.
        device_busy_time: seconds each device spent computing.
        device_peak_bytes: memory high-water mark per device (static +
            buffer + activations).
        schedule: the simulated schedule (for rendering).
    """

    iteration_time: float
    start_times: Dict[TaskKey, float]
    end_times: Dict[TaskKey, float]
    device_busy_time: List[float]
    device_peak_bytes: List[float]
    schedule: Schedule

    @property
    def bubble_ratio(self) -> float:
        """Fraction of device-time spent idle inside the iteration."""
        total = self.iteration_time * len(self.device_busy_time)
        if total == 0:
            return 0.0
        return 1.0 - sum(self.device_busy_time) / total

    def peak_bytes(self) -> float:
        return max(self.device_peak_bytes, default=0.0)

    def oom_devices(self, capacity_bytes: float) -> List[int]:
        """Devices whose peak memory exceeds ``capacity_bytes``."""
        return [
            d
            for d, peak in enumerate(self.device_peak_bytes)
            if peak > capacity_bytes
        ]


def simulate(schedule: Schedule) -> SimulationResult:
    """Execute ``schedule`` and return timing and memory results.

    Raises:
        SimulationError: if the schedule deadlocks (a device's next task
            waits on a task that can never run) or references unknown tasks.
    """
    task_map = schedule.task_map()
    for task in task_map.values():
        for dep in task.deps:
            if dep not in task_map:
                raise SimulationError(f"{task.key} depends on missing task {dep}")

    end_times: Dict[TaskKey, float] = {}
    start_times: Dict[TaskKey, float] = {}
    device_time = [0.0] * schedule.num_devices
    device_busy = [0.0] * schedule.num_devices
    pointers = [0] * schedule.num_devices
    remaining = sum(len(tasks) for tasks in schedule.device_tasks)

    # Memory bookkeeping: activations pinned between forward start and
    # backward end, tracked as (time, delta) events per device.
    memory_events: List[List[Tuple[float, float]]] = [
        [] for _ in range(schedule.num_devices)
    ]
    forward_device: Dict[TaskKey, int] = {}

    while remaining > 0:
        progressed = False
        for device in range(schedule.num_devices):
            tasks = schedule.device_tasks[device]
            while pointers[device] < len(tasks):
                task = tasks[pointers[device]]
                ready_at = device_time[device]
                blocked = False
                for dep in task.deps:
                    if dep not in end_times:
                        blocked = True
                        break
                    dep_end = end_times[dep]
                    if task_map[dep].device != device:
                        dep_end += schedule.hop_time
                    ready_at = max(ready_at, dep_end)
                if blocked:
                    break
                start_times[task.key] = ready_at
                end = ready_at + task.duration
                end_times[task.key] = end
                device_time[device] = end
                device_busy[device] += task.duration
                _record_memory(
                    task, ready_at, end, device, memory_events, forward_device, task_map
                )
                pointers[device] += 1
                remaining -= 1
                progressed = True
        if not progressed:
            stuck = [
                str(schedule.device_tasks[d][pointers[d]].key)
                for d in range(schedule.num_devices)
                if pointers[d] < len(schedule.device_tasks[d])
            ]
            raise SimulationError(f"schedule deadlock; waiting tasks: {stuck}")

    peaks = _memory_peaks(schedule, memory_events)
    return SimulationResult(
        iteration_time=max(device_time, default=0.0),
        start_times=start_times,
        end_times=end_times,
        device_busy_time=device_busy,
        device_peak_bytes=peaks,
        schedule=schedule,
    )


def _record_memory(
    task: Task,
    start: float,
    end: float,
    device: int,
    memory_events: List[List[Tuple[float, float]]],
    forward_device: Dict[TaskKey, int],
    task_map: Dict[TaskKey, Task],
) -> None:
    """Pin activations at forward start, release them at backward end."""
    del end  # backward release uses its own end below
    if task.key.kind == TaskKind.FORWARD:
        if task.activation_bytes > 0:
            memory_events[device].append((start, task.activation_bytes))
        forward_device[task.key] = device
    else:
        twin = TaskKey(
            task.key.pipe, task.key.stage, task.key.micro_batch, TaskKind.FORWARD
        )
        twin_task = task_map.get(twin)
        if twin_task is not None and twin_task.activation_bytes > 0:
            release_at = start + task.duration
            memory_events[forward_device.get(twin, device)].append(
                (release_at, -twin_task.activation_bytes)
            )


def _memory_peaks(
    schedule: Schedule, memory_events: List[List[Tuple[float, float]]]
) -> List[float]:
    statics = schedule.device_static_bytes or [0.0] * schedule.num_devices
    buffers = schedule.device_buffer_bytes or [0.0] * schedule.num_devices
    peaks: List[float] = []
    for device in range(schedule.num_devices):
        level = 0.0
        peak = 0.0
        # Frees sort before allocations at equal timestamps so an exactly
        # back-to-back free/alloc pair does not inflate the peak.
        for _, delta in sorted(memory_events[device], key=lambda item: (item[0], item[1])):
            level += delta
            peak = max(peak, level)
        peaks.append(statics[device] + buffers[device] + peak)
    return peaks
