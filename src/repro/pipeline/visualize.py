"""ASCII rendering of simulated pipeline timelines.

Produces the kind of stage/time diagram shown in Figure 2 of the paper:
one row per device, forward cells as the micro-batch digit, backward cells
as the digit in brackets, idle time as dots.
"""

from __future__ import annotations

from typing import List

from repro.pipeline.simulator import SimulationResult
from repro.pipeline.tasks import TaskKind


def render_timeline(result: SimulationResult, width: int = 100) -> str:
    """Render a simulation as an ASCII Gantt chart.

    Args:
        result: a finished simulation.
        width: character columns the iteration is scaled into.

    Returns:
        A multi-line string, one row per device.
    """
    total = result.iteration_time
    if total <= 0:
        return "(empty schedule)"
    scale = width / total
    rows: List[str] = []
    for device, tasks in enumerate(result.schedule.device_tasks):
        row = ["."] * (width + 1)
        for task in tasks:
            start = result.start_times[task.key]
            end = result.end_times[task.key]
            lo = int(start * scale)
            hi = max(lo + 1, int(end * scale))
            label = str(task.key.micro_batch % 10)
            fill = label if task.key.kind == TaskKind.FORWARD else label.lower()
            marker = fill if task.key.kind == TaskKind.FORWARD else f"{label}"
            for col in range(lo, min(hi, width + 1)):
                row[col] = marker if task.key.kind == TaskKind.FORWARD else "#"
        rows.append(f"dev{device:2d} |" + "".join(row))
    legend = "digits = forward micro-batch, # = backward, . = bubble"
    header = f"{result.schedule.name}: {total * 1e3:.2f} ms, bubble {result.bubble_ratio:.1%}"
    return "\n".join([header, legend, *rows])


def render_memory_timeline(result: SimulationResult, width: int = 80) -> str:
    """Render per-device activation memory over time as an ASCII area plot.

    Rows are devices; each row shows the in-flight activation level sampled
    across the iteration, scaled to the global peak — the dynamic view
    behind Figure 1's per-stage peaks (stage 0 stays near its ceiling the
    longest; later stages fill later and drain sooner).
    """
    schedule = result.schedule
    total = result.iteration_time
    if total <= 0:
        return "(empty schedule)"

    # Rebuild the activation level per device from task timings: a forward
    # pins its activation bytes from its start until the end of its
    # releasing twin (grad-weight when the backward is split).
    events = {device: [] for device in range(schedule.num_devices)}
    for task in schedule.all_tasks():
        if task.key.kind != TaskKind.FORWARD or task.activation_bytes <= 0:
            continue
        end = total
        for kind in (TaskKind.BACKWARD_WEIGHT, TaskKind.BACKWARD):
            twin = type(task.key)(
                task.key.pipe, task.key.stage, task.key.micro_batch, kind
            )
            if twin in result.end_times:
                end = result.end_times[twin]
                break
        start = result.start_times[task.key]
        events[task.device].append((start, task.activation_bytes))
        events[task.device].append((end, -task.activation_bytes))

    samples = {}
    peak = 0.0
    for device, device_events in events.items():
        device_events.sort()
        level = 0.0
        series = []
        cursor = 0
        for column in range(width):
            time_point = (column + 1) / width * total
            while cursor < len(device_events) and device_events[cursor][0] <= time_point:
                level += device_events[cursor][1]
                cursor += 1
            series.append(level)
            peak = max(peak, level)
        samples[device] = series

    if peak <= 0:
        return "(no activation traffic recorded)"
    blocks = " ▁▂▃▄▅▆▇█"
    rows = [
        f"activation memory over time (peak {peak:.3g} bytes/unit), "
        f"{schedule.name}"
    ]
    for device in range(schedule.num_devices):
        cells = "".join(
            blocks[min(len(blocks) - 1, int(level / peak * (len(blocks) - 1) + 0.5))]
            for level in samples[device]
        )
        rows.append(f"dev{device:2d} |{cells}|")
    return "\n".join(rows)
