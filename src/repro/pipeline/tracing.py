"""Structured execution traces and the result collector.

The paper's artifact records, per worker, "the timestamps and memory
information of each forward and backward pass", and ships a
``collect_result.py`` that summarises all runs. This module reproduces
both: :func:`trace_simulation` turns a simulator run into per-task JSONL
records, and :class:`ResultCollector` aggregates many experiment outcomes
into the artifact-style summary table.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.pipeline.simulator import SimulationResult
from repro.pipeline.tasks import TaskKind


@dataclass(frozen=True)
class TraceRecord:
    """One executed task, as a worker log line would record it."""

    device: int
    stage: int
    pipe: int
    micro_batch: int
    kind: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def trace_simulation(result: SimulationResult) -> List[TraceRecord]:
    """Flatten a simulation into per-task records, sorted by start time."""
    records = []
    for task in result.schedule.all_tasks():
        records.append(
            TraceRecord(
                device=task.device,
                stage=task.key.stage,
                pipe=task.key.pipe,
                micro_batch=task.key.micro_batch,
                kind=str(task.key.kind),
                start=result.start_times[task.key],
                end=result.end_times[task.key],
            )
        )
    records.sort(key=lambda r: (r.start, r.device))
    return records


def write_trace_jsonl(result: SimulationResult, path: str) -> int:
    """Write the trace as JSON-lines; returns the record count."""
    records = trace_simulation(result)
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(asdict(record)) + "\n")
    return len(records)


def phase_breakdown(result: SimulationResult) -> Dict[str, float]:
    """Split the iteration of a (single-replica) 1F1B run into the paper's
    warmup / steady / ending phases, as seen from stage 0.

    Warmup ends at stage 0's first backward start; ending begins at stage
    0's last forward end.
    """
    stage0 = [
        r for r in trace_simulation(result) if r.stage == 0 and r.pipe == 0
    ]
    backwards = [r for r in stage0 if r.kind == str(TaskKind.BACKWARD)]
    forwards = [r for r in stage0 if r.kind == str(TaskKind.FORWARD)]
    if not backwards or not forwards:
        return {"warmup": 0.0, "steady": 0.0, "ending": 0.0}
    warmup_end = min(r.start for r in backwards)
    ending_start = max(r.end for r in forwards)
    total = result.iteration_time
    ending_start = min(max(ending_start, warmup_end), total)
    return {
        "warmup": warmup_end,
        "steady": ending_start - warmup_end,
        "ending": total - ending_start,
    }


@dataclass
class ResultCollector:
    """Aggregates experiment outcomes into one summary, artifact-style."""

    entries: List[Dict] = field(default_factory=list)

    def add(
        self,
        model: str,
        method: str,
        sequence_length: int,
        strategy: tuple,
        iteration_time: Optional[float],
        peak_memory_bytes: Optional[float] = None,
    ) -> None:
        self.entries.append(
            {
                "model": model,
                "method": method,
                "sequence_length": sequence_length,
                "strategy": tuple(strategy),
                "iteration_time": iteration_time,
                "peak_memory_bytes": peak_memory_bytes,
            }
        )

    def best_by_method(self, model: str, sequence_length: int) -> Dict[str, Dict]:
        """Fastest feasible entry per method for one workload."""
        best: Dict[str, Dict] = {}
        for entry in self.entries:
            if entry["model"] != model:
                continue
            if entry["sequence_length"] != sequence_length:
                continue
            if entry["iteration_time"] is None:
                continue
            current = best.get(entry["method"])
            if current is None or entry["iteration_time"] < current["iteration_time"]:
                best[entry["method"]] = entry
        return best

    def speedup(
        self, model: str, sequence_length: int, method: str, baseline: str
    ) -> Optional[float]:
        best = self.best_by_method(model, sequence_length)
        if method not in best or baseline not in best:
            return None
        return best[baseline]["iteration_time"] / best[method]["iteration_time"]

    def render(self) -> str:
        """The artifact's expected_result.txt-style summary."""
        lines = ["model | seq | method | (t,p,d) | iteration | peak GiB"]
        for entry in sorted(
            self.entries,
            key=lambda e: (e["model"], e["sequence_length"], e["method"]),
        ):
            time_text = (
                "OOM"
                if entry["iteration_time"] is None
                else f"{entry['iteration_time']:.3f}s"
            )
            peak = entry.get("peak_memory_bytes")
            peak_text = "-" if peak is None else f"{peak / 1024**3:.1f}"
            lines.append(
                f"{entry['model']} | {entry['sequence_length']} | "
                f"{entry['method']} | {entry['strategy']} | {time_text} | {peak_text}"
            )
        return "\n".join(lines)

    def write_json(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.entries, handle, indent=2, default=list)


def _releases(kind: str, key: Tuple[int, int, int], split: set) -> bool:
    """Whether a task record of ``kind`` ends its micro-batch's activation
    span: the grad-weight half when the backward is split, the plain
    backward otherwise. Grad-input and recompute tasks never release."""
    if kind == str(TaskKind.BACKWARD_WEIGHT):
        return True
    return kind == str(TaskKind.BACKWARD) and key not in split


def stage_in_flight_peaks(result: SimulationResult) -> Dict[Tuple[int, int], int]:
    """Per (pipe, stage): the peak number of micro-batches whose
    activations are simultaneously live (forward started, releasing
    backward twin — grad-weight under a split backward — not yet
    finished). For plain 1F1B this reproduces the analytic ``p - s``; for
    interleaved or bidirectional schedules it measures what no closed form
    gives — the multiplier adaptive recomputation needs per stage."""
    intervals: Dict[Tuple[int, int], List[Tuple[float, float]]] = {}
    forward_start: Dict[Tuple[int, int, int], float] = {}
    records = trace_simulation(result)
    split = {
        (r.pipe, r.stage, r.micro_batch)
        for r in records
        if r.kind == str(TaskKind.BACKWARD_WEIGHT)
    }
    for record in records:
        key = (record.pipe, record.stage, record.micro_batch)
        if record.kind == str(TaskKind.FORWARD):
            forward_start[key] = record.start
        elif _releases(record.kind, key, split):
            start = forward_start.get(key, record.start)
            intervals.setdefault((record.pipe, record.stage), []).append(
                (start, record.end)
            )
    peaks: Dict[Tuple[int, int], int] = {}
    for stage_key, spans in intervals.items():
        events = []
        for start, end in spans:
            events.append((start, 1))
            events.append((end, -1))
        events.sort(key=lambda item: (item[0], item[1]))
        level = peak = 0
        for _, delta in events:
            level += delta
            peak = max(peak, level)
        peaks[stage_key] = peak
    return peaks


def stage_in_flight_micro_batch_peaks(
    result: SimulationResult,
) -> Dict[Tuple[int, int], int]:
    """Like :func:`stage_in_flight_peaks`, but in micro-batch units.

    Each live activation interval is weighted by its task's ``weight`` —
    the number of micro-batches the task processes (2 for ChimeraD's
    doubled forwards, 1 elsewhere) — so the peaks are directly comparable
    with the memory model's in-flight counts and with
    ``saved_per_microbatch`` multipliers. For unit-weight schedules this
    coincides with :func:`stage_in_flight_peaks` exactly.
    """
    forward_start: Dict[Tuple[int, int, int], float] = {}
    weight_of: Dict[Tuple[int, int, int], int] = {}
    spans: Dict[Tuple[int, int], List[Tuple[float, float, int]]] = {}
    tasks = result.schedule.all_tasks()
    split = {
        (t.key.pipe, t.key.stage, t.key.micro_batch)
        for t in tasks
        if t.key.kind == TaskKind.BACKWARD_WEIGHT
    }
    for task in tasks:
        key = (task.key.pipe, task.key.stage, task.key.micro_batch)
        if task.key.kind == TaskKind.FORWARD:
            forward_start[key] = result.start_times[task.key]
            weight_of[key] = task.weight
        elif _releases(task.key.kind.value, key, split):
            end = result.end_times[task.key]
            start = forward_start.get(key, result.start_times[task.key])
            weight = weight_of.get(key, task.weight)
            spans.setdefault((task.key.pipe, task.key.stage), []).append(
                (start, end, weight)
            )
    peaks: Dict[Tuple[int, int], int] = {}
    for stage_key, stage_spans in spans.items():
        events = []
        for start, end, weight in stage_spans:
            events.append((start, weight))
            events.append((end, -weight))
        # Sort negatives first at equal timestamps: a backward that ends
        # exactly when a forward begins frees its memory first, matching
        # the simulator's free-before-alloc accounting.
        events.sort(key=lambda item: (item[0], item[1]))
        level = peak = 0
        for _, delta in events:
            level += delta
            peak = max(peak, level)
        peaks[stage_key] = peak
    return peaks
