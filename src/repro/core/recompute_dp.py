"""Adaptive recomputation: the per-stage knapsack DP (Section 4.3).

Choosing which computation units to save is a 0/1 knapsack: saving unit
``U`` costs ``in_flight * Mem(U)`` bytes (``in_flight = min(n, p - s)``
under 1F1B) of the stage's residual memory budget
and *earns* ``Time_f(U)`` of backward time (the recompute it avoids). The
optimal strategy maximizes the earned time under the budget (Equations 1–2).

Two of the paper's Section 5.3 optimizations are implemented:

* **GCD quantization** — activation sizes share a large power-of-two GCD,
  so weights and budget are divided by it, shrinking the DP table.
* Homogeneity: identical units across a stage's layers are folded into one
  *bounded* knapsack item with a copy count, solved via binary splitting —
  the table has O(log copies) rows per unit type instead of one per layer.

A ``max_cells`` guard re-quantizes (conservatively, rounding weights up) if
a pathological input would otherwise explode the table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class UnitItem:
    """One computation-unit type within a stage.

    Attributes:
        name: unit type, e.g. ``"ffn.act"``.
        value: backward time saved per copy kept (its ``Time_f``).
        weight_bytes: ``Mem(U)`` per micro-batch, *before* the schedule's
            in-flight multiplier.
        copies: how many instances of this unit the stage's layers contain.
    """

    name: str
    value: float
    weight_bytes: float
    copies: int


@dataclass(frozen=True)
class RecomputeResult:
    """Outcome of the per-stage knapsack.

    Attributes:
        feasible: False when even saving nothing exceeds the budget
            (negative residual budget).
        saved_value: total recompute time avoided (the paper's
            ``T_{s,N}(M)``).
        saved_counts: per unit type, how many optional copies are saved.
        saved_bytes: bytes of optional intermediates kept, per micro-batch.
    """

    feasible: bool
    saved_value: float
    saved_counts: Mapping[str, int]
    saved_bytes: float


def optimize_stage_recompute(
    items: Sequence[UnitItem],
    budget_bytes: float,
    in_flight: int,
    max_cells: int = 4_000_000,
) -> RecomputeResult:
    """Solve the stage's save-or-recompute knapsack.

    Args:
        items: optional (non-always-saved) unit types with copy counts.
        budget_bytes: residual memory for optional intermediates — device
            capacity minus static state, recompute buffer, and the
            always-saved intermediates.
        in_flight: the schedule's in-flight micro-batch multiplier on item
            weights (``min(n, p - s)`` for 1F1B).
        max_cells: cap on DP table cells; exceeded budgets trigger coarser
            (conservative) quantization.

    Returns:
        The optimal save set, as per-type counts.
    """
    if budget_bytes < 0:
        return RecomputeResult(False, 0.0, {}, 0.0)
    if not items or budget_bytes == 0:
        return RecomputeResult(True, 0.0, {item.name: 0 for item in items}, 0.0)

    # Ceil, not round: a fractional byte weight must never round down, or
    # the DP could "save" a set whose true weight exceeds the budget.
    weights = [max(1, math.ceil(item.weight_bytes * in_flight)) for item in items]
    budget = int(budget_bytes)

    quantum = math.gcd(*weights) if weights else 1
    num_chunks = sum(max(1, item.copies.bit_length() + 1) for item in items)
    columns = budget // quantum + 1
    if columns * num_chunks > max_cells:
        quantum = max(quantum, math.ceil(budget * num_chunks / max_cells))
        columns = budget // quantum + 1

    # Binary splitting of bounded items into 0/1 chunks. Weights round up
    # so quantization never understates memory.
    chunk_names: List[str] = []
    chunk_counts: List[int] = []
    chunk_weights: List[int] = []
    chunk_values: List[float] = []
    for item, weight in zip(items, weights):
        remaining = item.copies
        power = 1
        while remaining > 0:
            take = min(power, remaining)
            chunk_names.append(item.name)
            chunk_counts.append(take)
            chunk_weights.append(_ceil_div(weight, quantum) * take)
            chunk_values.append(item.value * take)
            remaining -= take
            power *= 2

    best = np.zeros(columns, dtype=np.float64)
    taken = np.zeros((len(chunk_weights), columns), dtype=bool)
    for row, (w, v) in enumerate(zip(chunk_weights, chunk_values)):
        if w > columns - 1:
            continue
        candidate = best[:-w] + v
        improved = candidate > best[w:]
        taken[row, w:] = improved
        best[w:] = np.where(improved, candidate, best[w:])

    # Backtrack from the *leftmost* optimal column (np.argmax returns the
    # first maximum): among equal-value solutions this ties-break toward
    # the one using the least memory.
    column = int(np.argmax(best))
    saved_counts: Dict[str, int] = {item.name: 0 for item in items}
    saved_value = 0.0
    saved_bytes = 0.0
    weight_of = {item.name: item.weight_bytes for item in items}
    for row in range(len(chunk_weights) - 1, -1, -1):
        if taken[row, column]:
            name = chunk_names[row]
            saved_counts[name] += chunk_counts[row]
            saved_value += chunk_values[row]
            saved_bytes += weight_of[name] * chunk_counts[row]
            column -= chunk_weights[row]
    return RecomputeResult(True, saved_value, saved_counts, saved_bytes)


def brute_force_recompute(
    items: Sequence[UnitItem], budget_bytes: float, in_flight: int
) -> Tuple[bool, float]:
    """Exponential reference solver (tests only): optimal saved value."""
    if budget_bytes < 0:
        return False, 0.0
    expanded: List[Tuple[float, float]] = []
    for item in items:
        expanded.extend(
            (item.value, item.weight_bytes * in_flight) for _ in range(item.copies)
        )
    best = 0.0
    for mask in range(1 << len(expanded)):
        value = 0.0
        weight = 0.0
        for bit, (v, w) in enumerate(expanded):
            if mask >> bit & 1:
                value += v
                weight += w
        if weight <= budget_bytes:
            best = max(best, value)
    return True, best


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)
