"""Adaptive partitioning: Algorithm 1 of the paper (Section 5).

The 1F1B iteration time seen from stage ``s`` decomposes into the warmup,
steady, and ending phases:

* ``W_{s-1} = max(W_s + B_s, (p - s) F_{s-1}) + F_{s-1}``   (Equation 3)
* ``E`` follows the mirrored recurrence with forwards and backwards swapped
* ``M_s = max(M_{s+1}, F_s + B_s)``, ``S_s = (n - p + s) M_s``

and the total time is ``W_0 + E_0 + S_0``. Algorithm 1 sweeps stages from
last to first and, for every suffix starting layer ``i``, picks the stage
boundary ``j`` minimizing the modelled total — consuming the per-stage
optima ``f[s,i,j]``/``b[s,i,j]`` that the adaptive-recomputation DP
provides through the isomorphism cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.isomorphism import StageEval, StageEvaluator


@dataclass(frozen=True)
class PartitionState:
    """The paper's ``P[s, i]`` record: W, E, M, F, B, T plus the cut."""

    warmup: float
    ending: float
    max_micro_step: float
    forward: float
    backward: float
    total: float
    split: int  # last layer index (inclusive) of stage s


@dataclass(frozen=True)
class PartitionResult:
    """Output of the partitioning DP.

    Attributes:
        feasible: whether any memory-feasible partition exists.
        total_time: modelled iteration time ``W_0 + E_0 + S_0``.
        boundaries: per stage, its half-open layer range.
        stage_evals: the inner-DP evaluation backing each stage.
    """

    feasible: bool
    total_time: float
    boundaries: Tuple[Tuple[int, int], ...]
    stage_evals: Tuple[StageEval, ...]


def optimize_partition(
    evaluator: StageEvaluator,
    num_stages: int,
    num_micro_batches: int,
    hop_time: float = 0.0,
) -> PartitionResult:
    """Run Algorithm 1 over ``evaluator``'s layer sequence.

    Args:
        evaluator: provides ``f``/``b`` for candidate stages (with the
            optimal recomputation already folded in).
        num_stages: pipeline parallel size ``p``.
        num_micro_batches: micro-batches ``n`` per iteration.
        hop_time: stage-boundary communication added to each non-final
            stage's forward and backward time (0 reproduces the paper's
            model, which folds communication into profiled times).
    """
    p = num_stages
    n = num_micro_batches
    L = evaluator.num_layers
    if p > L:
        return PartitionResult(False, math.inf, (), ())
    steady_count = lambda s: max(0, n - p + s)  # noqa: E731

    # states[s][i] = best PartitionState for layers i.. handled by stages s..
    states: List[Dict[int, PartitionState]] = [dict() for _ in range(p)]

    # Base case: the last stage takes layers i..L-1.
    for i in range(p - 1, L):
        eval_ = evaluator.evaluate(p - 1, i, L - 1)
        if not eval_.feasible:
            continue
        f, b = eval_.forward, eval_.backward
        states[p - 1][i] = PartitionState(
            warmup=f,
            ending=b,
            max_micro_step=f + b,
            forward=f,
            backward=b,
            total=f + b + steady_count(p - 1) * (f + b),
            split=L - 1,
        )

    for s in range(p - 2, -1, -1):
        j_hi = L - p + s  # leave >= 1 layer per remaining stage
        for i in range(s, j_hi + 1):
            best: Optional[PartitionState] = None
            for j in range(i, j_hi + 1):
                nxt = states[s + 1].get(j + 1)
                if nxt is None:
                    continue
                eval_ = evaluator.evaluate(s, i, j)
                if not eval_.feasible:
                    continue
                f = eval_.forward + hop_time
                b = eval_.backward + hop_time
                warmup = f + max(nxt.warmup + nxt.backward, (p - s - 1) * f)
                ending = b + max(nxt.ending + nxt.forward, (p - s - 1) * b)
                micro = max(nxt.max_micro_step, f + b)
                total = warmup + ending + steady_count(s) * micro
                if best is None or total < best.total:
                    best = PartitionState(
                        warmup=warmup,
                        ending=ending,
                        max_micro_step=micro,
                        forward=f,
                        backward=b,
                        total=total,
                        split=j,
                    )
            if best is not None:
                states[s][i] = best

    root = states[0].get(0)
    if root is None:
        return PartitionResult(False, math.inf, (), ())

    boundaries: List[Tuple[int, int]] = []
    evals: List[StageEval] = []
    i = 0
    for s in range(p):
        state = states[s][i]
        boundaries.append((i, state.split + 1))
        evals.append(evaluator.evaluate(s, i, state.split))
        i = state.split + 1
    return PartitionResult(True, root.total, tuple(boundaries), tuple(evals))


def evaluate_fixed_partition(
    evaluator: StageEvaluator,
    boundaries: Tuple[Tuple[int, int], ...],
    num_micro_batches: int,
    hop_time: float = 0.0,
) -> PartitionResult:
    """Cost-model evaluation of a *given* partition (no boundary search).

    Used by Even Partitioning and the baselines: the stage layout is fixed,
    but each stage still gets its optimal (or policy-fixed) recomputation.
    """
    p = len(boundaries)
    n = num_micro_batches
    evals = [
        evaluator.evaluate(s, lo, hi - 1) for s, (lo, hi) in enumerate(boundaries)
    ]
    if not all(e.feasible for e in evals):
        return PartitionResult(False, math.inf, tuple(boundaries), tuple(evals))

    warmup = ending = 0.0
    micro = 0.0
    for s in range(p - 1, -1, -1):
        f = evals[s].forward + hop_time
        b = evals[s].backward + hop_time
        if s == p - 1:
            warmup, ending, micro = f, b, f + b
        else:
            warmup = f + max(warmup + b_next, (p - s - 1) * f)
            ending = b + max(ending + f_next, (p - s - 1) * b)
            micro = max(micro, f + b)
        f_next, b_next = f, b
    total = warmup + ending + max(0, n - p) * micro
    return PartitionResult(True, total, tuple(boundaries), tuple(evals))


def even_boundaries(num_layers: int, num_stages: int) -> Tuple[Tuple[int, int], ...]:
    """The baselines' uniform partition of the layer sequence.

    Transformer layers are spread as evenly as possible; remainders go to
    the earliest stages (Megatron's convention). Requesting more stages
    than layers is rejected — an empty ``(start, start)`` range would
    otherwise evaluate as a feasible zero-cost stage (mirror
    :func:`optimize_partition`'s ``p > L`` guard at the planner level when
    an infeasible *plan* is the right answer instead of an error).
    """
    if num_stages > num_layers:
        raise ValueError(
            f"cannot split {num_layers} layers into {num_stages} non-empty stages"
        )
    base, extra = divmod(num_layers, num_stages)
    boundaries = []
    start = 0
    for s in range(num_stages):
        size = base + (1 if s < extra else 0)
        boundaries.append((start, start + size))
        start += size
    return tuple(boundaries)
