"""Plan data model: what the search engine outputs.

A :class:`PipelinePlan` fixes, for every stage, its layer range and its
recomputation choice (how many copies of each computation-unit type are
saved). Plans are self-describing enough to (a) print the paper's Table 4,
(b) feed the pipeline simulator, and (c) drive the real mini-framework
executor in :mod:`repro.training.pipeline_exec`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.config import ParallelConfig, TrainingConfig
from repro.pipeline.tasks import StageCosts
from repro.profiler.memory import StageMemory


@dataclass(frozen=True)
class StagePlan:
    """One stage of a pipeline plan.

    Attributes:
        stage: 0-based stage index.
        layer_start / layer_end: the stage's half-open layer range in the
            model's layer sequence.
        saved_unit_counts: per unit type (e.g. ``"ffn.act"``), how many
            instances across the stage's layers are *saved*; always-saved
            units are included.
        forward_time / backward_time: modelled per-micro-batch times; the
            backward time includes the recomputation this plan performs.
        memory: the stage's modelled memory breakdown.
        params: parameter count of the stage's layers (whole tensor-parallel
            group), used for gradient-synchronisation costs.
    """

    stage: int
    layer_start: int
    layer_end: int
    saved_unit_counts: Mapping[str, int]
    forward_time: float
    backward_time: float
    memory: StageMemory
    params: int = 0

    @property
    def num_layers(self) -> int:
        return self.layer_end - self.layer_start

    @property
    def num_saved_units(self) -> int:
        """Table 4's "Saved Units" figure for this stage."""
        return sum(self.saved_unit_counts.values())

    @property
    def micro_step_time(self) -> float:
        """Forward plus backward time of one micro-batch (Figure 9)."""
        return self.forward_time + self.backward_time

    def to_stage_costs(self, hop_time: float = 0.0) -> StageCosts:
        """Convert to the simulator's cost record."""
        del hop_time  # hops live on schedule edges, not stage costs
        return StageCosts(
            forward=self.forward_time,
            backward=self.backward_time,
            activation_bytes=self.memory.saved_per_microbatch,
            static_bytes=self.memory.static_bytes,
            buffer_bytes=self.memory.buffer_bytes,
        )


@dataclass(frozen=True)
class PipelinePlan:
    """A complete AdaPipe (or baseline) plan.

    Attributes:
        method: label such as ``"AdaPipe"`` or ``"DAPPLE-Full"``.
        parallel: the 3D strategy the plan was built for.
        train: the workload it serves.
        stages: per-stage sub-plans, in pipeline order.
        modeled_iteration_time: the analytic ``W_0 + E_0 + S_0`` estimate
            (Section 5.1); ``None`` for plans built without the cost model.
        feasible: False when some stage exceeds device memory (OOM).
        hidden_size: model dimension, retained for stage-boundary
            communication sizing.
        metadata: search observability counters and annotations (inner-DP
            invocations, cache hits, per-strategy wall clock, ...). Values
            must be JSON-compatible; the mapping never influences execution
            and is excluded from plan-equivalence comparisons.
    """

    method: str
    parallel: ParallelConfig
    train: TrainingConfig
    stages: Tuple[StagePlan, ...]
    modeled_iteration_time: Optional[float] = None
    feasible: bool = True
    hidden_size: int = 0
    metadata: Mapping[str, object] = field(default_factory=dict)

    def with_metadata(self, **entries: object) -> "PipelinePlan":
        """A copy of this plan with ``entries`` merged into its metadata."""
        return dataclasses.replace(
            self, metadata={**dict(self.metadata), **entries}
        )

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def layer_counts(self) -> Tuple[int, ...]:
        """Table 4's "# Layers" row."""
        return tuple(stage.num_layers for stage in self.stages)

    def saved_unit_counts(self) -> Tuple[int, ...]:
        """Table 4's "Saved Units" row."""
        return tuple(stage.num_saved_units for stage in self.stages)

    def stage_costs(self) -> Tuple[StageCosts, ...]:
        return tuple(stage.to_stage_costs() for stage in self.stages)

    def peak_memory_bytes(
        self, schedule_kind: Optional[str] = None
    ) -> Tuple[float, ...]:
        """Modelled per-stage peak bytes.

        With ``schedule_kind=None`` (default), returns the totals baked in
        at planning time. Given a kind, re-derives each stage's total with
        that schedule's in-flight count (via
        :func:`repro.profiler.memory.in_flight_micro_batches`) — e.g. a
        plan built for 1F1B re-priced for GPipe's all-``n`` liveness. The
        pipeline-group size is inferred from the plan's own stage count
        (``num_stages`` globals for ``interleaved`` layouts).
        """
        if schedule_kind is None:
            return tuple(stage.memory.total_bytes for stage in self.stages)
        from repro.profiler.memory import in_flight_micro_batches

        n = self.train.num_micro_batches(self.parallel)
        devices = self.parallel.pipeline_parallel
        return tuple(
            stage.memory.static_bytes
            + stage.memory.buffer_bytes
            + stage.memory.saved_per_microbatch
            * in_flight_micro_batches(
                schedule_kind, s, self.num_stages, n, num_devices=devices
            )
            for s, stage in enumerate(self.stages)
        )

    def describe(self) -> str:
        """Multi-line human-readable plan summary."""
        lines = [
            f"{self.method} on {self.parallel}, "
            f"seq={self.train.sequence_length}, "
            f"feasible={self.feasible}"
        ]
        if self.modeled_iteration_time is not None:
            lines.append(f"modeled iteration: {self.modeled_iteration_time * 1e3:.1f} ms")
        for stage in self.stages:
            mem_gib = stage.memory.total_bytes / 1024**3
            lines.append(
                f"  stage {stage.stage}: layers [{stage.layer_start}, "
                f"{stage.layer_end}) saved_units={stage.num_saved_units} "
                f"fwd={stage.forward_time * 1e3:.2f}ms "
                f"bwd={stage.backward_time * 1e3:.2f}ms mem={mem_gib:.1f}GiB"
            )
        return "\n".join(lines)


def merge_unit_counts(counts: Sequence[Mapping[str, int]]) -> Dict[str, int]:
    """Sum several per-type saved-unit count mappings."""
    merged: Dict[str, int] = {}
    for mapping in counts:
        for name, count in mapping.items():
            merged[name] = merged.get(name, 0) + count
    return merged
