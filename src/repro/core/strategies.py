"""Fixed recomputation policies (the baselines' strategies).

The paper's baselines run one uniform policy on every stage:

* ``FULL`` — full recomputation: only layer inputs (our always-saved
  closing units) survive the forward pass; everything else is recomputed.
* ``NONE`` — no recomputation: every unit is saved.
* ``SELECTIVE`` — Megatron's selective recomputation: only the attention
  core (softmax/dropout/batched-matmul block) is recomputed. With
  FlashAttention enabled this is essentially superseded (Section 2.2), but
  it matters for the non-flash ablation.

``stage_eval_for_policy`` produces the same :class:`StageEval` records the
adaptive DP yields, so baselines and AdaPipe flow through identical
downstream code (cost model, simulator, plan building).
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Sequence

from repro.core.isomorphism import StageEval
from repro.model.layers import Layer
from repro.profiler.memory import StageMemory
from repro.profiler.profiler import Profiler


class RecomputePolicy(enum.Enum):
    FULL = "full"
    NONE = "none"
    SELECTIVE = "selective"

    def saves_unit(self, unit_name: str, always_saved: bool) -> bool:
        """Whether this policy keeps the unit's intermediates."""
        if always_saved:
            return True
        if self is RecomputePolicy.NONE:
            return True
        if self is RecomputePolicy.SELECTIVE:
            return unit_name != "attn.core"
        return False  # FULL


def stage_eval_for_policy(
    profiler: Profiler,
    stage: int,
    stage_layers: Sequence[Layer],
    policy: RecomputePolicy,
    capacity_bytes: float,
    compute_scale: float = 1.0,
) -> StageEval:
    """Evaluate a stage under a fixed (non-searched) recomputation policy.

    ``compute_scale`` derates the stage's forward/backward times for a
    heterogeneous placement (1.0 = nominal device); ``capacity_bytes``
    is already the per-rank budget when the caller places stages.
    """
    memory_model = profiler.memory
    in_flight = memory_model.in_flight(stage)

    forward = 0.0
    backward = 0.0
    saved_bytes = 0.0
    counts: Dict[str, int] = {}
    for layer in stage_layers:
        profile = profiler.profile_layer(layer.kind)
        for unit in profile.units:
            forward += unit.time_forward
            backward += unit.time_backward
            if policy.saves_unit(unit.name, unit.always_saved):
                saved_bytes += unit.saved_bytes
                counts[unit.name] = counts.get(unit.name, 0) + 1
            else:
                backward += unit.time_forward  # recompute cost

    if compute_scale != 1.0:
        # Guarded multiply: homogeneous placements stay bit-identical to
        # the unplaced baselines (see StageEvaluator._evaluate_uncached).
        forward *= compute_scale
        backward *= compute_scale

    static = memory_model.static_bytes(stage_layers)
    buffer = memory_model.recompute_buffer_bytes()
    memory = StageMemory(
        static_bytes=static,
        buffer_bytes=buffer,
        saved_per_microbatch=saved_bytes,
        in_flight_microbatches=in_flight,
    )
    return StageEval(
        feasible=memory.fits(capacity_bytes),
        forward=forward,
        backward=backward,
        saved_unit_counts=counts,
        saved_bytes_per_microbatch=saved_bytes,
        memory=memory,
    )


def stage_costs_for_policy(
    profiler: Profiler,
    boundaries: Sequence,
    layers: Sequence[Layer],
    policy: RecomputePolicy,
    capacity_bytes: float,
    rank_capacities: Optional[Sequence[float]] = None,
    rank_scales: Optional[Sequence[float]] = None,
) -> list:
    """Per-stage :class:`StageEval` list for a fixed partition and policy.

    ``rank_capacities``/``rank_scales`` (one entry per stage) price a
    heterogeneous placement; omitted, every stage sees ``capacity_bytes``
    at nominal speed.
    """
    return [
        stage_eval_for_policy(
            profiler,
            s,
            layers[lo:hi],
            policy,
            rank_capacities[s] if rank_capacities is not None else capacity_bytes,
            compute_scale=rank_scales[s] if rank_scales is not None else 1.0,
        )
        for s, (lo, hi) in enumerate(boundaries)
    ]
