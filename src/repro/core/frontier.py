"""Memory/time frontier analysis.

Section 7.4 notes AdaPipe's plans sit at the 70 GB constraint "in a
balanced manner" and that "the memory constraint can be elevated for better
performance". This module quantifies that: sweep the DP's memory limit and
record the modelled/simulated iteration time at each point, yielding the
Pareto frontier between per-device memory and throughput that the two-level
DP trades along.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.evaluate import evaluate_plan
from repro.core.plan import PipelinePlan
from repro.core.search import PlannerContext, plan_adapipe


@dataclass(frozen=True)
class FrontierPoint:
    """One point on the memory/time frontier.

    Attributes:
        memory_limit_bytes: the knapsack constraint used.
        feasible: whether any plan fit under it.
        modeled_time: the DP's objective value.
        simulated_time: the simulator's iteration time.
        peak_memory_bytes: the plan's largest per-stage footprint.
    """

    memory_limit_bytes: float
    feasible: bool
    modeled_time: Optional[float]
    simulated_time: Optional[float]
    peak_memory_bytes: Optional[float]


def memory_time_frontier(
    ctx: PlannerContext,
    memory_limits: Sequence[float],
    planner: Callable[[PlannerContext], PipelinePlan] = plan_adapipe,
) -> List[FrontierPoint]:
    """Sweep memory limits and plan at each one.

    Args:
        ctx: base planning context; its ``memory_limit_bytes`` is replaced
            per point.
        memory_limits: constraint values (bytes), any order.
        planner: which planner to sweep (AdaPipe by default).

    Returns:
        One point per limit, in the order given.
    """
    points: List[FrontierPoint] = []
    for limit in memory_limits:
        swept = dataclasses.replace(
            ctx, memory_limit_bytes=limit, _profiler=None, _layers=None
        )
        plan = planner(swept)
        if not plan.feasible:
            points.append(FrontierPoint(limit, False, None, None, None))
            continue
        evaluation = evaluate_plan(plan, ctx.cluster, enforce_memory=False)
        points.append(
            FrontierPoint(
                memory_limit_bytes=limit,
                feasible=True,
                modeled_time=plan.modeled_iteration_time,
                simulated_time=evaluation.iteration_time,
                peak_memory_bytes=max(plan.peak_memory_bytes()),
            )
        )
    return points


def frontier_is_monotone(points: Sequence[FrontierPoint], tolerance: float = 1e-9) -> bool:
    """True when more memory never results in a slower modelled plan.

    The knapsack/partition DPs search supersets of the tighter budget's
    space, so the frontier must be non-increasing in the limit — a property
    the test suite asserts.
    """
    ordered = sorted(
        (p for p in points if p.feasible), key=lambda p: p.memory_limit_bytes
    )
    for a, b in zip(ordered, ordered[1:]):
        if b.modeled_time > a.modeled_time + tolerance:
            return False
    return True
