"""Simulator-guided refinement of a searched partition.

Algorithm 1 optimizes the analytic phase model, which is near-exact on the
balanced pipelines it produces but can be off by a few percent against the
event-driven simulator on edge cases (the model charges the steady backlog
only at stage 0's micro-batch count). This refiner closes that gap: starting
from the DP's plan, it hill-climbs over single-layer boundary moves,
re-pricing every candidate with the *simulator* and keeping strict
improvements. Because each boundary move re-runs only the per-stage inner
DP (cached by isomorphism class) plus one simulation, a full refinement
pass costs a handful of simulations.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.evaluate import evaluate_plan
from repro.core.isomorphism import StageEvaluator
from repro.core.plan import PipelinePlan, StagePlan
from repro.core.search import PlannerContext, plan_adapipe


def _plan_from_boundaries(
    ctx: PlannerContext,
    evaluator: StageEvaluator,
    boundaries: List[Tuple[int, int]],
    method: str,
) -> Optional[PipelinePlan]:
    evals = []
    for s, (lo, hi) in enumerate(boundaries):
        eval_ = evaluator.evaluate(s, lo, hi - 1)
        if not eval_.feasible:
            return None
        evals.append(eval_)
    stages = tuple(
        StagePlan(
            stage=s,
            layer_start=lo,
            layer_end=hi,
            saved_unit_counts=dict(evals[s].saved_unit_counts),
            forward_time=evals[s].forward,
            backward_time=evals[s].backward,
            memory=evals[s].memory,
        )
        for s, (lo, hi) in enumerate(boundaries)
    )
    return PipelinePlan(
        method=method,
        parallel=ctx.parallel,
        train=ctx.train,
        stages=stages,
        modeled_iteration_time=None,
        feasible=True,
        hidden_size=ctx.spec.hidden_size,
    )


def _boundary_moves(
    boundaries: List[Tuple[int, int]]
) -> List[List[Tuple[int, int]]]:
    """All partitions reachable by moving one stage boundary by one layer."""
    candidates = []
    for cut in range(len(boundaries) - 1):
        for delta in (-1, +1):
            moved = [list(b) for b in boundaries]
            moved[cut][1] += delta
            moved[cut + 1][0] += delta
            if moved[cut][1] > moved[cut][0] and moved[cut + 1][1] > moved[cut + 1][0]:
                candidates.append([tuple(b) for b in moved])
    return candidates


def refine_partition(
    ctx: PlannerContext,
    plan: PipelinePlan,
    max_rounds: int = 8,
    method_suffix: str = "+refine",
) -> PipelinePlan:
    """Hill-climb ``plan``'s boundaries against the simulator.

    Args:
        ctx: the plan's planning context.
        plan: a feasible starting plan (typically from :func:`plan_adapipe`).
        max_rounds: maximum improvement rounds; each round tries every
            single-layer boundary move and keeps the best.
        method_suffix: appended to the plan's method label when refinement
            changes it.

    Returns:
        The refined plan (the input plan if no move improves it).
    """
    if not plan.feasible:
        return plan
    evaluator = StageEvaluator(ctx.profiler, ctx.layers, ctx.capacity_bytes)
    best_plan = plan
    best_time = evaluate_plan(plan, ctx.cluster, enforce_memory=False).iteration_time
    boundaries = [(s.layer_start, s.layer_end) for s in plan.stages]
    improved_any = False

    for _ in range(max_rounds):
        round_best = None
        round_best_time = best_time
        for candidate in _boundary_moves(boundaries):
            candidate_plan = _plan_from_boundaries(
                ctx, evaluator, candidate, plan.method
            )
            if candidate_plan is None:
                continue
            time = evaluate_plan(
                candidate_plan, ctx.cluster, enforce_memory=False
            ).iteration_time
            if time < round_best_time - 1e-12:
                round_best = (candidate, candidate_plan)
                round_best_time = time
        if round_best is None:
            break
        boundaries, best_plan = round_best
        best_time = round_best_time
        improved_any = True

    if not improved_any:
        return plan
    return PipelinePlan(
        method=plan.method + method_suffix,
        parallel=best_plan.parallel,
        train=best_plan.train,
        stages=best_plan.stages,
        modeled_iteration_time=best_time,
        feasible=True,
        hidden_size=best_plan.hidden_size,
    )


def plan_adapipe_refined(
    ctx: PlannerContext, method: str = "AdaPipe"
) -> PipelinePlan:
    """Two-level DP followed by simulator-guided boundary refinement."""
    return refine_partition(ctx, plan_adapipe(ctx, method))
