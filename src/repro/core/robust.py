"""Robustness evaluation: how fragile is a plan under perturbations?

The planners rank plans by *nominal* simulated iteration time, but the
paper's own motivation (Section 3) is that stage imbalance — not raw
compute — decides iteration time, and a plan that is optimal under
nominal costs can invert ranking once one device runs 20% slow. This
module quantifies that:

* :func:`evaluate_robustness` executes a schedule under ``K`` seeded
  draws of a :class:`~repro.pipeline.perturb.PerturbationSpec` (draw
  ``k`` reseeds the jitter; factors, stalls and link degradations are
  held fixed) and summarises the resulting iteration times.
* **Straggler criticality** is the marginal slowdown of iteration time
  with respect to each device's slowdown factor — a normalised forward
  difference ``(T(f_d * (1 + eps)) - T(f_d)) / (eps * T(f_d))``,
  evaluated at the spec's deterministic component (factors + stalls +
  links, no jitter). A criticality of 1.0 means the device is fully on
  the critical path (1% slower device => 1% slower iteration); 0 means
  its slack absorbs the bump entirely. Monotonicity of the DAG's
  longest path in task durations makes every criticality non-negative.

Everything is deterministic: same spec + same schedule + same draw count
produce an identical :class:`RobustnessReport`, which is what lets the
report double as a regression artifact and lets the sweep rank plans by
a robust objective (``repro.core.sweep`` with ``robust_objective``).

Execution engines. By default the whole ensemble — nominal row, K jitter
rows, the deterministic baseline and the p criticality bumps — is lowered
into one ``(2 + K + p) x tasks`` duration matrix and swept through the
batched vectorized executor (:mod:`repro.pipeline.batched`) in one numpy
call: perturbations are pure duration/hop transforms, so the DAG is
lowered once and only the numbers change per row (ALGORITHMS.md section
11). The scalar per-draw path — ``perturb_schedule`` + ``simulate`` per
ensemble member — is kept verbatim behind ``engine="compiled"`` /
``engine="reference"`` as the bit-equivalence oracle: every batched
report equals the scalar engines' report exactly (fuzz-pinned in
``tests/test_batched.py``). Completed ensembles are cached whole in an
:class:`EnsembleCache` keyed by :func:`ensemble_digest` — one lookup per
report instead of K+p+2 per-draw ``SimulationCache`` probes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import math
import os
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.pipeline.batched import BatchedSchedule, batched_simulator, shape_digest
from repro.pipeline.perturb import (
    PerturbationSpec,
    lower_spec_components,
    lowered_link_hops,
    perturb_schedule,
)
from repro.pipeline.simulator import (
    _ENGINE_ENV,
    SimulationCache,
    simulate,
    simulation_cache_disabled,
)
from repro.pipeline.tasks import Schedule

__all__ = [
    "ROBUST_ENGINES",
    "ROBUST_OBJECTIVES",
    "EnsembleCache",
    "RobustnessReport",
    "cluster_perturbation",
    "ensemble_digest",
    "evaluate_robustness",
    "evaluate_robustness_many",
    "global_ensemble_cache",
    "robust_metadata",
]

#: Selectable ensemble statistics, in `--robust-objective` order.
ROBUST_OBJECTIVES = ("nominal", "mean", "p95", "worst")

#: Robustness execution paths: the batched vectorized sweep (default) and
#: the two scalar simulator engines, kept as bit-equivalence oracles.
#: ``REPRO_SIM_ENGINE=compiled|reference`` forces the scalar path here
#: exactly as it selects the engine for ``simulate``.
ROBUST_ENGINES = ("batched", "compiled", "reference")

#: Relative factor bump used by the criticality finite difference.
CRITICALITY_EPSILON = 0.25


@dataclass(frozen=True)
class RobustnessReport:
    """Ensemble statistics of one schedule under one perturbation spec.

    Attributes:
        spec: the evaluated perturbation spec.
        draws: number of seeded ensemble draws.
        nominal_time: unperturbed iteration time.
        times: perturbed iteration times, in draw order (empty when
            ``draws == 0`` — the statistics then fall back to the
            deterministic perturbed time).
        deterministic_time: iteration time under the spec's deterministic
            component (factors/stalls/links, jitter off) — the baseline
            of the criticality differences.
        device_criticality: per-device normalised marginal slowdown.
        criticality_epsilon: relative factor bump used for the
            finite difference.
    """

    spec: PerturbationSpec
    draws: int
    nominal_time: float
    times: Tuple[float, ...]
    deterministic_time: float
    device_criticality: Tuple[float, ...]
    criticality_epsilon: float = CRITICALITY_EPSILON

    @property
    def mean_time(self) -> float:
        if not self.times:
            return self.deterministic_time
        return math.fsum(self.times) / len(self.times)

    @property
    def p95_degenerate(self) -> bool:
        """Whether ``p95_time`` collapses onto ``worst_time``.

        The nearest-rank 95th percentile of ``K`` samples is order
        statistic ``ceil(0.95 K)``, which equals ``K`` — the maximum —
        for every ``K < 20``. A robust sweep ranking by ``"p95"`` with
        fewer than 20 draws is therefore ranking by worst-case.
        """
        return 0 < len(self.times) < 20

    @property
    def p95_time(self) -> float:
        """Nearest-rank 95th percentile of the ensemble times.

        For ensembles with fewer than 20 draws the nearest-rank index
        ``ceil(0.95 K)`` is ``K`` itself, so this *equals*
        ``worst_time`` (see :attr:`p95_degenerate`); a
        ``RuntimeWarning`` is emitted once per call site so small-K
        sweeps don't silently rank by worst-case.
        """
        if not self.times:
            return self.deterministic_time
        if self.p95_degenerate:
            warnings.warn(
                f"p95_time over {len(self.times)} draws degenerates to "
                "worst_time (nearest-rank ceil(0.95 K) == K for K < 20); "
                "use draws >= 20 for a p95 distinct from the maximum",
                RuntimeWarning,
                stacklevel=2,
            )
        ordered = sorted(self.times)
        rank = max(1, math.ceil(0.95 * len(ordered)))
        return ordered[rank - 1]

    @property
    def worst_time(self) -> float:
        if not self.times:
            return self.deterministic_time
        return max(self.times)

    @property
    def best_time(self) -> float:
        if not self.times:
            return self.deterministic_time
        return min(self.times)

    def objective(self, which: str) -> float:
        """The iteration-time statistic a robust search ranks plans by."""
        if which == "nominal":
            return self.nominal_time
        if which == "mean":
            return self.mean_time
        if which == "p95":
            return self.p95_time
        if which == "worst":
            return self.worst_time
        raise ValueError(
            f"unknown robust objective {which!r}; pick from {ROBUST_OBJECTIVES}"
        )

    def slowdown(self, which: str) -> float:
        """Ensemble statistic relative to the nominal time (1.0 = nominal)."""
        if self.nominal_time == 0:
            return 1.0
        return self.objective(which) / self.nominal_time

    def most_critical_device(self) -> int:
        """Device index with the largest straggler criticality."""
        return max(
            range(len(self.device_criticality)),
            key=lambda d: (self.device_criticality[d], -d),
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible summary (benchmark artifacts, plan metadata)."""
        return {
            "spec_digest": self.spec.content_digest(),
            "draws": self.draws,
            "nominal_time": self.nominal_time,
            "deterministic_time": self.deterministic_time,
            "mean_time": self.mean_time,
            "p95_time": self.p95_time,
            "worst_time": self.worst_time,
            "best_time": self.best_time,
            "device_criticality": list(self.device_criticality),
            "criticality_epsilon": self.criticality_epsilon,
        }

    def describe(self) -> str:
        """Multi-line human-readable report (the `adapipe robustness` table)."""
        lines = [
            f"robustness over {self.draws} draws "
            f"(spec {self.spec.content_digest()[:12]}, "
            f"jitter sigma {self.spec.jitter_sigma:g}, seed {self.spec.seed})",
            f"  nominal  {self.nominal_time:.6f}s",
            f"  mean     {self.mean_time:.6f}s  ({self.slowdown('mean'):.3f}x)",
            f"  p95      {self.p95_time:.6f}s  ({self.slowdown('p95'):.3f}x)",
            f"  worst    {self.worst_time:.6f}s  ({self.slowdown('worst'):.3f}x)",
            "  device criticality (marginal slowdown per unit factor):",
        ]
        scale = max(self.device_criticality, default=0.0)
        for device, crit in enumerate(self.device_criticality):
            bar = "#" * int(round(24 * crit / scale)) if scale > 0 else ""
            factor = self.spec.factor_for(device)
            lines.append(
                f"    device {device:2d}  factor {factor:5.2f}  "
                f"criticality {crit:6.3f}  {bar}"
            )
        return "\n".join(lines)


def _deterministic_spec(spec: PerturbationSpec) -> PerturbationSpec:
    """The spec with its random (jitter) component switched off."""
    if spec.jitter_sigma == 0.0:
        return spec
    return dataclasses.replace(spec, jitter_sigma=0.0)


def ensemble_digest(
    schedule: Schedule,
    spec: PerturbationSpec,
    draws: int,
    criticality_epsilon: float = CRITICALITY_EPSILON,
) -> str:
    """Content digest keying one whole robustness ensemble.

    Covers everything a :class:`RobustnessReport` depends on: the
    schedule's full content digest, the spec's content digest, the draw
    count and the criticality epsilon. The engine is deliberately
    excluded — batched and scalar paths are bit-equivalent (the tested
    invariant), so one cache entry serves all of them.
    """
    payload = (
        f"robust-ensemble-v1|{schedule.digest()}|{spec.content_digest()}"
        f"|{draws}|{criticality_epsilon!r}"
    )
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


class EnsembleCache:
    """Cross-run memo of whole :class:`RobustnessReport` objects.

    Keyed by :func:`ensemble_digest`; entries are evicted FIFO past
    ``max_entries``. Reports are frozen dataclasses, so hits share the
    stored object. One hit replaces the ``2 + K + p`` per-draw
    ``SimulationCache`` lookups the scalar path performs.
    """

    def __init__(self, max_entries: int = 256) -> None:
        self._entries: "OrderedDict[str, RobustnessReport]" = OrderedDict()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def get(self, digest: str) -> Optional[RobustnessReport]:
        found = self._entries.get(digest)
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def put(self, digest: str, report: RobustnessReport) -> None:
        self._entries[digest] = report
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0


_GLOBAL_ENSEMBLE_CACHE = EnsembleCache()


def global_ensemble_cache() -> EnsembleCache:
    """The process-wide cache batched robustness consults by default."""
    return _GLOBAL_ENSEMBLE_CACHE


def _resolve_robust_engine(engine: Optional[str]) -> str:
    engine = engine or os.environ.get(_ENGINE_ENV) or "batched"
    if engine not in ROBUST_ENGINES:
        raise ValueError(
            f"unknown robustness engine {engine!r}; pick from {ROBUST_ENGINES}"
        )
    return engine


def _resolve_ensemble_cache(
    cache: Union[EnsembleCache, bool, None]
) -> Optional[EnsembleCache]:
    if cache is None:
        if simulation_cache_disabled():
            return None
        return _GLOBAL_ENSEMBLE_CACHE
    if cache is False:
        return None
    if cache is True:
        return _GLOBAL_ENSEMBLE_CACHE
    return cache  # an explicit EnsembleCache


def _validate_ensemble_args(draws: int, criticality_epsilon: float) -> None:
    if draws < 0:
        raise ValueError(f"draws must be >= 0, got {draws}")
    if criticality_epsilon <= 0:
        raise ValueError(
            f"criticality epsilon must be > 0, got {criticality_epsilon}"
        )


def _ensemble_rows(
    raw: np.ndarray,
    device: np.ndarray,
    num_devices: int,
    spec: PerturbationSpec,
    factors: np.ndarray,
    delays: np.ndarray,
    draws: int,
    jitters: Sequence[np.ndarray],
    criticality_epsilon: float,
) -> List[np.ndarray]:
    """The ensemble's duration rows for one schedule's raw durations.

    Fixed layout: ``[nominal, draw 0 .. draw K-1, deterministic base,
    device-0 bump .. device-(p-1) bump]``. Every elementwise operation
    replays the scalar transform's per-task float order (factor, then
    jitter, then stall delay), so each row is bit-identical to the
    durations of the equivalent ``perturb_schedule`` output.

    ``jitters`` is empty when the spec draws no jitter — every ensemble
    member then equals the deterministic base. The deterministic
    components — ``factors``, ``delays`` and the ``raw * factors``
    baseline — are computed once and shared across the K jitter rows and
    the p criticality bumps (the scalar path rebuilt the baseline spec
    per device).
    """
    has_delay = bool(delays.any())

    def finish(durations: np.ndarray) -> np.ndarray:
        return durations + delays if has_delay else durations

    rows = [raw]
    base = raw * factors
    if jitters:
        rows.extend(finish(base * jitter) for jitter in jitters)
    else:
        deterministic = finish(base)
        rows.extend(deterministic for _ in range(draws))
    rows.append(finish(base))
    for d in range(num_devices):
        bumped_factor = spec.factor_for(d) * (1.0 + criticality_epsilon)
        bumped = factors.copy()
        bumped[device == d] = bumped_factor
        rows.append(finish(raw * bumped))
    return rows


def _execute_rows(
    sim: BatchedSchedule,
    matrix: np.ndarray,
    link_hops: Optional[Dict[Tuple[int, int], float]],
    nominal_rows: np.ndarray,
) -> np.ndarray:
    """Iteration times of the stacked ensemble rows.

    ``nominal_rows`` marks the rows that run under the schedule's own
    hop times; every other row uses the spec's perturbed ``link_hops``
    mapping (when the spec degrades any link — otherwise one call
    covers everything).
    """
    if link_hops is None:
        return sim.iteration_times(matrix)
    perturbed = np.ones(matrix.shape[0], dtype=bool)
    perturbed[nominal_rows] = False
    times = np.empty(matrix.shape[0], dtype=np.float64)
    times[nominal_rows] = sim.iteration_times(matrix[nominal_rows])
    times[perturbed] = sim.iteration_times(matrix[perturbed], link_hops=link_hops)
    return times


def _report_from_times(
    spec: PerturbationSpec,
    draws: int,
    times: np.ndarray,
    num_devices: int,
    criticality_epsilon: float,
) -> RobustnessReport:
    """Assemble a report from one schedule's block of iteration times."""
    nominal = float(times[0])
    ensemble = tuple(float(t) for t in times[1:1 + draws])
    base_time = float(times[1 + draws])
    criticality = []
    for d in range(num_devices):
        bumped_time = float(times[2 + draws + d])
        if base_time > 0:
            criticality.append(
                (bumped_time - base_time) / (criticality_epsilon * base_time)
            )
        else:
            criticality.append(0.0)
    return RobustnessReport(
        spec=spec,
        draws=draws,
        nominal_time=nominal,
        times=ensemble,
        deterministic_time=base_time,
        device_criticality=tuple(criticality),
        criticality_epsilon=criticality_epsilon,
    )


def _evaluate_batched(
    schedule: Schedule,
    spec: PerturbationSpec,
    draws: int,
    criticality_epsilon: float,
) -> RobustnessReport:
    """One schedule's ensemble as a single batched sweep."""
    sim = batched_simulator(schedule)
    compiled = schedule.compiled()
    base_spec = _deterministic_spec(spec)
    factors, delays = lower_spec_components(compiled, base_spec)
    sigma = spec.jitter_sigma
    jitters = (
        [sim.jitter_vector(spec.seed + k, sigma) for k in range(draws)]
        if sigma
        else []
    )
    rows = _ensemble_rows(
        raw=sim.raw_durations,
        device=np.asarray(compiled.device, dtype=np.intp),
        num_devices=schedule.num_devices,
        spec=base_spec,
        factors=factors,
        delays=delays,
        draws=draws,
        jitters=jitters,
        criticality_epsilon=criticality_epsilon,
    )
    matrix = np.stack(rows)
    times = _execute_rows(
        sim,
        matrix,
        lowered_link_hops(spec, schedule),
        nominal_rows=np.asarray([0], dtype=np.intp),
    )
    return _report_from_times(
        spec, draws, times, schedule.num_devices, criticality_epsilon
    )


def _evaluate_scalar(
    schedule: Schedule,
    spec: PerturbationSpec,
    draws: int,
    *,
    engine: Optional[str],
    cache: Union[SimulationCache, bool, None],
    criticality_epsilon: float,
) -> RobustnessReport:
    """The per-draw oracle path: perturb, re-lower and simulate each row.

    Kept verbatim from the pre-batched implementation — this is the
    semantics the batched sweep must reproduce bit-for-bit.
    """
    nominal = simulate(schedule, engine=engine, cache=cache).iteration_time
    times = tuple(
        simulate(
            perturb_schedule(schedule, spec.reseeded(k)),
            engine=engine,
            cache=cache,
        ).iteration_time
        for k in range(draws)
    )

    base_spec = _deterministic_spec(spec)
    base_schedule = perturb_schedule(schedule, base_spec)
    base_time = simulate(base_schedule, engine=engine, cache=cache).iteration_time
    criticality = []
    for device in range(schedule.num_devices):
        factor = base_spec.factor_for(device)
        bumped = base_spec.with_device_factor(
            device, factor * (1.0 + criticality_epsilon)
        )
        bumped_time = simulate(
            perturb_schedule(schedule, bumped), engine=engine, cache=cache
        ).iteration_time
        if base_time > 0:
            criticality.append(
                (bumped_time - base_time) / (criticality_epsilon * base_time)
            )
        else:
            criticality.append(0.0)
    return RobustnessReport(
        spec=spec,
        draws=draws,
        nominal_time=nominal,
        times=times,
        deterministic_time=base_time,
        device_criticality=tuple(criticality),
        criticality_epsilon=criticality_epsilon,
    )


def evaluate_robustness(
    schedule: Schedule,
    spec: PerturbationSpec,
    draws: int = 16,
    *,
    engine: Optional[str] = None,
    cache: Union[EnsembleCache, SimulationCache, bool, None] = None,
    criticality_epsilon: float = CRITICALITY_EPSILON,
) -> RobustnessReport:
    """Run the perturbation ensemble and the criticality differences.

    Args:
        schedule: the nominal schedule under evaluation.
        spec: the perturbation model. Draw ``k`` applies
            ``spec.reseeded(k)``, so jitter re-draws per ensemble member
            while factors/stalls/links stay fixed.
        draws: ensemble size ``K``; 0 skips the ensemble (the statistics
            then report the deterministic perturbed time).
        engine: one of :data:`ROBUST_ENGINES`; default (or
            ``REPRO_SIM_ENGINE``) picks the batched vectorized sweep,
            ``"compiled"`` / ``"reference"`` force the scalar per-draw
            oracle through :func:`repro.pipeline.simulator.simulate`.
        cache: batched path: an :class:`EnsembleCache`, ``None`` for the
            process-global one (unless ``REPRO_SIM_CACHE`` disables it)
            or ``False`` for none. Passing a
            :class:`~repro.pipeline.simulator.SimulationCache` requests
            per-draw caching semantics and therefore the scalar path.
        criticality_epsilon: relative bump for the finite difference.

    Determinism: the report depends only on (schedule content, spec,
    draws, epsilon) — property-tested in ``tests/test_robustness.py`` —
    and is bit-identical across every engine (``tests/test_batched.py``).
    """
    _validate_ensemble_args(draws, criticality_epsilon)
    resolved = _resolve_robust_engine(engine)
    if resolved != "batched" or isinstance(cache, SimulationCache):
        scalar_engine = None if resolved == "batched" else resolved
        return _evaluate_scalar(
            schedule,
            spec,
            draws,
            engine=scalar_engine,
            cache=cache,
            criticality_epsilon=criticality_epsilon,
        )
    ens_cache = _resolve_ensemble_cache(cache)
    digest = None
    if ens_cache is not None:
        digest = ensemble_digest(schedule, spec, draws, criticality_epsilon)
        found = ens_cache.get(digest)
        if found is not None:
            return found
    report = _evaluate_batched(schedule, spec, draws, criticality_epsilon)
    if ens_cache is not None and digest is not None:
        ens_cache.put(digest, report)
    return report


def evaluate_robustness_many(
    schedules: Sequence[Schedule],
    spec: PerturbationSpec,
    draws: int = 16,
    *,
    engine: Optional[str] = None,
    cache: Union[EnsembleCache, SimulationCache, bool, None] = None,
    criticality_epsilon: float = CRITICALITY_EPSILON,
) -> List[RobustnessReport]:
    """:func:`evaluate_robustness` for many schedules, batched by shape.

    Candidate plans in a robust sweep build schedules that differ only in
    task durations — same policy, same device count, same micro-batch
    count, hence the same DAG. Schedules sharing a
    :func:`~repro.pipeline.batched.shape_digest` are grouped and their
    ensembles stacked into one duration matrix executed through a single
    :class:`~repro.pipeline.batched.BatchedSchedule`, which also shares
    the spec lowering (factors, stall delays, jitter vectors) across the
    whole group. Reports equal per-schedule :func:`evaluate_robustness`
    results exactly.
    """
    schedules = list(schedules)
    _validate_ensemble_args(draws, criticality_epsilon)
    resolved = _resolve_robust_engine(engine)
    if resolved != "batched" or isinstance(cache, SimulationCache):
        scalar_engine = None if resolved == "batched" else resolved
        return [
            _evaluate_scalar(
                schedule,
                spec,
                draws,
                engine=scalar_engine,
                cache=cache,
                criticality_epsilon=criticality_epsilon,
            )
            for schedule in schedules
        ]

    ens_cache = _resolve_ensemble_cache(cache)
    reports: List[Optional[RobustnessReport]] = [None] * len(schedules)
    digests: List[Optional[str]] = [None] * len(schedules)
    groups: "OrderedDict[str, List[int]]" = OrderedDict()
    for i, schedule in enumerate(schedules):
        if ens_cache is not None:
            digests[i] = ensemble_digest(
                schedule, spec, draws, criticality_epsilon
            )
            found = ens_cache.get(digests[i])
            if found is not None:
                reports[i] = found
                continue
        groups.setdefault(shape_digest(schedule.compiled()), []).append(i)

    sigma = spec.jitter_sigma
    for members in groups.values():
        first = schedules[members[0]]
        sim = batched_simulator(first)
        compiled = first.compiled()
        num_devices = first.num_devices
        base_spec = _deterministic_spec(spec)
        factors, delays = lower_spec_components(compiled, base_spec)
        jitters = (
            [sim.jitter_vector(spec.seed + k, sigma) for k in range(draws)]
            if sigma
            else []
        )
        device = np.asarray(compiled.device, dtype=np.intp)
        link_hops = lowered_link_hops(spec, first)
        block = 2 + draws + num_devices
        rows: List[np.ndarray] = []
        for i in members:
            # Same shape => same task enumeration order; only the raw
            # duration numbers differ per member (no re-lowering).
            if schedules[i] is first:
                raw = sim.raw_durations
            else:
                raw = np.array(
                    [
                        task.duration
                        for tasks in schedules[i].device_tasks
                        for task in tasks
                    ],
                    dtype=np.float64,
                )
            rows.extend(
                _ensemble_rows(
                    raw=raw,
                    device=device,
                    num_devices=num_devices,
                    spec=base_spec,
                    factors=factors,
                    delays=delays,
                    draws=draws,
                    jitters=jitters,
                    criticality_epsilon=criticality_epsilon,
                )
            )
        matrix = np.stack(rows)
        nominal_rows = np.arange(len(members), dtype=np.intp) * block
        times = _execute_rows(sim, matrix, link_hops, nominal_rows)
        for slot, i in enumerate(members):
            report = _report_from_times(
                spec,
                draws,
                times[slot * block:(slot + 1) * block],
                num_devices,
                criticality_epsilon,
            )
            reports[i] = report
            digest = digests[i]
            if ens_cache is not None and digest is not None:
                ens_cache.put(digest, report)
    # Every index either hit the cache or belongs to exactly one group.
    assert all(report is not None for report in reports)
    return reports  # type: ignore[return-value]


def cluster_perturbation(
    cluster,
    num_ranks: int,
    *,
    jitter_sigma: float = 0.0,
    seed: int = 0,
    stalls: Sequence = (),
    links: Sequence = (),
) -> PerturbationSpec:
    """The perturbation spec implied by a cluster's per-rank deratings.

    Reads :meth:`repro.hardware.cluster.ClusterSpec.device_factor` for the
    first ``num_ranks`` pipeline ranks (the devices a simulated pipeline
    group occupies) and folds in any extra jitter/stall/link terms — the
    bridge from the hardware description to a
    :class:`~repro.pipeline.perturb.PerturbationSpec`.
    """
    factors = {
        rank: cluster.device_factor(rank)
        for rank in range(num_ranks)
        if cluster.device_factor(rank) != 1.0
    }
    return PerturbationSpec.build(
        factors,
        jitter_sigma=jitter_sigma,
        seed=seed,
        stalls=stalls,
        links=links,
    )


def robust_metadata(report: RobustnessReport) -> Dict[str, object]:
    """The ``robust_*`` keys :func:`repro.core.evaluate.evaluate_plan`
    folds into plan metadata."""
    return {
        "robust_spec_digest": report.spec.content_digest(),
        "robust_draws": report.draws,
        "robust_nominal_time": report.nominal_time,
        "robust_mean_time": report.mean_time,
        "robust_p95_time": report.p95_time,
        "robust_worst_time": report.worst_time,
        "robust_criticality": list(report.device_criticality),
    }
