"""Robustness evaluation: how fragile is a plan under perturbations?

The planners rank plans by *nominal* simulated iteration time, but the
paper's own motivation (Section 3) is that stage imbalance — not raw
compute — decides iteration time, and a plan that is optimal under
nominal costs can invert ranking once one device runs 20% slow. This
module quantifies that:

* :func:`evaluate_robustness` executes a schedule under ``K`` seeded
  draws of a :class:`~repro.pipeline.perturb.PerturbationSpec` (draw
  ``k`` reseeds the jitter; factors, stalls and link degradations are
  held fixed) and summarises the resulting iteration times.
* **Straggler criticality** is the marginal slowdown of iteration time
  with respect to each device's slowdown factor — a normalised forward
  difference ``(T(f_d * (1 + eps)) - T(f_d)) / (eps * T(f_d))``,
  evaluated at the spec's deterministic component (factors + stalls +
  links, no jitter). A criticality of 1.0 means the device is fully on
  the critical path (1% slower device => 1% slower iteration); 0 means
  its slack absorbs the bump entirely. Monotonicity of the DAG's
  longest path in task durations makes every criticality non-negative.

Everything is deterministic: same spec + same schedule + same draw count
produce an identical :class:`RobustnessReport`, which is what lets the
report double as a regression artifact and lets the sweep rank plans by
a robust objective (``repro.core.sweep`` with ``robust_objective``).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.pipeline.perturb import PerturbationSpec, perturb_schedule
from repro.pipeline.simulator import SimulationCache, simulate
from repro.pipeline.tasks import Schedule

__all__ = [
    "ROBUST_OBJECTIVES",
    "RobustnessReport",
    "cluster_perturbation",
    "evaluate_robustness",
    "robust_metadata",
]

#: Selectable ensemble statistics, in `--robust-objective` order.
ROBUST_OBJECTIVES = ("nominal", "mean", "p95", "worst")

#: Relative factor bump used by the criticality finite difference.
CRITICALITY_EPSILON = 0.25


@dataclass(frozen=True)
class RobustnessReport:
    """Ensemble statistics of one schedule under one perturbation spec.

    Attributes:
        spec: the evaluated perturbation spec.
        draws: number of seeded ensemble draws.
        nominal_time: unperturbed iteration time.
        times: perturbed iteration times, in draw order (empty when
            ``draws == 0`` — the statistics then fall back to the
            deterministic perturbed time).
        deterministic_time: iteration time under the spec's deterministic
            component (factors/stalls/links, jitter off) — the baseline
            of the criticality differences.
        device_criticality: per-device normalised marginal slowdown.
        criticality_epsilon: relative factor bump used for the
            finite difference.
    """

    spec: PerturbationSpec
    draws: int
    nominal_time: float
    times: Tuple[float, ...]
    deterministic_time: float
    device_criticality: Tuple[float, ...]
    criticality_epsilon: float = CRITICALITY_EPSILON

    @property
    def mean_time(self) -> float:
        if not self.times:
            return self.deterministic_time
        return math.fsum(self.times) / len(self.times)

    @property
    def p95_time(self) -> float:
        """Nearest-rank 95th percentile of the ensemble times."""
        if not self.times:
            return self.deterministic_time
        ordered = sorted(self.times)
        rank = max(1, math.ceil(0.95 * len(ordered)))
        return ordered[rank - 1]

    @property
    def worst_time(self) -> float:
        if not self.times:
            return self.deterministic_time
        return max(self.times)

    @property
    def best_time(self) -> float:
        if not self.times:
            return self.deterministic_time
        return min(self.times)

    def objective(self, which: str) -> float:
        """The iteration-time statistic a robust search ranks plans by."""
        if which == "nominal":
            return self.nominal_time
        if which == "mean":
            return self.mean_time
        if which == "p95":
            return self.p95_time
        if which == "worst":
            return self.worst_time
        raise ValueError(
            f"unknown robust objective {which!r}; pick from {ROBUST_OBJECTIVES}"
        )

    def slowdown(self, which: str) -> float:
        """Ensemble statistic relative to the nominal time (1.0 = nominal)."""
        if self.nominal_time == 0:
            return 1.0
        return self.objective(which) / self.nominal_time

    def most_critical_device(self) -> int:
        """Device index with the largest straggler criticality."""
        return max(
            range(len(self.device_criticality)),
            key=lambda d: (self.device_criticality[d], -d),
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible summary (benchmark artifacts, plan metadata)."""
        return {
            "spec_digest": self.spec.content_digest(),
            "draws": self.draws,
            "nominal_time": self.nominal_time,
            "deterministic_time": self.deterministic_time,
            "mean_time": self.mean_time,
            "p95_time": self.p95_time,
            "worst_time": self.worst_time,
            "best_time": self.best_time,
            "device_criticality": list(self.device_criticality),
            "criticality_epsilon": self.criticality_epsilon,
        }

    def describe(self) -> str:
        """Multi-line human-readable report (the `adapipe robustness` table)."""
        lines = [
            f"robustness over {self.draws} draws "
            f"(spec {self.spec.content_digest()[:12]}, "
            f"jitter sigma {self.spec.jitter_sigma:g}, seed {self.spec.seed})",
            f"  nominal  {self.nominal_time:.6f}s",
            f"  mean     {self.mean_time:.6f}s  ({self.slowdown('mean'):.3f}x)",
            f"  p95      {self.p95_time:.6f}s  ({self.slowdown('p95'):.3f}x)",
            f"  worst    {self.worst_time:.6f}s  ({self.slowdown('worst'):.3f}x)",
            "  device criticality (marginal slowdown per unit factor):",
        ]
        scale = max(self.device_criticality, default=0.0)
        for device, crit in enumerate(self.device_criticality):
            bar = "#" * int(round(24 * crit / scale)) if scale > 0 else ""
            factor = self.spec.factor_for(device)
            lines.append(
                f"    device {device:2d}  factor {factor:5.2f}  "
                f"criticality {crit:6.3f}  {bar}"
            )
        return "\n".join(lines)


def _deterministic_spec(spec: PerturbationSpec) -> PerturbationSpec:
    """The spec with its random (jitter) component switched off."""
    if spec.jitter_sigma == 0.0:
        return spec
    return dataclasses.replace(spec, jitter_sigma=0.0)


def evaluate_robustness(
    schedule: Schedule,
    spec: PerturbationSpec,
    draws: int = 16,
    *,
    engine: Optional[str] = None,
    cache: Union[SimulationCache, bool, None] = None,
    criticality_epsilon: float = CRITICALITY_EPSILON,
) -> RobustnessReport:
    """Run the perturbation ensemble and the criticality differences.

    Args:
        schedule: the nominal schedule under evaluation.
        spec: the perturbation model. Draw ``k`` applies
            ``spec.reseeded(k)``, so jitter re-draws per ensemble member
            while factors/stalls/links stay fixed.
        draws: ensemble size ``K``; 0 skips the ensemble (the statistics
            then report the deterministic perturbed time).
        engine / cache: forwarded to :func:`repro.pipeline.simulator.simulate`.
        criticality_epsilon: relative bump for the finite difference.

    Determinism: the report depends only on (schedule content, spec,
    draws, epsilon) — property-tested in ``tests/test_robustness.py``.
    """
    if draws < 0:
        raise ValueError(f"draws must be >= 0, got {draws}")
    if criticality_epsilon <= 0:
        raise ValueError(
            f"criticality epsilon must be > 0, got {criticality_epsilon}"
        )
    nominal = simulate(schedule, engine=engine, cache=cache).iteration_time
    times = tuple(
        simulate(
            perturb_schedule(schedule, spec.reseeded(k)),
            engine=engine,
            cache=cache,
        ).iteration_time
        for k in range(draws)
    )

    base_spec = _deterministic_spec(spec)
    base_schedule = perturb_schedule(schedule, base_spec)
    base_time = simulate(base_schedule, engine=engine, cache=cache).iteration_time
    criticality = []
    for device in range(schedule.num_devices):
        factor = base_spec.factor_for(device)
        bumped = base_spec.with_device_factor(
            device, factor * (1.0 + criticality_epsilon)
        )
        bumped_time = simulate(
            perturb_schedule(schedule, bumped), engine=engine, cache=cache
        ).iteration_time
        if base_time > 0:
            criticality.append(
                (bumped_time - base_time) / (criticality_epsilon * base_time)
            )
        else:
            criticality.append(0.0)
    return RobustnessReport(
        spec=spec,
        draws=draws,
        nominal_time=nominal,
        times=times,
        deterministic_time=base_time,
        device_criticality=tuple(criticality),
        criticality_epsilon=criticality_epsilon,
    )


def cluster_perturbation(
    cluster,
    num_ranks: int,
    *,
    jitter_sigma: float = 0.0,
    seed: int = 0,
    stalls: Sequence = (),
    links: Sequence = (),
) -> PerturbationSpec:
    """The perturbation spec implied by a cluster's per-rank deratings.

    Reads :meth:`repro.hardware.cluster.ClusterSpec.device_factor` for the
    first ``num_ranks`` pipeline ranks (the devices a simulated pipeline
    group occupies) and folds in any extra jitter/stall/link terms — the
    bridge from the hardware description to a
    :class:`~repro.pipeline.perturb.PerturbationSpec`.
    """
    factors = {
        rank: cluster.device_factor(rank)
        for rank in range(num_ranks)
        if cluster.device_factor(rank) != 1.0
    }
    return PerturbationSpec.build(
        factors,
        jitter_sigma=jitter_sigma,
        seed=seed,
        stalls=stalls,
        links=links,
    )


def robust_metadata(report: RobustnessReport) -> Dict[str, object]:
    """The ``robust_*`` keys :func:`repro.core.evaluate.evaluate_plan`
    folds into plan metadata."""
    return {
        "robust_spec_digest": report.spec.content_digest(),
        "robust_draws": report.draws,
        "robust_nominal_time": report.nominal_time,
        "robust_mean_time": report.mean_time,
        "robust_p95_time": report.p95_time,
        "robust_worst_time": report.worst_time,
        "robust_criticality": list(report.device_criticality),
    }
