"""AdaPipe's search engine: the paper's primary contribution.

Two cooperating dynamic programs (Sections 4 and 5):

1. **Adaptive recomputation** (:mod:`repro.core.recompute_dp`) — per stage, a
   knapsack over computation units choosing which intermediates to save,
   maximizing the recompute time avoided under the stage's memory budget.
2. **Adaptive partitioning** (:mod:`repro.core.partition_dp`) — Algorithm 1,
   a DP over layer-sequence cut points whose per-stage costs come from the
   inner DP, modelling the 1F1B warmup/steady/ending phases exactly.

:mod:`repro.core.search` wraps both into the end-to-end planner, including
the 3D-parallelism strategy enumeration of Section 7.3, and
:mod:`repro.core.strategies` provides the fixed full/none/uniform
recomputation policies the baselines use.
"""

from repro.core.isomorphism import StageEvalCache
from repro.core.plan import PipelinePlan, StagePlan
from repro.core.recompute_dp import RecomputeResult, optimize_stage_recompute
from repro.core.partition_dp import PartitionResult, optimize_partition
from repro.core.search import (
    PlannerContext,
    enumerate_parallel_strategies,
    plan_adapipe,
    plan_even_partitioning,
    search_best_strategy,
)
from repro.core.strategies import RecomputePolicy, stage_costs_for_policy
from repro.core.sweep import (
    SweepConfig,
    SweepResult,
    SweepStats,
    run_sweep,
    strategy_lower_bound,
)

__all__ = [
    "PartitionResult",
    "PipelinePlan",
    "PlannerContext",
    "RecomputePolicy",
    "RecomputeResult",
    "StageEvalCache",
    "StagePlan",
    "SweepConfig",
    "SweepResult",
    "SweepStats",
    "enumerate_parallel_strategies",
    "optimize_partition",
    "optimize_stage_recompute",
    "plan_adapipe",
    "plan_even_partitioning",
    "run_sweep",
    "search_best_strategy",
    "stage_costs_for_policy",
    "strategy_lower_bound",
]
