"""End-to-end planning and 3D-parallelism strategy search (Sections 5–7).

``PlannerContext`` bundles everything a plan needs (cluster, model,
workload, strategy, memory constraint). The three planners mirror the
paper's evaluated methods:

* :func:`plan_adapipe` — adaptive recomputation *and* adaptive partitioning
  (the two-level DP).
* :func:`plan_even_partitioning` — adaptive recomputation on the baselines'
  uniform partition ("Even Partitioning" in the figures).
* :func:`plan_policy` — uniform partition and a fixed policy (the
  DAPPLE-Full / DAPPLE-Non rows).

:func:`enumerate_parallel_strategies` and :func:`search_best_strategy`
reproduce the Table 3 sweep: iterate all ``(t, p, d)`` with ``t`` within a
node, plan each, and keep the fastest feasible strategy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.config import ConfigError, ParallelConfig, TrainingConfig
from repro.core.isomorphism import StageEval, StageEvalCache, StageEvaluator
from repro.core.partition_dp import (
    PartitionResult,
    evaluate_fixed_partition,
    even_boundaries,
    optimize_partition,
)
from repro.core.placement import (
    DeviceClass,
    device_classes,
    enumerate_placements,
    placement_metadata,
)
from repro.core.plan import PipelinePlan, StagePlan
from repro.core.strategies import RecomputePolicy, stage_costs_for_policy
from repro.hardware.cluster import ClusterSpec
from repro.hardware.device import DeviceSpec
from repro.hardware.comm import CommModel
from repro.model.layers import Layer, build_layer_sequence
from repro.model.spec import ModelSpec
from repro.profiler.profiler import Profiler


@dataclass
class PlannerContext:
    """Everything needed to plan one (model, workload, strategy) triple.

    Attributes:
        cluster: target hardware.
        spec: model architecture.
        train: workload.
        parallel: the 3D strategy under evaluation.
        memory_limit_bytes: knapsack memory constraint; defaults to the
            device's usable capacity times ``memory_margin`` (the paper ran
            its DP against a conservative 70 GB on 80 GB devices).
        memory_margin: fraction of usable capacity given to the DP.
        profile_noise: measurement jitter passed to the profiler.
        eval_cache: optional cross-strategy stage-evaluation cache; share
            one instance across the contexts of a sweep (or across several
            planners on one context) to reuse inner-DP solutions.
    """

    cluster: ClusterSpec
    spec: ModelSpec
    train: TrainingConfig
    parallel: ParallelConfig
    memory_limit_bytes: Optional[float] = None
    memory_margin: float = 0.92
    profile_noise: float = 0.0
    eval_cache: Optional[StageEvalCache] = field(default=None, repr=False)
    _profiler: Optional[Profiler] = field(default=None, repr=False)
    _layers: Optional[List[Layer]] = field(default=None, repr=False)

    @property
    def capacity_bytes(self) -> float:
        if self.memory_limit_bytes is not None:
            return self.memory_limit_bytes
        return self.cluster.device.usable_memory_bytes * self.memory_margin

    @property
    def hard_capacity_bytes(self) -> float:
        """The physical OOM line (Figure 8's dashed capacity)."""
        return float(self.cluster.device.usable_memory_bytes)

    def placement_capacity_bytes(self, device: DeviceSpec) -> float:
        """The DP memory budget when a stage lands on ``device``.

        An explicit ``memory_limit_bytes`` still caps the budget (the
        paper's conservative constraint), but a smaller part clamps it
        further — its margin-scaled capacity. For the cluster's base
        device this reduces exactly to :attr:`capacity_bytes`, which is
        what keeps homogeneous-pool planning bit-identical.
        """
        scaled = device.usable_memory_bytes * self.memory_margin
        if self.memory_limit_bytes is not None:
            return min(self.memory_limit_bytes, scaled)
        return scaled

    def rank_hard_capacity_bytes(self, rank: int) -> float:
        """Physical OOM line of the device serving pipeline rank ``rank``."""
        return float(self.cluster.rank_device(rank).usable_memory_bytes)

    @property
    def profiler(self) -> Profiler:
        if self._profiler is None:
            self._profiler = Profiler(
                self.cluster,
                self.spec,
                self.train,
                self.parallel,
                noise=self.profile_noise,
            )
        return self._profiler

    @property
    def layers(self) -> List[Layer]:
        if self._layers is None:
            self._layers = build_layer_sequence(self.spec)
        return self._layers

    @property
    def num_micro_batches(self) -> int:
        return self.train.num_micro_batches(self.parallel)

    @property
    def hop_time(self) -> float:
        return CommModel(self.cluster).pipeline_hop_time(
            self.spec.hidden_size, self.train
        )

    def stage_evaluator(
        self, placement: Optional[Sequence[DeviceClass]] = None
    ) -> StageEvaluator:
        """A stage evaluator wired to this context's shared cache (if any).

        ``placement`` (one :class:`~repro.core.placement.DeviceClass` per
        pipeline rank) prices each rank with its class's compute scale
        and margin-scaled memory capacity; omitted, pricing is uniform.
        All evaluators share ``eval_cache``, and the rank class is part
        of every cache key, so evaluations flow across placements — and
        across replans — without aliasing.
        """
        if placement is None:
            return StageEvaluator(
                self.profiler,
                self.layers,
                self.capacity_bytes,
                shared_cache=self.eval_cache,
            )
        return StageEvaluator(
            self.profiler,
            self.layers,
            self.capacity_bytes,
            shared_cache=self.eval_cache,
            rank_compute_scales=[cls.compute_scale for cls in placement],
            rank_capacities=[
                self.placement_capacity_bytes(cls.device) for cls in placement
            ],
        )

    def canonical_placement(self) -> Optional[List[DeviceClass]]:
        """Pooled clusters' first (fastest-ranks-first) placement, else None.

        The fixed-partition planners (even partitioning, DAPPLE policies)
        do not search placements; they price the canonical first one so
        their baselines stay deterministic and comparable.
        """
        if not self.cluster.device_pool:
            return None
        classes = device_classes(self.cluster)
        placement = enumerate_placements(
            classes, self.parallel.pipeline_parallel
        )[0]
        return [classes[index] for index in placement]


def _build_plan(
    method: str,
    ctx: PlannerContext,
    boundaries: Sequence[Tuple[int, int]],
    evals: Sequence[StageEval],
    modeled_time: Optional[float],
    feasible: bool,
) -> PipelinePlan:
    stages = tuple(
        StagePlan(
            stage=s,
            layer_start=lo,
            layer_end=hi,
            saved_unit_counts=dict(evals[s].saved_unit_counts),
            forward_time=evals[s].forward,
            backward_time=evals[s].backward,
            memory=evals[s].memory,
            params=sum(layer.params for layer in ctx.layers[lo:hi]),
        )
        for s, (lo, hi) in enumerate(boundaries)
    )
    return PipelinePlan(
        method=method,
        parallel=ctx.parallel,
        train=ctx.train,
        stages=stages,
        modeled_iteration_time=modeled_time,
        feasible=feasible,
        hidden_size=ctx.spec.hidden_size,
    )


def _too_many_stages_plan(method: str, ctx: PlannerContext) -> PipelinePlan:
    """The infeasible plan for ``p > L``: no non-empty partition exists."""
    return PipelinePlan(
        method=method,
        parallel=ctx.parallel,
        train=ctx.train,
        stages=(),
        modeled_iteration_time=None,
        feasible=False,
        hidden_size=ctx.spec.hidden_size,
        metadata={"infeasible_reason": "more pipeline stages than layers"},
    )


def _attach_search_metadata(
    plan: PipelinePlan, evaluator: StageEvaluator, started: float
) -> PipelinePlan:
    """Fold the evaluator's observability counters into the plan."""
    return plan.with_metadata(
        inner_dp_invocations=evaluator.inner_dp_invocations,
        eval_cache_hits=evaluator.cache_hits,
        eval_cache_misses=evaluator.cache_misses,
        planning_seconds=time.perf_counter() - started,  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity
    )


def plan_adapipe(ctx: PlannerContext, method: str = "AdaPipe") -> PipelinePlan:
    """Full AdaPipe: two-level DP over recomputation and partitioning.

    On a cluster with a ``device_pool`` the search gains a placement
    dimension: every distinct assignment of device classes to pipeline
    ranks is planned (sharing one stage-eval cache) and the fastest
    placement wins, first-in-lexicographic-order on ties.
    """
    started = time.perf_counter()  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity
    if ctx.parallel.pipeline_parallel > len(ctx.layers):
        return _too_many_stages_plan(method, ctx)
    if ctx.cluster.device_pool:
        return _plan_adapipe_placed(ctx, method, started)
    evaluator = ctx.stage_evaluator()
    result: PartitionResult = optimize_partition(
        evaluator,
        ctx.parallel.pipeline_parallel,
        ctx.num_micro_batches,
        hop_time=ctx.hop_time,
    )
    if not result.feasible:
        boundaries = even_boundaries(len(ctx.layers), ctx.parallel.pipeline_parallel)
        evals = [
            evaluator.evaluate(s, lo, hi - 1)
            for s, (lo, hi) in enumerate(boundaries)
        ]
        plan = _build_plan(method, ctx, boundaries, evals, None, False)
    else:
        plan = _build_plan(
            method, ctx, result.boundaries, result.stage_evals, result.total_time, True
        )
    return _attach_search_metadata(plan, evaluator, started)


def _plan_adapipe_placed(
    ctx: PlannerContext, method: str, started: float
) -> PipelinePlan:
    """Placement-augmented AdaPipe DP for pooled clusters.

    Enumerates the distinct class-per-rank placements in canonical
    lexicographic order, runs the two-level DP under each (per-rank
    compute scales and capacities), and keeps the strictly-fastest
    feasible result — ties resolve to the earliest placement, which
    makes the choice invariant under permutations of identical pool
    entries. All placements share ``ctx.eval_cache`` (rank class is in
    the key), so isomorphic stages priced once are reused everywhere.
    """
    classes = device_classes(ctx.cluster)
    placements = enumerate_placements(classes, ctx.parallel.pipeline_parallel)
    inner_dp = hits = misses = 0
    best_result: Optional[PartitionResult] = None
    best_placement: Optional[Tuple[int, ...]] = None
    for placement in placements:
        evaluator = ctx.stage_evaluator([classes[i] for i in placement])
        result = optimize_partition(
            evaluator,
            ctx.parallel.pipeline_parallel,
            ctx.num_micro_batches,
            hop_time=ctx.hop_time,
        )
        inner_dp += evaluator.inner_dp_invocations
        hits += evaluator.cache_hits
        misses += evaluator.cache_misses
        if result.feasible and (
            best_result is None or result.total_time < best_result.total_time
        ):
            best_result = result
            best_placement = placement
    if best_result is None or best_placement is None:
        fallback = placements[0]
        evaluator = ctx.stage_evaluator([classes[i] for i in fallback])
        boundaries = even_boundaries(len(ctx.layers), ctx.parallel.pipeline_parallel)
        evals = [
            evaluator.evaluate(s, lo, hi - 1)
            for s, (lo, hi) in enumerate(boundaries)
        ]
        inner_dp += evaluator.inner_dp_invocations
        hits += evaluator.cache_hits
        misses += evaluator.cache_misses
        plan = _build_plan(method, ctx, boundaries, evals, None, False)
        chosen = fallback
    else:
        plan = _build_plan(
            method,
            ctx,
            best_result.boundaries,
            best_result.stage_evals,
            best_result.total_time,
            True,
        )
        chosen = best_placement
    return plan.with_metadata(
        **placement_metadata(classes, chosen, len(placements)),
        inner_dp_invocations=inner_dp,
        eval_cache_hits=hits,
        eval_cache_misses=misses,
        planning_seconds=time.perf_counter() - started,  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity
    )


def plan_even_partitioning(
    ctx: PlannerContext, method: str = "Even Partitioning"
) -> PipelinePlan:
    """Adaptive recomputation on the uniform partition (no boundary search)."""
    started = time.perf_counter()  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity
    if ctx.parallel.pipeline_parallel > len(ctx.layers):
        return _too_many_stages_plan(method, ctx)
    evaluator = ctx.stage_evaluator(ctx.canonical_placement())
    boundaries = even_boundaries(len(ctx.layers), ctx.parallel.pipeline_parallel)
    result = evaluate_fixed_partition(
        evaluator, boundaries, ctx.num_micro_batches, hop_time=ctx.hop_time
    )
    plan = _build_plan(
        method,
        ctx,
        result.boundaries,
        result.stage_evals,
        result.total_time if result.feasible else None,
        result.feasible,
    )
    return _attach_search_metadata(plan, evaluator, started)


def plan_policy(
    ctx: PlannerContext, policy: RecomputePolicy, method: str
) -> PipelinePlan:
    """Uniform partition with a fixed recomputation policy (DAPPLE rows).

    Feasibility is judged against the *hard* device capacity, not the DP's
    conservative margin — baselines don't leave headroom, they just OOM.
    """
    started = time.perf_counter()  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity
    if ctx.parallel.pipeline_parallel > len(ctx.layers):
        return _too_many_stages_plan(method, ctx)
    boundaries = even_boundaries(len(ctx.layers), ctx.parallel.pipeline_parallel)
    placement = ctx.canonical_placement()
    evals = stage_costs_for_policy(
        ctx.profiler,
        boundaries,
        ctx.layers,
        policy,
        ctx.hard_capacity_bytes,
        rank_capacities=(
            [float(cls.device.usable_memory_bytes) for cls in placement]
            if placement is not None
            else None
        ),
        rank_scales=(
            [cls.compute_scale for cls in placement]
            if placement is not None
            else None
        ),
    )
    result = evaluate_fixed_partition_from_evals(
        evals, ctx.num_micro_batches, ctx.hop_time
    )
    feasible = all(e.feasible for e in evals)
    plan = _build_plan(
        method, ctx, boundaries, evals, result if feasible else None, feasible
    )
    return plan.with_metadata(planning_seconds=time.perf_counter() - started)  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity


def evaluate_fixed_partition_from_evals(
    evals: Sequence[StageEval], num_micro_batches: int, hop_time: float
) -> float:
    """1F1B cost model (Section 5.1) over precomputed stage evals."""
    p = len(evals)
    n = num_micro_batches
    warmup = ending = micro = 0.0
    f_next = b_next = 0.0
    for s in range(p - 1, -1, -1):
        f = evals[s].forward + hop_time
        b = evals[s].backward + hop_time
        if s == p - 1:
            warmup, ending, micro = f, b, f + b
        else:
            warmup = f + max(warmup + b_next, (p - s - 1) * f)
            ending = b + max(ending + f_next, (p - s - 1) * b)
            micro = max(micro, f + b)
        f_next, b_next = f, b
    return warmup + ending + max(0, n - p) * micro


def enumerate_parallel_strategies(
    num_devices: int,
    cluster: ClusterSpec,
    spec: ModelSpec,
    train: TrainingConfig,
    max_tensor_parallel: int = 8,
    min_pipeline_parallel: int = 2,
) -> List[ParallelConfig]:
    """All valid ``(t, p, d)`` strategies for the Table 3 sweep.

    Constraints (Section 7.1): ``t * p * d = num_devices``; ``t`` at most 8
    and inside one node; ``p`` at least 2 and no larger than the layer
    sequence; the global batch must divide by ``d``.
    """
    num_layers = len(build_layer_sequence(spec))
    strategies = []
    t = 1
    while t <= min(max_tensor_parallel, cluster.devices_per_node, num_devices):
        if num_devices % t == 0:
            rest = num_devices // t
            p = min_pipeline_parallel
            while p <= rest:
                if rest % p == 0 and p <= num_layers:
                    d = rest // p
                    if train.global_batch_size % d == 0:
                        candidate = ParallelConfig(t, p, d)
                        try:
                            cluster.validate_parallel(candidate, num_devices)
                        except ConfigError:
                            pass
                        else:
                            if train.num_micro_batches(candidate) >= 1:
                                strategies.append(candidate)
                p += 1
        t *= 2
    return strategies


def search_best_strategy(
    cluster: ClusterSpec,
    spec: ModelSpec,
    train: TrainingConfig,
    num_devices: int,
    planner: Callable[[PlannerContext], PipelinePlan],
    strategies: Optional[Iterable[ParallelConfig]] = None,
    **context_kwargs,
) -> Tuple[Optional[PipelinePlan], List[PipelinePlan]]:
    """Plan every strategy and return (best feasible plan, all plans).

    "Best" minimizes the modelled iteration time normalised per sample, so
    strategies with different data-parallel sizes compare fairly (a ``d=2``
    pipeline only processes half the global batch).

    This is the serial, exhaustive entry point — every strategy is planned
    and returned. :func:`repro.core.sweep.run_sweep` is the performance
    entry point with the same selection semantics plus parallel planning
    and branch-and-bound pruning.
    """
    from repro.core.sweep import SweepConfig, run_sweep

    result = run_sweep(
        cluster,
        spec,
        train,
        num_devices,
        planner=planner,
        strategies=strategies,
        config=SweepConfig(workers=1, prune=False),
        **context_kwargs,
    )
    return result.best, result.plans
