"""Distributed sweep orchestration: shards, merge-back, checkpoints.

The strategy sweep's execution layer. :func:`repro.core.sweep.run_sweep`
owns *what* to plan (enumeration, bounds, selection, robust re-ranking);
this module owns *how* the planning work is executed, serially or across
worker processes:

1. **Work-stealing shard dispatch** — the bound-ordered strategy queue is
   carved into shards on demand. Each worker holds exactly one shard at a
   time and requests the next when it finishes (guided self-scheduling:
   shard size shrinks as the queue drains), so an idle worker always
   steals from the shared tail and a straggler planner never serializes
   more than its own shard.
2. **Cache merge-back** — every shard result carries the worker's new
   :class:`~repro.core.isomorphism.StageEvalCache` entries (its journal
   delta). The coordinator merges them — digest keys make the union
   order-independent — and piggybacks everything a worker has not yet
   seen onto its next shard, so worker B never re-runs an inner DP that
   worker A already solved. The merged cache can persist to disk
   (``SweepConfig.cache_path``) for warm starts across runs.
3. **Incumbent broadcast** — the best feasible per-sample time so far
   rides on every dispatched shard, so branch-and-bound pruning happens
   *inside* workers on freshly stolen shards (against the freshest
   incumbent they have), not only on the coordinator at dispatch time.
   Stale incumbents only ever prune less, never incorrectly.
4. **Frontier checkpoints** — a JSON snapshot of completed plan
   documents, pruned indices, the incumbent, and the merged cache shard,
   written atomically every ``checkpoint_every`` completions. A killed
   sweep resumes via ``run_sweep(..., resume_from=path)`` and re-plans
   only the strategies the checkpoint does not cover. A streaming
   :class:`SweepProgress` callback emits best-so-far plans as they land.

Serial-equivalence argument (ALGORITHMS.md §12): none of the four
mechanisms can change the selected plan. Cache entries are deterministic
functions of their digest keys, so merge-back only changes *when* an
evaluation is computed, never its value; incumbent-broadcast pruning only
discards strategies whose admissible bound exceeds an *achieved* feasible
per-sample time (sound against any later, smaller incumbent too); and the
final selection minimises (per-sample time, enumeration index) over
whatever was planned, independent of completion order.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from queue import Empty
from typing import (
    TYPE_CHECKING,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.config import ParallelConfig, TrainingConfig
from repro.core.isomorphism import CacheEntry, StageEval, StageEvalCache
from repro.core.plan import PipelinePlan
from repro.core.search import PlannerContext
from repro.core.serialize import plan_from_dict, plan_to_dict
from repro.hardware.cluster import ClusterSpec
from repro.model.spec import ModelSpec
from repro.profiler.memory import StageMemory

if TYPE_CHECKING:  # pragma: no cover - annotation-only import, no cycle
    from repro.core.sweep import SweepConfig

#: A planner is either a context->plan callable (module-level, so it can be
#: pickled to workers) or the name of a method in the baselines registry.
PlannerRef = Union[str, Callable[[PlannerContext], PipelinePlan]]

CHECKPOINT_FORMAT_VERSION = 1
CACHE_FILE_FORMAT_VERSION = 1

#: How long the coordinator waits on the result queue before checking
#: worker liveness (a worker killed by the OOM killer would otherwise
#: hang the sweep forever).
_POLL_SECONDS = 2.0


class SweepWorkerError(RuntimeError):
    """A sweep worker process failed or died unexpectedly."""


class CheckpointError(ValueError):
    """Raised on malformed, incompatible, or mismatched checkpoint files."""


def resolve_planner(planner: PlannerRef) -> Callable[[PlannerContext], PipelinePlan]:
    """Resolve a :data:`PlannerRef` to a callable.

    Strings name methods in the baselines registry (``"AdaPipe"``,
    ``"DAPPLE-Full"``, ...) and are always safe to ship to workers;
    callables must be module-level to survive pickling.
    """
    if callable(planner):
        return planner
    from repro.baselines.methods import method_spec

    return method_spec(planner).planner


def per_sample_time(plan: PipelinePlan) -> Optional[float]:
    """Selection objective: modelled seconds per sample of the global batch."""
    if not plan.feasible or plan.modeled_iteration_time is None:
        return None
    return plan.modeled_iteration_time / plan.train.global_batch_size


# ---------------------------------------------------------------------------
# Serialization: cache shards and checkpoints
# ---------------------------------------------------------------------------


def stage_eval_to_dict(value: StageEval) -> Dict:
    """Serialise one cached :class:`StageEval` to JSON-compatible data.

    This is the value half of a persisted cache-shard entry; the adalint
    ``digest-coverage`` contract binds it to every ``StageEval`` and
    ``StageMemory`` field, so a new cache-value field cannot silently go
    un-serialized (it would resurrect stale evaluations on warm starts).
    """
    memory: StageMemory = value.memory
    return {
        "feasible": value.feasible,
        "forward": value.forward,
        "backward": value.backward,
        "saved_unit_counts": dict(value.saved_unit_counts),
        "saved_bytes_per_microbatch": value.saved_bytes_per_microbatch,
        "memory": {
            "static_bytes": memory.static_bytes,
            "buffer_bytes": memory.buffer_bytes,
            "saved_per_microbatch": memory.saved_per_microbatch,
            "in_flight_microbatches": memory.in_flight_microbatches,
        },
    }


def stage_eval_from_dict(data: Dict) -> StageEval:
    """Reconstruct a :class:`StageEval` from :func:`stage_eval_to_dict`."""
    try:
        return StageEval(
            feasible=data["feasible"],
            forward=data["forward"],
            backward=data["backward"],
            saved_unit_counts=dict(data["saved_unit_counts"]),
            saved_bytes_per_microbatch=data["saved_bytes_per_microbatch"],
            memory=StageMemory(**data["memory"]),
        )
    except (KeyError, TypeError) as exc:
        raise CheckpointError(f"malformed stage evaluation entry: {exc}") from exc


def _encode_entries(entries: Sequence[CacheEntry]) -> List[List]:
    """Cache entries -> JSON rows. Keys are flat primitive tuples."""
    return [[list(key), stage_eval_to_dict(value)] for key, value in entries]


def _decode_entries(rows: Sequence[Sequence]) -> List[CacheEntry]:
    """JSON rows -> cache entries (keys back to hashable tuples)."""
    try:
        return [(tuple(key), stage_eval_from_dict(value)) for key, value in rows]
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed cache entry row: {exc}") from exc


def _atomic_write_json(document: Dict, path: str) -> None:
    """Write-then-rename so a kill mid-write never corrupts the file."""
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        json.dump(document, handle, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def save_cache_file(cache: StageEvalCache, path: str) -> int:
    """Persist a cache's shareable entries for cross-run warm starts."""
    entries = cache.export_entries()
    _atomic_write_json(
        {
            "format_version": CACHE_FILE_FORMAT_VERSION,
            "entries": _encode_entries(entries),
        },
        path,
    )
    return len(entries)


def load_cache_file(path: str) -> List[CacheEntry]:
    """Load the entries of a persisted cache file (see :func:`save_cache_file`)."""
    with open(path) as handle:
        document = json.load(handle)
    version = document.get("format_version")
    if version != CACHE_FILE_FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported cache file version {version} (want {CACHE_FILE_FORMAT_VERSION})"
        )
    return _decode_entries(document.get("entries", []))


def sweep_fingerprint(
    cluster: ClusterSpec,
    spec: ModelSpec,
    train: TrainingConfig,
    planner: PlannerRef,
    strategies: Sequence[ParallelConfig],
    context_kwargs: Dict,
) -> str:
    """Content digest of everything that defines one sweep's work-list.

    A checkpoint may only resume a sweep with the identical fingerprint —
    same cluster, model, workload, planner, strategy list, and planner
    context arguments — otherwise restored plan documents and pruning
    decisions would be replayed against different inputs.
    """
    if isinstance(planner, str):
        planner_name = planner
    else:
        planner_name = (
            f"{getattr(planner, '__module__', '?')}."
            f"{getattr(planner, '__qualname__', repr(planner))}"
        )
    payload = repr(
        (
            repr(cluster),
            repr(spec),
            repr(train),
            planner_name,
            tuple(strategies),
            sorted((key, repr(value)) for key, value in context_kwargs.items()),
        )
    ).encode()
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


@dataclass(frozen=True)
class SweepCheckpoint:
    """One frontier snapshot of an in-flight (or finished) sweep.

    Attributes:
        sweep_digest: :func:`sweep_fingerprint` of the sweep's inputs.
        incumbent: best feasible per-sample time so far (``None`` before
            the first feasible plan lands).
        completed: enumeration index -> serialized plan document, for
            every strategy planned so far.
        walls: enumeration index -> planning wall seconds.
        pruned: enumeration indices branch-and-bound skipped. Pruning is
            justified against an incumbent achieved *before* the prune,
            so it stays sound under any later (smaller) incumbent.
        cache_entries: the merged stage-evaluation cache shard, so a
            resumed sweep re-plans its remaining strategies warm.
    """

    sweep_digest: str
    incumbent: Optional[float]
    completed: Dict[int, Dict]
    walls: Dict[int, float]
    pruned: Tuple[int, ...]
    cache_entries: Tuple[CacheEntry, ...]


def checkpoint_to_dict(checkpoint: SweepCheckpoint) -> Dict:
    """Serialise a checkpoint to JSON-compatible data.

    Covered by an adalint ``digest-coverage`` contract: every
    :class:`SweepCheckpoint` field must be read here, so new frontier
    state cannot silently be dropped from the resume path.
    """
    return {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "sweep_digest": checkpoint.sweep_digest,
        "incumbent": checkpoint.incumbent,
        "completed": {
            str(index): document
            for index, document in sorted(checkpoint.completed.items())
        },
        "walls": {
            str(index): wall for index, wall in sorted(checkpoint.walls.items())
        },
        "pruned": sorted(checkpoint.pruned),
        "cache_entries": _encode_entries(checkpoint.cache_entries),
    }


def checkpoint_from_dict(data: Dict) -> SweepCheckpoint:
    """Reconstruct a checkpoint from :func:`checkpoint_to_dict` output."""
    try:
        version = data["format_version"]
        if version != CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {version} "
                f"(want {CHECKPOINT_FORMAT_VERSION})"
            )
        return SweepCheckpoint(
            sweep_digest=data["sweep_digest"],
            incumbent=data.get("incumbent"),
            completed={
                int(index): document
                for index, document in data.get("completed", {}).items()
            },
            walls={
                int(index): wall for index, wall in data.get("walls", {}).items()
            },
            pruned=tuple(data.get("pruned", [])),
            cache_entries=tuple(_decode_entries(data.get("cache_entries", []))),
        )
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed checkpoint document: {exc}") from exc


def save_checkpoint(checkpoint: SweepCheckpoint, path: str) -> None:
    """Atomically write a checkpoint file."""
    _atomic_write_json(checkpoint_to_dict(checkpoint), path)


def load_checkpoint(path: str) -> SweepCheckpoint:
    """Read a checkpoint file written by :func:`save_checkpoint`."""
    try:
        with open(path) as handle:
            document = json.load(handle)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"checkpoint {path!r} is not valid JSON: {exc}") from exc
    return checkpoint_from_dict(document)


# ---------------------------------------------------------------------------
# Progress streaming
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepProgress:
    """One streamed sweep event: a strategy was planned or pruned.

    Emitted in completion order (which, under parallel execution, is
    scheduling-dependent — only the *content* of each event and the final
    selection are deterministic). ``improved`` marks frontier events:
    this plan became the best-so-far, and ``plan`` carries it.
    """

    kind: str  # "planned" | "pruned"
    index: int
    parallel: ParallelConfig
    per_sample_time: Optional[float]
    improved: bool
    best_per_sample_time: Optional[float]
    best_index: Optional[int]
    completed: int
    total: int
    wall_seconds: float = 0.0
    plan: Optional[PipelinePlan] = None


ProgressCallback = Callable[[SweepProgress], None]


# ---------------------------------------------------------------------------
# Worker protocol
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _WorkerInit:
    """The invariant planning context, shipped once per worker process.

    Replaces the old pool path's habit of re-pickling (cluster, spec,
    train, context kwargs) into every task tuple.
    """

    planner: PlannerRef
    cluster: ClusterSpec
    spec: ModelSpec
    train: TrainingConfig
    context_kwargs: Dict
    share_cache: bool
    cache_max_entries: Optional[int]
    prune: bool


@dataclass(frozen=True)
class ShardTask:
    """One stolen shard: strategies to plan plus the freshest shared state."""

    indices: Tuple[int, ...]
    strategies: Tuple[ParallelConfig, ...]
    bounds: Tuple[float, ...]
    incumbent: float
    cache_entries: Tuple[CacheEntry, ...]


@dataclass(frozen=True)
class ShardResult:
    """What a worker sends back: plans, prunes, and its cache delta."""

    planned: Tuple[Tuple[int, Dict, float], ...]  # (index, plan doc, wall)
    pruned: Tuple[int, ...]
    cache_entries: Tuple[CacheEntry, ...]
    cache_hits: int
    cache_misses: int


@dataclass(frozen=True)
class ShardFailure:
    """A worker's traceback, surfaced as :class:`SweepWorkerError`."""

    traceback: str


def run_shard(
    planner_fn: Callable[[PlannerContext], PipelinePlan],
    init: _WorkerInit,
    cache: Optional[StageEvalCache],
    task: ShardTask,
) -> ShardResult:
    """Plan one shard against the broadcast incumbent and cache delta.

    The incumbent starts from the coordinator's broadcast value and
    tightens as the shard's own feasible plans land, so later shard
    members are pruned against the freshest bound available anywhere.
    """
    journal_base = 0
    hits_base = misses_base = 0
    if cache is not None:
        cache.merge_entries(task.cache_entries)
        # Entries merged from the broadcast are *received*, not produced:
        # the delta exported below starts after them.
        journal_base = cache.journal_length
        hits_base, misses_base = cache.hits, cache.misses
    incumbent = task.incumbent
    planned: List[Tuple[int, Dict, float]] = []
    pruned: List[int] = []
    for index, parallel, bound in zip(task.indices, task.strategies, task.bounds):
        if init.prune and bound > incumbent:
            pruned.append(index)
            continue
        ctx = PlannerContext(
            init.cluster,
            init.spec,
            init.train,
            parallel,
            eval_cache=cache,
            **init.context_kwargs,
        )
        started = time.perf_counter()  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity
        plan = planner_fn(ctx)
        wall = time.perf_counter() - started  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity
        planned.append((index, plan_to_dict(plan), wall))
        achieved = per_sample_time(plan)
        if achieved is not None and achieved < incumbent:
            incumbent = achieved
    cache_entries: Tuple[CacheEntry, ...] = ()
    cache_hits = cache_misses = 0
    if cache is not None:
        cache_entries = tuple(cache.journal_slice(journal_base))
        cache_hits = cache.hits - hits_base
        cache_misses = cache.misses - misses_base
    return ShardResult(
        planned=tuple(planned),
        pruned=tuple(pruned),
        cache_entries=cache_entries,
        cache_hits=cache_hits,
        cache_misses=cache_misses,
    )


def _worker_main(worker_id: int, init: _WorkerInit, tasks, results) -> None:
    """Worker loop: steal a shard, plan it, report, repeat until shutdown.

    The worker cache is size-bounded FIFO (unlike the old per-process
    ``_WORKER_CACHE`` global, which grew without bound across sweeps in a
    long-lived process) and journaled so each shard exports exactly its
    newly computed entries.
    """
    cache: Optional[StageEvalCache] = None
    if init.share_cache:
        cache = StageEvalCache(max_entries=init.cache_max_entries)
        cache.enable_journal()
    try:
        planner_fn = resolve_planner(init.planner)
        while True:
            task = tasks.get()
            if task is None:
                break
            results.put((worker_id, run_shard(planner_fn, init, cache, task)))
    except BaseException:
        results.put((worker_id, ShardFailure(traceback.format_exc())))


# ---------------------------------------------------------------------------
# Coordinator
# ---------------------------------------------------------------------------


@dataclass
class ExecutionOutcome:
    """Everything the execution layer hands back to :func:`run_sweep`."""

    plans_by_index: Dict[int, PipelinePlan] = field(default_factory=dict)
    walls: Dict[int, float] = field(default_factory=dict)
    pruned: Set[int] = field(default_factory=set)
    resumed_planned: Set[int] = field(default_factory=set)
    resumed_pruned: Set[int] = field(default_factory=set)
    worker_cache_hits: int = 0
    worker_cache_misses: int = 0
    incumbent_prunes: int = 0
    coordinator_prunes: int = 0
    shards_dispatched: int = 0
    cache_entries_merged: int = 0
    cache_entries_loaded: int = 0


class _Coordinator:
    """Shared state of one sweep execution: incumbent, cache, checkpoints."""

    def __init__(
        self,
        *,
        cluster: ClusterSpec,
        spec: ModelSpec,
        train: TrainingConfig,
        strategies: Sequence[ParallelConfig],
        bounds: Sequence[float],
        order: Sequence[int],
        planner: PlannerRef,
        config: "SweepConfig",
        context_kwargs: Dict,
        cache: Optional[StageEvalCache],
        resume_from: Optional[str],
        progress: Optional[ProgressCallback],
    ) -> None:
        self.cluster = cluster
        self.spec = spec
        self.train = train
        self.strategies = strategies
        self.bounds = bounds
        self.planner = planner
        self.config = config
        self.context_kwargs = context_kwargs
        self.cache = cache
        self.progress = progress
        self.outcome = ExecutionOutcome()
        self.best_key: Optional[Tuple[float, int]] = None
        self.digest = sweep_fingerprint(
            cluster, spec, train, planner, strategies, context_kwargs
        )
        self._since_checkpoint = 0

        if cache is not None:
            cache.enable_journal()
            if config.cache_path and os.path.exists(config.cache_path):
                self.outcome.cache_entries_loaded = cache.merge_entries(
                    load_cache_file(config.cache_path)
                )
        if resume_from:
            self._restore(load_checkpoint(resume_from))
        self.remaining: Deque[int] = deque(
            index
            for index in order
            if index not in self.outcome.plans_by_index
            and index not in self.outcome.pruned
        )

    # -- resume --------------------------------------------------------

    def _restore(self, checkpoint: SweepCheckpoint) -> None:
        if checkpoint.sweep_digest != self.digest:
            raise CheckpointError(
                "checkpoint does not match this sweep (different cluster, "
                f"model, workload, planner, or strategies): checkpoint "
                f"digest {checkpoint.sweep_digest}, sweep digest {self.digest}"
            )
        outcome = self.outcome
        for index, document in checkpoint.completed.items():
            plan = plan_from_dict(document)
            outcome.plans_by_index[index] = plan
            outcome.walls[index] = checkpoint.walls.get(index, 0.0)
            outcome.resumed_planned.add(index)
            self._observe(index, plan)
        outcome.pruned.update(checkpoint.pruned)
        outcome.resumed_pruned.update(checkpoint.pruned)
        if self.cache is not None:
            self.cache.merge_entries(checkpoint.cache_entries)

    # -- incumbent / frontier ------------------------------------------

    @property
    def incumbent(self) -> float:
        return self.best_key[0] if self.best_key is not None else float("inf")

    def _observe(self, index: int, plan: PipelinePlan) -> bool:
        """Fold one planned strategy into the frontier; True on improvement."""
        achieved = per_sample_time(plan)
        if achieved is None:
            return False
        key = (achieved, index)
        if self.best_key is None or key < self.best_key:
            self.best_key = key
            return True
        return False

    @property
    def completed_count(self) -> int:
        return len(self.outcome.plans_by_index) + len(self.outcome.pruned)

    def _emit(
        self,
        kind: str,
        index: int,
        plan: Optional[PipelinePlan],
        wall: float,
        improved: bool,
    ) -> None:
        if self.progress is None:
            return
        best_time = best_index = None
        if self.best_key is not None:
            best_time, best_index = self.best_key
        self.progress(
            SweepProgress(
                kind=kind,
                index=index,
                parallel=self.strategies[index],
                per_sample_time=per_sample_time(plan) if plan else None,
                improved=improved,
                best_per_sample_time=best_time,
                best_index=best_index,
                completed=self.completed_count,
                total=len(self.strategies),
                wall_seconds=wall,
                plan=plan if improved else None,
            )
        )

    # -- bookkeeping shared by both execution paths --------------------

    def record_planned(self, index: int, plan: PipelinePlan, wall: float) -> bool:
        self.outcome.plans_by_index[index] = plan
        self.outcome.walls[index] = wall
        self._since_checkpoint += 1
        return self._observe(index, plan)

    def record_pruned(self, index: int, by_worker: bool) -> None:
        self.outcome.pruned.add(index)
        if by_worker:
            self.outcome.incumbent_prunes += 1
        else:
            self.outcome.coordinator_prunes += 1
        self._since_checkpoint += 1

    def prune_remaining_front(self) -> List[int]:
        """Coordinator-side branch and bound over the bound-ordered queue.

        ``remaining`` ascends in bound, so the moment its head exceeds
        the incumbent every queued strategy is provably hopeless.
        """
        if not self.config.prune or not self.remaining:
            return []
        if self.bounds[self.remaining[0]] <= self.incumbent:
            return []
        dropped = list(self.remaining)
        self.remaining.clear()
        for index in dropped:
            self.record_pruned(index, by_worker=False)
        return dropped

    # -- checkpointing -------------------------------------------------

    def _snapshot(self) -> SweepCheckpoint:
        cache_entries: Tuple[CacheEntry, ...] = ()
        if self.cache is not None and self.config.checkpoint_cache:
            cache_entries = tuple(self.cache.export_entries())
        best_time = self.best_key[0] if self.best_key is not None else None
        return SweepCheckpoint(
            sweep_digest=self.digest,
            incumbent=best_time,
            completed={
                index: plan_to_dict(plan)
                for index, plan in self.outcome.plans_by_index.items()
            },
            walls=dict(self.outcome.walls),
            pruned=tuple(sorted(self.outcome.pruned)),
            cache_entries=cache_entries,
        )

    def maybe_checkpoint(self) -> None:
        if not self.config.checkpoint_path:
            return
        if self._since_checkpoint < max(1, self.config.checkpoint_every):
            return
        save_checkpoint(self._snapshot(), self.config.checkpoint_path)
        self._since_checkpoint = 0

    def finalize(self) -> None:
        """Final checkpoint + persistent cache write after a complete sweep."""
        if self.config.checkpoint_path:
            save_checkpoint(self._snapshot(), self.config.checkpoint_path)
        if self.config.cache_path and self.cache is not None:
            save_cache_file(self.cache, self.config.cache_path)

    # -- shard carving -------------------------------------------------

    def next_shard(self) -> Optional[ShardTask]:
        pruned_now = self.prune_remaining_front()
        if pruned_now:
            self.maybe_checkpoint()
            for index in pruned_now:
                self._emit("pruned", index, None, 0.0, improved=False)
        if not self.remaining:
            return None
        if self.config.shard_size > 0:
            size = self.config.shard_size
        else:
            # Guided self-scheduling: hand out 1/(2w) of what's left, so
            # early shards amortise dispatch overhead and the tail breaks
            # into single strategies that idle workers steal.
            size = max(1, len(self.remaining) // (2 * max(1, self.config_workers)))
        indices = tuple(
            self.remaining.popleft() for _ in range(min(size, len(self.remaining)))
        )
        self.outcome.shards_dispatched += 1
        return ShardTask(
            indices=indices,
            strategies=tuple(self.strategies[index] for index in indices),
            bounds=tuple(self.bounds[index] for index in indices),
            incumbent=self.incumbent,
            cache_entries=(),
        )

    config_workers: int = 1


def execute_sweep(
    *,
    cluster: ClusterSpec,
    spec: ModelSpec,
    train: TrainingConfig,
    strategies: Sequence[ParallelConfig],
    contexts: Sequence[PlannerContext],
    bounds: Sequence[float],
    order: Sequence[int],
    planner: PlannerRef,
    config: "SweepConfig",
    workers: int,
    context_kwargs: Dict,
    shared_cache: Optional[StageEvalCache],
    resume_from: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
) -> ExecutionOutcome:
    """Execute a sweep's planning work serially or across worker processes.

    ``bounds`` are per-sample admissible lower bounds aligned to
    ``strategies``; ``order`` is the bound-ascending visit order. The
    caller owns enumeration and final selection — this function only
    decides execution, pruning, checkpointing, and cache movement.
    """
    if config.cache_path and shared_cache is None:
        raise ValueError("SweepConfig.cache_path requires share_cache=True")
    coordinator = _Coordinator(
        cluster=cluster,
        spec=spec,
        train=train,
        strategies=strategies,
        bounds=bounds,
        order=order,
        planner=planner,
        config=config,
        context_kwargs=context_kwargs,
        cache=shared_cache,
        resume_from=resume_from,
        progress=progress,
    )
    coordinator.config_workers = workers
    if coordinator.remaining:
        if workers > 1:
            _execute_parallel(coordinator, workers)
        else:
            _execute_serial(coordinator, contexts)
    coordinator.finalize()
    return coordinator.outcome


def _execute_serial(
    coordinator: _Coordinator, contexts: Sequence[PlannerContext]
) -> None:
    """In-process execution: one strategy at a time, checkpointing as it goes."""
    planner_fn = resolve_planner(coordinator.planner)
    while coordinator.remaining:
        dropped = coordinator.prune_remaining_front()
        if dropped:
            # prune_remaining_front recorded them; checkpoint before the
            # events fire so an aborting callback finds them on disk.
            coordinator.maybe_checkpoint()
            for index in dropped:
                coordinator._emit("pruned", index, None, 0.0, improved=False)
            break
        index = coordinator.remaining.popleft()
        started = time.perf_counter()  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity
        plan = planner_fn(contexts[index])
        wall = time.perf_counter() - started  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity
        improved = coordinator.record_planned(index, plan, wall)
        coordinator.maybe_checkpoint()
        coordinator._emit("planned", index, plan, wall, improved)


def _execute_parallel(coordinator: _Coordinator, workers: int) -> None:
    """Work-stealing execution over ``workers`` processes.

    Dispatch is request-driven: each worker holds one shard; returning a
    result is its request for the next. Every dispatch carries the
    freshest incumbent and exactly the cache entries that worker has not
    seen (tracked as per-worker offsets into the coordinator cache's
    append-only journal).
    """
    config = coordinator.config
    cache = coordinator.cache
    mp = multiprocessing.get_context()
    init = _WorkerInit(
        planner=coordinator.planner,
        cluster=coordinator.cluster,
        spec=coordinator.spec,
        train=coordinator.train,
        context_kwargs=dict(coordinator.context_kwargs),
        share_cache=config.share_cache,
        cache_max_entries=config.cache_max_entries,
        prune=config.prune,
    )
    result_queue = mp.Queue()
    task_queues = [mp.Queue() for _ in range(workers)]
    processes = [
        mp.Process(
            target=_worker_main,
            args=(worker_id, init, task_queues[worker_id], result_queue),
            daemon=True,
        )
        for worker_id in range(workers)
    ]
    # None = never synced: first dispatch ships the full cache export.
    sync_offsets: List[Optional[int]] = [None] * workers
    active = [False] * workers
    outstanding = 0

    def dispatch(worker_id: int, journal_cut: Optional[int] = None) -> bool:
        nonlocal outstanding
        task = coordinator.next_shard()
        if task is None:
            if active[worker_id]:
                task_queues[worker_id].put(None)
                active[worker_id] = False
            return False
        if cache is not None:
            cut = cache.journal_length if journal_cut is None else journal_cut
            offset = sync_offsets[worker_id]
            if offset is None:
                entries = tuple(cache.export_entries())
            else:
                entries = tuple(cache.journal_slice(offset, cut))
            sync_offsets[worker_id] = cache.journal_length
            task = ShardTask(
                indices=task.indices,
                strategies=task.strategies,
                bounds=task.bounds,
                incumbent=task.incumbent,
                cache_entries=entries,
            )
        task_queues[worker_id].put(task)
        outstanding += 1
        return True

    try:
        for process in processes:
            process.start()
        for worker_id in range(workers):
            active[worker_id] = True
            # dispatch() sends the shutdown sentinel itself when the queue
            # is already exhausted (e.g. fewer shards than workers).
            dispatch(worker_id)
        while outstanding:
            try:
                worker_id, payload = result_queue.get(timeout=_POLL_SECONDS)
            except Empty:
                for process in processes:
                    if process.exitcode is not None and process.exitcode != 0:
                        raise SweepWorkerError(
                            f"sweep worker {process.name} died with exit code "
                            f"{process.exitcode} before finishing its shard"
                        )
                continue
            if isinstance(payload, ShardFailure):
                raise SweepWorkerError(
                    f"sweep worker {worker_id} failed:\n{payload.traceback}"
                )
            outstanding -= 1
            result: ShardResult = payload
            journal_cut = cache.journal_length if cache is not None else None
            if cache is not None and result.cache_entries:
                coordinator.outcome.cache_entries_merged += cache.merge_entries(
                    result.cache_entries
                )
            coordinator.outcome.worker_cache_hits += result.cache_hits
            coordinator.outcome.worker_cache_misses += result.cache_misses
            events: List[Tuple[str, int, Optional[PipelinePlan], float, bool]] = []
            for index in result.pruned:
                coordinator.record_pruned(index, by_worker=True)
                events.append(("pruned", index, None, 0.0, False))
            for index, document, wall in result.planned:
                plan = plan_from_dict(document)
                improved = coordinator.record_planned(index, plan, wall)
                events.append(("planned", index, plan, wall, improved))
            coordinator.maybe_checkpoint()
            for kind, index, plan, wall, improved in events:
                coordinator._emit(kind, index, plan, wall, improved)
            dispatch(worker_id, journal_cut=journal_cut)
    finally:
        for worker_id in range(workers):
            if active[worker_id]:
                try:
                    task_queues[worker_id].put_nowait(None)
                except Exception:
                    pass
        for process in processes:
            process.join(timeout=_POLL_SECONDS)
            if process.is_alive():
                process.terminate()
                process.join(timeout=_POLL_SECONDS)
