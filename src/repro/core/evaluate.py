"""Bridging plans to the pipeline simulator.

The planners produce analytic cost-model estimates; this module *executes*
a plan on the event-driven simulator, which is the reproduction's
equivalent of running the training job and timing an iteration. Simulated
numbers are what the experiment harness reports, with the analytic model
kept alongside for validation (they should agree closely for 1F1B — a
property the test suite asserts).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional

from repro.core.placement import apply_plan_placement
from repro.core.plan import PipelinePlan
from repro.core.robust import evaluate_robustness, robust_metadata
from repro.hardware.cluster import ClusterSpec
from repro.hardware.comm import CommModel
from repro.pipeline.memory_audit import audit_schedule_memory
from repro.pipeline.perturb import PerturbationSpec
from repro.pipeline.schedules import (
    chimera_schedule,
    gpipe_schedule,
    interleaved_1f1b_schedule,
    one_f_one_b_2bp,
    one_f_one_b_overlapped,
    one_f_one_b_schedule,
)
from repro.pipeline.simulator import SimulationResult, simulate_with_info
from repro.pipeline.tasks import Schedule


@dataclass(frozen=True)
class PlanEvaluation:
    """A plan together with its simulated execution.

    Attributes:
        plan: the evaluated plan.
        simulation: the simulator run, or ``None`` when the plan was
            infeasible (OOM) and never executed.
        oom: whether the plan is memory-infeasible — declared by the
            planner or discovered by the simulator's memory tracker.
    """

    plan: PipelinePlan
    simulation: Optional[SimulationResult]
    oom: bool

    @property
    def iteration_time(self) -> Optional[float]:
        if self.oom or self.simulation is None:
            return None
        return self.simulation.iteration_time

    @property
    def label(self) -> str:
        return self.plan.method

    def peak_memory_per_device(self) -> List[float]:
        if self.simulation is not None:
            return list(self.simulation.device_peak_bytes)
        return list(self.plan.peak_memory_bytes())


def build_schedule_for_plan(
    plan: PipelinePlan,
    cluster: ClusterSpec,
    schedule_kind: str = "1f1b",
    comm: Optional[CommModel] = None,
) -> Schedule:
    """Materialise a plan as an executable schedule.

    Args:
        plan: the pipeline plan.
        cluster: hardware, for the stage-boundary hop time.
        schedule_kind: ``"1f1b"``, ``"2bp"`` (split backward: grad-input /
            deferred grad-weight), ``"overlap"`` (recomputation hidden
            under the gradient hop), ``"gpipe"``, ``"chimera"``,
            ``"chimerad"`` or ``"interleaved"`` (the latter reads the chunk
            count off the plan: ``num_stages / pipeline_parallel``).
        comm: an existing communication model for ``cluster``, to avoid
            rebuilding one per call.
    """
    hop = (comm or CommModel(cluster)).pipeline_hop_time(plan.hidden_size, plan.train)
    costs = list(plan.stage_costs())
    n = plan.train.num_micro_batches(plan.parallel)
    if schedule_kind == "1f1b":
        return one_f_one_b_schedule(costs, n, hop_time=hop, name=plan.method)
    if schedule_kind == "2bp":
        return one_f_one_b_2bp(costs, n, hop_time=hop, name=f"{plan.method}-2BP")
    if schedule_kind == "overlap":
        return one_f_one_b_overlapped(
            costs, n, hop_time=hop, name=f"{plan.method}-OR"
        )
    if schedule_kind == "gpipe":
        return gpipe_schedule(costs, n, hop_time=hop)
    if schedule_kind == "chimera":
        return chimera_schedule(costs, n, hop_time=hop)
    if schedule_kind == "chimerad":
        return chimera_schedule(costs, n, hop_time=hop, forward_doubling=True)
    if schedule_kind == "interleaved":
        return interleaved_1f1b_schedule(
            costs, n, plan.parallel.pipeline_parallel, hop_time=hop
        )
    raise ValueError(f"unknown schedule kind {schedule_kind!r}")


def evaluate_plan(
    plan: PipelinePlan,
    cluster: ClusterSpec,
    schedule_kind: str = "1f1b",
    enforce_memory: bool = True,
    include_gradient_sync: bool = True,
    perturbation: Optional[PerturbationSpec] = None,
    robust_draws: int = 16,
) -> PlanEvaluation:
    """Simulate ``plan`` and check it against device memory.

    When ``include_gradient_sync`` is set and the plan is data-parallel,
    the per-iteration ZeRO-1 gradient reduce-scatter and parameter
    all-gather of the heaviest stage is added to the iteration time (all
    stages synchronise concurrently after the last backward).

    The returned evaluation's plan carries simulator observability in its
    metadata (``sim_engine``, ``sim_cache_hit`` and the cumulative
    simulation-cache counters), mirroring the sweep's search counters, and
    the memory audit's summary (``mem_model_peak_bytes``,
    ``mem_sim_peak_bytes``, ``mem_model_conservative``,
    ``mem_model_max_rel_gap``) cross-checking the Section 4.2 model against
    the simulator's memory tracker under the executed schedule.

    With a ``perturbation`` spec, the schedule is additionally executed
    under a ``robust_draws``-member perturbation ensemble
    (:func:`repro.core.robust.evaluate_robustness`) and the ensemble's
    statistics land in metadata as ``robust_*`` keys (nominal / mean /
    p95 / worst iteration time and per-device straggler criticality).
    The headline ``iteration_time`` stays nominal.
    """
    if not plan.feasible:
        return PlanEvaluation(plan=plan, simulation=None, oom=True)
    comm = CommModel(cluster)
    schedule = build_schedule_for_plan(plan, cluster, schedule_kind, comm=comm)
    result, sim_info = simulate_with_info(schedule)
    audit = audit_schedule_memory(schedule, schedule_kind, result=result)
    robustness = None
    if perturbation is not None:
        robustness = evaluate_robustness(schedule, perturbation, robust_draws)
    if include_gradient_sync and plan.parallel.data_parallel > 1:
        sync = max(
            comm.gradient_sync_time(stage.params, plan.parallel)
            for stage in plan.stages
        )
        result = dataclasses.replace(
            result, iteration_time=result.iteration_time + sync
        )
    oom = False
    if enforce_memory:
        if cluster.device_pool:
            # Heterogeneous fleet: each simulated device peak is judged
            # against the capacity of the part the plan placed on that
            # rank (the plan's placement metadata re-orders the pool).
            placed = apply_plan_placement(cluster, plan)
            pool_size = len(placed.device_pool or ())
            oom = any(
                peak
                > (
                    placed.rank_device(rank)
                    if rank < pool_size
                    else cluster.device
                ).usable_memory_bytes
                for rank, peak in enumerate(result.device_peak_bytes)
            )
        else:
            oom = bool(result.oom_devices(cluster.device.usable_memory_bytes))
    summary = audit.summary()
    plan = plan.with_metadata(
        sim_engine=sim_info["engine"],
        sim_cache_hit=sim_info["cache_hit"],
        sim_cache_hits=sim_info["cache_hits"],
        sim_cache_misses=sim_info["cache_misses"],
        mem_model_peak_bytes=summary["modeled_peak_bytes"],
        mem_sim_peak_bytes=summary["simulated_peak_bytes"],
        mem_model_conservative=summary["conservative"],
        mem_model_max_rel_gap=summary["max_rel_gap"],
    )
    if robustness is not None:
        plan = plan.with_metadata(**robust_metadata(robustness))
    return PlanEvaluation(plan=plan, simulation=result, oom=oom)
