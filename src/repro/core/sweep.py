"""Parallel, pruned, cache-reusing sweep over 3D-parallelism strategies.

The Table 3 sweep plans every valid ``(t, p, d)`` strategy and keeps the
fastest feasible plan. Planning one strategy runs the full two-level DP,
so the sweep — not any single plan — is the search layer's hot path. This
module attacks it with three cooperating optimizations:

1. **Orchestrated parallel execution** — planning work is carved into
   bound-ordered shards that idle worker processes steal from a shared
   queue (:mod:`repro.core.orchestrator`); plans cross the process
   boundary through the :mod:`repro.core.serialize` documents. Each
   worker keeps a size-bounded :class:`~repro.core.isomorphism
   .StageEvalCache`, exports its new entries back to the coordinator with
   every shard result, and receives everything the other workers have
   computed with its next shard (cache merge-back). The sweep can
   checkpoint its frontier to disk and resume after a kill
   (``resume_from=``), persist the merged cache for warm starts across
   runs (``SweepConfig.cache_path``), and stream best-so-far plans
   through a ``progress`` callback.
2. **Branch-and-bound pruning** — :func:`strategy_lower_bound` is a cheap
   *admissible* bound on a strategy's modelled iteration time (ideal
   balanced partition, plus an aggregate-memory floor on the
   recomputation any feasible plan must pay). Strategies are visited in
   bound order and skipped once their bound exceeds the incumbent best
   per-sample time; a skipped strategy provably cannot win. The incumbent
   is broadcast to workers with every shard, so pruning happens inside
   workers too, not only at dispatch time.
3. **Cross-strategy evaluation reuse** — in serial mode all contexts share
   one :class:`StageEvalCache`, so every planner that meets the same
   (fingerprint, isomorphism-class) pair — e.g. AdaPipe and Even
   Partitioning on the same strategy — reuses the inner recomputation DP's
   solution instead of re-solving it per :class:`PlannerContext`. In
   parallel mode the merge-back gives workers the same property across
   process boundaries.

Equivalence guarantee: for planners whose ``modeled_iteration_time``
follows the 1F1B cost model of Section 5.1 (all built-in planners), the
pruned and/or parallel sweep selects a best plan whose
:func:`~repro.core.serialize.plan_signature` is identical to the serial
exhaustive sweep's — pruning only ever discards strategies whose bound
already exceeds a feasible incumbent, and the final selection minimises
(per-sample time, enumeration index) deterministically. ALGORITHMS.md
§12 extends the argument to cache merge-back, incumbent broadcast, and
checkpoint/resume.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config import ParallelConfig, TrainingConfig
from repro.core.isomorphism import StageEvalCache
from repro.core.orchestrator import (
    PlannerRef,
    ProgressCallback,
    execute_sweep,
    per_sample_time,
    resolve_planner,
)
from repro.core.plan import PipelinePlan
from repro.core.robust import (
    ROBUST_OBJECTIVES,
    evaluate_robustness_many,
    robust_metadata,
)
from repro.core.placement import best_placement_scale_floor, pool_capacity_sum
from repro.core.search import PlannerContext, enumerate_parallel_strategies, plan_adapipe
from repro.hardware.cluster import ClusterSpec
from repro.model.spec import ModelSpec
from repro.pipeline.perturb import PerturbationSpec

__all__ = [
    "PlannerRef",
    "SweepConfig",
    "SweepResult",
    "SweepStats",
    "StrategyReport",
    "resolve_planner",
    "run_sweep",
    "strategy_lower_bound",
]

# Selection objective, shared with the execution layer.
_per_sample_time = per_sample_time


@dataclass(frozen=True)
class SweepConfig:
    """Knobs of the sweep executor.

    Attributes:
        workers: process count for parallel planning. ``1`` forces the
            serial path; ``0`` (the default) picks ``min(cpu_count,
            strategies)`` but stays serial for sweeps smaller than
            ``min_parallel`` (fork + re-profile overhead would dominate).
        min_parallel: smallest sweep worth forking workers for.
        prune: enable branch-and-bound pruning via
            :func:`strategy_lower_bound`.
        share_cache: share one stage-evaluation cache across the sweep's
            contexts (serial) or merge worker cache shards through the
            coordinator (parallel).
        shard_size: strategies per stolen shard. ``0`` (default) sizes
            shards adaptively — ``remaining / (2 * workers)``, floored at
            1 — so early shards amortise dispatch overhead and the tail
            degenerates to single-strategy steals.
        cache_max_entries: FIFO bound on each worker process's
            stage-evaluation cache (the coordinator/serial shared cache
            is unbounded unless the caller bounds the cache it passes).
        cache_path: optional JSON file persisting the merged evaluation
            cache across runs: loaded (if present) before planning,
            rewritten after the sweep. Requires ``share_cache``.
        checkpoint_path: optional JSON file receiving periodic frontier
            checkpoints (completed plan documents, pruned indices,
            incumbent, merged cache shard). A killed sweep resumes via
            ``run_sweep(..., resume_from=checkpoint_path)``.
        checkpoint_every: completed strategies between checkpoint writes
            (the final state is always written when the sweep finishes).
        checkpoint_cache: include the merged cache shard in checkpoints
            so a resumed sweep re-plans warm. Disable to keep checkpoint
            files small.
        robust_objective: statistic the final selection minimises —
            ``"nominal"`` (default: the modelled iteration time, exactly
            the classic sweep) or ``"mean"`` / ``"p95"`` / ``"worst"``
            of the simulated perturbation ensemble. Non-nominal
            objectives disable pruning (the admissible bound holds for
            nominal time only) and require a ``perturbation`` spec.
        perturbation: the :class:`~repro.pipeline.perturb.PerturbationSpec`
            the robust objective evaluates plans under.
        robust_draws: ensemble size per plan for robust objectives.
        robust_schedule_kind: schedule the robust ensemble executes.
    """

    workers: int = 0
    min_parallel: int = 4
    prune: bool = True
    share_cache: bool = True
    shard_size: int = 0
    cache_max_entries: Optional[int] = 65536
    cache_path: Optional[str] = None
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 8
    checkpoint_cache: bool = True
    robust_objective: str = "nominal"
    perturbation: Optional[PerturbationSpec] = None
    robust_draws: int = 8
    robust_schedule_kind: str = "1f1b"

    def resolve_workers(self, num_strategies: int) -> int:
        if num_strategies <= 0:
            return 1
        if self.workers == 0:
            if num_strategies < self.min_parallel:
                return 1
            return max(1, min(os.cpu_count() or 1, num_strategies))
        return max(1, min(self.workers, num_strategies))


@dataclass(frozen=True)
class StrategyReport:
    """Per-strategy sweep accounting, in enumeration order.

    Attributes:
        parallel: the strategy.
        lower_bound: admissible per-sample lower bound (seconds/sample).
        pruned: True when branch-and-bound skipped the strategy.
        per_sample_time: achieved per-sample time (``None`` if pruned or
            infeasible).
        wall_seconds: planning wall clock (0 when pruned).
    """

    parallel: ParallelConfig
    lower_bound: float
    pruned: bool
    per_sample_time: Optional[float]
    wall_seconds: float


@dataclass
class SweepStats:
    """Aggregate observability counters of one sweep.

    ``strategies_planned`` / ``strategies_pruned`` count everything the
    sweep's *result* covers, including work restored from a resume
    checkpoint; ``strategies_resumed`` says how much of it was restored
    rather than recomputed, so ``strategies_planned - strategies_resumed``
    is the fresh planning work this run actually performed.
    """

    strategies_total: int = 0
    strategies_planned: int = 0
    strategies_pruned: int = 0
    strategies_resumed: int = 0
    incumbent_prunes: int = 0
    coordinator_prunes: int = 0
    shards_dispatched: int = 0
    cache_entries_merged: int = 0
    cache_entries_loaded: int = 0
    worker_cache_hits: int = 0
    worker_cache_misses: int = 0
    inner_dp_invocations: int = 0
    eval_cache_hits: int = 0
    eval_cache_misses: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    reports: List[StrategyReport] = field(default_factory=list)

    @property
    def eval_cache_hit_rate(self) -> float:
        total = self.eval_cache_hits + self.eval_cache_misses
        return self.eval_cache_hits / total if total else 0.0

    @property
    def worker_cache_hit_rate(self) -> float:
        total = self.worker_cache_hits + self.worker_cache_misses
        return self.worker_cache_hits / total if total else 0.0

    def describe(self) -> str:
        resumed = (
            f" ({self.strategies_resumed} resumed)" if self.strategies_resumed else ""
        )
        return (
            f"{self.strategies_planned}/{self.strategies_total} strategies "
            f"planned{resumed} ({self.strategies_pruned} pruned), "
            f"{self.inner_dp_invocations} inner-DP invocations, "
            f"eval-cache hit rate {self.eval_cache_hit_rate:.0%}, "
            f"{self.workers} worker(s), {self.wall_seconds:.2f}s"
        )


@dataclass(frozen=True)
class SweepResult:
    """Outcome of :func:`run_sweep`.

    Attributes:
        best: fastest feasible plan (per-sample time, enumeration-order
            tie-break), or ``None`` when every strategy is infeasible.
        plans: the planned (non-pruned) strategies' plans, in enumeration
            order.
        stats: aggregate counters plus per-strategy reports.
    """

    best: Optional[PipelinePlan]
    plans: List[PipelinePlan]
    stats: SweepStats


def strategy_lower_bound(ctx: PlannerContext) -> float:
    """Admissible lower bound on the modelled 1F1B iteration time.

    Built from three relaxations of the Section 5.1 phase model, each
    valid for every feasible partition and recomputation choice:

    * warmup + ending: ``W_0 >= sum_s F_s`` and ``E_0 >= sum_s B_s`` (drop
      the bubble terms of Equation 3), and forward/backward times are
      additive over layers, so the sums equal the whole model's forward
      and backward time — independent of the partition — plus one hop per
      stage boundary in each direction.
    * steady: the slowest stage is at least the **ideal balanced
      partition**'s average, ``max_s (F_s + B_s) >= span / p``.
    * memory: summing the per-stage capacity constraints over all ``p``
      devices (with every in-flight count relaxed to its minimum of 1)
      bounds the total bytes the strategy can keep saved; what cannot be
      saved must be recomputed, and the cheapest possible way to shed the
      excess — fractionally, best bytes-per-recompute-second first — is a
      floor on the backward time recomputation adds. When even shedding
      everything cannot fit the static state, no feasible plan exists and
      the bound is ``inf``.

    The memory relaxation is checked against the *hard* device capacity,
    so it is sound for the baseline planners too (they ignore the DP's
    conservative margin).

    On a pooled (heterogeneous) cluster the compute terms are scaled by
    the pool's **minimum** per-rank compute factor: every stage of every
    placement runs at least that factor times its nominal cost, so the
    bound stays admissible across the whole placement dimension
    (ALGORITHMS.md section 14); the memory floor pools the per-rank
    capacities, a placement-invariant sum.
    """
    profiler = ctx.profiler
    forward = 0.0
    backward = 0.0
    for layer in ctx.layers:
        profile = profiler.profile_layer(layer.kind)
        forward += profile.time_forward
        backward += profile.time_backward
    p = ctx.parallel.pipeline_parallel
    n = ctx.num_micro_batches
    recompute_floor = _recompute_time_floor(ctx)
    if recompute_floor == float("inf"):
        return float("inf")
    scale_floor = best_placement_scale_floor(ctx.cluster, p)
    compute = forward + backward + recompute_floor
    if scale_floor != 1.0:
        compute *= scale_floor
    span = compute + 2.0 * (p - 1) * ctx.hop_time
    return span + max(0, n - p) * span / p


def _recompute_time_floor(ctx: PlannerContext) -> float:
    """Least recomputation time any feasible plan of ``ctx`` must pay.

    Aggregate memory argument: every stage satisfies ``static + buffer +
    in_flight * saved <= capacity``; summing over stages with
    ``in_flight >= 1`` gives ``static_model + p * buffer + always_model +
    optional_saved <= p * capacity``. The relaxation to 1 keeps the bound
    admissible for every schedule's accounting — the schedule-aware
    counts of :func:`repro.profiler.memory.in_flight_micro_batches`
    (``min(n, p - s)`` for 1F1B, ``n`` for GPipe, ...) are all >= 1. Bytes of optional units above that
    budget must be shed, and the fractional greedy (largest
    bytes-per-second first) lower-bounds the forward time recomputing
    them adds to the backward pass. Returns ``inf`` when the static floor
    alone exceeds the pooled capacity (provably infeasible).
    """
    profiler = ctx.profiler
    memory = profiler.memory
    p = ctx.parallel.pipeline_parallel
    pooled = pool_capacity_sum(ctx.cluster, p)
    if pooled is None:
        pooled = p * ctx.hard_capacity_bytes
    budget = (
        pooled
        - memory.static_bytes(ctx.layers)
        - p * memory.recompute_buffer_bytes()
    )
    always = 0.0
    optional_bytes = 0.0
    items: List[Tuple[float, float]] = []  # (recompute seconds, bytes)
    for layer in ctx.layers:
        for unit in profiler.profile_layer(layer.kind).units:
            if unit.always_saved:
                always += unit.saved_bytes
            elif unit.saved_bytes > 0:
                optional_bytes += unit.saved_bytes
                items.append((unit.time_forward, unit.saved_bytes))
    budget -= always
    if budget < 0:
        return float("inf")
    excess = optional_bytes - budget
    if excess <= 0:
        return 0.0
    items.sort(key=lambda item: item[0] / item[1])
    floor = 0.0
    for cost, size in items:
        shed = min(size, excess)
        floor += cost * shed / size
        excess -= shed
        if excess <= 0:
            break
    return floor


def run_sweep(
    cluster: ClusterSpec,
    spec: ModelSpec,
    train: TrainingConfig,
    num_devices: int,
    planner: PlannerRef = plan_adapipe,
    strategies: Optional[Iterable[ParallelConfig]] = None,
    config: Optional[SweepConfig] = None,
    resume_from: Optional[str] = None,
    progress: Optional[ProgressCallback] = None,
    **context_kwargs,
) -> SweepResult:
    """Plan the strategy space and return the best plan plus sweep stats.

    Drop-in performance replacement for the serial Table 3 sweep: the
    selected best plan is signature-identical to the exhaustive serial
    sweep's (see the module docstring for the argument), while pruning,
    cache reuse, and (on multi-core hosts) work-stealing parallel
    planning cut the wall clock. ``resume_from`` restores a frontier
    checkpoint written by ``SweepConfig.checkpoint_path`` and re-plans
    only the strategies it does not cover; ``progress`` receives a
    :class:`~repro.core.orchestrator.SweepProgress` event per planned or
    pruned strategy, with best-so-far plans attached to improvements.
    ``context_kwargs`` are forwarded to every :class:`PlannerContext`;
    pass ``eval_cache=`` to share evaluations with work outside this
    sweep.
    """
    config = config or SweepConfig()
    if config.robust_objective not in ROBUST_OBJECTIVES:
        raise ValueError(
            f"unknown robust objective {config.robust_objective!r}; "
            f"pick from {ROBUST_OBJECTIVES}"
        )
    robust_mode = config.robust_objective != "nominal"
    if robust_mode:
        if config.perturbation is None:
            raise ValueError(
                "robust_objective requires a PerturbationSpec (SweepConfig"
                ".perturbation)"
            )
        if config.prune:
            # strategy_lower_bound is admissible for the *nominal* modelled
            # time only; a perturbed ensemble statistic may rank strategies
            # differently, so branch-and-bound would no longer be sound.
            config = dataclasses.replace(config, prune=False)
    if strategies is None:
        strategies = enumerate_parallel_strategies(num_devices, cluster, spec, train)
    strategies = list(strategies)
    started = time.perf_counter()  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity

    shared_cache = context_kwargs.pop("eval_cache", None)
    if shared_cache is None and config.share_cache:
        shared_cache = StageEvalCache()

    contexts = [
        PlannerContext(
            cluster, spec, train, parallel, eval_cache=shared_cache, **context_kwargs
        )
        for parallel in strategies
    ]
    per_sample = 1.0 / train.global_batch_size
    bounds = [strategy_lower_bound(ctx) * per_sample for ctx in contexts]
    # Visit in bound order: the most promising strategies establish a tight
    # incumbent early, maximising what branch-and-bound can skip.
    order = sorted(range(len(strategies)), key=lambda i: (bounds[i], i))

    workers = config.resolve_workers(len(strategies))
    if workers > 1:
        try:
            pickle.dumps(planner)
        except Exception:
            workers = 1  # unpicklable planner (closure/lambda): stay serial

    outcome = execute_sweep(
        cluster=cluster,
        spec=spec,
        train=train,
        strategies=strategies,
        contexts=contexts,
        bounds=bounds,
        order=order,
        planner=planner,
        config=config,
        workers=workers,
        context_kwargs=context_kwargs,
        shared_cache=shared_cache,
        resume_from=resume_from,
        progress=progress,
    )
    plans_by_index = outcome.plans_by_index
    walls = outcome.walls
    pruned = outcome.pruned

    # Deterministic selection, independent of completion order: smallest
    # per-sample time, earliest enumeration index on exact ties — the same
    # "first strict improvement wins" rule as the serial exhaustive sweep.
    best: Optional[PipelinePlan] = None
    best_key: Optional[Tuple[float, int]] = None
    for index in sorted(plans_by_index):
        achieved = _per_sample_time(plans_by_index[index])
        if achieved is None:
            continue
        key = (achieved, index)
        if best_key is None or key < best_key:
            best, best_key = plans_by_index[index], key

    stats = SweepStats(
        strategies_total=len(strategies),
        strategies_planned=len(plans_by_index),
        strategies_pruned=len(pruned),
        strategies_resumed=len(outcome.resumed_planned),
        incumbent_prunes=outcome.incumbent_prunes,
        coordinator_prunes=outcome.coordinator_prunes,
        shards_dispatched=outcome.shards_dispatched,
        cache_entries_merged=outcome.cache_entries_merged,
        cache_entries_loaded=outcome.cache_entries_loaded,
        worker_cache_hits=outcome.worker_cache_hits,
        worker_cache_misses=outcome.worker_cache_misses,
        workers=workers,
        wall_seconds=time.perf_counter() - started,  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity
    )
    plans: List[PipelinePlan] = []
    position_by_index: Dict[int, int] = {}
    for index, parallel in enumerate(strategies):
        plan = plans_by_index.get(index)
        stats.reports.append(
            StrategyReport(
                parallel=parallel,
                lower_bound=bounds[index],
                pruned=index in pruned,
                per_sample_time=_per_sample_time(plan) if plan else None,
                wall_seconds=walls.get(index, 0.0),
            )
        )
        if plan is None:
            continue
        metadata = dict(plan.metadata)
        stats.inner_dp_invocations += int(metadata.get("inner_dp_invocations", 0))
        stats.eval_cache_hits += int(metadata.get("eval_cache_hits", 0))
        stats.eval_cache_misses += int(metadata.get("eval_cache_misses", 0))
        plan = plan.with_metadata(
            sweep_lower_bound=bounds[index],
            sweep_wall_seconds=walls.get(index, 0.0),
        )
        plans_by_index[index] = plan
        position_by_index[index] = len(plans)
        plans.append(plan)
    if robust_mode:
        # Re-rank the planned strategies by the simulated perturbation
        # ensemble: each feasible plan's schedule runs under the spec's
        # K draws and the configured statistic (per sample) replaces the
        # nominal modelled time as the selection key. Every evaluated
        # plan keeps the ensemble's summary in its metadata. All
        # ensembles go through evaluate_robustness_many, so candidate
        # schedules sharing a shape (same policy/devices/micro-batches,
        # different stage durations) execute as one batched sweep with a
        # single DAG lowering (ALGORITHMS.md section 11).
        from repro.core.evaluate import build_schedule_for_plan

        best, best_key = None, None
        indices = [
            index
            for index in sorted(plans_by_index)
            if _per_sample_time(plans_by_index[index]) is not None
        ]
        schedules = [
            build_schedule_for_plan(
                plans_by_index[index], cluster, config.robust_schedule_kind
            )
            for index in indices
        ]
        reports = evaluate_robustness_many(
            schedules, config.perturbation, config.robust_draws
        )
        for index, report in zip(indices, reports):
            plan = plans_by_index[index].with_metadata(
                robust_objective=config.robust_objective,
                **robust_metadata(report),
            )
            plans_by_index[index] = plan
            plans[position_by_index[index]] = plan
            achieved = (
                report.objective(config.robust_objective)
                / plan.train.global_batch_size
            )
            key = (achieved, index)
            if best_key is None or key < best_key:
                best, best_key = plan, key
    if best is not None:
        # `best` predates the metadata refresh; re-point it at the enriched
        # copy and fold the sweep-level counters in (satisfies the "search
        # observability on PipelinePlan metadata" contract).
        assert best_key is not None  # best and best_key are assigned together
        best_index = best_key[1]
        best = plans_by_index[best_index].with_metadata(
            sweep_strategies_total=stats.strategies_total,
            sweep_strategies_planned=stats.strategies_planned,
            sweep_strategies_pruned=stats.strategies_pruned,
            sweep_workers=stats.workers,
        )
        plans[position_by_index[best_index]] = best
    return SweepResult(best=best, plans=plans, stats=stats)
