"""Parallel, pruned, cache-reusing sweep over 3D-parallelism strategies.

The Table 3 sweep plans every valid ``(t, p, d)`` strategy and keeps the
fastest feasible plan. Planning one strategy runs the full two-level DP,
so the sweep — not any single plan — is the search layer's hot path. This
module attacks it with three cooperating optimizations:

1. **Parallel execution** — planning fans out over a
   ``ProcessPoolExecutor``; plans cross the process boundary through the
   :mod:`repro.core.serialize` documents, and each worker keeps a
   process-local :class:`~repro.core.isomorphism.StageEvalCache` that is
   reused across every strategy it plans.
2. **Branch-and-bound pruning** — :func:`strategy_lower_bound` is a cheap
   *admissible* bound on a strategy's modelled iteration time (ideal
   balanced partition, plus an aggregate-memory floor on the
   recomputation any feasible plan must pay). Strategies are visited in
   bound order and skipped once their bound exceeds the incumbent best
   per-sample time; a skipped strategy provably cannot win.
3. **Cross-strategy evaluation reuse** — in serial mode all contexts share
   one :class:`StageEvalCache`, so every planner that meets the same
   (fingerprint, isomorphism-class) pair — e.g. AdaPipe and Even
   Partitioning on the same strategy — reuses the inner recomputation DP's
   solution instead of re-solving it per :class:`PlannerContext`.

Equivalence guarantee: for planners whose ``modeled_iteration_time``
follows the 1F1B cost model of Section 5.1 (all built-in planners), the
pruned and/or parallel sweep selects a best plan whose
:func:`~repro.core.serialize.plan_signature` is identical to the serial
exhaustive sweep's — pruning only ever discards strategies whose bound
already exceeds a feasible incumbent, and the final selection minimises
(per-sample time, enumeration index) deterministically.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.config import ParallelConfig, TrainingConfig
from repro.core.isomorphism import StageEvalCache
from repro.core.plan import PipelinePlan
from repro.core.robust import (
    ROBUST_OBJECTIVES,
    evaluate_robustness_many,
    robust_metadata,
)
from repro.core.search import PlannerContext, enumerate_parallel_strategies, plan_adapipe
from repro.core.serialize import plan_from_dict, plan_to_dict
from repro.hardware.cluster import ClusterSpec
from repro.model.spec import ModelSpec
from repro.pipeline.perturb import PerturbationSpec

#: A planner is either a context->plan callable (module-level, so it can be
#: pickled to workers) or the name of a method in the baselines registry.
PlannerRef = Union[str, Callable[[PlannerContext], PipelinePlan]]


@dataclass(frozen=True)
class SweepConfig:
    """Knobs of the sweep executor.

    Attributes:
        workers: process count for parallel planning. ``1`` forces the
            serial path; ``0`` (the default) picks ``min(cpu_count,
            strategies)`` but stays serial for sweeps smaller than
            ``min_parallel`` (fork + re-profile overhead would dominate).
        min_parallel: smallest sweep worth forking workers for.
        prune: enable branch-and-bound pruning via
            :func:`strategy_lower_bound`.
        share_cache: share one stage-evaluation cache across the sweep's
            contexts (serial) or per worker process (parallel).
        robust_objective: statistic the final selection minimises —
            ``"nominal"`` (default: the modelled iteration time, exactly
            the classic sweep) or ``"mean"`` / ``"p95"`` / ``"worst"``
            of the simulated perturbation ensemble. Non-nominal
            objectives disable pruning (the admissible bound holds for
            nominal time only) and require a ``perturbation`` spec.
        perturbation: the :class:`~repro.pipeline.perturb.PerturbationSpec`
            the robust objective evaluates plans under.
        robust_draws: ensemble size per plan for robust objectives.
        robust_schedule_kind: schedule the robust ensemble executes.
    """

    workers: int = 0
    min_parallel: int = 4
    prune: bool = True
    share_cache: bool = True
    robust_objective: str = "nominal"
    perturbation: Optional[PerturbationSpec] = None
    robust_draws: int = 8
    robust_schedule_kind: str = "1f1b"

    def resolve_workers(self, num_strategies: int) -> int:
        if num_strategies <= 0:
            return 1
        if self.workers == 0:
            if num_strategies < self.min_parallel:
                return 1
            return max(1, min(os.cpu_count() or 1, num_strategies))
        return max(1, min(self.workers, num_strategies))


@dataclass(frozen=True)
class StrategyReport:
    """Per-strategy sweep accounting, in enumeration order.

    Attributes:
        parallel: the strategy.
        lower_bound: admissible per-sample lower bound (seconds/sample).
        pruned: True when branch-and-bound skipped the strategy.
        per_sample_time: achieved per-sample time (``None`` if pruned or
            infeasible).
        wall_seconds: planning wall clock (0 when pruned).
    """

    parallel: ParallelConfig
    lower_bound: float
    pruned: bool
    per_sample_time: Optional[float]
    wall_seconds: float


@dataclass
class SweepStats:
    """Aggregate observability counters of one sweep."""

    strategies_total: int = 0
    strategies_planned: int = 0
    strategies_pruned: int = 0
    inner_dp_invocations: int = 0
    eval_cache_hits: int = 0
    eval_cache_misses: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    reports: List[StrategyReport] = field(default_factory=list)

    @property
    def eval_cache_hit_rate(self) -> float:
        total = self.eval_cache_hits + self.eval_cache_misses
        return self.eval_cache_hits / total if total else 0.0

    def describe(self) -> str:
        return (
            f"{self.strategies_planned}/{self.strategies_total} strategies "
            f"planned ({self.strategies_pruned} pruned), "
            f"{self.inner_dp_invocations} inner-DP invocations, "
            f"eval-cache hit rate {self.eval_cache_hit_rate:.0%}, "
            f"{self.workers} worker(s), {self.wall_seconds:.2f}s"
        )


@dataclass(frozen=True)
class SweepResult:
    """Outcome of :func:`run_sweep`.

    Attributes:
        best: fastest feasible plan (per-sample time, enumeration-order
            tie-break), or ``None`` when every strategy is infeasible.
        plans: the planned (non-pruned) strategies' plans, in enumeration
            order.
        stats: aggregate counters plus per-strategy reports.
    """

    best: Optional[PipelinePlan]
    plans: List[PipelinePlan]
    stats: SweepStats


def strategy_lower_bound(ctx: PlannerContext) -> float:
    """Admissible lower bound on the modelled 1F1B iteration time.

    Built from three relaxations of the Section 5.1 phase model, each
    valid for every feasible partition and recomputation choice:

    * warmup + ending: ``W_0 >= sum_s F_s`` and ``E_0 >= sum_s B_s`` (drop
      the bubble terms of Equation 3), and forward/backward times are
      additive over layers, so the sums equal the whole model's forward
      and backward time — independent of the partition — plus one hop per
      stage boundary in each direction.
    * steady: the slowest stage is at least the **ideal balanced
      partition**'s average, ``max_s (F_s + B_s) >= span / p``.
    * memory: summing the per-stage capacity constraints over all ``p``
      devices (with every in-flight count relaxed to its minimum of 1)
      bounds the total bytes the strategy can keep saved; what cannot be
      saved must be recomputed, and the cheapest possible way to shed the
      excess — fractionally, best bytes-per-recompute-second first — is a
      floor on the backward time recomputation adds. When even shedding
      everything cannot fit the static state, no feasible plan exists and
      the bound is ``inf``.

    The memory relaxation is checked against the *hard* device capacity,
    so it is sound for the baseline planners too (they ignore the DP's
    conservative margin).
    """
    profiler = ctx.profiler
    forward = 0.0
    backward = 0.0
    for layer in ctx.layers:
        profile = profiler.profile_layer(layer.kind)
        forward += profile.time_forward
        backward += profile.time_backward
    p = ctx.parallel.pipeline_parallel
    n = ctx.num_micro_batches
    recompute_floor = _recompute_time_floor(ctx)
    if recompute_floor == float("inf"):
        return float("inf")
    span = (
        forward + backward + recompute_floor + 2.0 * (p - 1) * ctx.hop_time
    )
    return span + max(0, n - p) * span / p


def _recompute_time_floor(ctx: PlannerContext) -> float:
    """Least recomputation time any feasible plan of ``ctx`` must pay.

    Aggregate memory argument: every stage satisfies ``static + buffer +
    in_flight * saved <= capacity``; summing over stages with
    ``in_flight >= 1`` gives ``static_model + p * buffer + always_model +
    optional_saved <= p * capacity``. The relaxation to 1 keeps the bound
    admissible for every schedule's accounting — the schedule-aware
    counts of :func:`repro.profiler.memory.in_flight_micro_batches`
    (``min(n, p - s)`` for 1F1B, ``n`` for GPipe, ...) are all >= 1. Bytes of optional units above that
    budget must be shed, and the fractional greedy (largest
    bytes-per-second first) lower-bounds the forward time recomputing
    them adds to the backward pass. Returns ``inf`` when the static floor
    alone exceeds the pooled capacity (provably infeasible).
    """
    profiler = ctx.profiler
    memory = profiler.memory
    p = ctx.parallel.pipeline_parallel
    pooled = p * ctx.hard_capacity_bytes
    budget = (
        pooled
        - memory.static_bytes(ctx.layers)
        - p * memory.recompute_buffer_bytes()
    )
    always = 0.0
    optional_bytes = 0.0
    items: List[Tuple[float, float]] = []  # (recompute seconds, bytes)
    for layer in ctx.layers:
        for unit in profiler.profile_layer(layer.kind).units:
            if unit.always_saved:
                always += unit.saved_bytes
            elif unit.saved_bytes > 0:
                optional_bytes += unit.saved_bytes
                items.append((unit.time_forward, unit.saved_bytes))
    budget -= always
    if budget < 0:
        return float("inf")
    excess = optional_bytes - budget
    if excess <= 0:
        return 0.0
    items.sort(key=lambda item: item[0] / item[1])
    floor = 0.0
    for cost, size in items:
        shed = min(size, excess)
        floor += cost * shed / size
        excess -= shed
        if excess <= 0:
            break
    return floor


def _per_sample_time(plan: PipelinePlan) -> Optional[float]:
    """Selection objective: modelled seconds per sample of the global batch."""
    if not plan.feasible or plan.modeled_iteration_time is None:
        return None
    return plan.modeled_iteration_time / plan.train.global_batch_size


def resolve_planner(planner: PlannerRef) -> Callable[[PlannerContext], PipelinePlan]:
    """Resolve a :data:`PlannerRef` to a callable.

    Strings name methods in the baselines registry (``"AdaPipe"``,
    ``"DAPPLE-Full"``, ...) and are always safe to ship to workers;
    callables must be module-level to survive pickling.
    """
    if callable(planner):
        return planner
    from repro.baselines.methods import method_spec

    return method_spec(planner).planner


# One evaluation cache per worker process, reused across every strategy the
# worker plans (the parallel-mode analogue of the serial shared cache).
_WORKER_CACHE: Optional[StageEvalCache] = None


def _plan_strategy_task(task: Tuple) -> Tuple[Dict, float]:
    """Worker entry point: plan one strategy, return (plan document, wall)."""
    planner_ref, cluster, spec, train, parallel, share_cache, context_kwargs = task
    global _WORKER_CACHE
    cache = None
    if share_cache:
        if _WORKER_CACHE is None:
            _WORKER_CACHE = StageEvalCache()
        cache = _WORKER_CACHE
    planner = resolve_planner(planner_ref)
    ctx = PlannerContext(
        cluster, spec, train, parallel, eval_cache=cache, **context_kwargs
    )
    started = time.perf_counter()  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity
    plan = planner(ctx)
    return plan_to_dict(plan), time.perf_counter() - started  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity


def run_sweep(
    cluster: ClusterSpec,
    spec: ModelSpec,
    train: TrainingConfig,
    num_devices: int,
    planner: PlannerRef = plan_adapipe,
    strategies: Optional[Iterable[ParallelConfig]] = None,
    config: Optional[SweepConfig] = None,
    **context_kwargs,
) -> SweepResult:
    """Plan the strategy space and return the best plan plus sweep stats.

    Drop-in performance replacement for the serial Table 3 sweep: the
    selected best plan is signature-identical to the exhaustive serial
    sweep's (see the module docstring for the argument), while pruning,
    cache reuse, and (on multi-core hosts) parallel planning cut the wall
    clock. ``context_kwargs`` are forwarded to every
    :class:`PlannerContext`; pass ``eval_cache=`` to share evaluations
    with work outside this sweep.
    """
    config = config or SweepConfig()
    if config.robust_objective not in ROBUST_OBJECTIVES:
        raise ValueError(
            f"unknown robust objective {config.robust_objective!r}; "
            f"pick from {ROBUST_OBJECTIVES}"
        )
    robust_mode = config.robust_objective != "nominal"
    if robust_mode:
        if config.perturbation is None:
            raise ValueError(
                "robust_objective requires a PerturbationSpec (SweepConfig"
                ".perturbation)"
            )
        if config.prune:
            # strategy_lower_bound is admissible for the *nominal* modelled
            # time only; a perturbed ensemble statistic may rank strategies
            # differently, so branch-and-bound would no longer be sound.
            config = dataclasses.replace(config, prune=False)
    if strategies is None:
        strategies = enumerate_parallel_strategies(num_devices, cluster, spec, train)
    strategies = list(strategies)
    started = time.perf_counter()  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity

    shared_cache = context_kwargs.pop("eval_cache", None)
    if shared_cache is None and config.share_cache:
        shared_cache = StageEvalCache()

    contexts = [
        PlannerContext(
            cluster, spec, train, parallel, eval_cache=shared_cache, **context_kwargs
        )
        for parallel in strategies
    ]
    per_sample = 1.0 / train.global_batch_size
    bounds = [strategy_lower_bound(ctx) * per_sample for ctx in contexts]
    # Visit in bound order: the most promising strategies establish a tight
    # incumbent early, maximising what branch-and-bound can skip.
    order = sorted(range(len(strategies)), key=lambda i: (bounds[i], i))

    workers = config.resolve_workers(len(strategies))
    if workers > 1:
        try:
            pickle.dumps(planner)
        except Exception:
            workers = 1  # unpicklable planner (closure/lambda): stay serial

    plans_by_index: Dict[int, PipelinePlan] = {}
    walls: Dict[int, float] = {}
    pruned: Set[int] = set()
    best_time = float("inf")

    if workers == 1:
        planner_fn = resolve_planner(planner)
        for position, index in enumerate(order):
            if config.prune and bounds[index] > best_time:
                # `order` ascends in bound, so everything left is worse.
                pruned.update(order[position:])
                break
            plan_started = time.perf_counter()  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity
            plan = planner_fn(contexts[index])
            walls[index] = time.perf_counter() - plan_started  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity
            plans_by_index[index] = plan
            achieved = _per_sample_time(plan)
            if achieved is not None and achieved < best_time:
                best_time = achieved
    else:
        queue = list(order)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending: Dict = {}

            def submit_up_to_capacity() -> None:
                nonlocal best_time
                while queue and len(pending) < workers:
                    index = queue[0]
                    if config.prune and bounds[index] > best_time:
                        pruned.update(queue)
                        queue.clear()
                        return
                    queue.pop(0)
                    future = pool.submit(
                        _plan_strategy_task,
                        (
                            planner,
                            cluster,
                            spec,
                            train,
                            strategies[index],
                            config.share_cache,
                            dict(context_kwargs),
                        ),
                    )
                    pending[future] = index

            submit_up_to_capacity()
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    plan_doc, wall = future.result()
                    plan = plan_from_dict(plan_doc)
                    plans_by_index[index] = plan
                    walls[index] = wall
                    achieved = _per_sample_time(plan)
                    if achieved is not None and achieved < best_time:
                        best_time = achieved
                submit_up_to_capacity()

    # Deterministic selection, independent of completion order: smallest
    # per-sample time, earliest enumeration index on exact ties — the same
    # "first strict improvement wins" rule as the serial exhaustive sweep.
    best: Optional[PipelinePlan] = None
    best_key: Optional[Tuple[float, int]] = None
    for index in sorted(plans_by_index):
        achieved = _per_sample_time(plans_by_index[index])
        if achieved is None:
            continue
        key = (achieved, index)
        if best_key is None or key < best_key:
            best, best_key = plans_by_index[index], key

    stats = SweepStats(
        strategies_total=len(strategies),
        strategies_planned=len(plans_by_index),
        strategies_pruned=len(pruned),
        workers=workers,
        wall_seconds=time.perf_counter() - started,  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity
    )
    plans: List[PipelinePlan] = []
    position_by_index: Dict[int, int] = {}
    for index, parallel in enumerate(strategies):
        plan = plans_by_index.get(index)
        stats.reports.append(
            StrategyReport(
                parallel=parallel,
                lower_bound=bounds[index],
                pruned=index in pruned,
                per_sample_time=_per_sample_time(plan) if plan else None,
                wall_seconds=walls.get(index, 0.0),
            )
        )
        if plan is None:
            continue
        metadata = dict(plan.metadata)
        stats.inner_dp_invocations += int(metadata.get("inner_dp_invocations", 0))
        stats.eval_cache_hits += int(metadata.get("eval_cache_hits", 0))
        stats.eval_cache_misses += int(metadata.get("eval_cache_misses", 0))
        plan = plan.with_metadata(
            sweep_lower_bound=bounds[index],
            sweep_wall_seconds=walls.get(index, 0.0),
        )
        plans_by_index[index] = plan
        position_by_index[index] = len(plans)
        plans.append(plan)
    if robust_mode:
        # Re-rank the planned strategies by the simulated perturbation
        # ensemble: each feasible plan's schedule runs under the spec's
        # K draws and the configured statistic (per sample) replaces the
        # nominal modelled time as the selection key. Every evaluated
        # plan keeps the ensemble's summary in its metadata. All
        # ensembles go through evaluate_robustness_many, so candidate
        # schedules sharing a shape (same policy/devices/micro-batches,
        # different stage durations) execute as one batched sweep with a
        # single DAG lowering (ALGORITHMS.md section 11).
        from repro.core.evaluate import build_schedule_for_plan

        best, best_key = None, None
        indices = [
            index
            for index in sorted(plans_by_index)
            if _per_sample_time(plans_by_index[index]) is not None
        ]
        schedules = [
            build_schedule_for_plan(
                plans_by_index[index], cluster, config.robust_schedule_kind
            )
            for index in indices
        ]
        reports = evaluate_robustness_many(
            schedules, config.perturbation, config.robust_draws
        )
        for index, report in zip(indices, reports):
            plan = plans_by_index[index].with_metadata(
                robust_objective=config.robust_objective,
                **robust_metadata(report),
            )
            plans_by_index[index] = plan
            plans[position_by_index[index]] = plan
            achieved = (
                report.objective(config.robust_objective)
                / plan.train.global_batch_size
            )
            key = (achieved, index)
            if best_key is None or key < best_key:
                best, best_key = plan, key
    if best is not None:
        # `best` predates the metadata refresh; re-point it at the enriched
        # copy and fold the sweep-level counters in (satisfies the "search
        # observability on PipelinePlan metadata" contract).
        assert best_key is not None  # best and best_key are assigned together
        best_index = best_key[1]
        best = plans_by_index[best_index].with_metadata(
            sweep_strategies_total=stats.strategies_total,
            sweep_strategies_planned=stats.strategies_planned,
            sweep_strategies_pruned=stats.strategies_pruned,
            sweep_workers=stats.workers,
        )
        plans[position_by_index[best_index]] = best
    return SweepResult(best=best, plans=plans, stats=stats)
