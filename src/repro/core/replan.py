"""Elastic replanning: warm-start the DPs when the cluster changes.

A running job's cluster is not static — a device drifts slow (thermal
throttling), leaves (hardware fault, preemption), or joins (capacity
freed). Searching the new cluster from scratch repeats almost all of the
work the original search already did: stage evaluations are keyed by a
content digest covering every input they depend on — model/workload
profile, tensor/data-parallel sizes, in-flight count, layer multiset, and
the rank's device class (compute scale + capacity) — and the evaluator
fingerprint deliberately excludes fleet shape
(:func:`repro.core.isomorphism.evaluator_fingerprint`). Entries touching
only *surviving* device classes therefore stay valid verbatim, while
entries under a drifted class miss (their key changed), so reuse is sound
by construction: :func:`replan` simply re-runs the sweep against the
surviving :class:`~repro.core.isomorphism.StageEvalCache` and lets the
digest keys arbitrate. The warm plan is **bit-identical** to a cold
search on the new cluster — cached values equal recomputed ones — which
``tests/test_replan.py`` pins differentially.

Scenario helpers build the common elastic transitions: a rank leaving
(:func:`pool_without_rank`), joining (:func:`pool_with_rank`), and
slowdown drift (:func:`pool_with_drift`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.config import ParallelConfig, TrainingConfig
from repro.core.isomorphism import StageEvalCache
from repro.core.plan import PipelinePlan
from repro.core.search import plan_adapipe
from repro.core.sweep import PlannerRef, SweepConfig, SweepResult, run_sweep
from repro.hardware.cluster import ClusterSpec
from repro.hardware.device import DeviceSpec, derated
from repro.model.spec import ModelSpec


@dataclass(frozen=True)
class ReplanResult:
    """Outcome of one elastic replan.

    Attributes:
        best: best feasible plan on the new cluster (``None`` when the
            shrunken/drifted fleet admits no feasible strategy).
        plans: every planned strategy's plan, enumeration order.
        sweep: the underlying sweep result (stats, reports).
        evals_reused: stage evaluations answered by the surviving cache.
        evals_recomputed: inner-DP invocations this replan actually ran.
    """

    best: Optional[PipelinePlan]
    plans: List[PipelinePlan]
    sweep: SweepResult
    evals_reused: int
    evals_recomputed: int

    @property
    def reuse_rate(self) -> float:
        """Fraction of stage-eval demand served without an inner DP."""
        total = self.evals_reused + self.evals_recomputed
        return self.evals_reused / total if total else 0.0


def replan(
    plan: PipelinePlan,
    new_cluster: ClusterSpec,
    spec: ModelSpec,
    *,
    eval_cache: StageEvalCache,
    train: Optional[TrainingConfig] = None,
    num_devices: Optional[int] = None,
    planner: PlannerRef = plan_adapipe,
    strategies: Optional[Iterable[ParallelConfig]] = None,
    config: Optional[SweepConfig] = None,
    **context_kwargs,
) -> ReplanResult:
    """Re-plan ``plan``'s job on ``new_cluster``, warm-starting from cache.

    ``eval_cache`` must be the cache the surviving plan was searched with
    (or a cache restored from ``SweepConfig.cache_path`` /
    ``save_cache_file``); its digest-keyed entries are reused wherever
    the new cluster's device classes match, which is what makes a
    device-leave replan re-run well under half of the stage evaluations
    of a cold search while returning a bit-identical best plan.

    ``num_devices`` defaults to the elastic interpretation of the old
    strategy: keep the surviving plan's per-pipeline-rank device count
    (``t * d``) and stretch/shrink the pipeline to the new pool's size.
    Poolless new clusters keep the old total device count (capped by the
    new cluster).
    """
    train = train if train is not None else plan.train
    if num_devices is None:
        per_rank = plan.parallel.num_devices // plan.parallel.pipeline_parallel
        if new_cluster.device_pool:
            num_devices = per_rank * len(new_cluster.device_pool)
        else:
            num_devices = min(plan.parallel.num_devices, new_cluster.num_devices)
    config = config or SweepConfig(workers=1)
    hits_before = eval_cache.hits
    result = run_sweep(
        new_cluster,
        spec,
        train,
        num_devices,
        planner=planner,
        strategies=strategies,
        config=config,
        eval_cache=eval_cache,
        **context_kwargs,
    )
    return ReplanResult(
        best=result.best,
        plans=result.plans,
        sweep=result,
        evals_reused=eval_cache.hits - hits_before,
        evals_recomputed=result.stats.inner_dp_invocations,
    )


def _require_pool(cluster: ClusterSpec) -> Tuple[DeviceSpec, ...]:
    if not cluster.device_pool:
        raise ValueError(
            f"cluster {cluster.name} has no device pool; elastic scenarios "
            f"operate on pooled clusters (see ClusterSpec.with_device_pool)"
        )
    return cluster.device_pool


def pool_without_rank(cluster: ClusterSpec, rank: int) -> ClusterSpec:
    """The cluster after pool slot ``rank`` leaves (fault, preemption)."""
    pool = _require_pool(cluster)
    if not 0 <= rank < len(pool):
        raise ValueError(f"rank {rank} out of range for pool of {len(pool)}")
    if len(pool) == 1:
        raise ValueError("cannot remove the last pool device")
    return dataclasses.replace(
        cluster, device_pool=pool[:rank] + pool[rank + 1 :]
    )


def pool_with_rank(
    cluster: ClusterSpec, device: DeviceSpec, position: Optional[int] = None
) -> ClusterSpec:
    """The cluster after ``device`` joins the pool (at ``position`` or the end)."""
    pool = _require_pool(cluster)
    if position is None:
        position = len(pool)
    if not 0 <= position <= len(pool):
        raise ValueError(
            f"position {position} out of range for pool of {len(pool)}"
        )
    return dataclasses.replace(
        cluster, device_pool=pool[:position] + (device,) + pool[position:]
    )


def pool_with_drift(
    cluster: ClusterSpec, rank: int, slowdown: float
) -> ClusterSpec:
    """The cluster after pool slot ``rank`` drifts to ``slowdown`` x nominal.

    The drifted part's device class changes, so every cached stage
    evaluation priced under its old slowdown misses by key — drift can
    never silently reuse stale costs (pinned by the drift regression in
    ``tests/test_replan.py``).
    """
    pool = _require_pool(cluster)
    if not 0 <= rank < len(pool):
        raise ValueError(f"rank {rank} out of range for pool of {len(pool)}")
    old = pool[rank]
    base = dataclasses.replace(old, name=old.name.split("*")[0], slowdown=1.0)
    drifted = derated(base, slowdown)
    return dataclasses.replace(
        cluster, device_pool=pool[:rank] + (drifted,) + pool[rank + 1 :]
    )
