"""Heterogeneous placement: device classes and stage-to-device assignment.

A :class:`~repro.hardware.cluster.ClusterSpec` with a ``device_pool``
carries one :class:`~repro.hardware.device.DeviceSpec` per pipeline rank —
mixed parts (A100 + derated A100 + Ascend) that the *planner* can see, not
just the robustness simulator. Planning such a cluster adds a placement
dimension to the search: which device class serves which pipeline stage.

This module owns the combinatorics:

* :func:`device_classes` — collapse the pool into distinct *classes*
  (identical specs share one class) in a canonical order, so permuting
  identical pool entries can never change the search.
* :func:`enumerate_placements` — all distinct assignments of classes to
  ranks (multiset permutations) in lexicographic order over the canonical
  class indices. The planner keeps the first placement that achieves the
  best total time, which makes the tie-break canonical too.
* :func:`apply_plan_placement` — re-order a cluster's pool to match the
  placement a plan chose, so downstream simulation and robustness price
  the assignment the planner actually selected.

The per-rank pricing itself lives in
:class:`~repro.core.isomorphism.StageEvaluator` (compute scale multiplies
stage times, per-rank capacity bounds the recomputation knapsack); the
class identity ``(compute_scale, capacity)`` is part of every cached
stage-evaluation key, which is what makes cross-placement — and
cross-replan — cache reuse sound (ALGORITHMS.md section 14).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.hardware.cluster import ClusterSpec
from repro.hardware.device import DeviceSpec

#: Ceiling on the distinct placements one strategy may enumerate. The count
#: is ``p! / prod(count_c!)`` over the pool's class multiplicities, so it
#: only explodes when a deep pipeline mixes many *distinct* device classes;
#: pools drawn from a few part types stay tiny (e.g. 8 ranks split 4+4 is
#: 70 placements). Exceeding the ceiling raises instead of silently
#: truncating — a truncated enumeration could drop the optimum.
MAX_PLACEMENTS = 10080


@dataclass(frozen=True)
class DeviceClass:
    """One distinct device type of a pool, with its planner-facing costs.

    Attributes:
        device: the accelerator spec shared by ``count`` pool slots.
        compute_scale: sustained slowdown of this part relative to the
            cluster's nominal roofline device (1.0 = nominal); stage
            forward/backward times are multiplied by it.
        capacity_bytes: usable memory of one part (the per-rank
            recomputation-knapsack budget before the planner's margin).
        count: how many pool slots hold this class.
    """

    device: DeviceSpec
    compute_scale: float
    capacity_bytes: float
    count: int


def pool_compute_factor(cluster: ClusterSpec, device: DeviceSpec) -> float:
    """Planner-visible slowdown of one pool part vs the nominal roofline.

    Delegates to :meth:`ClusterSpec.pool_compute_factor` — the part's
    sustained ``slowdown`` derating times the peak-throughput ratio to
    the cluster's base device (an Ascend slot in an A100-rooflined
    cluster runs ``312/256`` slower per FLOP before any derating).
    """
    return cluster.pool_compute_factor(device)


def device_classes(cluster: ClusterSpec) -> Tuple[DeviceClass, ...]:
    """Distinct device classes of ``cluster``'s pool, canonically ordered.

    Identical :class:`DeviceSpec` entries (dataclass equality) collapse
    into one class. The order is canonical — fastest first, then largest
    memory, then name/repr — and depends only on the *multiset* of pool
    entries, never their order, so permuting identical devices can never
    change which placement the search enumerates first.
    """
    if not cluster.device_pool:
        raise ValueError(f"cluster {cluster.name} has no device pool")
    grouped: dict = {}
    for device in cluster.device_pool:
        key = repr(device)
        if key in grouped:
            grouped[key] = (device, grouped[key][1] + 1)
        else:
            grouped[key] = (device, 1)
    classes = [
        DeviceClass(
            device=device,
            compute_scale=pool_compute_factor(cluster, device),
            capacity_bytes=float(device.usable_memory_bytes),
            count=count,
        )
        for device, count in grouped.values()
    ]
    classes.sort(
        key=lambda cls: (
            cls.compute_scale,
            -cls.capacity_bytes,
            cls.device.name,
            repr(cls.device),
        )
    )
    return tuple(classes)


def enumerate_placements(
    classes: Tuple[DeviceClass, ...],
    pipeline_parallel: int,
    max_placements: int = MAX_PLACEMENTS,
) -> List[Tuple[int, ...]]:
    """All distinct class-per-rank assignments, lexicographically ordered.

    ``classes`` must come from :func:`device_classes` (their ``count``
    fields must sum to ``pipeline_parallel``). The result enumerates the
    multiset permutations of the class indices in ascending lexicographic
    order — placement 0 puts the canonical first class on the earliest
    ranks — which is the deterministic tie-break order the planner uses.
    """
    total = sum(cls.count for cls in classes)
    if total != pipeline_parallel:
        raise ValueError(
            f"device pool has {total} slots but the strategy runs "
            f"{pipeline_parallel} pipeline stages"
        )
    count = _multiset_permutation_count(tuple(cls.count for cls in classes))
    if count > max_placements:
        raise ValueError(
            f"{count} distinct placements exceed the {max_placements} "
            f"ceiling; reduce the number of distinct device classes in "
            f"the pool (or raise max_placements)"
        )
    remaining = [cls.count for cls in classes]
    prefix: List[int] = []
    out: List[Tuple[int, ...]] = []

    def extend() -> None:
        if len(prefix) == pipeline_parallel:
            out.append(tuple(prefix))
            return
        for index in range(len(remaining)):
            if remaining[index]:
                remaining[index] -= 1
                prefix.append(index)
                extend()
                prefix.pop()
                remaining[index] += 1

    extend()
    return out


def _multiset_permutation_count(counts: Tuple[int, ...]) -> int:
    """``(sum counts)! / prod(counts!)`` without floating point."""
    total = 1
    placed = 0
    for count in counts:
        for pick in range(1, count + 1):
            placed += 1
            total = total * placed // pick
    return total


def placement_devices(
    classes: Tuple[DeviceClass, ...], placement: Tuple[int, ...]
) -> Tuple[DeviceSpec, ...]:
    """The concrete per-rank device specs of one placement."""
    return tuple(classes[index].device for index in placement)


def placement_metadata(
    classes: Tuple[DeviceClass, ...],
    placement: Tuple[int, ...],
    searched: int,
) -> dict:
    """JSON-safe plan metadata describing one chosen placement."""
    return {
        "placement": list(placement),
        "placement_devices": [classes[index].device.name for index in placement],
        "placement_scales": [classes[index].compute_scale for index in placement],
        "placement_searched": searched,
    }


def apply_plan_placement(
    cluster: ClusterSpec, plan: "object"
) -> ClusterSpec:
    """Re-order ``cluster``'s pool to the placement ``plan`` chose.

    Plans searched over a pool record the winning class-per-rank
    assignment in their metadata; simulation, memory checks, and
    robustness must price rank ``r`` with the device the planner actually
    placed there, not with the pool's declaration order. Returns the
    cluster unchanged when it has no pool or the plan carries no
    placement (e.g. a plan from a homogeneous search).
    """
    placement = getattr(plan, "metadata", {}).get("placement")
    if not cluster.device_pool or placement is None:
        return cluster
    classes = device_classes(cluster)
    pool = placement_devices(classes, tuple(int(i) for i in placement))
    if len(pool) != len(cluster.device_pool):
        return cluster
    return dataclasses.replace(cluster, device_pool=pool)


def best_placement_scale_floor(cluster: ClusterSpec, pipeline_parallel: int) -> float:
    """The smallest per-rank compute scale any placement can offer.

    Used by the sweep's admissible lower bound: every stage of every
    placement runs at least ``min_c compute_scale(c)`` times its nominal
    cost, so multiplying the nominal relaxation by this floor keeps the
    bound admissible under per-rank scaling (ALGORITHMS.md section 14).
    Returns 1.0 for poolless clusters (nominal pricing).
    """
    if not cluster.device_pool:
        return 1.0
    del pipeline_parallel
    return min(
        cluster.pool_compute_factor(device) for device in cluster.device_pool
    )


def pool_capacity_sum(cluster: ClusterSpec, pipeline_parallel: int) -> Optional[float]:
    """Total usable bytes across the pool (placement-invariant).

    Every placement assigns each pool part to exactly one rank, so the
    aggregate-memory relaxation of the sweep bound may pool
    ``sum_r capacity(r)`` — the sum is invariant under the placement
    permutation. ``None`` for poolless clusters (callers use
    ``p * capacity``).
    """
    if not cluster.device_pool:
        return None
    del pipeline_parallel
    return float(
        sum(device.usable_memory_bytes for device in cluster.device_pool)
    )
