"""Plan serialization: JSON round-trip for pipeline plans.

A plan produced by the search engine is the hand-off artifact to an
execution engine (in the paper: the Megatron/MindSpore integration reads
the searched strategy). This module serialises
:class:`~repro.core.plan.PipelinePlan` to a stable, human-auditable JSON
document and back, so plans can be searched once, stored, diffed, and
replayed.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

from repro.config import ParallelConfig, TrainingConfig
from repro.core.plan import PipelinePlan, StagePlan
from repro.profiler.memory import StageMemory

FORMAT_VERSION = 1


class PlanFormatError(ValueError):
    """Raised on malformed or incompatible plan documents."""


def plan_to_dict(plan: PipelinePlan) -> Dict[str, Any]:
    """Serialise a plan to plain JSON-compatible data."""
    return {
        "format_version": FORMAT_VERSION,
        "method": plan.method,
        "feasible": plan.feasible,
        "hidden_size": plan.hidden_size,
        "modeled_iteration_time": plan.modeled_iteration_time,
        "metadata": dict(plan.metadata),
        "parallel": {
            "tensor_parallel": plan.parallel.tensor_parallel,
            "pipeline_parallel": plan.parallel.pipeline_parallel,
            "data_parallel": plan.parallel.data_parallel,
        },
        "train": dataclasses.asdict(plan.train),
        "stages": [
            {
                "stage": stage.stage,
                "layer_start": stage.layer_start,
                "layer_end": stage.layer_end,
                "saved_unit_counts": dict(stage.saved_unit_counts),
                "forward_time": stage.forward_time,
                "backward_time": stage.backward_time,
                "params": stage.params,
                "memory": {
                    "static_bytes": stage.memory.static_bytes,
                    "buffer_bytes": stage.memory.buffer_bytes,
                    "saved_per_microbatch": stage.memory.saved_per_microbatch,
                    "in_flight_microbatches": stage.memory.in_flight_microbatches,
                },
            }
            for stage in plan.stages
        ],
    }


def plan_from_dict(data: Dict[str, Any]) -> PipelinePlan:
    """Reconstruct a plan from :func:`plan_to_dict` output."""
    try:
        version = data["format_version"]
        if version != FORMAT_VERSION:
            raise PlanFormatError(
                f"unsupported plan format version {version} (want {FORMAT_VERSION})"
            )
        parallel = ParallelConfig(**data["parallel"])
        train = TrainingConfig(**data["train"])
        stages = tuple(
            StagePlan(
                stage=entry["stage"],
                layer_start=entry["layer_start"],
                layer_end=entry["layer_end"],
                saved_unit_counts=dict(entry["saved_unit_counts"]),
                forward_time=entry["forward_time"],
                backward_time=entry["backward_time"],
                memory=StageMemory(**entry["memory"]),
                params=entry.get("params", 0),
            )
            for entry in data["stages"]
        )
        plan = PipelinePlan(
            method=data["method"],
            parallel=parallel,
            train=train,
            stages=stages,
            modeled_iteration_time=data.get("modeled_iteration_time"),
            feasible=data.get("feasible", True),
            hidden_size=data.get("hidden_size", 0),
            metadata=dict(data.get("metadata", {})),
        )
    except PlanFormatError:
        raise
    except (KeyError, TypeError) as exc:
        raise PlanFormatError(f"malformed plan document: {exc}") from exc
    validate_plan(plan)
    return plan


def plan_signature(plan: PipelinePlan) -> Dict[str, Any]:
    """The plan document without its volatile metadata.

    Two plans with equal signatures encode the same searched decisions —
    partition, recomputation, costs — even when search-observability
    counters (wall clocks, cache hits) differ between runs. This is the
    comparison the sweep-equivalence guarantee is stated over.
    """
    document = plan_to_dict(plan)
    document.pop("metadata", None)
    return document


def validate_plan(plan: PipelinePlan) -> None:
    """Structural checks: contiguous stage coverage, consistent indices."""
    if not plan.stages:
        # Stage-less documents encode "no valid partition exists" (e.g.
        # more stages than layers); they are only legal when infeasible.
        if plan.feasible:
            raise PlanFormatError("feasible plan with no stages")
        return
    # Interleaved plans hold v model chunks per device: v * p stages.
    if len(plan.stages) % plan.parallel.pipeline_parallel != 0:
        raise PlanFormatError(
            f"{len(plan.stages)} stages for pipeline parallel size "
            f"{plan.parallel.pipeline_parallel}"
        )
    cursor = plan.stages[0].layer_start
    for index, stage in enumerate(plan.stages):
        if stage.stage != index:
            raise PlanFormatError(f"stage index {stage.stage} at position {index}")
        if stage.layer_start != cursor:
            raise PlanFormatError(
                f"stage {index} starts at layer {stage.layer_start}, "
                f"expected {cursor}"
            )
        if stage.layer_end <= stage.layer_start:
            raise PlanFormatError(f"stage {index} is empty")
        cursor = stage.layer_end


def dump_plan(plan: PipelinePlan, path: str) -> None:
    """Write a plan document to ``path``."""
    with open(path, "w") as handle:
        json.dump(plan_to_dict(plan), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_plan(path: str) -> PipelinePlan:
    """Read a plan document from ``path``."""
    with open(path) as handle:
        return plan_from_dict(json.load(handle))
