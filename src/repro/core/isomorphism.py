"""Stage evaluation with isomorphism caching (Section 5.3).

The partitioning DP needs ``f[s, i, j]`` and ``b[s, i, j]`` — the optimal
forward/backward time of layers ``i..j`` as stage ``s`` — for every stage
and sub-sequence, which naively means O(pL^2) inner-DP runs. But transformer
layer sequences are homogeneous: two sub-sequences with the same layer-kind
multiset (same Attention/FFN counts, same embedding/head membership) are
isomorphic and share one inner-DP solution. Caching on that key reduces the
inner-DP invocations to O(pL), as the paper observes.

The same observation extends *across* evaluators: two strategies whose
profiles agree (same model, workload, cluster, tensor- and data-parallel
sizes) produce identical stage evaluations whenever the in-flight
micro-batch count and the layer multiset match, even if their pipeline
sizes differ. :class:`StageEvalCache` keys entries by that full
fingerprint so a strategy sweep — and the several planners run per
strategy — reuse inner-DP solutions instead of recomputing them per
:class:`~repro.core.search.PlannerContext`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.recompute_dp import (
    RecomputeResult,
    UnitItem,
    optimize_stage_recompute,
)
from repro.model.layers import Layer, LayerKind
from repro.profiler.memory import StageMemory
from repro.profiler.profiler import LayerProfile, Profiler


@dataclass(frozen=True)
class StageEval:
    """Optimal cost of one candidate stage (layers ``i..j`` as stage ``s``).

    Attributes:
        feasible: whether the stage fits device memory at all.
        forward: the paper's ``F_{G,s}`` — fixed forward time.
        backward: the paper's ``B_{G,s}`` — backward time including the
            cheapest recomputation meeting the budget.
        saved_unit_counts: saved units per type (always-saved included).
        saved_bytes_per_microbatch: intermediates pinned per micro-batch.
        memory: full stage memory breakdown.
    """

    feasible: bool
    forward: float
    backward: float
    saved_unit_counts: Mapping[str, int]
    saved_bytes_per_microbatch: float
    memory: StageMemory


#: Fingerprint marker for evaluators that cannot be fingerprinted (e.g.
#: measured profilers): their entries are process-private and must never be
#: exported, merged, or persisted — the ``id()`` that scopes them is
#: meaningless in any other process.
PRIVATE_FINGERPRINT = "__private__"

#: One exportable cache entry: a flat primitive key plus its evaluation.
CacheEntry = Tuple[Tuple, StageEval]


class StageEvalCache:
    """Cross-strategy (and cross-planner) stage-evaluation cache.

    Entries are keyed by an evaluator *fingerprint* — every input besides
    the candidate layer range that determines a stage evaluation — plus the
    range's full isomorphism class. Sharing one instance across the
    contexts of a strategy sweep lets every planner that evaluates the same
    class reuse the inner recomputation DP's solution.

    Because the key is a pure content digest of every input the evaluation
    depends on, two caches can be **merged** by dict union: colliding keys
    are guaranteed to hold equal values, so merge order never matters. The
    sweep orchestrator leans on this to ship per-worker cache shards back
    to the coordinator and redistribute the union (see
    :mod:`repro.core.orchestrator`).

    Args:
        max_entries: evict FIFO past this many entries (``None`` =
            unbounded, the historical behavior). Worker-side caches in
            long-lived processes should always be bounded.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        self._entries: "OrderedDict[Tuple, StageEval]" = OrderedDict()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._journal: Optional[List[CacheEntry]] = None

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of shared-cache lookups answered without an inner DP."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def get(self, key: Tuple) -> Optional[StageEval]:
        found = self._entries.get(key)
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def put(self, key: Tuple, value: StageEval) -> None:
        if (
            key not in self._entries
            and self._journal is not None
            and not (key and key[0] == PRIVATE_FINGERPRINT)
        ):
            # The journal is the shareable delta stream: process-private
            # entries never enter it, so slices ship without filtering.
            self._journal.append((key, value))
        self._entries[key] = value
        if self.max_entries is not None:
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    # -- shard export / merge-back ------------------------------------

    def enable_journal(self) -> None:
        """Start recording first-seen entries into an append-only journal.

        The journal survives FIFO eviction (it is history, not the live
        table), so offsets into it are stable — the orchestrator uses
        per-worker journal offsets to ship each worker exactly the
        entries it has not seen yet.
        """
        if self._journal is None:
            self._journal = []

    @property
    def journal_length(self) -> int:
        return len(self._journal) if self._journal is not None else 0

    def journal_slice(self, start: int, stop: Optional[int] = None) -> List[CacheEntry]:
        """Entries first seen in journal positions ``[start, stop)``."""
        if self._journal is None:
            return []
        return self._journal[start:stop]

    def export_entries(self) -> List[CacheEntry]:
        """Every live, shareable entry (process-private entries excluded)."""
        return [
            (key, value)
            for key, value in self._entries.items()
            if not (key and key[0] == PRIVATE_FINGERPRINT)
        ]

    def merge_entries(self, entries: Sequence[CacheEntry]) -> int:
        """Union ``entries`` into the cache; returns how many were new.

        Digest keys make this trivially safe: a key collision means both
        sides computed the same deterministic evaluation, so the existing
        entry is kept and the duplicate dropped (no journal churn, no
        re-broadcast).
        """
        merged = 0
        for key, value in entries:
            if key and key[0] == PRIVATE_FINGERPRINT:
                continue
            if key in self._entries:
                continue
            self.put(key, value)
            merged += 1
        return merged


def evaluator_fingerprint(profiler: Profiler, capacity_bytes: float) -> Tuple:
    """Everything outside the layer range that a :class:`StageEval` depends on.

    Unit times depend on (cluster, model, workload, tensor parallel size,
    jitter); the memory model additionally depends on the data-parallel
    size through ZeRO sharding of static state. The pipeline size is
    deliberately absent — it only enters through the in-flight micro-batch
    count, which the per-range key carries — so evaluations are shared
    across strategies that differ only in pipeline depth. The micro-batch
    count ``n`` (which clamps 1F1B's in-flight to ``min(n, p - s)``) is
    pinned by the workload and data-parallel fields already present.

    The robust-sweep inputs (``robust_objective``, ``PerturbationSpec``,
    ``robust_draws``) are **deliberately absent**: robust mode re-ranks
    the already-planned feasible strategies by re-simulating their
    schedules under perturbation, *after* planning. A cached
    :class:`StageEval` holds only nominal per-stage cost/memory DP
    results, which no robust input reaches, so nominal and robust sweeps
    may soundly share one :class:`StageEvalCache`
    (``tests/test_robustness.py`` pins this with a warm-vs-cold cache
    regression test). Adding a perturbation-dependent quantity to
    ``StageEval`` would require extending this fingerprint first.

    Of the cluster, only the fields the nominal pricing model actually
    reads enter the digest: the roofline device and the communication
    terms (intra/inter bandwidth, link latency, devices per node). Fleet
    *shape* — ``num_nodes``, ``name``, ``device_factors``, and the
    heterogeneous ``device_pool`` — is deliberately invisible: a rank's
    device class enters through the per-range key (compute scale +
    capacity, see :meth:`StageEvaluator._key`), which is exactly what
    lets an elastic replan on a shrunken/grown/drifted cluster reuse the
    surviving entries (:mod:`repro.core.replan`).
    """
    parallel = profiler.parallel
    cluster = profiler.cluster
    # Device/model/workload specs hold dicts (per-op efficiencies), so the
    # dataclasses themselves are unhashable; their reprs are deterministic
    # for identically-constructed frozen instances and hash fine.
    return (
        repr(cluster.device),
        float(cluster.intra_node_bandwidth),
        float(cluster.inter_node_bandwidth),
        float(cluster.link_latency),
        cluster.devices_per_node,
        repr(profiler.spec),
        repr(profiler.train),
        parallel.tensor_parallel,
        parallel.data_parallel,
        profiler.noise,
        profiler.seed,
        float(capacity_bytes),
    )


class StageEvaluator:
    """Evaluates candidate stages, caching by isomorphism class.

    Args:
        profiler: the unit profiler for this (model, workload, strategy).
        layers: the full layer sequence being partitioned.
        capacity_bytes: usable device memory (the paper subtracts a safety
            margin — e.g. it ran GPT-3 with a 70 GB constraint on 80 GB
            devices).
        shared_cache: optional cross-strategy cache; when given, results
            are also keyed by :func:`evaluator_fingerprint` so other
            evaluators with identical inputs reuse them.
        rank_compute_scales: optional per-pipeline-rank compute scale
            factors (heterogeneous placement): stage ``s``'s forward and
            backward times are multiplied by ``rank_compute_scales[s]``.
            ``None`` means nominal (all 1.0). The scale is part of every
            cache key, so evaluations under different device classes
            never alias.
        rank_capacities: optional per-pipeline-rank memory capacities in
            bytes; stage ``s``'s recomputation knapsack runs against
            ``rank_capacities[s]`` instead of ``capacity_bytes``. Also
            part of every cache key.
    """

    def __init__(
        self,
        profiler: Profiler,
        layers: Sequence[Layer],
        capacity_bytes: float,
        shared_cache: Optional[StageEvalCache] = None,
        rank_compute_scales: Optional[Sequence[float]] = None,
        rank_capacities: Optional[Sequence[float]] = None,
    ) -> None:
        self.profiler = profiler
        self.layers = list(layers)
        self.capacity_bytes = capacity_bytes
        self.rank_compute_scales = (
            tuple(rank_compute_scales) if rank_compute_scales is not None else None
        )
        self.rank_capacities = (
            tuple(rank_capacities) if rank_capacities is not None else None
        )
        self.memory_model = profiler.memory
        self._cache: Dict[Tuple, StageEval] = {}
        self.shared_cache = shared_cache
        self._fingerprint: Optional[Tuple] = None
        if shared_cache is not None:
            try:
                self._fingerprint = evaluator_fingerprint(profiler, capacity_bytes)
            except AttributeError:
                # Profiler variants (e.g. measured profilers) that don't
                # expose the fingerprint fields keep a private partition of
                # the shared cache instead of sharing incorrectly. The
                # marker keeps these entries out of shard exports and
                # persisted cache files (an id() is process-local).
                self._fingerprint = (PRIVATE_FINGERPRINT, id(self))
        self.inner_dp_invocations = 0
        self.cache_hits = 0
        self.cache_misses = 0
        # Prefix sums for O(1) kind counts and parameter sums.
        self._att_prefix = [0]
        self._ffn_prefix = [0]
        self._param_prefix = [0]
        for layer in self.layers:
            self._att_prefix.append(
                self._att_prefix[-1] + (layer.kind == LayerKind.ATTENTION)
            )
            self._ffn_prefix.append(
                self._ffn_prefix[-1] + (layer.kind == LayerKind.FFN)
            )
            self._param_prefix.append(self._param_prefix[-1] + layer.params)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def _rank_scale(self, stage: int) -> float:
        if self.rank_compute_scales is not None and stage < len(
            self.rank_compute_scales
        ):
            return self.rank_compute_scales[stage]
        return 1.0

    def _rank_capacity(self, stage: int) -> float:
        if self.rank_capacities is not None and stage < len(self.rank_capacities):
            return self.rank_capacities[stage]
        return self.capacity_bytes

    def _key(self, stage: int, i: int, j: int) -> Tuple:
        # The stage index (and the memory model's schedule kind) only
        # matters through the in-flight micro-batch count, so keying on
        # that count makes classes line up across pipeline sizes — and
        # across schedule kinds that happen to agree on a stage's count.
        # The rank's device class (compute scale + capacity) is part of
        # the key: two placements putting different parts on the same
        # stage must never alias, and a drifted slowdown must invalidate
        # the old entry rather than silently reuse it.
        return (
            self.memory_model.in_flight(stage),
            i == 0,
            j == self.num_layers - 1,
            self._att_prefix[j + 1] - self._att_prefix[i],
            self._ffn_prefix[j + 1] - self._ffn_prefix[i],
            self._rank_scale(stage),
            float(self._rank_capacity(stage)),
        )

    def evaluate(self, stage: int, i: int, j: int) -> StageEval:
        """Optimal cost of layers ``i..j`` (inclusive) as stage ``stage``."""
        key = self._key(stage, i, j)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        if self.shared_cache is not None:
            shared = self.shared_cache.get(self._fingerprint + key)
            if shared is not None:
                self.cache_hits += 1
                self._cache[key] = shared
                return shared
        self.cache_misses += 1
        cached = self._evaluate_uncached(stage, i, j)
        self._cache[key] = cached
        if self.shared_cache is not None:
            self.shared_cache.put(self._fingerprint + key, cached)
        return cached

    def _evaluate_uncached(self, stage: int, i: int, j: int) -> StageEval:
        self.inner_dp_invocations += 1
        # Accumulate in kind-grouped order so every member of an
        # isomorphism class yields bit-identical sums: the cache key is a
        # kind *multiset*, but FP addition is order-sensitive, so summing
        # an [ATT, FFN, ATT] slice interleaved vs a [FFN, ATT, ATT] slice
        # would make the class value depend on which slice was visited
        # first (and a warm-started cache would differ from a cold one by
        # ULPs). Stable-sorting by kind makes the representative canonical.
        stage_layers = sorted(
            self.layers[i : j + 1], key=lambda layer: layer.kind.value
        )
        in_flight = self.memory_model.in_flight(stage)

        forward = 0.0
        backward_fixed = 0.0
        always_bytes = 0.0
        always_counts: Dict[str, int] = {}
        optional: Dict[str, UnitItem] = {}
        optional_total_value = 0.0

        for layer in stage_layers:
            profile: LayerProfile = self.profiler.profile_layer(layer.kind)
            for unit in profile.units:
                forward += unit.time_forward
                backward_fixed += unit.time_backward
                if unit.always_saved:
                    always_bytes += unit.saved_bytes
                    always_counts[unit.name] = always_counts.get(unit.name, 0) + 1
                else:
                    optional_total_value += unit.time_forward
                    existing = optional.get(unit.name)
                    if existing is None:
                        optional[unit.name] = UnitItem(
                            name=unit.name,
                            value=unit.time_forward,
                            weight_bytes=unit.saved_bytes,
                            copies=1,
                        )
                    else:
                        optional[unit.name] = UnitItem(
                            name=existing.name,
                            value=existing.value,
                            weight_bytes=existing.weight_bytes,
                            copies=existing.copies + 1,
                        )

        static = self.memory_model.static_bytes(stage_layers)
        buffer = self.memory_model.recompute_buffer_bytes()
        budget = (
            self._rank_capacity(stage) - static - buffer - in_flight * always_bytes
        )
        result: RecomputeResult = optimize_stage_recompute(
            list(optional.values()), budget, in_flight
        )
        scale = self._rank_scale(stage)
        if not result.feasible:
            return StageEval(
                feasible=False,
                forward=forward if scale == 1.0 else forward * scale,
                backward=float("inf"),
                saved_unit_counts={},
                saved_bytes_per_microbatch=0.0,
                memory=StageMemory(static, buffer, always_bytes, in_flight),
            )

        backward = backward_fixed + optional_total_value - result.saved_value
        # The knapsack runs on nominal unit times: a uniform per-rank scale
        # multiplies every candidate's value identically, so the argmax is
        # scale-invariant and only the resulting stage times need scaling.
        # The `!= 1.0` guard keeps homogeneous pools bit-identical to the
        # poolless planner (IEEE `x * 1.0` is exact, but skipping the
        # multiply entirely makes the invariance self-evident).
        if scale != 1.0:
            forward *= scale
            backward *= scale
        saved_counts = dict(always_counts)
        for name, count in result.saved_counts.items():
            saved_counts[name] = saved_counts.get(name, 0) + count
        saved_bytes = always_bytes + result.saved_bytes
        memory = StageMemory(
            static_bytes=static,
            buffer_bytes=buffer,
            saved_per_microbatch=saved_bytes,
            in_flight_microbatches=in_flight,
        )
        return StageEval(
            feasible=True,
            forward=forward,
            backward=backward,
            saved_unit_counts=saved_counts,
            saved_bytes_per_microbatch=saved_bytes,
            memory=memory,
        )
