"""Stage evaluation with isomorphism caching (Section 5.3).

The partitioning DP needs ``f[s, i, j]`` and ``b[s, i, j]`` — the optimal
forward/backward time of layers ``i..j`` as stage ``s`` — for every stage
and sub-sequence, which naively means O(pL^2) inner-DP runs. But transformer
layer sequences are homogeneous: two sub-sequences with the same layer-kind
multiset (same Attention/FFN counts, same embedding/head membership) are
isomorphic and share one inner-DP solution. Caching on that key reduces the
inner-DP invocations to O(pL), as the paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from repro.core.recompute_dp import (
    RecomputeResult,
    UnitItem,
    optimize_stage_recompute,
)
from repro.model.layers import Layer, LayerKind
from repro.profiler.memory import StageMemory
from repro.profiler.profiler import LayerProfile, Profiler


@dataclass(frozen=True)
class StageEval:
    """Optimal cost of one candidate stage (layers ``i..j`` as stage ``s``).

    Attributes:
        feasible: whether the stage fits device memory at all.
        forward: the paper's ``F_{G,s}`` — fixed forward time.
        backward: the paper's ``B_{G,s}`` — backward time including the
            cheapest recomputation meeting the budget.
        saved_unit_counts: saved units per type (always-saved included).
        saved_bytes_per_microbatch: intermediates pinned per micro-batch.
        memory: full stage memory breakdown.
    """

    feasible: bool
    forward: float
    backward: float
    saved_unit_counts: Mapping[str, int]
    saved_bytes_per_microbatch: float
    memory: StageMemory


class StageEvaluator:
    """Evaluates candidate stages, caching by isomorphism class.

    Args:
        profiler: the unit profiler for this (model, workload, strategy).
        layers: the full layer sequence being partitioned.
        capacity_bytes: usable device memory (the paper subtracts a safety
            margin — e.g. it ran GPT-3 with a 70 GB constraint on 80 GB
            devices).
    """

    def __init__(
        self,
        profiler: Profiler,
        layers: Sequence[Layer],
        capacity_bytes: float,
    ) -> None:
        self.profiler = profiler
        self.layers = list(layers)
        self.capacity_bytes = capacity_bytes
        self.memory_model = profiler.memory
        self._cache: Dict[Tuple, StageEval] = {}
        self.inner_dp_invocations = 0
        # Prefix sums for O(1) kind counts and parameter sums.
        self._att_prefix = [0]
        self._ffn_prefix = [0]
        self._param_prefix = [0]
        for layer in self.layers:
            self._att_prefix.append(
                self._att_prefix[-1] + (layer.kind == LayerKind.ATTENTION)
            )
            self._ffn_prefix.append(
                self._ffn_prefix[-1] + (layer.kind == LayerKind.FFN)
            )
            self._param_prefix.append(self._param_prefix[-1] + layer.params)

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def _key(self, stage: int, i: int, j: int) -> Tuple:
        return (
            stage,
            i == 0,
            j == self.num_layers - 1,
            self._att_prefix[j + 1] - self._att_prefix[i],
            self._ffn_prefix[j + 1] - self._ffn_prefix[i],
        )

    def evaluate(self, stage: int, i: int, j: int) -> StageEval:
        """Optimal cost of layers ``i..j`` (inclusive) as stage ``stage``."""
        key = self._key(stage, i, j)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._evaluate_uncached(stage, i, j)
            self._cache[key] = cached
        return cached

    def _evaluate_uncached(self, stage: int, i: int, j: int) -> StageEval:
        self.inner_dp_invocations += 1
        stage_layers = self.layers[i : j + 1]
        in_flight = self.memory_model.in_flight(stage)

        forward = 0.0
        backward_fixed = 0.0
        always_bytes = 0.0
        always_counts: Dict[str, int] = {}
        optional: Dict[str, UnitItem] = {}
        optional_total_value = 0.0

        for layer in stage_layers:
            profile: LayerProfile = self.profiler.profile_layer(layer.kind)
            for unit in profile.units:
                forward += unit.time_forward
                backward_fixed += unit.time_backward
                if unit.always_saved:
                    always_bytes += unit.saved_bytes
                    always_counts[unit.name] = always_counts.get(unit.name, 0) + 1
                else:
                    optional_total_value += unit.time_forward
                    existing = optional.get(unit.name)
                    if existing is None:
                        optional[unit.name] = UnitItem(
                            name=unit.name,
                            value=unit.time_forward,
                            weight_bytes=unit.saved_bytes,
                            copies=1,
                        )
                    else:
                        optional[unit.name] = UnitItem(
                            name=existing.name,
                            value=existing.value,
                            weight_bytes=existing.weight_bytes,
                            copies=existing.copies + 1,
                        )

        static = self.memory_model.static_bytes(stage_layers)
        buffer = self.memory_model.recompute_buffer_bytes()
        budget = (
            self.capacity_bytes - static - buffer - in_flight * always_bytes
        )
        result: RecomputeResult = optimize_stage_recompute(
            list(optional.values()), budget, in_flight
        )
        if not result.feasible:
            return StageEval(
                feasible=False,
                forward=forward,
                backward=float("inf"),
                saved_unit_counts={},
                saved_bytes_per_microbatch=0.0,
                memory=StageMemory(static, buffer, always_bytes, in_flight),
            )

        backward = backward_fixed + optional_total_value - result.saved_value
        saved_counts = dict(always_counts)
        for name, count in result.saved_counts.items():
            saved_counts[name] = saved_counts.get(name, 0) + count
        saved_bytes = always_bytes + result.saved_bytes
        memory = StageMemory(
            static_bytes=static,
            buffer_bytes=buffer,
            saved_per_microbatch=saved_bytes,
            in_flight_microbatches=in_flight,
        )
        return StageEval(
            feasible=True,
            forward=forward,
            backward=backward,
            saved_unit_counts=saved_counts,
            saved_bytes_per_microbatch=saved_bytes,
            memory=memory,
        )
