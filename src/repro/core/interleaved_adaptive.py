"""Extension: adaptive recomputation under interleaved 1F1B.

The paper applies adaptive recomputation to plain 1F1B, where stage ``s``
pins exactly ``min(n, p - s)`` micro-batches. Megatron's interleaved
schedule has no simple closed form — each device hosts ``v`` chunks whose
in-flight counts follow the interleaved warmup pattern — but the task
order is cost-independent combinatorics, so the exact per-stage peaks come
from :func:`repro.profiler.memory.in_flight_micro_batches` (which replays
that order; it provably matches the simulator-measured
:func:`repro.pipeline.tracing.stage_in_flight_peaks`). This extension then
solves one knapsack **per device** over the union of its chunks'
computation units, with each item weighted by its own stage's multiplier
and all chunks drawing on the device's shared memory budget.

This is a natural "future work" completion of the paper: the same
cost-model-plus-knapsack machinery, driven by the schedule-aware
in-flight accounting.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.evaluate import PlanEvaluation
from repro.core.isomorphism import StageEval
from repro.core.partition_dp import even_boundaries
from repro.core.plan import PipelinePlan, StagePlan
from repro.core.recompute_dp import UnitItem, optimize_stage_recompute
from repro.core.search import PlannerContext
from repro.pipeline.memory_audit import audit_schedule_memory
from repro.pipeline.schedules import interleaved_1f1b_schedule
from repro.pipeline.simulator import simulate_with_info
from repro.profiler.memory import StageMemory, in_flight_micro_batches


def plan_interleaved_adaptive(
    ctx: PlannerContext,
    chunks: int = 2,
    method: str = None,
) -> PipelinePlan:
    """Adaptive recomputation on an interleaved-1F1B layout.

    Args:
        ctx: planning context; ``ctx.parallel.pipeline_parallel`` devices.
        chunks: model chunks per device (``v``).
        method: plan label.

    Returns:
        A plan with ``chunks * p`` stages; feasibility judged against the
        exact per-stage in-flight peaks of the interleaved schedule.
    """
    p = ctx.parallel.pipeline_parallel
    method = method or f"AdaPipe-Interleaved(v={chunks})"
    boundaries = even_boundaries(len(ctx.layers), chunks * p)

    # Step 1: the exact in-flight peaks of the interleaved task order (a
    # schedule property — recomputation choices don't move them). These
    # are computed analytically; earlier revisions simulated a probe
    # schedule to measure the same numbers.
    in_flight = {
        stage: in_flight_micro_batches(
            "interleaved", stage, chunks * p, ctx.num_micro_batches, num_devices=p
        )
        for stage in range(chunks * p)
    }

    # Step 2: one shared-budget knapsack per device over its chunks.
    memory_model = ctx.profiler.memory
    device_stage_evals: Dict[int, List[Tuple[int, StageEval]]] = {}
    for device in range(p):
        stages = [chunk * p + device for chunk in range(chunks)]
        items: Dict[Tuple[int, str], UnitItem] = {}
        forward = {s: 0.0 for s in stages}
        backward_fixed = {s: 0.0 for s in stages}
        optional_value = {s: 0.0 for s in stages}
        always_bytes = {s: 0.0 for s in stages}
        counts: Dict[int, Dict[str, int]] = {s: {} for s in stages}
        static_total = 0.0
        for stage in stages:
            lo, hi = boundaries[stage]
            stage_layers = ctx.layers[lo:hi]
            static_total += memory_model.static_bytes(stage_layers)
            flight = max(1, in_flight.get(stage, 1))
            for layer in stage_layers:
                profile = ctx.profiler.profile_layer(layer.kind)
                for unit in profile.units:
                    forward[stage] += unit.time_forward
                    backward_fixed[stage] += unit.time_backward
                    if unit.always_saved:
                        always_bytes[stage] += unit.saved_bytes
                        counts[stage][unit.name] = counts[stage].get(unit.name, 0) + 1
                        continue
                    optional_value[stage] += unit.time_forward
                    key = (stage, unit.name)
                    existing = items.get(key)
                    # Bake the per-stage multiplier into the weight so one
                    # knapsack covers chunks with different in-flight counts.
                    if existing is None:
                        items[key] = UnitItem(
                            name=f"s{stage}:{unit.name}",
                            value=unit.time_forward,
                            weight_bytes=unit.saved_bytes * flight,
                            copies=1,
                        )
                    else:
                        items[key] = UnitItem(
                            existing.name, existing.value,
                            existing.weight_bytes, existing.copies + 1,
                        )
        buffer = memory_model.recompute_buffer_bytes()
        budget = ctx.capacity_bytes - static_total - buffer - sum(
            always_bytes[s] * max(1, in_flight.get(s, 1)) for s in stages
        )
        result = optimize_stage_recompute(list(items.values()), budget, in_flight=1)
        evals: List[Tuple[int, StageEval]] = []
        for stage in stages:
            lo, hi = boundaries[stage]
            stage_layers = ctx.layers[lo:hi]
            flight = max(1, in_flight.get(stage, 1))
            saved_value = 0.0
            saved_bytes = always_bytes[stage]
            stage_counts = dict(counts[stage])
            if result.feasible:
                for (item_stage, unit_name), item in items.items():
                    if item_stage != stage:
                        continue
                    kept = result.saved_counts.get(item.name, 0)
                    if kept:
                        stage_counts[unit_name] = stage_counts.get(unit_name, 0) + kept
                        saved_value += item.value * kept
                        saved_bytes += (item.weight_bytes / flight) * kept
            backward = backward_fixed[stage] + optional_value[stage] - saved_value
            memory = StageMemory(
                static_bytes=memory_model.static_bytes(stage_layers),
                buffer_bytes=buffer / chunks,
                saved_per_microbatch=saved_bytes,
                in_flight_microbatches=flight,
            )
            evals.append(
                (
                    stage,
                    StageEval(
                        feasible=result.feasible,
                        forward=forward[stage],
                        backward=backward,
                        saved_unit_counts=stage_counts,
                        saved_bytes_per_microbatch=saved_bytes,
                        memory=memory,
                    ),
                )
            )
        device_stage_evals[device] = evals

    ordered: List[StageEval] = [None] * (chunks * p)  # type: ignore[list-item]
    for evals in device_stage_evals.values():
        for stage, eval_ in evals:
            ordered[stage] = eval_
    feasible = all(e is not None and e.feasible for e in ordered)
    stages = tuple(
        StagePlan(
            stage=s,
            layer_start=lo,
            layer_end=hi,
            saved_unit_counts=dict(ordered[s].saved_unit_counts),
            forward_time=ordered[s].forward,
            backward_time=ordered[s].backward,
            memory=ordered[s].memory,
            params=sum(layer.params for layer in ctx.layers[lo:hi]),
        )
        for s, (lo, hi) in enumerate(boundaries)
    )
    return PipelinePlan(
        method=method,
        parallel=ctx.parallel,
        train=ctx.train,
        stages=stages,
        modeled_iteration_time=None,
        feasible=feasible,
        hidden_size=ctx.spec.hidden_size,
    )


def evaluate_interleaved_adaptive(
    ctx: PlannerContext, chunks: int = 2
) -> PlanEvaluation:
    """Plan + simulate the adaptive interleaved configuration."""
    plan = plan_interleaved_adaptive(ctx, chunks)
    if not plan.feasible:
        return PlanEvaluation(plan=plan, simulation=None, oom=True)
    schedule = interleaved_1f1b_schedule(
        list(plan.stage_costs()),
        ctx.num_micro_batches,
        ctx.parallel.pipeline_parallel,
        hop_time=ctx.hop_time,
    )
    result, sim_info = simulate_with_info(schedule)
    oom = bool(result.oom_devices(ctx.cluster.device.usable_memory_bytes))
    audit = audit_schedule_memory(schedule, "interleaved", result=result)
    summary = audit.summary()
    plan = plan.with_metadata(
        sim_engine=sim_info["engine"],
        sim_cache_hit=sim_info["cache_hit"],
        sim_cache_hits=sim_info["cache_hits"],
        sim_cache_misses=sim_info["cache_misses"],
        mem_model_peak_bytes=summary["modeled_peak_bytes"],
        mem_sim_peak_bytes=summary["simulated_peak_bytes"],
        mem_model_conservative=summary["conservative"],
        mem_model_max_rel_gap=summary["max_rel_gap"],
    )
    return PlanEvaluation(plan=plan, simulation=result, oom=oom)
