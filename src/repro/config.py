"""Shared configuration objects for the AdaPipe reproduction.

Two configuration records appear everywhere in the system:

* :class:`ParallelConfig` — the 3D parallelism strategy ``(t, p, d)`` of
  Table 1 in the paper (tensor, pipeline, and data parallel sizes).
* :class:`TrainingConfig` — the workload: sequence length, global batch
  size, micro-batch size, and precision-related knobs.

Both are immutable value objects so they can be used as cache keys by the
search engine and the isomorphism cache.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


class ConfigError(ValueError):
    """Raised when a configuration is internally inconsistent."""


@dataclass(frozen=True)
class ParallelConfig:
    """A 3D parallelism strategy.

    Attributes:
        tensor_parallel: tensor parallel size ``t`` (intra-node model split).
        pipeline_parallel: pipeline parallel size ``p`` (number of stages).
        data_parallel: data parallel size ``d`` (replicas, with ZeRO-1).
    """

    tensor_parallel: int
    pipeline_parallel: int
    data_parallel: int

    def __post_init__(self) -> None:
        for name in ("tensor_parallel", "pipeline_parallel", "data_parallel"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ConfigError(f"{name} must be a positive integer, got {value!r}")

    @property
    def num_devices(self) -> int:
        """Total number of accelerators the strategy occupies."""
        return self.tensor_parallel * self.pipeline_parallel * self.data_parallel

    def as_tuple(self) -> tuple:
        """The paper's ``(TP, PP, DP)`` tuple, as printed in Table 3."""
        return (self.tensor_parallel, self.pipeline_parallel, self.data_parallel)

    def __str__(self) -> str:
        return f"(t={self.tensor_parallel}, p={self.pipeline_parallel}, d={self.data_parallel})"


@dataclass(frozen=True)
class TrainingConfig:
    """The training workload evaluated in Section 7.

    The paper fixes the micro-batch size to 1 and halves the global batch
    size whenever the sequence length doubles, keeping tokens-per-iteration
    constant; this record just stores the resulting numbers.

    Attributes:
        sequence_length: tokens per sample.
        global_batch_size: samples per iteration across all data-parallel
            replicas.
        micro_batch_size: samples per pipeline micro-batch (``b``).
        bytes_per_value: activation/parameter element width (2 for fp16/bf16).
        optimizer_state_factor: the paper's ``k`` — bytes of optimizer state
            per parameter divided by ``bytes_per_value``... stored directly as
            bytes-per-parameter here (8 for two FP32 Adam moments).
        master_weight_bytes: extra bytes per parameter when the framework
            keeps an FP32 master copy of the weights (4) and/or accumulates
            gradients in FP32 (4); 0 disables the term.
        sequence_parallel: whether Megatron-style sequence parallelism is on
            (it divides layer-norm/dropout activations by ``t``).
        flash_attention: whether FlashAttention is used (it removes the
            attention-probability intermediates).
        zero_stage: ZeRO sharding level across data-parallel ranks: 0 =
            nothing sharded, 1 = optimizer state (the paper's setting), 2 =
            + gradients, 3 = + parameters.
        hidden_dropout: dropout probability on hidden activations; a
            non-zero value adds the 1-byte dropout masks to the memory
            model (GPT-3-era recipes; modern LLM training sets 0).
        attention_dropout: dropout on attention probabilities; only
            materialises a mask without FlashAttention.
    """

    sequence_length: int
    global_batch_size: int
    micro_batch_size: int = 1
    bytes_per_value: int = 2
    optimizer_state_factor: int = 8
    master_weight_bytes: int = 4
    sequence_parallel: bool = True
    flash_attention: bool = True
    zero_stage: int = 1
    hidden_dropout: float = 0.0
    attention_dropout: float = 0.0

    def __post_init__(self) -> None:
        if self.sequence_length < 1:
            raise ConfigError("sequence_length must be >= 1")
        if self.global_batch_size < 1:
            raise ConfigError("global_batch_size must be >= 1")
        if self.micro_batch_size < 1:
            raise ConfigError("micro_batch_size must be >= 1")
        if self.bytes_per_value not in (1, 2, 4):
            raise ConfigError("bytes_per_value must be 1, 2 or 4")
        if self.zero_stage not in (0, 1, 2, 3):
            raise ConfigError("zero_stage must be 0, 1, 2 or 3")
        for name in ("hidden_dropout", "attention_dropout"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ConfigError(f"{name} must be in [0, 1), got {value}")

    def num_micro_batches(self, parallel: ParallelConfig) -> int:
        """Micro-batches ``n`` seen by one pipeline (one data-parallel group)."""
        per_replica = self.global_batch_size // parallel.data_parallel
        if per_replica * parallel.data_parallel != self.global_batch_size:
            raise ConfigError(
                f"global batch {self.global_batch_size} not divisible by "
                f"data parallel size {parallel.data_parallel}"
            )
        n = per_replica // self.micro_batch_size
        if n * self.micro_batch_size != per_replica:
            raise ConfigError(
                f"per-replica batch {per_replica} not divisible by "
                f"micro batch {self.micro_batch_size}"
            )
        if n < 1:
            raise ConfigError("configuration yields zero micro-batches")
        return n

    def tokens_per_iteration(self) -> int:
        """Total tokens processed per iteration (held constant in the paper)."""
        return self.sequence_length * self.global_batch_size

    def with_sequence_length(self, sequence_length: int) -> "TrainingConfig":
        """The paper's sweep rule: double seq length, halve global batch.

        Returns a copy at ``sequence_length`` with the global batch scaled so
        that tokens-per-iteration is unchanged.
        """
        scaled = self.tokens_per_iteration() // sequence_length
        if scaled * sequence_length != self.tokens_per_iteration():
            raise ConfigError(
                f"cannot rescale batch: {self.tokens_per_iteration()} tokens "
                f"not divisible by sequence length {sequence_length}"
            )
        return dataclasses.replace(
            self, sequence_length=sequence_length, global_batch_size=scaled
        )
