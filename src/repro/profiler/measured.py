"""Measured profiling: the paper's Section 6 loop, on the real mini-engine.

The analytic profiler predicts unit costs from FLOPs; this module instead
*measures* them, exactly as AdaPipe's search engine does on a real cluster:
run a few warm-up iterations of the actual model, record wall-clock
timestamps around every computation unit's forward and backward, and record
the actual bytes its saved tensors occupy. The output is the same
:class:`~repro.profiler.profiler.LayerProfile` shape, so the two-level DP
(via :class:`~repro.core.isomorphism.StageEvaluator`) consumes measured
numbers without any code change — closing the profile → search → execute
loop end-to-end inside this repository.
"""

from __future__ import annotations

import time
from typing import Dict, List

import numpy as np

from repro.config import ParallelConfig, TrainingConfig
from repro.model.layers import LayerKind
from repro.model.units import units_for_layer
from repro.profiler.memory import MemoryModel
from repro.profiler.profiler import LayerProfile, UnitProfile
from repro.training.modules import TransformerModel, UnitLayer


def _tree_bytes(obj: object) -> float:
    if isinstance(obj, np.ndarray):
        return float(obj.nbytes)
    if isinstance(obj, (tuple, list)):
        return sum(_tree_bytes(item) for item in obj)
    return 0.0


class MeasuredProfiler:
    """Profiles computation units by timing the real numpy engine.

    Duck-types the analytic :class:`~repro.profiler.profiler.Profiler`
    interface the search engine uses (``profile_layer`` and ``memory``).

    Args:
        model: the mini transformer to measure.
        train: workload configuration (sequence length, micro-batch size).
        parallel: parallelism strategy — used by the memory model; the
            measurement itself runs un-sharded (t=1 semantics, like a
            single-device profiling rank).
        warmup_iterations: un-timed iterations before measurement (JIT-less
            numpy still benefits from allocator warm-up).
        iterations: timed repetitions; the paper uses 5–10.
        seed: input-token seed.
    """

    def __init__(
        self,
        model: TransformerModel,
        train: TrainingConfig,
        parallel: ParallelConfig,
        warmup_iterations: int = 1,
        iterations: int = 5,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.train = train
        self.parallel = parallel
        self.warmup_iterations = warmup_iterations
        self.iterations = iterations
        self.seed = seed
        self.memory = MemoryModel(model.spec, train, parallel)
        self._cache: Dict[LayerKind, LayerProfile] = {}

    def profile_layer(self, kind: LayerKind) -> LayerProfile:
        if kind not in self._cache:
            self._cache[kind] = self._measure(kind)
        return self._cache[kind]

    # -- measurement ----------------------------------------------------

    def _layer_for_kind(self, kind: LayerKind) -> UnitLayer:
        for descriptor, layer in zip(self.model.descriptors, self.model.layers):
            if descriptor.kind == kind:
                return layer
        raise ValueError(f"model has no {kind} layer")

    def _sample_input(self, kind: LayerKind):
        rng = np.random.default_rng(self.seed)
        batch = self.train.micro_batch_size
        seq = self.train.sequence_length
        if kind == LayerKind.EMBEDDING:
            return rng.integers(0, self.model.spec.vocab_size, size=(batch, seq))
        return rng.normal(size=(batch, seq, self.model.spec.hidden_size))

    def _measure(self, kind: LayerKind) -> LayerProfile:
        layer = self._layer_for_kind(kind)
        x = self._sample_input(kind)
        if kind == LayerKind.HEAD:
            rng = np.random.default_rng(self.seed + 1)
            layer.set_targets(
                rng.integers(
                    0,
                    self.model.spec.vocab_size,
                    size=(self.train.micro_batch_size, self.train.sequence_length),
                )
            )
        units = units_for_layer(kind, self.model.spec, self.train, tensor_parallel=1)
        unit_by_name = {unit.name: unit for unit in units}

        forward_times: Dict[str, List[float]] = {n: [] for n in layer.unit_names}
        backward_times: Dict[str, List[float]] = {n: [] for n in layer.unit_names}
        saved_bytes: Dict[str, float] = {}

        for iteration in range(self.warmup_iterations + self.iterations):
            timed = iteration >= self.warmup_iterations
            values = {"__input__": x}
            caches = {}
            # Forward: timestamp around each unit, as the paper's profiler
            # records timestamps "before and after each computation unit".
            for name in layer.unit_names:
                started = time.perf_counter()
                output, cache = layer._run_unit(name, values)
                elapsed = time.perf_counter() - started
                values[name] = output
                caches[name] = cache
                if timed:
                    forward_times[name].append(elapsed)
                saved_bytes[name] = _tree_bytes(output) + _tree_bytes(cache)
            # Backward: reverse walk with the same timing.
            grads = {layer.unit_names[-1]: self._seed_grad(kind, values)}
            for name in reversed(layer.unit_names):
                started = time.perf_counter()
                layer._backward_unit(name, caches[name], grads)
                elapsed = time.perf_counter() - started
                if timed:
                    backward_times[name].append(elapsed)
            layer.zero_grad()

        profiles = []
        for name in layer.unit_names:
            unit = unit_by_name[name]
            profiles.append(
                UnitProfile(
                    unit=unit,
                    time_forward=float(np.median(forward_times[name])),
                    time_backward=float(np.median(backward_times[name])),
                    saved_bytes=saved_bytes[name],
                )
            )
        return LayerProfile(kind=kind, units=tuple(profiles))

    def _seed_grad(self, kind: LayerKind, values) -> object:
        if kind == LayerKind.HEAD:
            return 1.0
        output = values[self._layer_for_kind(kind).unit_names[-1]]
        return np.ones_like(output)


def plan_with_measured_profile(
    model: TransformerModel,
    train: TrainingConfig,
    parallel: ParallelConfig,
    capacity_bytes: float,
    iterations: int = 5,
    method: str = "AdaPipe (measured)",
):
    """Profile the real model, then run the full two-level DP on the
    measurements. Returns the resulting :class:`PipelinePlan`."""
    from repro.core.isomorphism import StageEvaluator
    from repro.core.partition_dp import optimize_partition
    from repro.core.plan import PipelinePlan, StagePlan

    from repro.core.partition_dp import even_boundaries, evaluate_fixed_partition

    profiler = MeasuredProfiler(model, train, parallel, iterations=iterations)
    evaluator = StageEvaluator(profiler, model.descriptors, capacity_bytes)
    result = optimize_partition(
        evaluator,
        parallel.pipeline_parallel,
        train.num_micro_batches(parallel),
    )
    if not result.feasible:
        # Fall back to the uniform partition so callers still get a full,
        # inspectable (infeasible) plan rather than an empty one.
        result = evaluate_fixed_partition(
            evaluator,
            even_boundaries(len(model.descriptors), parallel.pipeline_parallel),
            train.num_micro_batches(parallel),
        )
    stages = tuple(
        StagePlan(
            stage=s,
            layer_start=lo,
            layer_end=hi,
            saved_unit_counts=dict(result.stage_evals[s].saved_unit_counts),
            forward_time=result.stage_evals[s].forward,
            backward_time=result.stage_evals[s].backward,
            memory=result.stage_evals[s].memory,
        )
        for s, (lo, hi) in enumerate(result.boundaries)
    )
    return PipelinePlan(
        method=method,
        parallel=parallel,
        train=train,
        stages=stages,
        modeled_iteration_time=result.total_time if result.feasible else None,
        feasible=result.feasible,
        hidden_size=model.spec.hidden_size,
    )
