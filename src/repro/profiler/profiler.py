"""The profiler: per-unit forward/backward times and saved sizes.

``Profiler`` plays the role of the paper's preliminary profiling run
(Section 6): it produces, for every computation unit of every layer kind, a
:class:`UnitProfile` with the unit's forward time (= its recompute cost),
backward time, and saved-intermediate size. Times come from the roofline
model; tensor-parallel collective costs are attached to the units where
Megatron actually issues them (the closing row-parallel GEMM in forward, the
opening column-parallel GEMM in backward), so a recomputed unit never
re-pays forward communication that its saved closing unit already covers.

An optional multiplicative noise term emulates measurement jitter; it is
deterministic per unit name so searches remain reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.config import ParallelConfig, TrainingConfig
from repro.hardware.cluster import ClusterSpec
from repro.hardware.comm import CommModel
from repro.model.layers import Layer, LayerKind
from repro.model.spec import ModelSpec
from repro.model.units import ComputationUnit, units_for_layer
from repro.profiler.memory import MemoryModel
from repro.profiler.timing import unit_backward_time, unit_forward_time

# Units that carry the tensor-parallel collective in each direction.
_FORWARD_COMM_UNITS = {"attn.out", "ffn.out", "embed.lookup", "head.proj"}
_BACKWARD_COMM_UNITS = {"attn.q", "ffn.in", "embed.lookup", "head.proj"}


@dataclass(frozen=True)
class UnitProfile:
    """Measured (here: modelled) costs of one computation unit."""

    unit: ComputationUnit
    time_forward: float
    time_backward: float
    saved_bytes: float

    @property
    def name(self) -> str:
        return self.unit.name

    @property
    def always_saved(self) -> bool:
        return self.unit.always_saved

    @property
    def recompute_cost(self) -> float:
        """Extra backward-pass time when this unit is recomputed."""
        return self.time_forward


@dataclass(frozen=True)
class LayerProfile:
    """All unit profiles of one layer, with cached totals."""

    kind: LayerKind
    units: Tuple[UnitProfile, ...]

    @property
    def time_forward(self) -> float:
        return sum(u.time_forward for u in self.units)

    @property
    def time_backward(self) -> float:
        return sum(u.time_backward for u in self.units)

    @property
    def full_recompute_extra(self) -> float:
        """Backward-time penalty of recomputing every optional unit."""
        return sum(u.time_forward for u in self.units if not u.always_saved)

    @property
    def saved_bytes_always(self) -> float:
        return sum(u.saved_bytes for u in self.units if u.always_saved)

    @property
    def saved_bytes_all(self) -> float:
        return sum(u.saved_bytes for u in self.units)


def _jitter(name: str, seed: int, noise: float) -> float:
    """Deterministic multiplicative jitter in ``[1 - noise, 1 + noise]``."""
    if noise == 0.0:
        return 1.0
    digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
    unit_interval = int.from_bytes(digest[:8], "big") / 2**64
    return 1.0 + noise * (2.0 * unit_interval - 1.0)


class Profiler:
    """Builds unit profiles for one (model, workload, cluster, strategy).

    Args:
        cluster: hardware the model runs on.
        spec: model architecture.
        train: workload configuration.
        parallel: the 3D parallelism strategy being evaluated.
        noise: relative amplitude of deterministic measurement jitter.
        seed: jitter seed.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        spec: ModelSpec,
        train: TrainingConfig,
        parallel: ParallelConfig,
        noise: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.cluster = cluster
        self.spec = spec
        self.train = train
        self.parallel = parallel
        self.noise = noise
        self.seed = seed
        self.comm = CommModel(cluster)
        self.memory = MemoryModel(spec, train, parallel)
        self._cache: Dict[LayerKind, LayerProfile] = {}

    def profile_layer(self, kind: LayerKind) -> LayerProfile:
        """Profile one layer kind (cached — layers are homogeneous)."""
        if kind not in self._cache:
            self._cache[kind] = self._build(kind)
        return self._cache[kind]

    def profile_layers(self, layers: Sequence[Layer]) -> List[LayerProfile]:
        """Profiles for a concrete layer sequence, in order."""
        return [self.profile_layer(layer.kind) for layer in layers]

    def _build(self, kind: LayerKind) -> LayerProfile:
        device = self.cluster.device
        tp_time = self.comm.tensor_parallel_overhead_per_layer(
            self.spec.hidden_size, self.train, self.parallel
        )
        profiles = []
        for unit in units_for_layer(
            kind, self.spec, self.train, self.parallel.tensor_parallel
        ):
            forward = unit_forward_time(unit, device)
            backward = unit_backward_time(unit, device)
            if unit.name in _FORWARD_COMM_UNITS:
                forward += tp_time
            if unit.name in _BACKWARD_COMM_UNITS:
                backward += tp_time
            scale = _jitter(unit.name, self.seed, self.noise)
            profiles.append(
                UnitProfile(
                    unit=unit,
                    time_forward=forward * scale,
                    time_backward=backward * scale,
                    saved_bytes=self.memory.unit_saved_bytes(unit),
                )
            )
        return LayerProfile(kind=kind, units=tuple(profiles))
