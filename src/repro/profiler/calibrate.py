"""Calibrating the analytic profiler from measurements.

The analytic roofline needs per-operator-class efficiency factors (fraction
of peak FLOPS achieved). On real hardware those come from measurement; this
module estimates them from ``(unit, measured time)`` pairs — e.g. produced
by :class:`~repro.profiler.measured.MeasuredProfiler` on the mini engine,
or by a user timing kernels on their accelerator — closing the loop between
the two profilers: measure once, calibrate, then search analytically at any
scale.

The fit is per op class: with the roofline ``t = max(F/(e*P), B/W) + c``,
every compute-bound sample gives ``e = F / ((t - c) * P)``; the robust
estimate is the median over samples (bandwidth-bound samples, where the
implied efficiency exceeds 1 or the bandwidth term dominates, are
discarded).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence

import numpy as np

from repro.hardware.device import DeviceSpec
from repro.model.units import ComputationUnit, OpKind


@dataclass(frozen=True)
class TimingSample:
    """One measured forward execution of a computation unit."""

    unit: ComputationUnit
    measured_seconds: float


@dataclass(frozen=True)
class CalibrationReport:
    """Result of a calibration fit.

    Attributes:
        efficiencies: fitted fraction-of-peak per op class (only classes
            with usable samples appear).
        samples_used: accepted sample count per class.
        residual: median relative error of the calibrated model on the
            accepted samples.
    """

    efficiencies: Mapping[OpKind, float]
    samples_used: Mapping[OpKind, int]
    residual: float


def fit_efficiencies(
    samples: Iterable[TimingSample],
    device: DeviceSpec,
    min_efficiency: float = 1e-4,
) -> CalibrationReport:
    """Estimate per-class efficiencies from measured unit times."""
    implied: Dict[OpKind, List[float]] = {}
    for sample in samples:
        for op in sample.unit.ops:
            # Attribute the unit's time to its dominant op (units here are
            # single-class; multi-op units use the FLOP-weighted share).
            share = (
                op.flops_forward / max(1.0, sample.unit.flops_forward)
            ) * sample.measured_seconds
            compute_time = max(1e-12, share - device.kernel_launch_overhead)
            efficiency = op.flops_forward / (compute_time * device.peak_flops)
            if min_efficiency <= efficiency <= 1.0:
                implied.setdefault(op.kind, []).append(efficiency)

    efficiencies = {
        kind: float(np.median(values)) for kind, values in implied.items()
    }
    counts = {kind: len(values) for kind, values in implied.items()}

    residuals = []
    for sample in samples:
        predicted = 0.0
        for op in sample.unit.ops:
            eff = efficiencies.get(op.kind)
            if eff is None:
                predicted = None
                break
            predicted += op.flops_forward / (eff * device.peak_flops) + (
                device.kernel_launch_overhead
            )
        if predicted:
            residuals.append(
                abs(predicted - sample.measured_seconds) / sample.measured_seconds
            )
    residual = float(np.median(residuals)) if residuals else float("inf")
    return CalibrationReport(
        efficiencies=efficiencies, samples_used=counts, residual=residual
    )


def apply_calibration(
    device: DeviceSpec, report: CalibrationReport
) -> DeviceSpec:
    """A copy of ``device`` with the fitted efficiencies merged in."""
    merged = dict(device.efficiency)
    merged.update(report.efficiencies)
    return DeviceSpec(
        name=f"{device.name} (calibrated)",
        memory_bytes=device.memory_bytes,
        reserved_bytes=device.reserved_bytes,
        peak_flops=device.peak_flops,
        memory_bandwidth=device.memory_bandwidth,
        efficiency=merged,
        kernel_launch_overhead=device.kernel_launch_overhead,
    )


def synthetic_samples(
    device: DeviceSpec,
    units: Sequence[ComputationUnit],
    planted: Mapping[OpKind, float],
    noise: float = 0.0,
    seed: int = 0,
) -> List[TimingSample]:
    """Generate samples from planted efficiencies (for tests/demos)."""
    rng = np.random.default_rng(seed)
    samples = []
    for unit in units:
        seconds = 0.0
        for op in unit.ops:
            eff = planted[op.kind]
            seconds += op.flops_forward / (eff * device.peak_flops) + (
                device.kernel_launch_overhead
            )
        if noise:
            seconds *= 1.0 + noise * rng.uniform(-1.0, 1.0)
        samples.append(TimingSample(unit=unit, measured_seconds=seconds))
    return samples
