"""Roofline timing of computation units.

Each operator takes ``max(compute time, memory time)`` — the classic
roofline — plus a fixed launch overhead. Compute time divides the operator's
FLOPs by the device's *achieved* throughput for that operator class (dense
GEMMs run near peak; norms and elementwise ops are bandwidth-bound and get a
small efficiency factor, which makes the bandwidth term dominate for them,
as it does in practice).
"""

from __future__ import annotations

from repro.hardware.device import DeviceSpec
from repro.model.units import ComputationUnit, OpDesc


def op_time(op: OpDesc, device: DeviceSpec, backward: bool = False) -> float:
    """Execution time of one operator on one device, in seconds."""
    flops = op.flops_backward if backward else op.flops_forward
    compute = flops / device.achieved_flops(op.kind)
    moved_bytes = op.moved_elements * 2.0  # fp16 traffic
    if backward:
        moved_bytes *= 2.0  # gradients roughly double the traffic
    memory = moved_bytes / device.memory_bandwidth
    return max(compute, memory) + device.kernel_launch_overhead


def unit_forward_time(unit: ComputationUnit, device: DeviceSpec) -> float:
    """Forward time of a computation unit (the paper's ``Time_f(U)``).

    This is also the *recompute cost* of the unit: recomputing it during the
    backward pass repeats exactly its forward work.
    """
    return sum(op_time(op, device, backward=False) for op in unit.ops)


def unit_backward_time(unit: ComputationUnit, device: DeviceSpec) -> float:
    """Backward time of a computation unit (the paper's ``Time_b(U)``)."""
    return sum(op_time(op, device, backward=True) for op in unit.ops)
