"""Memory model (Section 4.2 of the paper).

Per-stage memory splits into three parts:

1. **Static** state, independent of recomputation: fp16 parameters ``2N/t``
   and gradients ``2N/t``, plus ZeRO-1-sharded optimizer state
   ``kN/(td)`` (k = 8 for the two FP32 Adam moments) and optional FP32
   master weights.
2. The **recompute buffer**: with the closing GEMM outputs of each
   Attention/Feed-Forward layer restricted to always-saved, the backward
   pass re-materialises at most one decoder layer's intermediates at a time,
   so the buffer is bounded by one layer's worth of activations.
3. **Saved intermediates**: every unit configured *saved* holds
   ``Mem(U)`` bytes per in-flight micro-batch, and stage ``s`` of ``p``
   keeps ``p - s`` micro-batches in flight under 1F1B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.config import ParallelConfig, TrainingConfig
from repro.model.layers import Layer, LayerKind
from repro.model.spec import ModelSpec
from repro.model.units import ComputationUnit, units_for_layer


@dataclass(frozen=True)
class StageMemory:
    """Memory breakdown of one pipeline stage, in bytes."""

    static_bytes: float
    buffer_bytes: float
    saved_per_microbatch: float
    in_flight_microbatches: int

    @property
    def total_bytes(self) -> float:
        return (
            self.static_bytes
            + self.buffer_bytes
            + self.saved_per_microbatch * self.in_flight_microbatches
        )

    def fits(self, capacity_bytes: float) -> bool:
        return self.total_bytes <= capacity_bytes


@dataclass(frozen=True)
class MemoryModel:
    """Evaluates the three-part memory model for a fixed workload."""

    spec: ModelSpec
    train: TrainingConfig
    parallel: ParallelConfig

    def unit_saved_bytes(self, unit: ComputationUnit) -> float:
        """The paper's ``Mem(U)``: bytes held when ``unit`` is saved."""
        return unit.saved_elements * self.train.bytes_per_value

    def static_bytes(self, layers: Sequence[Layer]) -> float:
        """Parameters + gradients + optimizer state for a stage's layers.

        ZeRO sharding (``train.zero_stage``) divides successive terms by the
        data-parallel size: stage 1 shards the optimizer state and master
        weights (the paper's setting), stage 2 also gradients, stage 3 also
        the fp16 parameters.
        """
        params = sum(layer.params for layer in layers)
        t = self.parallel.tensor_parallel
        d = self.parallel.data_parallel
        zero = self.train.zero_stage
        param_bytes = 2.0 * params / t / (d if zero >= 3 else 1)
        grad_bytes = 2.0 * params / t / (d if zero >= 2 else 1)
        state_divisor = t * (d if zero >= 1 else 1)
        optimizer_bytes = self.train.optimizer_state_factor * params / state_divisor
        master_bytes = self.train.master_weight_bytes * params / state_divisor
        return param_bytes + grad_bytes + optimizer_bytes + master_bytes

    def recompute_buffer_bytes(self) -> float:
        """Upper bound on the backward re-materialisation buffer.

        One decoder layer's intermediates: the Attention plus Feed-Forward
        units that are *not* restricted to always-saved (those are counted
        in the saved intermediates instead).
        """
        buffer = 0.0
        for kind in (LayerKind.ATTENTION, LayerKind.FFN):
            for unit in units_for_layer(
                kind, self.spec, self.train, self.parallel.tensor_parallel
            ):
                if not unit.always_saved:
                    buffer += self.unit_saved_bytes(unit)
        return buffer

    def saved_bytes_per_microbatch(
        self,
        layers: Sequence[Layer],
        saved_units: Iterable[ComputationUnit],
    ) -> float:
        """Intermediates one micro-batch pins in this stage.

        ``saved_units`` are the units (across all the stage's layers) whose
        outputs are preserved — always-saved units must be included by the
        caller.
        """
        del layers  # sizes already baked into the units
        return sum(self.unit_saved_bytes(unit) for unit in saved_units)

    def in_flight(self, stage: int) -> int:
        """Micro-batches stage ``s`` keeps live under 1F1B (``p - s``)."""
        return self.parallel.pipeline_parallel - stage

    def stage_memory(
        self,
        stage: int,
        layers: Sequence[Layer],
        saved_units: Iterable[ComputationUnit],
    ) -> StageMemory:
        """Full memory breakdown of stage ``s`` holding ``layers``."""
        return StageMemory(
            static_bytes=self.static_bytes(layers),
            buffer_bytes=self.recompute_buffer_bytes(),
            saved_per_microbatch=self.saved_bytes_per_microbatch(layers, saved_units),
            in_flight_microbatches=self.in_flight(stage),
        )

    def intermediate_budget(
        self, stage: int, layers: Sequence[Layer], capacity_bytes: float
    ) -> float:
        """Memory left for saved intermediates after static state and buffer.

        This is the knapsack capacity ``M`` of Section 4.3 (before the
        ``p - s`` multiplier, which the DP applies to item weights).
        """
        return capacity_bytes - self.static_bytes(layers) - self.recompute_buffer_bytes()
