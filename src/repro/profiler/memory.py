"""Memory model (Section 4.2 of the paper).

Per-stage memory splits into three parts:

1. **Static** state, independent of recomputation: fp16 parameters ``2N/t``
   and gradients ``2N/t``, plus ZeRO-1-sharded optimizer state
   ``kN/(td)`` (k = 8 for the two FP32 Adam moments) and optional FP32
   master weights.
2. The **recompute buffer**: with the closing GEMM outputs of each
   Attention/Feed-Forward layer restricted to always-saved, the backward
   pass re-materialises at most one decoder layer's intermediates at a time,
   so the buffer is bounded by one layer's worth of activations.
3. **Saved intermediates**: every unit configured *saved* holds
   ``Mem(U)`` bytes per in-flight micro-batch, times the number of
   micro-batches the *schedule* keeps live on the stage —
   ``min(n, p - s)`` under 1F1B, all ``n`` under GPipe, and the
   schedule-specific counts of :func:`in_flight_micro_batches` for the
   interleaved and Chimera variants.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Optional, Sequence, Tuple

from repro.config import ParallelConfig, TrainingConfig
from repro.model.layers import Layer, LayerKind
from repro.model.spec import ModelSpec
from repro.model.units import ComputationUnit, units_for_layer

#: Schedule kinds with an in-flight accounting rule. ``interleaved`` expects
#: ``num_stages`` to be the *global* stage count (chunks x devices) and
#: ``num_devices`` the pipeline group size.
SCHEDULE_KINDS = (
    "1f1b",
    "2bp",
    "overlap",
    "gpipe",
    "chimera",
    "chimerad",
    "interleaved",
)


@lru_cache(maxsize=None)
def _interleaved_stage_peaks(
    num_devices: int, num_chunks: int, num_micro_batches: int
) -> Tuple[int, ...]:
    """Exact per-global-stage in-flight peaks of the interleaved schedule.

    The Megatron task order is fixed combinatorics (warmup of
    ``2(p - d - 1) + (v - 1)p`` virtual forwards, then strict 1F1B
    alternation), independent of task durations, so the peak number of
    live micro-batches per stage is obtained by replaying the index
    arithmetic — no simulation needed. Forward and backward of a
    micro-batch run on the same device and devices execute in list order,
    so this dispatch-counter peak equals the simulator's measured
    activation-liveness peak (`stage_in_flight_peaks`).
    """
    p, v, n = num_devices, num_chunks, num_micro_batches
    total_virtual = n * v
    peaks = [0] * (v * p)
    for device in range(p):
        live = [0] * v
        warmup = min(2 * (p - device - 1) + (v - 1) * p, total_virtual)

        def start_forward(k: int) -> None:
            chunk = (k // p) % v
            live[chunk] += 1
            stage = chunk * p + device
            if live[chunk] > peaks[stage]:
                peaks[stage] = live[chunk]

        for k in range(warmup):
            start_forward(k)
        for i in range(total_virtual - warmup):
            start_forward(warmup + i)
            live[v - 1 - (i // p) % v] -= 1  # backward i retires its chunk
        # The drain phase only runs backwards; peaks cannot rise further.
    return tuple(peaks)


def in_flight_micro_batches(
    schedule_kind: str,
    stage: int,
    num_stages: int,
    num_micro_batches: int,
    num_devices: Optional[int] = None,
) -> int:
    """Micro-batches whose activations stage ``s`` keeps live at peak.

    Exact for 1F1B (``min(n, p - s)``), GPipe (``n``), and interleaved
    1F1B (replayed from the deterministic task order); an admissible upper
    bound for the Chimera variants, whose greedy list scheduler depends on
    task durations but caps each direction's window at
    ``min(p - s, p / 2)`` scheduling entities. ChimeraD counts are in
    micro-batch units — each doubled forward entity pins two micro-batches
    of activations.

    The two DAG-changing families stay exactly ``min(n, p - s)`` as well
    (ALGORITHMS.md §13): ``"2bp"`` holds activations until *grad-weight*,
    but the builder defers grad-weights only into the drain phase, where
    liveness already declines monotonically, so the steady-phase peak is
    untouched; ``"overlap"`` adds recompute tasks that neither pin nor
    release activations (the recompute buffer is separate,
    ``StageCosts.buffer_bytes``). The memory audit asserts both exact, not
    merely conservative.

    Args:
        schedule_kind: one of :data:`SCHEDULE_KINDS`.
        stage: stage index (a *global* stage for ``interleaved``).
        num_stages: stage count ``p`` (``chunks * devices`` for
            ``interleaved``).
        num_micro_batches: micro-batches ``n`` per iteration (per pipeline
            replica pair for Chimera, which splits them over directions).
        num_devices: pipeline group size; required for ``interleaved``.
    """
    p, n, s = num_stages, num_micro_batches, stage
    if not 0 <= s < p:
        raise ValueError(f"stage {s} out of range for {p} stages")
    if n < 1:
        raise ValueError(f"need at least one micro-batch, got {n}")
    if schedule_kind in ("1f1b", "2bp", "overlap"):
        return min(n, p - s)
    if schedule_kind == "gpipe":
        return n
    if schedule_kind in ("chimera", "chimerad"):
        weight = 2 if schedule_kind == "chimerad" else 1
        entities_per_pipe = -(-n // (2 * weight))  # ceil: stays an upper bound
        return weight * min(entities_per_pipe, p - s, max(1, p // 2))
    if schedule_kind == "interleaved":
        if num_devices is None or num_devices < 1 or p % num_devices:
            raise ValueError(
                f"interleaved needs num_devices dividing {p} stages, "
                f"got {num_devices}"
            )
        chunks = p // num_devices
        return _interleaved_stage_peaks(num_devices, chunks, n)[s]
    raise ValueError(
        f"unknown schedule kind {schedule_kind!r}; pick from {SCHEDULE_KINDS}"
    )


@dataclass(frozen=True)
class StageMemory:
    """Memory breakdown of one pipeline stage, in bytes."""

    static_bytes: float
    buffer_bytes: float
    saved_per_microbatch: float
    in_flight_microbatches: int

    @property
    def total_bytes(self) -> float:
        return (
            self.static_bytes
            + self.buffer_bytes
            + self.saved_per_microbatch * self.in_flight_microbatches
        )

    def fits(self, capacity_bytes: float) -> bool:
        return self.total_bytes <= capacity_bytes


@dataclass(frozen=True)
class MemoryModel:
    """Evaluates the three-part memory model for a fixed workload.

    ``schedule_kind`` selects the in-flight accounting rule (default
    ``"1f1b"``, the paper's schedule). Interleaved layouts replicate the
    model over ``chunks * p`` global stages and should query
    :func:`in_flight_micro_batches` directly with the global stage count.
    """

    spec: ModelSpec
    train: TrainingConfig
    parallel: ParallelConfig
    schedule_kind: str = "1f1b"

    def with_schedule(self, schedule_kind: str) -> "MemoryModel":
        """A copy of this model accounting for ``schedule_kind``."""
        if schedule_kind not in SCHEDULE_KINDS:
            raise ValueError(
                f"unknown schedule kind {schedule_kind!r}; "
                f"pick from {SCHEDULE_KINDS}"
            )
        return dataclasses.replace(self, schedule_kind=schedule_kind)

    @property
    def num_micro_batches(self) -> int:
        return self.train.num_micro_batches(self.parallel)

    def unit_saved_bytes(self, unit: ComputationUnit) -> float:
        """The paper's ``Mem(U)``: bytes held when ``unit`` is saved."""
        return unit.saved_elements * self.train.bytes_per_value

    def static_bytes(self, layers: Sequence[Layer]) -> float:
        """Parameters + gradients + optimizer state for a stage's layers.

        ZeRO sharding (``train.zero_stage``) divides successive terms by the
        data-parallel size: stage 1 shards the optimizer state and master
        weights (the paper's setting), stage 2 also gradients, stage 3 also
        the fp16 parameters.
        """
        params = sum(layer.params for layer in layers)
        t = self.parallel.tensor_parallel
        d = self.parallel.data_parallel
        zero = self.train.zero_stage
        param_bytes = 2.0 * params / t / (d if zero >= 3 else 1)
        grad_bytes = 2.0 * params / t / (d if zero >= 2 else 1)
        state_divisor = t * (d if zero >= 1 else 1)
        optimizer_bytes = self.train.optimizer_state_factor * params / state_divisor
        master_bytes = self.train.master_weight_bytes * params / state_divisor
        return param_bytes + grad_bytes + optimizer_bytes + master_bytes

    def recompute_buffer_bytes(self) -> float:
        """Upper bound on the backward re-materialisation buffer.

        One decoder layer's intermediates: the Attention plus Feed-Forward
        units that are *not* restricted to always-saved (those are counted
        in the saved intermediates instead).
        """
        buffer = 0.0
        for kind in (LayerKind.ATTENTION, LayerKind.FFN):
            for unit in units_for_layer(
                kind, self.spec, self.train, self.parallel.tensor_parallel
            ):
                if not unit.always_saved:
                    buffer += self.unit_saved_bytes(unit)
        return buffer

    def saved_bytes_per_microbatch(
        self,
        layers: Sequence[Layer],
        saved_units: Iterable[ComputationUnit],
    ) -> float:
        """Intermediates one micro-batch pins in this stage.

        ``saved_units`` are the units (across all the stage's layers) whose
        outputs are preserved — always-saved units must be included by the
        caller.
        """
        del layers  # sizes already baked into the units
        return sum(self.unit_saved_bytes(unit) for unit in saved_units)

    def in_flight(self, stage: int) -> int:
        """Micro-batches stage ``s`` keeps live under ``schedule_kind``.

        ``min(n, p - s)`` for the default 1F1B — the unclamped ``p - s``
        overstated memory whenever ``n < p``, rejecting plans the schedule
        actually fits (and the converse rule, had it under-stated, would
        have admitted OOMs).
        """
        return in_flight_micro_batches(
            self.schedule_kind,
            stage,
            self.parallel.pipeline_parallel,
            self.num_micro_batches,
            num_devices=self.parallel.pipeline_parallel,
        )

    def stage_memory(
        self,
        stage: int,
        layers: Sequence[Layer],
        saved_units: Iterable[ComputationUnit],
    ) -> StageMemory:
        """Full memory breakdown of stage ``s`` holding ``layers``."""
        return StageMemory(
            static_bytes=self.static_bytes(layers),
            buffer_bytes=self.recompute_buffer_bytes(),
            saved_per_microbatch=self.saved_bytes_per_microbatch(layers, saved_units),
            in_flight_microbatches=self.in_flight(stage),
        )

    def intermediate_budget(
        self, stage: int, layers: Sequence[Layer], capacity_bytes: float
    ) -> float:
        """Memory left for saved intermediates after static state and buffer.

        This is the knapsack capacity ``M`` of Section 4.3 (before the
        in-flight multiplier of :meth:`in_flight`, which the DP applies to
        item weights).
        """
        return capacity_bytes - self.static_bytes(layers) - self.recompute_buffer_bytes()
