"""Performance model: per-unit times and per-stage memory.

The paper's search engine profiles each computation unit's forward and
backward time with 5–10 preliminary iterations on the real cluster
(Section 6). Offline, this package substitutes an analytic roofline model:
FLOPs and moved bytes per unit (from :mod:`repro.model.units`) against the
device's achieved throughput and bandwidth (from
:mod:`repro.hardware.device`). The DP algorithms only ever see the resulting
``(time_f, time_b, mem)`` scalars, so they run the identical code path they
would with measured numbers.
"""

from repro.profiler.memory import MemoryModel, StageMemory
from repro.profiler.profiler import LayerProfile, Profiler, UnitProfile
from repro.profiler.timing import op_time, unit_backward_time, unit_forward_time

__all__ = [
    "LayerProfile",
    "MemoryModel",
    "Profiler",
    "StageMemory",
    "UnitProfile",
    "op_time",
    "unit_backward_time",
    "unit_forward_time",
]
