"""Figure 7: end-to-end performance and weak scaling on cluster B.

GPT-3 at (t, p) = (8, 8) on 256 and 2048 NPUs; Llama 2 at (t, p) = (4, 8)
on 128 and 1024 NPUs; sequence length 4096 with the global batch scaled
linearly with the data-parallel size (weak scaling).
"""

from __future__ import annotations

from repro.config import ParallelConfig
from repro.experiments.common import ExperimentResult
from repro.experiments.end_to_end import end_to_end_cluster_b
from repro.model.spec import gpt3_175b, llama2_70b


def _configs(fast: bool):
    llama = llama2_70b()
    gpt = gpt3_175b()
    configs = [
        (llama, 128, ParallelConfig(4, 8, 4), 256),
        (llama, 1024, ParallelConfig(4, 8, 32), 1024),
        (gpt, 256, ParallelConfig(8, 8, 4), 256),
        (gpt, 2048, ParallelConfig(8, 8, 32), 2048),
    ]
    if fast:
        return [configs[0], configs[2]]
    return configs


def run(fast: bool = False) -> ExperimentResult:
    return end_to_end_cluster_b("figure7", _configs(fast), fast)
