"""Figure 4: the computation-unit division of transformer layers.

The paper's Figure 4 shows how the Attention and Feed-Forward layers split
into computation units (Q/K/V projections, FlashAttention core, the
always-saved closing GEMMs, ...). This experiment prints the split as the
cost model sees it for GPT-3 — unit names, per-unit forward/backward time,
the bytes saving the unit pins per micro-batch, and the save-or-recompute
eligibility — making the knapsack's item list inspectable.
"""

from __future__ import annotations

from repro.config import ParallelConfig, TrainingConfig
from repro.core.search import PlannerContext
from repro.experiments.common import ExperimentResult
from repro.hardware.cluster import cluster_a
from repro.model.layers import LayerKind
from repro.model.spec import gpt3_175b
from repro.model.tensors import mib

PARALLEL = ParallelConfig(8, 8, 1)
TRAIN = TrainingConfig(sequence_length=4096, global_batch_size=8)


def run(fast: bool = False) -> ExperimentResult:
    del fast
    ctx = PlannerContext(cluster_a(), gpt3_175b(), TRAIN, PARALLEL)
    result = ExperimentResult(
        name="figure4",
        title="Computation-unit division (GPT-3, seq 4096, t=8)",
        headers=[
            "layer", "unit", "fwd (ms)", "bwd (ms)", "Mem(U) (MiB)",
            "disposition",
        ],
    )
    for kind in (LayerKind.ATTENTION, LayerKind.FFN, LayerKind.EMBEDDING, LayerKind.HEAD):
        profile = ctx.profiler.profile_layer(kind)
        for unit in profile.units:
            result.add_row(
                str(kind),
                unit.name,
                f"{unit.time_forward * 1e3:.3f}",
                f"{unit.time_backward * 1e3:.3f}",
                f"{mib(unit.saved_bytes):.1f}",
                "always saved" if unit.always_saved else "knapsack choice",
            )
    result.add_note(
        "the closing GEMMs (attn.out, ffn.out) are restricted to always "
        "saved so the recompute buffer never exceeds one decoder layer "
        "(Section 4.2); every other unit is an item in the Section 4.3 "
        "knapsack."
    )
    result.add_note(
        "expected shape: ffn.in/ffn.act pin the most memory per unit; "
        "attn.core is compute-heavy but (with FlashAttention) pins little "
        "beyond its output — the trade-off the fine granularity exploits."
    )
    return result
