"""Self-validation battery: ``adapipe validate``.

Runs the repository's load-bearing cross-checks end-to-end in one command —
the consistency arguments that make the simulator-based reproduction
trustworthy. Each check pits two independent implementations of the same
quantity against each other:

1. knapsack DP vs exponential brute force (integer *and* fractional
   weights — the DP must stay budget-feasible, never just value-close);
2. 1F1B phase model vs event-driven simulator (homogeneous exactness);
3. modelled per-stage memory vs simulated activation peaks;
4. pipelined 1F1B executor vs monolithic training (losses and gradients);
5. unit-granular recomputation vs save-everything (gradient identity);
6. the eager (tape) engine vs the manual-backward engine;
7. plan JSON round-trip fidelity;
8. schedule-aware memory audit — modelled in-flight counts and device
   peaks vs the simulator's, across the schedule zoo (conservative
   everywhere, exact for the 1F1B family including 2BP and overlapped
   recomputation);
9. the new schedule families — 2BP split backward and overlapped
   recomputation: tri-engine bit-equality (compiled / reference /
   batched), 2BP strictly shrinking the bubble at equal peak memory,
   and fused-vs-explicit overlap lowering equivalence;
10. adalint — the domain-aware static analysis pass over the installed
    package (digest coverage, determinism, unit consistency, frozen
    mutation, registry completeness, transform purity, float op order)
    must report zero unsuppressed findings;
11. heterogeneous round trip — a homogeneous device pool must reproduce
    the poolless planner's plan bit-identically, and an elastic
    warm-started replan after a device leaves must select the same plan
    as a cold sweep on the shrunken pool while actually reusing cached
    stage evaluations;
12. static-analysis contracts — the interprocedural lint families must
    still *detect*: synthesized trees with an unregistered schedule
    kind, a digest omission two calls deep, an argument-mutating
    transform, and a reassociated lowering expression each produce
    exactly the planted finding (and the deep-delegating-but-complete
    digest tree stays clean).
"""

from __future__ import annotations


from typing import Callable, List, Tuple

import numpy as np

CheckResult = Tuple[str, bool, str]


def _check_knapsack() -> CheckResult:
    from repro.core.recompute_dp import (
        UnitItem,
        brute_force_recompute,
        optimize_stage_recompute,
    )

    rng = np.random.default_rng(11)
    worst = 0.0
    for _ in range(25):
        items = [
            UnitItem(
                name=f"u{i}",
                value=float(rng.uniform(0.1, 5.0)),
                weight_bytes=float(rng.integers(1, 40)),
                copies=int(rng.integers(1, 3)),
            )
            for i in range(4)
        ]
        budget = float(rng.integers(0, 150))
        result = optimize_stage_recompute(items, budget, in_flight=2)
        _, best = brute_force_recompute(items, budget, 2)
        worst = max(worst, abs(result.saved_value - best))
    if worst >= 1e-9:
        return ("knapsack vs brute force", False, f"max gap {worst:.2e}")

    # Fractional weights/budgets: quantization may legitimately leave value
    # on the table, but the returned save set must stay budget-feasible
    # (true bytes, not rounded ones) and never beat the true optimum.
    infeasible = 0
    for _ in range(25):
        items = [
            UnitItem(
                name=f"u{i}",
                value=float(rng.uniform(0.1, 5.0)),
                weight_bytes=float(rng.uniform(0.5, 40.0)),
                copies=int(rng.integers(1, 3)),
            )
            for i in range(4)
        ]
        budget = float(rng.uniform(0.0, 150.0))
        in_flight = int(rng.integers(1, 4))
        result = optimize_stage_recompute(items, budget, in_flight)
        _, best = brute_force_recompute(items, budget, in_flight)
        weight_of = {item.name: item.weight_bytes for item in items}
        used = sum(
            weight_of[name] * count * in_flight
            for name, count in result.saved_counts.items()
        )
        if used > budget + 1e-9 or result.saved_value > best + 1e-9:
            infeasible += 1
    ok = infeasible == 0
    detail = f"max gap {worst:.2e}; fractional violations {infeasible}"
    return ("knapsack vs brute force", ok, detail)


def _check_phase_model() -> CheckResult:
    from repro.pipeline.batched import batched_simulator
    from repro.pipeline.schedules import one_f_one_b_schedule
    from repro.pipeline.simulator import simulate
    from repro.pipeline.tasks import StageCosts

    worst = 0.0
    batched_exact = True
    for p, n, f, b in ((2, 4, 1.0, 2.0), (4, 12, 0.7, 1.4), (8, 8, 1.0, 2.5)):
        costs = [StageCosts(forward=f, backward=b) for _ in range(p)]
        schedule = one_f_one_b_schedule(costs, n)
        simulated = simulate(schedule).iteration_time
        sim = batched_simulator(schedule)
        batched = float(sim.iteration_times(sim.raw_durations)[0])
        batched_exact = batched_exact and batched == simulated
        modeled = (n + p - 1) * (f + b)
        worst = max(worst, abs(simulated - modeled) / modeled)
    ok = worst < 1e-9 and batched_exact
    detail = f"max rel gap {worst:.2e}, batched sweep " + (
        "bit-exact" if batched_exact else "MISMATCH"
    )
    return ("1F1B phase model vs simulator", ok, detail)


def _check_memory_model() -> CheckResult:
    from repro.pipeline.schedules import one_f_one_b_schedule
    from repro.pipeline.simulator import simulate
    from repro.pipeline.tasks import StageCosts

    p, n = 5, 9
    costs = [
        StageCosts(forward=1.0, backward=2.0, activation_bytes=1.0)
        for _ in range(p)
    ]
    peaks = simulate(one_f_one_b_schedule(costs, n)).device_peak_bytes
    expected = [float(min(p - s, n)) for s in range(p)]
    ok = peaks == expected
    return ("1F1B in-flight memory min(n, p - s)", ok, f"peaks {peaks}")


def _training_fixture():
    from repro.config import ParallelConfig, TrainingConfig
    from repro.core.search import PlannerContext, plan_adapipe
    from repro.hardware.cluster import cluster_a
    from repro.model.spec import tiny_gpt
    from repro.training.modules import build_model

    spec = tiny_gpt(num_layers=3, hidden_size=32, vocab_size=40)
    train = TrainingConfig(
        sequence_length=8,
        global_batch_size=4,
        micro_batch_size=1,
        sequence_parallel=False,
        flash_attention=False,
    )
    ctx = PlannerContext(
        cluster_a(1),
        spec,
        train,
        ParallelConfig(1, 2, 1),
        memory_limit_bytes=8 * 1024**2,
    )
    plan = plan_adapipe(ctx)
    rng = np.random.default_rng(0)
    tokens = rng.integers(0, 40, size=(4, 8))
    targets = rng.integers(0, 40, size=(4, 8))
    return spec, plan, tokens, targets, build_model


def _planning_fixture():
    """A small planned workload for the differential schedule checks.

    Four layers so an interleaved layout with two chunks per device still
    has one layer per global stage.
    """
    from repro.config import ParallelConfig, TrainingConfig
    from repro.core.search import PlannerContext, plan_adapipe
    from repro.hardware.cluster import cluster_a
    from repro.model.spec import tiny_gpt

    spec = tiny_gpt(num_layers=4, hidden_size=32, vocab_size=40)
    train = TrainingConfig(
        sequence_length=8,
        global_batch_size=4,
        micro_batch_size=1,
        sequence_parallel=False,
        flash_attention=False,
    )
    ctx = PlannerContext(
        cluster_a(1),
        spec,
        train,
        ParallelConfig(1, 2, 1),
        memory_limit_bytes=8 * 1024**2,
    )
    return ctx, plan_adapipe(ctx)


def _check_pipeline_executor() -> CheckResult:
    from repro.training.pipeline_exec import PipelineExecutor

    spec, plan, tokens, targets, build_model = _training_fixture()
    reference = build_model(spec, seed=9)
    ref_loss = reference.loss_and_grad(tokens, targets)
    pipelined = build_model(spec, seed=9)
    stats = PipelineExecutor(pipelined, plan).train_step(tokens, targets)
    gap = max(
        np.abs(rp.grad - pp.grad).max()
        for (_, rp), (_, pp) in zip(
            reference.named_parameters(), pipelined.named_parameters()
        )
        if rp.grad is not None
    )
    ok = abs(stats.loss - ref_loss) < 1e-12 and gap < 1e-11
    return ("pipelined vs monolithic training", ok, f"grad gap {gap:.2e}")


def _check_recompute_identity() -> CheckResult:
    spec, _, tokens, targets, build_model = _training_fixture()
    model = build_model(spec, seed=4)
    loss_all = model.loss_and_grad(tokens, targets)
    grads = {
        n: p.grad.copy() for n, p in model.named_parameters() if p.grad is not None
    }
    model.zero_grad()
    loss_ckpt = model.loss_and_grad(tokens, targets, [set() for _ in model.layers])
    identical = loss_all == loss_ckpt and all(
        np.array_equal(grads[n], p.grad)
        for n, p in model.named_parameters()
        if p.grad is not None
    )
    return ("recompute gradient identity", identical, "bit-exact" if identical else "mismatch")


def _check_eager_engine() -> CheckResult:
    from repro.training.eager import EagerTransformer

    spec, _, tokens, targets, build_model = _training_fixture()
    model = build_model(spec, seed=2)
    manual_loss = model.loss_and_grad(tokens, targets)
    eager = EagerTransformer(model)
    loss = eager.loss(tokens, targets)
    loss.backward()
    gap = max(
        np.abs(p.grad - eager.params[n].grad).max()
        for n, p in model.named_parameters()
        if p.grad is not None
    )
    ok = abs(float(loss.data) - manual_loss) < 1e-12 and gap < 1e-11
    return ("eager (tape) vs manual engine", ok, f"grad gap {gap:.2e}")


def _check_plan_roundtrip() -> CheckResult:
    from repro.core.serialize import plan_from_dict, plan_to_dict

    _, plan, _, _, _ = _training_fixture()
    restored = plan_from_dict(plan_to_dict(plan))
    ok = (
        restored.layer_counts() == plan.layer_counts()
        and restored.saved_unit_counts() == plan.saved_unit_counts()
        and restored.parallel == plan.parallel
    )
    return ("plan JSON round-trip", ok, "lossless" if ok else "divergent")


def _check_memory_audit() -> CheckResult:
    from repro.baselines.extensions import plan_interleaved
    from repro.core.evaluate import build_schedule_for_plan
    from repro.core.strategies import RecomputePolicy
    from repro.pipeline.memory_audit import audit_schedule_memory

    ctx, plan = _planning_fixture()
    kinds = []
    reports = []
    for kind in ("1f1b", "2bp", "overlap", "gpipe", "chimera", "chimerad"):
        try:
            schedule = build_schedule_for_plan(plan, ctx.cluster, kind)
        except ValueError:
            continue  # e.g. micro-batches don't split for ChimeraD
        kinds.append(kind)
        reports.append(audit_schedule_memory(schedule, kind))
    interleaved = plan_interleaved(ctx, RecomputePolicy.SELECTIVE, chunks=2)
    if interleaved.feasible:
        kinds.append("interleaved")
        reports.append(
            audit_schedule_memory(
                build_schedule_for_plan(interleaved, ctx.cluster, "interleaved"),
                "interleaved",
            )
        )
    under = [k for k, r in zip(kinds, reports) if not r.conservative]
    exact_kinds = ("1f1b", "2bp", "overlap")
    inexact = [
        k
        for k, r in zip(kinds, reports)
        if k in exact_kinds
        and (r.max_abs_rel_gap > 1e-6 or any(not s.exact for s in r.stages))
    ]
    missing = [k for k in exact_kinds if k not in kinds]
    ok = not under and not inexact and not missing and len(kinds) >= 6
    detail = (
        f"{len(kinds)} schedules conservative, 1F1B family exact"
        if ok
        else (
            f"under-counting on {under or 'n/a'}; "
            f"inexact on {inexact or 'n/a'}; missing {missing or 'n/a'}"
        )
    )
    return ("memory model vs simulator audit", ok, detail)


def _check_schedule_families() -> CheckResult:
    """Differential check of the 2BP and overlapped-recompute families.

    On a pinned p=4 fixture: all three engines must agree bit-for-bit on
    every family; 2BP must strictly shrink the pipeline bubble vs 1F1B at
    identical per-device activation peaks; and the fused ``Task.overlap``
    lowering must agree with explicit ``RECOMPUTE`` tasks to float
    round-off.
    """
    from repro.pipeline.batched import batched_simulator
    from repro.pipeline.schedules import (
        one_f_one_b_2bp,
        one_f_one_b_overlapped,
        one_f_one_b_schedule,
    )
    from repro.pipeline.simulator import simulate, simulate_reference
    from repro.pipeline.tasks import StageCosts

    p, n, hop = 4, 8, 0.1
    costs = [
        StageCosts(forward=1.0, backward=2.0, activation_bytes=1.0)
        for _ in range(p)
    ]
    baseline = one_f_one_b_schedule(costs, n, hop_time=hop)
    twobp = one_f_one_b_2bp(costs, n, hop_time=hop)
    explicit = one_f_one_b_overlapped(costs, n, hop_time=hop)
    fused = one_f_one_b_overlapped(costs, n, hop_time=hop, fused=True)

    for schedule in (twobp, explicit, fused):
        compiled = simulate(schedule)
        reference = simulate_reference(schedule)
        sim = batched_simulator(schedule)
        batched = float(sim.iteration_times(sim.raw_durations)[0])
        if not (
            compiled.iteration_time == reference.iteration_time == batched
            and compiled.device_peak_bytes == reference.device_peak_bytes
        ):
            return (
                "2BP / overlapped schedule families",
                False,
                f"engine mismatch on {schedule.name}",
            )

    base = simulate(baseline)
    split = simulate(twobp)
    busy = [sum(t.duration for t in tasks) for tasks in baseline.device_tasks]
    base_bubble = base.iteration_time * p - sum(busy)
    split_bubble = split.iteration_time * p - sum(busy)
    if split.device_peak_bytes != base.device_peak_bytes:
        return (
            "2BP / overlapped schedule families",
            False,
            f"2BP peaks {split.device_peak_bytes} != 1F1B {base.device_peak_bytes}",
        )
    if not split_bubble < base_bubble:
        return (
            "2BP / overlapped schedule families",
            False,
            f"2BP bubble {split_bubble:.3f} not < 1F1B {base_bubble:.3f}",
        )
    fuse_gap = abs(
        simulate(explicit).iteration_time - simulate(fused).iteration_time
    )
    ok = fuse_gap < 1e-9
    detail = (
        f"tri-engine bit-exact; bubble {base_bubble:.1f} -> {split_bubble:.1f} "
        f"at equal peaks; fused/explicit gap {fuse_gap:.1e}"
    )
    return ("2BP / overlapped schedule families", ok, detail)


def _check_adalint() -> CheckResult:
    from pathlib import Path

    import repro
    from repro.analysis import run_lint

    package_root = Path(repro.__file__).parent
    result = run_lint([str(package_root)])
    detail = (
        f"{result.files_scanned} files, {len(result.findings)} findings, "
        f"{len(result.suppressed)} suppressed"
    )
    return ("adalint static analysis", result.ok, detail)


def _check_heterogeneous() -> CheckResult:
    """Placement search + elastic replanning round trip (check 11)."""
    from repro.config import TrainingConfig
    from repro.core.isomorphism import StageEvalCache
    from repro.core.replan import pool_without_rank, replan
    from repro.core.serialize import plan_signature
    from repro.core.sweep import SweepConfig, run_sweep
    from repro.hardware.cluster import cluster_a
    from repro.hardware.device import derated
    from repro.model.spec import tiny_gpt

    spec = tiny_gpt(num_layers=4, hidden_size=32, vocab_size=40)
    train = TrainingConfig(
        sequence_length=8,
        global_batch_size=4,
        micro_batch_size=1,
        sequence_parallel=False,
        flash_attention=False,
    )
    base = cluster_a(1)
    limit = 8 * 1024**2
    config = SweepConfig(workers=1)

    # Homogeneous pool must be invisible: bit-identical to no pool.
    plain = run_sweep(base, spec, train, 2, config=config, memory_limit_bytes=limit)
    pooled = run_sweep(
        base.with_device_pool((base.device, base.device)),
        spec,
        train,
        2,
        config=config,
        memory_limit_bytes=limit,
    )
    if plan_signature(plain.best) != plan_signature(pooled.best):
        return ("heterogeneous round trip", False, "homogeneous pool diverges")

    # Elastic round trip: cold pool search, derated rank leaves, warm
    # replan must equal a cold sweep on the survivors while reusing evals.
    pool = (base.device, derated(base.device, 1.3), base.device)
    cluster = base.with_device_pool(pool)
    cache = StageEvalCache()
    cold = run_sweep(
        cluster,
        spec,
        train,
        3,
        config=config,
        eval_cache=cache,
        memory_limit_bytes=limit,
    )
    shrunken = pool_without_rank(cluster, 1)
    warm = replan(
        cold.best, shrunken, spec, eval_cache=cache, memory_limit_bytes=limit
    )
    cold_again = run_sweep(
        shrunken,
        spec,
        train,
        2,
        config=config,
        eval_cache=StageEvalCache(),
        memory_limit_bytes=limit,
    )
    identical = plan_signature(warm.best) == plan_signature(cold_again.best)
    ok = identical and warm.evals_reused > 0
    detail = (
        f"warm == cold, reused {warm.evals_reused} evals "
        f"({warm.reuse_rate:.0%})"
        if ok
        else ("replan diverges from cold sweep" if not identical else "no reuse")
    )
    return ("heterogeneous round trip", ok, detail)


def _check_static_contracts() -> CheckResult:
    """Detection power of the interprocedural lint families (check 12).

    Check 10 proves the shipped tree is *clean*; this check proves the
    new rule families still *fire* — each invariant is broken in a
    synthesized mini-tree and the corresponding rule must report exactly
    the planted violation, plus one deep-delegation tree that must come
    out clean (the v1 name-matcher would have false-positived on it).
    """
    import tempfile
    from pathlib import Path

    from repro.analysis import run_lint
    from repro.analysis.rules import (
        DigestCoverageRule,
        FloatOrderContract,
        FloatOrderRule,
        FloatSite,
        PurityContract,
        RegistryCompletenessRule,
        TransformPurityRule,
    )

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)

        # 1. Registry: "wavefront" declared but unregistered at exactly
        # one site (the schedule builder).
        kinds_all = '"1f1b", "2bp", "overlap", "gpipe", "chimera", "chimerad", "interleaved", "wavefront"'
        kinds_no_wave = kinds_all.replace(', "wavefront"', "")
        kinds_no_inter = kinds_all.replace('"interleaved", ', "")
        tree = {
            "profiler/memory.py": (
                f"SCHEDULE_KINDS = ({kinds_all})\n\n\n"
                f"def in_flight_micro_batches(kind):\n    return ({kinds_all})\n"
            ),
            "core/evaluate.py": (
                f"def build_schedule_for_plan(kind):\n    return ({kinds_no_wave})\n"
            ),
            "pipeline/memory_audit.py": (
                f"def audit_plan_over_schedules(kinds=({kinds_no_inter})):\n"
                "    return kinds\n"
            ),
            "experiments/cli.py": (
                f"def _build_parser():\n    return ({kinds_all})\n"
            ),
            "experiments/validate.py": (
                f"def _check_memory_audit(kinds=({kinds_no_inter})):\n"
                "    return kinds\n"
            ),
        }
        for relpath, source in tree.items():
            path = root / "registry" / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source)
        result = run_lint(
            [root / "registry"], rules=[RegistryCompletenessRule()]
        )
        planted = [
            f for f in result.findings
            if "wavefront" in f.message and "build_schedule_for_plan" in f.message
        ]
        if len(result.findings) != 1 or len(planted) != 1:
            failures.append(
                f"registry probe: {[f.message for f in result.findings]}"
            )

        # 2. Digest coverage v2: link_hops dropped two calls deep must
        # fire; the sibling tree reading it two calls deep must be clean
        # (v1's single-function name match could not tell them apart).
        tasks_src = (
            "from dataclasses import dataclass\n"
            "from typing import Tuple\n\n\n"
            "@dataclass(frozen=True)\n"
            "class TaskKey:\n"
            "    stage: int\n\n\n"
            "@dataclass(frozen=True)\n"
            "class Task:\n"
            "    key: TaskKey\n"
            "    duration: float\n\n\n"
            "@dataclass(frozen=True)\n"
            "class Schedule:\n"
            "    name: str\n"
            "    num_micro_batches: int\n"
            "    hop_time: float\n"
            "    link_hops: Tuple[int, ...]\n"
            "    tasks: Tuple[Task, ...]\n"
        )

        def digest_src(read_link_hops: bool) -> str:
            link = (
                "    parts.append(tuple(schedule.link_hops))\n"
                if read_link_hops
                else ""
            )
            return (
                "from .tasks import Schedule, Task\n\n\n"
                "def _task_parts(task: Task):\n"
                "    return (task.key.stage, task.duration)\n\n\n"
                "def _schedule_parts(schedule: Schedule):\n"
                "    parts = [schedule.hop_time]\n"
                f"{link}"
                "    for task in schedule.tasks:\n"
                "        parts.append(_task_parts(task))\n"
                "    return tuple(parts)\n\n\n"
                "def schedule_digest(schedule: Schedule) -> str:\n"
                "    return str(hash(_schedule_parts(schedule)))\n"
            )

        for label, deep_read in (("omits", False), ("covers", True)):
            base = root / f"digest_{label}" / "pipeline"
            base.mkdir(parents=True, exist_ok=True)
            (base / "tasks.py").write_text(tasks_src)
            (base / "simulator.py").write_text(digest_src(deep_read))
            result = run_lint(
                [root / f"digest_{label}"], rules=[DigestCoverageRule()]
            )
            if deep_read:
                if not result.ok:
                    failures.append(
                        "digest deep-read probe not clean: "
                        f"{[f.message for f in result.findings]}"
                    )
            else:
                if [
                    "Schedule.link_hops" in f.message for f in result.findings
                ] != [True]:
                    failures.append(
                        "digest omission probe: "
                        f"{[f.message for f in result.findings]}"
                    )

        # 3. Purity: a transform mutating its argument one call deep.
        (root / "purity").mkdir()
        (root / "purity" / "transforms.py").write_text(
            "def _stamp(out, values):\n"
            "    out['values'] = values\n"
            "    return out\n\n\n"
            "def lower(spec, out):\n"
            "    return _stamp(out, [spec])\n"
        )
        purity_rule = TransformPurityRule(
            contracts=(
                PurityContract(anchor_path="transforms.py", roots=("lower",)),
            )
        )
        result = run_lint([root / "purity"], rules=[purity_rule])
        if ["arg-mutation" in f.message for f in result.findings] != [True]:
            failures.append(
                f"purity probe: {[f.message for f in result.findings]}"
            )

        # 4. Float order: vector side applies delays before the factor.
        (root / "floats").mkdir()
        (root / "floats" / "engines.py").write_text(
            "def scalar_lower(duration, factor, delay):\n"
            "    duration = duration * factor\n"
            "    duration = duration + delay\n"
            "    return duration\n\n\n"
            "def vector_lower(durations, factors, delays):\n"
            "    return (durations + delays) * factors\n"
        )
        float_rule = FloatOrderRule(
            contracts=(
                FloatOrderContract(
                    name="probe",
                    anchor_path="engines.py",
                    expected=("mul(dur, factor)", "add(dur, delay)"),
                    sites=(
                        FloatSite(
                            path="engines.py",
                            func="scalar_lower",
                            roles=(
                                ("duration", "dur"),
                                ("factor", "factor"),
                                ("delay", "delay"),
                            ),
                        ),
                        FloatSite(
                            path="engines.py",
                            func="vector_lower",
                            roles=(
                                ("durations", "dur"),
                                ("factors", "factor"),
                                ("delays", "delay"),
                            ),
                        ),
                    ),
                ),
            )
        )
        result = run_lint([root / "floats"], rules=[float_rule])
        if [
            "vector_lower" in f.message for f in result.findings
        ] != [True]:
            failures.append(
                f"float-order probe: {[f.message for f in result.findings]}"
            )

    ok = not failures
    detail = (
        "registry, digest-v2 (fire + deep-read clean), purity, float-order "
        "probes all detect"
        if ok
        else "; ".join(failures)
    )
    return ("static-analysis contracts", ok, detail)


CHECKS: List[Callable[[], CheckResult]] = [
    _check_knapsack,
    _check_phase_model,
    _check_memory_model,
    _check_pipeline_executor,
    _check_recompute_identity,
    _check_eager_engine,
    _check_plan_roundtrip,
    _check_memory_audit,
    _check_schedule_families,
    _check_adalint,
    _check_heterogeneous,
    _check_static_contracts,
]


def run_validation() -> List[CheckResult]:
    """Execute every cross-check; returns (name, passed, detail) triples."""
    return [check() for check in CHECKS]


def render_validation(results: List[CheckResult]) -> str:
    lines = []
    for name, passed, detail in results:
        status = "PASS" if passed else "FAIL"
        lines.append(f"[{status}] {name:36s} {detail}")
    failed = sum(1 for _, passed, _ in results if not passed)
    lines.append(
        f"{len(results) - failed}/{len(results)} consistency checks passed"
    )
    return "\n".join(lines)
