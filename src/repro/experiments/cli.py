"""Command-line interface.

* ``adapipe list`` — available experiments.
* ``adapipe run <experiment|all> [--fast]`` — regenerate paper artifacts.
* ``adapipe plan ...`` — run the search engine on a chosen model, cluster
  and workload; print the plan and optionally write it as JSON and
  simulate it. ``--device-pool`` plans a heterogeneous per-rank fleet
  with stage placement searched across the device classes.
* ``adapipe replan ...`` — elastic warm-start replan: re-search a changed
  device pool (leave/join/drift) reusing a surviving plan's persisted
  stage-evaluation cache.
* ``adapipe validate`` — the cross-implementation consistency battery.
* ``adapipe lint`` — adalint, the domain-aware static analysis pass
  (digest coverage, determinism, unit consistency, frozen mutation,
  registry completeness, transform purity, float-order divergence);
  text/JSON/SARIF reporters, ``--changed`` for git-scoped runs.
* ``adapipe audit ...`` — differential memory audit: the Section 4.2
  model's per-stage totals vs the simulator's measured peaks, across the
  schedule zoo.
* ``adapipe robustness ...`` — perturbation-ensemble evaluation of one
  plan: nominal vs mean/p95/worst iteration time plus per-device
  straggler criticality, optionally rendered as an SVG heat map.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.registry import EXPERIMENTS, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="adapipe",
        description="AdaPipe (ASPLOS 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    runner = sub.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument("experiment", help="experiment id, e.g. figure5, or 'all'")
    runner.add_argument(
        "--fast",
        action="store_true",
        help="smaller sweeps / fewer steps (seconds instead of minutes)",
    )
    runner.add_argument(
        "--svg-dir",
        metavar="DIR",
        help="also render the result as an SVG chart into DIR",
    )
    runner.add_argument(
        "--html",
        metavar="FILE",
        help="also assemble all results into a single-file HTML report",
    )

    planner = sub.add_parser("plan", help="search a plan for a configuration")
    planner.add_argument("--model", default="gpt3-175b",
                         help="model name (gpt3-175b, llama2-70b, bert-large)")
    planner.add_argument("--cluster", default="A", choices=["A", "B"],
                         help="hardware cluster")
    planner.add_argument("--devices", type=int, default=64,
                         help="accelerators to occupy")
    planner.add_argument("--seq", type=int, default=4096, help="sequence length")
    planner.add_argument("--batch", type=int, default=128, help="global batch size")
    planner.add_argument("--tp", type=int, help="tensor parallel size")
    planner.add_argument("--pp", type=int, help="pipeline parallel size")
    planner.add_argument("--dp", type=int, help="data parallel size")
    planner.add_argument("--method", default="AdaPipe",
                         help="planning method (see `adapipe list` methods)")
    planner.add_argument("--memory-limit-gib", type=float,
                         help="DP memory constraint in GiB (default: 92%% of device)")
    planner.add_argument("--output", help="write the plan as JSON to this path")
    planner.add_argument("--no-simulate", action="store_true",
                         help="skip the pipeline simulation")
    planner.add_argument(
        "--robust-objective", default="nominal",
        choices=["nominal", "mean", "p95", "worst"],
        help="rank feasible strategies by this perturbation-ensemble "
             "statistic instead of the nominal simulated time",
    )
    planner.add_argument("--robust-draws", type=int, default=8,
                         help="perturbation ensemble size per strategy")
    planner.add_argument("--robust-sigma", type=float, default=0.05,
                         help="lognormal per-task jitter sigma")
    planner.add_argument("--robust-seed", type=int, default=0,
                         help="jitter base seed")
    planner.add_argument(
        "--robust-device-factor", action="append", default=[],
        metavar="RANK=FACTOR",
        help="derate pipeline rank RANK by FACTOR (repeatable)",
    )
    planner.add_argument(
        "--sweep-workers", type=int, metavar="N",
        help="run the search through the sweep orchestrator with N worker "
             "processes (0 = one per CPU core); enables work-stealing "
             "shards, cache merge-back and incumbent-broadcast pruning",
    )
    planner.add_argument(
        "--sweep-checkpoint", metavar="FILE",
        help="write periodic frontier checkpoints to FILE so a killed "
             "sweep can resume via --sweep-resume FILE",
    )
    planner.add_argument(
        "--sweep-resume", metavar="FILE",
        help="resume the sweep from a checkpoint written by "
             "--sweep-checkpoint (re-plans only uncovered strategies)",
    )
    planner.add_argument(
        "--sweep-cache", metavar="FILE",
        help="persist the merged stage-evaluation cache to FILE and warm-"
             "start from it on later runs",
    )
    planner.add_argument(
        "--sweep-progress", action="store_true",
        help="stream best-so-far plans as the sweep's frontier advances",
    )
    planner.add_argument(
        "--device-pool", metavar="SPEC",
        help="heterogeneous per-rank device pool: comma-separated "
             "NAME[*SLOWDOWN][:COUNT] parts (presets: a100, ascend), e.g. "
             "'a100:2,a100*1.3,ascend'; fixes the pipeline depth to the "
             "pool size and searches stage placement across the classes",
    )

    replanner = sub.add_parser(
        "replan",
        help="elastic replan: warm-start the search on a changed cluster "
             "from a surviving plan + persisted evaluation cache",
    )
    replanner.add_argument("--plan", required=True, metavar="FILE",
                           help="surviving plan JSON (from `adapipe plan "
                                "--output`)")
    replanner.add_argument("--model", default="gpt3-175b",
                           help="model name the plan was searched for")
    replanner.add_argument("--cluster", default="A", choices=["A", "B"],
                           help="hardware cluster")
    replanner.add_argument(
        "--device-pool", required=True, metavar="SPEC",
        help="the NEW per-rank device pool after the elastic event "
             "(same syntax as `adapipe plan --device-pool`)",
    )
    replanner.add_argument(
        "--cache", metavar="FILE",
        help="persisted evaluation cache (see `adapipe plan --sweep-cache`); "
             "loaded for the warm start and rewritten with the new entries",
    )
    replanner.add_argument("--devices", type=int,
                           help="total accelerators (default: keep the "
                                "plan's per-rank device count times the "
                                "new pool size)")
    replanner.add_argument("--memory-limit-gib", type=float,
                           help="DP memory constraint in GiB (default: 92%% "
                                "of each device)")
    replanner.add_argument("--output", metavar="FILE",
                           help="write the replanned best plan as JSON")

    artifact = sub.add_parser(
        "artifact",
        help="run the artifact-style workflow (global_test.sh equivalent)",
    )
    artifact.add_argument("--output-dir", default="artifact_results")
    artifact.add_argument("--fast", action="store_true",
                          help="first workload and strategy per model only")
    artifact.add_argument("--collect-only", action="store_true",
                          help="summarise an existing run (collect_result.py)")

    sub.add_parser(
        "validate",
        help="run the cross-implementation consistency battery",
    )

    lint = sub.add_parser(
        "lint",
        help="adalint: domain-aware static analysis (digest coverage, "
             "determinism, unit consistency, frozen mutation, registry "
             "completeness, transform purity, float op order)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyse (default: src)",
    )
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text", help="stdout rendering")
    lint.add_argument(
        "--output", metavar="FILE",
        help="also write the full JSON report to FILE (CI artifact)",
    )
    lint.add_argument(
        "--sarif", metavar="FILE",
        help="also write a SARIF 2.1.0 report to FILE (GitHub code "
             "scanning upload)",
    )
    lint.add_argument(
        "--changed", action="store_true",
        help="lint only files changed vs git HEAD (plus untracked), "
             "scoped to the given paths; relpaths and baselines stay "
             "rooted as in a full run",
    )
    lint.add_argument(
        "--baseline", metavar="FILE",
        help="JSON report whose findings are accepted as pre-existing",
    )
    lint.add_argument(
        "--write-baseline", metavar="FILE",
        help="write the current findings as a baseline file and exit 0",
    )
    lint.add_argument("--list-rules", action="store_true",
                      help="print the registered rules and exit")

    audit = sub.add_parser(
        "audit",
        help="differential memory audit: Section 4.2 model vs simulator",
    )
    audit.add_argument("--model", default="bert-large",
                       help="model name (gpt3-175b, llama2-70b, bert-large)")
    audit.add_argument("--cluster", default="A", choices=["A", "B"],
                       help="hardware cluster")
    audit.add_argument("--seq", type=int, default=512, help="sequence length")
    audit.add_argument("--batch", type=int, default=16, help="global batch size")
    audit.add_argument("--tp", type=int, default=1, help="tensor parallel size")
    audit.add_argument("--pp", type=int, default=4, help="pipeline parallel size")
    audit.add_argument("--dp", type=int, default=1, help="data parallel size")
    audit.add_argument("--memory-limit-gib", type=float,
                       help="memory constraint in GiB (default: 92%% of device)")
    audit.add_argument(
        "--schedules", nargs="+",
        default=["1f1b", "2bp", "overlap", "gpipe", "chimera", "chimerad",
                 "interleaved"],
        help="schedule kinds to audit the plan under",
    )
    audit.add_argument("--chunks", type=int, default=2,
                       help="chunks per device for the interleaved audit")
    audit.add_argument("--verbose", action="store_true",
                       help="print the full per-stage discrepancy tables")

    robust = sub.add_parser(
        "robustness",
        help="perturbation-ensemble statistics and straggler criticality "
             "for one planned configuration",
    )
    robust.add_argument("--model", default="gpt3-175b",
                        help="model name (gpt3-175b, llama2-70b, bert-large)")
    robust.add_argument("--cluster", default="A", choices=["A", "B"],
                        help="hardware cluster")
    robust.add_argument("--seq", type=int, default=4096, help="sequence length")
    robust.add_argument("--batch", type=int, default=128,
                        help="global batch size")
    robust.add_argument("--tp", type=int, default=8, help="tensor parallel size")
    robust.add_argument("--pp", type=int, default=8, help="pipeline parallel size")
    robust.add_argument("--dp", type=int, default=1, help="data parallel size")
    robust.add_argument("--method", default="AdaPipe",
                        help="planning method (see `adapipe list` methods)")
    robust.add_argument("--memory-limit-gib", type=float,
                        help="memory constraint in GiB (default: 92%% of device)")
    robust.add_argument(
        "--schedule", default="1f1b",
        choices=["1f1b", "2bp", "overlap", "gpipe", "chimera", "chimerad",
                 "interleaved"],
        help="schedule to execute the plan under",
    )
    robust.add_argument("--draws", type=int, default=16,
                        help="perturbation ensemble size")
    robust.add_argument(
        "--engine", default=None,
        choices=["batched", "compiled", "reference"],
        help="ensemble execution path: the batched vectorized sweep "
             "(default) or a scalar per-draw oracle engine",
    )
    robust.add_argument("--sigma", type=float, default=0.05,
                        help="lognormal per-task jitter sigma")
    robust.add_argument("--seed", type=int, default=0, help="jitter base seed")
    robust.add_argument(
        "--device-factor", action="append", default=[],
        metavar="RANK=FACTOR",
        help="derate pipeline rank RANK by FACTOR (repeatable)",
    )
    robust.add_argument("--json", metavar="FILE",
                        help="write the report as JSON to FILE")
    robust.add_argument(
        "--svg", metavar="FILE",
        help="write a per-device factor/criticality heat map to FILE",
    )
    return parser


def _parse_device_factors(pairs, num_ranks: int):
    """``RANK=FACTOR`` strings -> a full per-rank factor tuple (or None)."""
    if not pairs:
        return None
    factors = [1.0] * num_ranks
    for pair in pairs:
        rank_text, _, factor_text = pair.partition("=")
        try:
            rank, factor = int(rank_text), float(factor_text)
        except ValueError:
            raise SystemExit(
                f"error: --device-factor expects RANK=FACTOR, got {pair!r}"
            )
        if not 0 <= rank < num_ranks:
            raise SystemExit(
                f"error: rank {rank} out of range for {num_ranks} pipeline ranks"
            )
        factors[rank] = factor
    return tuple(factors)


def _parse_device_pool(text: str):
    """``NAME[*SLOWDOWN][:COUNT],...`` -> a tuple of DeviceSpecs."""
    from repro.hardware.device import derated, device_preset

    pool = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, count_text = part.partition(":")
        base, _, slow_text = name.partition("*")
        try:
            count = int(count_text) if count_text else 1
            slowdown = float(slow_text) if slow_text else 1.0
            device = device_preset(base)
        except ValueError as err:
            raise SystemExit(f"error: --device-pool: {err}")
        if count < 1:
            raise SystemExit(f"error: --device-pool count must be >= 1 in {part!r}")
        pool.extend([derated(device, slowdown)] * count)
    if not pool:
        raise SystemExit("error: --device-pool names no devices")
    return tuple(pool)


def _cmd_list() -> int:
    from repro.baselines import ALL_METHODS

    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    print("methods (for `adapipe plan --method`):")
    for name in ALL_METHODS:
        print(f"  {name}")
    return 0


def _cmd_run(args) -> int:
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    results = {}
    for name in names:
        started = time.time()  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity
        result = run_experiment(name, fast=args.fast)
        results[name] = result
        print(result.render())
        print(f"({name} finished in {time.time() - started:.1f}s)\n")  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity
    if args.svg_dir:
        from repro.report import save_experiment_svgs

        for path in save_experiment_svgs(results, args.svg_dir):
            print(f"chart written to {path}")
    if args.html:
        from repro.report.html import write_html_report

        print(f"report written to {write_html_report(results, args.html)}")
    return 0


def _robust_select(args, cluster, feasible, nominal_strategy):
    """Re-rank the feasible strategies by a perturbation-ensemble statistic.

    Mirrors ``repro.core.sweep`` robust mode: every feasible plan's 1F1B
    schedule runs under the same perturbation model (per-rank slowdown
    factors + seeded jitter) and the requested statistic replaces the
    nominal simulated time as the selection key. The chosen evaluation's
    plan carries the ensemble summary as ``robust_*`` metadata.
    """
    import dataclasses

    from repro.core.evaluate import build_schedule_for_plan
    from repro.core.robust import (
        cluster_perturbation,
        evaluate_robustness_many,
        robust_metadata,
    )

    num_ranks = max(s.pipeline_parallel for s, _ in feasible)
    factors = _parse_device_factors(args.robust_device_factor, num_ranks)
    if factors is not None:
        cluster = cluster.with_device_factors(factors)
    # The perturbation spec depends only on the pipeline width, so
    # strategies sharing one width share a spec and batch-evaluate
    # through evaluate_robustness_many (one vectorized sweep per shape).
    schedules = [
        build_schedule_for_plan(evaluation.plan, cluster, "1f1b")
        for _, evaluation in feasible
    ]
    by_width = {}
    for position, schedule in enumerate(schedules):
        by_width.setdefault(schedule.num_devices, []).append(position)
    reports = [None] * len(feasible)
    for width, positions in sorted(by_width.items()):
        pert = cluster_perturbation(
            cluster,
            width,
            jitter_sigma=args.robust_sigma,
            seed=args.robust_seed,
        )
        width_reports = evaluate_robustness_many(
            [schedules[position] for position in positions],
            pert,
            args.robust_draws,
        )
        for position, report in zip(positions, width_reports):
            reports[position] = report
    best = best_strategy = best_key = None
    for (strategy, evaluation), report in zip(feasible, reports):
        evaluation = dataclasses.replace(
            evaluation,
            plan=evaluation.plan.with_metadata(
                robust_objective=args.robust_objective,
                **robust_metadata(report),
            ),
        )
        key = report.objective(args.robust_objective)
        if best_key is None or key < best_key:
            best, best_strategy, best_key = evaluation, strategy, key
    flipped = "" if best_strategy == nominal_strategy else (
        f" (flipped from nominal winner {nominal_strategy})"
    )
    print(
        f"robust objective {args.robust_objective} over {args.robust_draws} "
        f"draws selects {best_strategy} at {best_key:.3f}s{flipped}"
    )
    return best, best_strategy


def _cmd_plan_sweep(args, cluster, spec, train, limit) -> int:
    """``adapipe plan`` through the sweep orchestrator (--sweep-* flags).

    Work-stealing parallel planning with cache merge-back, incumbent
    broadcast, frontier streaming, and checkpoint/resume — selecting the
    same best plan as the legacy strategy loop (ALGORITHMS.md §12).
    """
    from repro.baselines import evaluate_method
    from repro.core.isomorphism import StageEvalCache
    from repro.core.search import PlannerContext
    from repro.core.serialize import dump_plan
    from repro.core.sweep import SweepConfig, run_sweep

    if any(v is not None for v in (args.tp, args.pp, args.dp)):
        print("error: --sweep-* flags search the strategy space; drop "
              "--tp/--pp/--dp (or drop the sweep flags)", file=sys.stderr)
        return 2
    if args.robust_objective != "nominal":
        print("error: the sweep orchestrator ranks by the nominal modelled "
              "time; use `adapipe plan` without --sweep-* flags for robust "
              "objectives", file=sys.stderr)
        return 2

    progress = None
    if args.sweep_progress:
        def progress(event) -> None:
            if event.improved and event.per_sample_time is not None:
                iteration = event.per_sample_time * train.global_batch_size
                print(
                    f"[{event.completed}/{event.total}] frontier: "
                    f"{event.parallel} at {iteration:.3f}s/iter (modelled)"
                )

    cache = StageEvalCache()
    config = SweepConfig(
        workers=args.sweep_workers if args.sweep_workers is not None else 0,
        checkpoint_path=args.sweep_checkpoint,
        cache_path=args.sweep_cache,
    )
    result = run_sweep(
        cluster,
        spec,
        train,
        args.devices,
        planner=args.method,
        config=config,
        resume_from=args.sweep_resume,
        progress=progress,
        eval_cache=cache,
        memory_limit_bytes=limit,
    )
    if result.best is None:
        print(f"no feasible strategy for {args.method} "
              f"({args.model}, seq {args.seq}) — all candidates OOM")
        return 1
    print(result.best.describe())
    print(f"\nbest strategy: {result.best.parallel}")
    print(f"sweep: {result.stats.describe()}")
    if result.stats.worker_cache_hits or result.stats.worker_cache_misses:
        print(f"worker caches: {result.stats.worker_cache_hits} hits / "
              f"{result.stats.worker_cache_misses} misses "
              f"({result.stats.cache_entries_merged} entries merged back)")
    if args.sweep_checkpoint:
        print(f"checkpoint written to {args.sweep_checkpoint}")
    if args.sweep_cache:
        print(f"evaluation cache persisted to {args.sweep_cache}")
    if not args.no_simulate:
        ctx = PlannerContext(
            cluster, spec, train, result.best.parallel,
            memory_limit_bytes=limit, eval_cache=cache,
        )
        evaluation = evaluate_method(args.method, ctx)
        if evaluation.iteration_time is not None:
            print(f"simulated iteration time: {evaluation.iteration_time:.3f}s "
                  f"(bubble {evaluation.simulation.bubble_ratio:.1%})")
    if args.output:
        dump_plan(result.best, args.output)
        print(f"plan written to {args.output}")
    return 0


def _cmd_plan(args) -> int:
    from repro.baselines import evaluate_method
    from repro.config import ParallelConfig
    from repro.config import TrainingConfig
    from repro.core.isomorphism import StageEvalCache
    from repro.core.search import PlannerContext, enumerate_parallel_strategies
    from repro.core.serialize import dump_plan
    from repro.hardware.cluster import cluster_a, cluster_b
    from repro.model.spec import model_by_name

    spec = model_by_name(args.model)
    make_cluster = cluster_a if args.cluster == "A" else cluster_b
    cluster = make_cluster(max(1, args.devices // 8))
    if args.device_pool:
        pool = _parse_device_pool(args.device_pool)
        cluster = make_cluster(
            max(1, args.devices // 8, -(-len(pool) // 8))
        ).with_device_pool(pool)
        print(
            f"device pool ({len(pool)} ranks): "
            + ", ".join(device.name for device in pool)
        )
    train = TrainingConfig(sequence_length=args.seq, global_batch_size=args.batch)
    limit = (
        args.memory_limit_gib * 1024**3 if args.memory_limit_gib is not None else None
    )

    if (
        args.sweep_workers is not None
        or args.sweep_checkpoint
        or args.sweep_resume
        or args.sweep_cache
        or args.sweep_progress
    ):
        return _cmd_plan_sweep(args, cluster, spec, train, limit)

    explicit = [args.tp, args.pp, args.dp]
    if any(v is not None for v in explicit):
        if not all(v is not None for v in explicit):
            print("error: --tp/--pp/--dp must be given together", file=sys.stderr)
            return 2
        if cluster.device_pool and args.pp != len(cluster.device_pool):
            print(
                f"error: --pp {args.pp} but the device pool fixes the "
                f"pipeline depth to {len(cluster.device_pool)}",
                file=sys.stderr,
            )
            return 2
        strategies = [ParallelConfig(args.tp, args.pp, args.dp)]
    else:
        strategies = enumerate_parallel_strategies(
            args.devices, cluster, spec, train
        )
        print(f"searching {len(strategies)} parallel strategies ...")

    best = None
    best_strategy = None
    feasible = []
    cache = StageEvalCache()
    inner_dp_total = 0
    started = time.time()  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity
    for strategy in strategies:
        ctx = PlannerContext(
            cluster, spec, train, strategy, memory_limit_bytes=limit,
            eval_cache=cache,
        )
        evaluation = evaluate_method(args.method, ctx)
        inner_dp_total += int(
            evaluation.plan.metadata.get("inner_dp_invocations", 0)
        )
        if evaluation.iteration_time is None:
            continue
        feasible.append((strategy, evaluation))
        if best is None or evaluation.iteration_time < best.iteration_time:
            best, best_strategy = evaluation, strategy
    elapsed = time.time() - started  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity

    if best is None:
        print(f"no feasible strategy for {args.method} "
              f"({args.model}, seq {args.seq}) — all candidates OOM")
        return 1

    if args.robust_objective != "nominal":
        best, best_strategy = _robust_select(args, cluster, feasible, best_strategy)

    print(best.plan.describe())
    print(f"\nbest strategy: {best_strategy} (search took {elapsed:.1f}s, "
          f"{inner_dp_total} inner-DP invocations, eval-cache hit rate "
          f"{cache.hit_rate:.0%})")
    if not args.no_simulate:
        print(f"simulated iteration time: {best.iteration_time:.3f}s "
              f"(bubble {best.simulation.bubble_ratio:.1%})")
    if args.output:
        dump_plan(best.plan, args.output)
        print(f"plan written to {args.output}")
    return 0


def _cmd_replan(args) -> int:
    """``adapipe replan``: warm-start search on an elastically-changed pool.

    Loads the surviving plan and (optionally) a persisted evaluation
    cache, rebuilds the cluster around the post-event device pool, and
    re-runs the sweep warm: entries whose device classes survived answer
    from cache, so the replan re-prices only what the event changed —
    while selecting a plan bit-identical to a cold search (the digest
    keys guarantee cached and recomputed evaluations agree).
    """
    from repro.core.isomorphism import StageEvalCache
    from repro.core.orchestrator import load_cache_file, save_cache_file
    from repro.core.replan import replan
    from repro.core.serialize import dump_plan, load_plan
    from repro.hardware.cluster import cluster_a, cluster_b
    from repro.model.spec import model_by_name

    spec = model_by_name(args.model)
    plan = load_plan(args.plan)
    pool = _parse_device_pool(args.device_pool)
    make_cluster = cluster_a if args.cluster == "A" else cluster_b
    per_rank = plan.parallel.num_devices // plan.parallel.pipeline_parallel
    devices = args.devices if args.devices is not None else per_rank * len(pool)
    cluster = make_cluster(
        max(1, devices // 8, -(-len(pool) // 8))
    ).with_device_pool(pool)
    limit = (
        args.memory_limit_gib * 1024**3 if args.memory_limit_gib is not None else None
    )

    cache = StageEvalCache()
    loaded = 0
    if args.cache:
        import os

        if os.path.exists(args.cache):
            loaded = cache.merge_entries(load_cache_file(args.cache))
    print(
        f"replanning {plan.method} {plan.parallel} onto a {len(pool)}-rank "
        f"pool ({loaded} cached evaluations loaded)"
    )
    result = replan(
        plan,
        cluster,
        spec,
        eval_cache=cache,
        num_devices=devices,
        memory_limit_bytes=limit,
    )
    if result.best is None:
        print("no feasible strategy on the new pool — all candidates OOM")
        return 1
    print(result.best.describe())
    print(f"\nbest strategy: {result.best.parallel}")
    print(
        f"warm start: {result.evals_reused} evaluations reused, "
        f"{result.evals_recomputed} recomputed "
        f"(reuse rate {result.reuse_rate:.0%})"
    )
    print(f"sweep: {result.sweep.stats.describe()}")
    if args.cache:
        saved = save_cache_file(cache, args.cache)
        print(f"evaluation cache ({saved} entries) rewritten to {args.cache}")
    if args.output:
        dump_plan(result.best, args.output)
        print(f"plan written to {args.output}")
    return 0


def _cmd_audit(args) -> int:
    from repro.baselines.extensions import plan_interleaved
    from repro.config import ConfigError, ParallelConfig, TrainingConfig
    from repro.core.evaluate import build_schedule_for_plan
    from repro.core.search import PlannerContext, plan_adapipe
    from repro.core.strategies import RecomputePolicy
    from repro.hardware.cluster import cluster_a, cluster_b
    from repro.model.spec import model_by_name
    from repro.pipeline.memory_audit import audit_schedule_memory

    spec = model_by_name(args.model)
    make_cluster = cluster_a if args.cluster == "A" else cluster_b
    devices = args.tp * args.pp * args.dp
    cluster = make_cluster(max(1, devices // 8))
    train = TrainingConfig(sequence_length=args.seq, global_batch_size=args.batch)
    limit = (
        args.memory_limit_gib * 1024**3 if args.memory_limit_gib is not None else None
    )
    ctx = PlannerContext(
        cluster, spec, train, ParallelConfig(args.tp, args.pp, args.dp),
        memory_limit_bytes=limit,
    )
    plan = plan_adapipe(ctx)
    if not plan.feasible:
        print("planner found no feasible plan for this configuration")
        return 2
    print(plan.describe())
    print()

    failures = 0
    audited = 0
    for kind in args.schedules:
        if kind == "interleaved":
            target = plan_interleaved(ctx, RecomputePolicy.SELECTIVE, args.chunks)
        else:
            target = plan
        try:
            schedule = build_schedule_for_plan(target, cluster, kind)
        except (ConfigError, ValueError) as err:
            print(f"{kind:12s} skipped ({err})")
            continue
        report = audit_schedule_memory(schedule, kind)
        audited += 1
        summary = report.summary()
        verdict = "conservative" if report.conservative else "UNDER-COUNTS"
        print(
            f"{kind:12s} {verdict:12s} model peak "
            f"{summary['modeled_peak_bytes'] / 1024**3:7.2f} GiB vs sim "
            f"{summary['simulated_peak_bytes'] / 1024**3:7.2f} GiB "
            f"(max rel gap {summary['max_rel_gap']:+.2%}, "
            f"{summary['stages_exact']}/{summary['stages_total']} stages exact)"
        )
        if args.verbose or not report.conservative:
            print(report.describe())
        if not report.conservative:
            failures += 1
    print()
    if failures:
        print(f"memory model UNDER-COUNTS on {failures}/{audited} schedules")
        return 1
    print(f"memory model conservative on all {audited} audited schedules")
    return 0


def _cmd_robustness(args) -> int:
    from repro.baselines import evaluate_method
    from repro.config import ParallelConfig, TrainingConfig
    from repro.core.evaluate import build_schedule_for_plan
    from repro.core.robust import cluster_perturbation, evaluate_robustness
    from repro.core.search import PlannerContext
    from repro.hardware.cluster import cluster_a, cluster_b
    from repro.model.spec import model_by_name

    spec = model_by_name(args.model)
    make_cluster = cluster_a if args.cluster == "A" else cluster_b
    devices = args.tp * args.pp * args.dp
    cluster = make_cluster(max(1, devices // 8))
    factors = _parse_device_factors(args.device_factor, args.pp)
    if factors is not None:
        cluster = cluster.with_device_factors(factors)
    train = TrainingConfig(sequence_length=args.seq, global_batch_size=args.batch)
    limit = (
        args.memory_limit_gib * 1024**3 if args.memory_limit_gib is not None else None
    )
    ctx = PlannerContext(
        cluster, spec, train, ParallelConfig(args.tp, args.pp, args.dp),
        memory_limit_bytes=limit,
    )
    evaluation = evaluate_method(args.method, ctx)
    if evaluation.iteration_time is None:
        print("planner found no feasible plan for this configuration")
        return 2
    print(evaluation.plan.describe())
    print()

    schedule = build_schedule_for_plan(evaluation.plan, cluster, args.schedule)
    pert = cluster_perturbation(
        cluster, schedule.num_devices, jitter_sigma=args.sigma, seed=args.seed
    )
    report = evaluate_robustness(schedule, pert, args.draws, engine=args.engine)
    print(f"schedule: {args.schedule}, {schedule.num_devices} pipeline ranks")
    print(report.describe())
    worst = report.most_critical_device()
    print(
        f"most critical device: {worst} "
        f"(criticality {report.device_criticality[worst]:.3f})"
    )
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")
    if args.svg:
        from repro.report import heat_map
        from repro.report.charts import ChartSpec

        svg = heat_map(
            ChartSpec(
                title="Per-device slowdown factor and straggler criticality",
                subtitle=f"{args.model}, ({args.tp},{args.pp},{args.dp}), "
                f"{args.schedule}, {args.draws} draws",
                x_labels=["factor", "criticality"],
            ),
            [f"device {d}" for d in range(schedule.num_devices)],
            [
                [report.spec.factor_for(d), report.device_criticality[d]]
                for d in range(schedule.num_devices)
            ],
            width=420,
        )
        with open(args.svg, "w") as handle:
            handle.write(svg)
        print(f"heat map written to {args.svg}")
    return 0


def _changed_python_files(paths):
    """Changed-vs-HEAD plus untracked ``.py`` files under ``paths``.

    Returns ``None`` when git is unavailable (callers fall back to a full
    walk): ``--changed`` is an accelerator, never a correctness gate.
    """
    import subprocess
    from pathlib import Path

    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True,
        )
    except OSError:
        return None
    if top.returncode != 0:
        return None
    repo = Path(top.stdout.strip())
    names = set()
    for command in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(
            command, cwd=repo, capture_output=True, text=True
        )
        if proc.returncode != 0:
            return None
        names.update(
            line.strip() for line in proc.stdout.splitlines() if line.strip()
        )
    scopes = [Path(path).resolve() for path in paths]
    changed = []
    for name in sorted(names):
        candidate = (repo / name).resolve()
        if candidate.suffix != ".py" or not candidate.is_file():
            continue
        if any(
            candidate == scope or scope in candidate.parents
            for scope in scopes
        ):
            changed.append(candidate)
    return changed


def _cmd_lint(args) -> int:
    from pathlib import Path

    from repro.analysis import (
        load_baseline,
        render_json,
        render_sarif,
        render_text,
        run_lint,
    )
    from repro.analysis.framework import default_lint_root

    if args.list_rules:
        from repro.analysis import default_rules

        for rule in sorted(default_rules(), key=lambda r: r.name):
            print(f"{rule.name} ({rule.severity}): {rule.description}")
        return 0

    baseline = load_baseline(args.baseline) if args.baseline else None
    if args.changed:
        # Pin the root to the *requested* paths so relpaths (and thus
        # baseline keys and suppression tables) match a full run's.
        root = default_lint_root([Path(path) for path in args.paths])
        files = _changed_python_files(args.paths)
        if files is None:
            print(
                "adalint: git unavailable, --changed falling back to a "
                "full walk", file=sys.stderr,
            )
            result = run_lint(args.paths, baseline=baseline)
        else:
            result = run_lint(files, baseline=baseline, root=root)
    else:
        result = run_lint(args.paths, baseline=baseline)

    if args.write_baseline:
        import json

        with open(args.write_baseline, "w") as handle:
            handle.write(render_json(result))
        print(f"baseline with {len(result.findings)} finding(s) written "
              f"to {args.write_baseline}")
        return 0

    if args.output:
        with open(args.output, "w") as handle:
            handle.write(render_json(result))
    if args.sarif:
        with open(args.sarif, "w") as handle:
            handle.write(render_sarif(result))
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


def _cmd_artifact(args) -> int:
    from repro.experiments.artifact import collect_results, run_artifact_workflow

    if not args.collect_only:
        root = run_artifact_workflow(args.output_dir, fast=args.fast)
        print(f"workflow results written under {root}")
    print(collect_results(args.output_dir))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "artifact":
        return _cmd_artifact(args)
    if args.command == "audit":
        return _cmd_audit(args)
    if args.command == "replan":
        return _cmd_replan(args)
    if args.command == "robustness":
        return _cmd_robustness(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "validate":
        from repro.experiments.validate import render_validation, run_validation

        results = run_validation()
        print(render_validation(results))
        return 0 if all(passed for _, passed, _ in results) else 1
    return _cmd_plan(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
