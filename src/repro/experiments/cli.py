"""Command-line interface.

* ``adapipe list`` — available experiments.
* ``adapipe run <experiment|all> [--fast]`` — regenerate paper artifacts.
* ``adapipe plan ...`` — run the search engine on a chosen model, cluster
  and workload; print the plan and optionally write it as JSON and
  simulate it.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.registry import EXPERIMENTS, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="adapipe",
        description="AdaPipe (ASPLOS 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    runner = sub.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument("experiment", help="experiment id, e.g. figure5, or 'all'")
    runner.add_argument(
        "--fast",
        action="store_true",
        help="smaller sweeps / fewer steps (seconds instead of minutes)",
    )
    runner.add_argument(
        "--svg-dir",
        metavar="DIR",
        help="also render the result as an SVG chart into DIR",
    )
    runner.add_argument(
        "--html",
        metavar="FILE",
        help="also assemble all results into a single-file HTML report",
    )

    planner = sub.add_parser("plan", help="search a plan for a configuration")
    planner.add_argument("--model", default="gpt3-175b",
                         help="model name (gpt3-175b, llama2-70b, bert-large)")
    planner.add_argument("--cluster", default="A", choices=["A", "B"],
                         help="hardware cluster")
    planner.add_argument("--devices", type=int, default=64,
                         help="accelerators to occupy")
    planner.add_argument("--seq", type=int, default=4096, help="sequence length")
    planner.add_argument("--batch", type=int, default=128, help="global batch size")
    planner.add_argument("--tp", type=int, help="tensor parallel size")
    planner.add_argument("--pp", type=int, help="pipeline parallel size")
    planner.add_argument("--dp", type=int, help="data parallel size")
    planner.add_argument("--method", default="AdaPipe",
                         help="planning method (see `adapipe list` methods)")
    planner.add_argument("--memory-limit-gib", type=float,
                         help="DP memory constraint in GiB (default: 92%% of device)")
    planner.add_argument("--output", help="write the plan as JSON to this path")
    planner.add_argument("--no-simulate", action="store_true",
                         help="skip the pipeline simulation")

    artifact = sub.add_parser(
        "artifact",
        help="run the artifact-style workflow (global_test.sh equivalent)",
    )
    artifact.add_argument("--output-dir", default="artifact_results")
    artifact.add_argument("--fast", action="store_true",
                          help="first workload and strategy per model only")
    artifact.add_argument("--collect-only", action="store_true",
                          help="summarise an existing run (collect_result.py)")

    sub.add_parser(
        "validate",
        help="run the cross-implementation consistency battery",
    )
    return parser


def _cmd_list() -> int:
    from repro.baselines import ALL_METHODS

    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    print("methods (for `adapipe plan --method`):")
    for name in ALL_METHODS:
        print(f"  {name}")
    return 0


def _cmd_run(args) -> int:
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    results = {}
    for name in names:
        started = time.time()
        result = run_experiment(name, fast=args.fast)
        results[name] = result
        print(result.render())
        print(f"({name} finished in {time.time() - started:.1f}s)\n")
    if args.svg_dir:
        from repro.report import save_experiment_svgs

        for path in save_experiment_svgs(results, args.svg_dir):
            print(f"chart written to {path}")
    if args.html:
        from repro.report.html import write_html_report

        print(f"report written to {write_html_report(results, args.html)}")
    return 0


def _cmd_plan(args) -> int:
    from repro.baselines import evaluate_method
    from repro.config import ParallelConfig
    from repro.config import TrainingConfig
    from repro.core.isomorphism import StageEvalCache
    from repro.core.search import PlannerContext, enumerate_parallel_strategies
    from repro.core.serialize import dump_plan
    from repro.hardware.cluster import cluster_a, cluster_b
    from repro.model.spec import model_by_name

    spec = model_by_name(args.model)
    make_cluster = cluster_a if args.cluster == "A" else cluster_b
    cluster = make_cluster(max(1, args.devices // 8))
    train = TrainingConfig(sequence_length=args.seq, global_batch_size=args.batch)
    limit = (
        args.memory_limit_gib * 1024**3 if args.memory_limit_gib is not None else None
    )

    explicit = [args.tp, args.pp, args.dp]
    if any(v is not None for v in explicit):
        if not all(v is not None for v in explicit):
            print("error: --tp/--pp/--dp must be given together", file=sys.stderr)
            return 2
        strategies = [ParallelConfig(args.tp, args.pp, args.dp)]
    else:
        strategies = enumerate_parallel_strategies(
            args.devices, cluster, spec, train
        )
        print(f"searching {len(strategies)} parallel strategies ...")

    best = None
    best_strategy = None
    cache = StageEvalCache()
    inner_dp_total = 0
    started = time.time()
    for strategy in strategies:
        ctx = PlannerContext(
            cluster, spec, train, strategy, memory_limit_bytes=limit,
            eval_cache=cache,
        )
        evaluation = evaluate_method(args.method, ctx)
        inner_dp_total += int(
            evaluation.plan.metadata.get("inner_dp_invocations", 0)
        )
        if evaluation.iteration_time is None:
            continue
        if best is None or evaluation.iteration_time < best.iteration_time:
            best, best_strategy = evaluation, strategy
    elapsed = time.time() - started

    if best is None:
        print(f"no feasible strategy for {args.method} "
              f"({args.model}, seq {args.seq}) — all candidates OOM")
        return 1

    print(best.plan.describe())
    print(f"\nbest strategy: {best_strategy} (search took {elapsed:.1f}s, "
          f"{inner_dp_total} inner-DP invocations, eval-cache hit rate "
          f"{cache.hit_rate:.0%})")
    if not args.no_simulate:
        print(f"simulated iteration time: {best.iteration_time:.3f}s "
              f"(bubble {best.simulation.bubble_ratio:.1%})")
    if args.output:
        dump_plan(best.plan, args.output)
        print(f"plan written to {args.output}")
    return 0


def _cmd_artifact(args) -> int:
    from repro.experiments.artifact import collect_results, run_artifact_workflow

    if not args.collect_only:
        root = run_artifact_workflow(args.output_dir, fast=args.fast)
        print(f"workflow results written under {root}")
    print(collect_results(args.output_dir))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "artifact":
        return _cmd_artifact(args)
    if args.command == "validate":
        from repro.experiments.validate import render_validation, run_validation

        results = run_validation()
        print(render_validation(results))
        return 0 if all(passed for _, passed, _ in results) else 1
    return _cmd_plan(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
