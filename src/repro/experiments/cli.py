"""Command-line interface.

* ``adapipe list`` — available experiments.
* ``adapipe run <experiment|all> [--fast]`` — regenerate paper artifacts.
* ``adapipe plan ...`` — run the search engine on a chosen model, cluster
  and workload; print the plan and optionally write it as JSON and
  simulate it.
* ``adapipe validate`` — the cross-implementation consistency battery.
* ``adapipe audit ...`` — differential memory audit: the Section 4.2
  model's per-stage totals vs the simulator's measured peaks, across the
  schedule zoo.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.registry import EXPERIMENTS, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="adapipe",
        description="AdaPipe (ASPLOS 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    runner = sub.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument("experiment", help="experiment id, e.g. figure5, or 'all'")
    runner.add_argument(
        "--fast",
        action="store_true",
        help="smaller sweeps / fewer steps (seconds instead of minutes)",
    )
    runner.add_argument(
        "--svg-dir",
        metavar="DIR",
        help="also render the result as an SVG chart into DIR",
    )
    runner.add_argument(
        "--html",
        metavar="FILE",
        help="also assemble all results into a single-file HTML report",
    )

    planner = sub.add_parser("plan", help="search a plan for a configuration")
    planner.add_argument("--model", default="gpt3-175b",
                         help="model name (gpt3-175b, llama2-70b, bert-large)")
    planner.add_argument("--cluster", default="A", choices=["A", "B"],
                         help="hardware cluster")
    planner.add_argument("--devices", type=int, default=64,
                         help="accelerators to occupy")
    planner.add_argument("--seq", type=int, default=4096, help="sequence length")
    planner.add_argument("--batch", type=int, default=128, help="global batch size")
    planner.add_argument("--tp", type=int, help="tensor parallel size")
    planner.add_argument("--pp", type=int, help="pipeline parallel size")
    planner.add_argument("--dp", type=int, help="data parallel size")
    planner.add_argument("--method", default="AdaPipe",
                         help="planning method (see `adapipe list` methods)")
    planner.add_argument("--memory-limit-gib", type=float,
                         help="DP memory constraint in GiB (default: 92%% of device)")
    planner.add_argument("--output", help="write the plan as JSON to this path")
    planner.add_argument("--no-simulate", action="store_true",
                         help="skip the pipeline simulation")

    artifact = sub.add_parser(
        "artifact",
        help="run the artifact-style workflow (global_test.sh equivalent)",
    )
    artifact.add_argument("--output-dir", default="artifact_results")
    artifact.add_argument("--fast", action="store_true",
                          help="first workload and strategy per model only")
    artifact.add_argument("--collect-only", action="store_true",
                          help="summarise an existing run (collect_result.py)")

    sub.add_parser(
        "validate",
        help="run the cross-implementation consistency battery",
    )

    audit = sub.add_parser(
        "audit",
        help="differential memory audit: Section 4.2 model vs simulator",
    )
    audit.add_argument("--model", default="bert-large",
                       help="model name (gpt3-175b, llama2-70b, bert-large)")
    audit.add_argument("--cluster", default="A", choices=["A", "B"],
                       help="hardware cluster")
    audit.add_argument("--seq", type=int, default=512, help="sequence length")
    audit.add_argument("--batch", type=int, default=16, help="global batch size")
    audit.add_argument("--tp", type=int, default=1, help="tensor parallel size")
    audit.add_argument("--pp", type=int, default=4, help="pipeline parallel size")
    audit.add_argument("--dp", type=int, default=1, help="data parallel size")
    audit.add_argument("--memory-limit-gib", type=float,
                       help="memory constraint in GiB (default: 92%% of device)")
    audit.add_argument(
        "--schedules", nargs="+",
        default=["1f1b", "gpipe", "chimera", "chimerad", "interleaved"],
        help="schedule kinds to audit the plan under",
    )
    audit.add_argument("--chunks", type=int, default=2,
                       help="chunks per device for the interleaved audit")
    audit.add_argument("--verbose", action="store_true",
                       help="print the full per-stage discrepancy tables")
    return parser


def _cmd_list() -> int:
    from repro.baselines import ALL_METHODS

    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    print("methods (for `adapipe plan --method`):")
    for name in ALL_METHODS:
        print(f"  {name}")
    return 0


def _cmd_run(args) -> int:
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    results = {}
    for name in names:
        started = time.time()
        result = run_experiment(name, fast=args.fast)
        results[name] = result
        print(result.render())
        print(f"({name} finished in {time.time() - started:.1f}s)\n")
    if args.svg_dir:
        from repro.report import save_experiment_svgs

        for path in save_experiment_svgs(results, args.svg_dir):
            print(f"chart written to {path}")
    if args.html:
        from repro.report.html import write_html_report

        print(f"report written to {write_html_report(results, args.html)}")
    return 0


def _cmd_plan(args) -> int:
    from repro.baselines import evaluate_method
    from repro.config import ParallelConfig
    from repro.config import TrainingConfig
    from repro.core.isomorphism import StageEvalCache
    from repro.core.search import PlannerContext, enumerate_parallel_strategies
    from repro.core.serialize import dump_plan
    from repro.hardware.cluster import cluster_a, cluster_b
    from repro.model.spec import model_by_name

    spec = model_by_name(args.model)
    make_cluster = cluster_a if args.cluster == "A" else cluster_b
    cluster = make_cluster(max(1, args.devices // 8))
    train = TrainingConfig(sequence_length=args.seq, global_batch_size=args.batch)
    limit = (
        args.memory_limit_gib * 1024**3 if args.memory_limit_gib is not None else None
    )

    explicit = [args.tp, args.pp, args.dp]
    if any(v is not None for v in explicit):
        if not all(v is not None for v in explicit):
            print("error: --tp/--pp/--dp must be given together", file=sys.stderr)
            return 2
        strategies = [ParallelConfig(args.tp, args.pp, args.dp)]
    else:
        strategies = enumerate_parallel_strategies(
            args.devices, cluster, spec, train
        )
        print(f"searching {len(strategies)} parallel strategies ...")

    best = None
    best_strategy = None
    cache = StageEvalCache()
    inner_dp_total = 0
    started = time.time()
    for strategy in strategies:
        ctx = PlannerContext(
            cluster, spec, train, strategy, memory_limit_bytes=limit,
            eval_cache=cache,
        )
        evaluation = evaluate_method(args.method, ctx)
        inner_dp_total += int(
            evaluation.plan.metadata.get("inner_dp_invocations", 0)
        )
        if evaluation.iteration_time is None:
            continue
        if best is None or evaluation.iteration_time < best.iteration_time:
            best, best_strategy = evaluation, strategy
    elapsed = time.time() - started

    if best is None:
        print(f"no feasible strategy for {args.method} "
              f"({args.model}, seq {args.seq}) — all candidates OOM")
        return 1

    print(best.plan.describe())
    print(f"\nbest strategy: {best_strategy} (search took {elapsed:.1f}s, "
          f"{inner_dp_total} inner-DP invocations, eval-cache hit rate "
          f"{cache.hit_rate:.0%})")
    if not args.no_simulate:
        print(f"simulated iteration time: {best.iteration_time:.3f}s "
              f"(bubble {best.simulation.bubble_ratio:.1%})")
    if args.output:
        dump_plan(best.plan, args.output)
        print(f"plan written to {args.output}")
    return 0


def _cmd_audit(args) -> int:
    from repro.baselines.extensions import plan_interleaved
    from repro.config import ConfigError, ParallelConfig, TrainingConfig
    from repro.core.evaluate import build_schedule_for_plan
    from repro.core.search import PlannerContext, plan_adapipe
    from repro.core.strategies import RecomputePolicy
    from repro.hardware.cluster import cluster_a, cluster_b
    from repro.model.spec import model_by_name
    from repro.pipeline.memory_audit import audit_schedule_memory

    spec = model_by_name(args.model)
    make_cluster = cluster_a if args.cluster == "A" else cluster_b
    devices = args.tp * args.pp * args.dp
    cluster = make_cluster(max(1, devices // 8))
    train = TrainingConfig(sequence_length=args.seq, global_batch_size=args.batch)
    limit = (
        args.memory_limit_gib * 1024**3 if args.memory_limit_gib is not None else None
    )
    ctx = PlannerContext(
        cluster, spec, train, ParallelConfig(args.tp, args.pp, args.dp),
        memory_limit_bytes=limit,
    )
    plan = plan_adapipe(ctx)
    if not plan.feasible:
        print("planner found no feasible plan for this configuration")
        return 2
    print(plan.describe())
    print()

    failures = 0
    audited = 0
    for kind in args.schedules:
        if kind == "interleaved":
            target = plan_interleaved(ctx, RecomputePolicy.SELECTIVE, args.chunks)
        else:
            target = plan
        try:
            schedule = build_schedule_for_plan(target, cluster, kind)
        except (ConfigError, ValueError) as err:
            print(f"{kind:12s} skipped ({err})")
            continue
        report = audit_schedule_memory(schedule, kind)
        audited += 1
        summary = report.summary()
        verdict = "conservative" if report.conservative else "UNDER-COUNTS"
        print(
            f"{kind:12s} {verdict:12s} model peak "
            f"{summary['modeled_peak_bytes'] / 1024**3:7.2f} GiB vs sim "
            f"{summary['simulated_peak_bytes'] / 1024**3:7.2f} GiB "
            f"(max rel gap {summary['max_rel_gap']:+.2%}, "
            f"{summary['stages_exact']}/{summary['stages_total']} stages exact)"
        )
        if args.verbose or not report.conservative:
            print(report.describe())
        if not report.conservative:
            failures += 1
    print()
    if failures:
        print(f"memory model UNDER-COUNTS on {failures}/{audited} schedules")
        return 1
    print(f"memory model conservative on all {audited} audited schedules")
    return 0


def _cmd_artifact(args) -> int:
    from repro.experiments.artifact import collect_results, run_artifact_workflow

    if not args.collect_only:
        root = run_artifact_workflow(args.output_dir, fast=args.fast)
        print(f"workflow results written under {root}")
    print(collect_results(args.output_dir))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "artifact":
        return _cmd_artifact(args)
    if args.command == "audit":
        return _cmd_audit(args)
    if args.command == "validate":
        from repro.experiments.validate import render_validation, run_validation

        results = run_validation()
        print(render_validation(results))
        return 0 if all(passed for _, passed, _ in results) else 1
    return _cmd_plan(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
