"""Experiment harness: one module per table/figure of the paper.

Every experiment exposes ``run(fast: bool = False) -> ExperimentResult``;
``fast`` shrinks sweeps (fewer strategies, shorter training) so the
benchmark suite finishes in seconds while ``adapipe run <exp>`` executes the
full configuration. The registry maps paper artifact ids ("figure5",
"table3", ...) to these functions, and ``repro.experiments.cli`` provides
the command-line entry point.
"""

from repro.experiments.common import ExperimentResult, MethodRow
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "MethodRow",
    "get_experiment",
    "run_experiment",
]
