"""Figure 6: end-to-end performance of GPT-3 (175B) on cluster A, 64 GPUs."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.end_to_end import end_to_end_cluster_a
from repro.model.spec import gpt3_175b

WORKLOADS = ((4096, 128), (8192, 64), (16384, 32))


def run(fast: bool = False) -> ExperimentResult:
    return end_to_end_cluster_a(
        name="figure6",
        spec=gpt3_175b(),
        num_devices=64,
        workloads=WORKLOADS if not fast else WORKLOADS[::2],
        fast=fast,
    )
