"""Heterogeneous placement + elastic replanning (beyond-paper artifact).

The paper's DPs assume ``p`` identical devices. This experiment plans a
mixed per-rank device pool — nominal A100s, a thermally-derated A100, and
an Ascend part — with the placement search deciding which class serves
which stage, then walks the elastic scenarios: the derated device
*leaves*, a healthy device *joins*, and one rank's slowdown *drifts*.
Each replan warm-starts from the surviving
:class:`~repro.core.isomorphism.StageEvalCache` and is differentially
checked against a cold sweep on the same changed pool: the best plan must
be bit-identical (digest-keyed evaluations make reuse sound) while
re-running a fraction of the stage evaluations.

``benchmarks/bench_hetero.py`` runs this fixture under pytest-benchmark
and asserts the headline reuse/identity claims (BENCH_hetero.json in CI);
``adapipe validate`` check 11 pins a smaller round trip.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.config import TrainingConfig
from repro.core.isomorphism import StageEvalCache
from repro.core.replan import (
    ReplanResult,
    pool_with_drift,
    pool_with_rank,
    pool_without_rank,
    replan,
)
from repro.core.serialize import plan_signature
from repro.core.sweep import SweepConfig, SweepResult, run_sweep
from repro.experiments.common import ExperimentResult
from repro.hardware.cluster import ClusterSpec, cluster_a
from repro.hardware.device import a100_80gb, ascend910_32gb, derated
from repro.model.spec import model_by_name

MEMORY_LIMIT_BYTES = int(4.0 * 1024**3)


def _short(name: str) -> str:
    """Part label without the capacity suffix ("A100-80GB*1.3" -> "A100*1.3")."""
    return name.replace("-80GB", "").replace("-32GB", "")
DRIFT_SLOWDOWN = 1.6


def _base_pool(fast: bool) -> Tuple:
    if fast:
        return (a100_80gb(), derated(a100_80gb(), 1.3), a100_80gb())
    return (
        a100_80gb(),
        a100_80gb(),
        derated(a100_80gb(), 1.3),
        ascend910_32gb(),
    )


def _cold_sweep(
    cluster: ClusterSpec, spec, train, num_devices: int
) -> Tuple[SweepResult, StageEvalCache]:
    cache = StageEvalCache()
    result = run_sweep(
        cluster,
        spec,
        train,
        num_devices,
        config=SweepConfig(workers=1),
        eval_cache=cache,
        memory_limit_bytes=MEMORY_LIMIT_BYTES,
    )
    return result, cache


def run_scenarios(fast: bool = False) -> List[dict]:
    """The experiment's raw data: one dict per planning scenario.

    Each elastic scenario reports the warm replan's reuse counters next
    to a cold sweep on the same changed pool, plus whether the two
    selected bit-identical plans (compared on
    :func:`~repro.core.serialize.plan_signature`).
    """
    spec = model_by_name("bert-large")
    train = TrainingConfig(sequence_length=2048, global_batch_size=8)
    pool = _base_pool(fast)
    cluster = cluster_a(1).with_device_pool(pool)

    rows: List[dict] = []
    cold, cache = _cold_sweep(cluster, spec, train, len(pool))
    rows.append(
        {
            "scenario": "cold pool search",
            "pool": [d.name for d in pool],
            "best": cold.best.parallel if cold.best else None,
            "placement": (
                cold.best.metadata.get("placement_devices")
                if cold.best
                else None
            ),
            "modeled_time": (
                cold.best.modeled_iteration_time if cold.best else None
            ),
            "inner_dp": cold.stats.inner_dp_invocations,
        }
    )

    slow_rank = [d.slowdown for d in pool].index(1.3)
    scenarios = [
        ("device leaves (derated rank)", pool_without_rank(cluster, slow_rank)),
        ("device joins (healthy A100)", pool_with_rank(cluster, a100_80gb())),
        (
            f"slowdown drifts (rank 0 -> {DRIFT_SLOWDOWN:g}x)",
            pool_with_drift(cluster, 0, DRIFT_SLOWDOWN),
        ),
    ]
    for label, changed in scenarios:
        warm: ReplanResult = replan(
            cold.best,
            changed,
            spec,
            eval_cache=cache,
            memory_limit_bytes=MEMORY_LIMIT_BYTES,
        )
        cold_again, _ = _cold_sweep(
            changed, spec, train, len(changed.device_pool)
        )
        identical: Optional[bool] = None
        if warm.best is not None and cold_again.best is not None:
            identical = plan_signature(warm.best) == plan_signature(
                cold_again.best
            )
        rows.append(
            {
                "scenario": label,
                "pool": [d.name for d in changed.device_pool],
                "best": warm.best.parallel if warm.best else None,
                "placement": (
                    warm.best.metadata.get("placement_devices")
                    if warm.best
                    else None
                ),
                "modeled_time": (
                    warm.best.modeled_iteration_time if warm.best else None
                ),
                "inner_dp": warm.evals_recomputed,
                "reused": warm.evals_reused,
                "reuse_rate": warm.reuse_rate,
                "cold_inner_dp": cold_again.stats.inner_dp_invocations,
                "identical_to_cold": identical,
            }
        )
    return rows


def run(fast: bool = False) -> ExperimentResult:
    rows = run_scenarios(fast)
    result = ExperimentResult(
        name="heterogeneous",
        title="Heterogeneous pool placement + elastic warm-start replanning "
        "(BERT-large, cluster A parts)",
        headers=[
            "scenario",
            "pool",
            "best",
            "placement",
            "modeled",
            "evals recomputed",
            "evals reused",
            "reuse",
            "== cold",
        ],
    )
    for row in rows:
        result.add_row(
            row["scenario"],
            "+".join(_short(name) for name in row["pool"]),
            str(row["best"]) if row["best"] else "OOM",
            (
                ">".join(_short(name) for name in row["placement"])
                if row.get("placement")
                else "-"
            ),
            (
                f"{row['modeled_time'] * 1e3:.1f}ms"
                if row.get("modeled_time")
                else "-"
            ),
            str(row["inner_dp"]),
            str(row.get("reused", "-")),
            (
                f"{row['reuse_rate']:.0%}"
                if row.get("reuse_rate") is not None
                else "-"
            ),
            (
                {True: "yes", False: "NO"}[row["identical_to_cold"]]
                if row.get("identical_to_cold") is not None
                else "-"
            ),
        )
    replans = [row for row in rows if "reuse_rate" in row]
    if replans:
        worst = min(row["reuse_rate"] for row in replans)
        result.add_note(
            f"every warm replan reused >= {worst:.0%} of its stage-eval "
            f"demand and selected a plan bit-identical to the cold sweep"
        )
    return result
