"""Figure 10: convergence validation — real training, real gradients.

The paper trains Llama 2 with DAPPLE-Full and with AdaPipe's plan and shows
overlapping loss curves (recomputation never changes the math; the small
residual difference comes from different parameter initialisation, since
the partitioning changes how parameters are laid out/initialised).

We reproduce this with actual training of a tiny Llama-style model on the
synthetic character stream: the DAPPLE-Full plan and the AdaPipe plan run
the *same* 1F1B pipeline executor with their respective recomputation and
partitioning strategies, from different init seeds — and, as a stronger
check than the paper could make, a same-seed pair is verified to produce
*identical* losses.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.config import ParallelConfig, TrainingConfig
from repro.core.search import PlannerContext, plan_adapipe, plan_policy
from repro.core.strategies import RecomputePolicy
from repro.experiments.common import ExperimentResult
from repro.hardware.cluster import cluster_a
from repro.model.spec import tiny_llama
from repro.training.data import SyntheticTextDataset
from repro.training.modules import build_model
from repro.training.optimizer import Adam
from repro.training.pipeline_exec import train_with_plan

SEQ = 32
MICRO_BATCHES = 4


def _make_plans(spec):
    train = TrainingConfig(
        sequence_length=SEQ,
        global_batch_size=MICRO_BATCHES,
        micro_batch_size=1,
        sequence_parallel=False,
        flash_attention=False,
    )
    parallel = ParallelConfig(1, 2, 1)
    ctx = PlannerContext(
        cluster_a(1),
        spec,
        train,
        parallel,
        memory_limit_bytes=64 * 1024**2,
    )
    dapple = plan_policy(ctx, RecomputePolicy.FULL, "DAPPLE-Full")
    adapipe = plan_adapipe(ctx)
    return dapple, adapipe


def _train(spec, plan, seed: int, steps: int) -> List[float]:
    model = build_model(spec, seed=seed)
    dataset = SyntheticTextDataset(vocab_size=spec.vocab_size)
    optimizer = Adam(model.named_parameters(), lr=3e-3)
    batches = dataset.batches(MICRO_BATCHES, SEQ, steps)
    return train_with_plan(model, plan, batches, optimizer)


def run(fast: bool = False) -> ExperimentResult:
    steps = 30 if fast else 200
    spec = tiny_llama(num_layers=2, hidden_size=32, vocab_size=64)
    dapple, adapipe = _make_plans(spec)

    losses_dapple = _train(spec, dapple, seed=1, steps=steps)
    losses_adapipe = _train(spec, adapipe, seed=2, steps=steps)
    losses_same_seed = _train(spec, adapipe, seed=1, steps=steps)

    result = ExperimentResult(
        name="figure10",
        title=f"Loss curves over {steps} steps (tiny Llama, real training)",
        headers=["step", "DAPPLE-Full", "AdaPipe (seed 2)", "AdaPipe (seed 1)"],
    )
    marks = sorted({0, 1, 2, steps // 4, steps // 2, 3 * steps // 4, steps - 1})
    for step in marks:
        result.add_row(
            step,
            f"{losses_dapple[step]:.4f}",
            f"{losses_adapipe[step]:.4f}",
            f"{losses_same_seed[step]:.4f}",
        )
    gap = float(np.max(np.abs(np.array(losses_dapple) - np.array(losses_same_seed))))
    result.add_note(
        f"same-seed DAPPLE-Full vs AdaPipe max |loss gap| = {gap:.2e} "
        "(recomputation/partitioning are gradient-exact)"
    )
    result.add_note(
        "expected shape: all curves descend together; cross-seed curves "
        "differ only through initialisation, as in the paper."
    )
    final_drop = losses_dapple[0] - losses_dapple[-1]
    result.add_note(f"loss decreased by {final_drop:.3f} over the run")
    return result
