"""Robustness: plan ranking under perturbations (beyond-paper artifact).

The paper ranks plans by nominal simulated iteration time. This experiment
perturbs the hardware — two of four pipeline ranks derated 1.5x plus
lognormal per-task jitter — and reports, per 3D strategy, the nominal time
next to the perturbation ensemble's mean/p95/worst and the per-device
straggler criticality (marginal iteration-time slowdown per unit device
slowdown; see ``repro.core.robust``).

The headline claim: the deeper pipeline (1, 4, 1) wins nominally but
spreads work onto the derated ranks, so its p95 under perturbation loses
to the shallower (1, 2, 2) — the robust objective flips the plan choice.
The exact fixture is pinned as a regression test in
``tests/test_robustness.py``.
"""

from __future__ import annotations

from repro.config import ParallelConfig, TrainingConfig
from repro.core.evaluate import build_schedule_for_plan
from repro.core.robust import cluster_perturbation, evaluate_robustness
from repro.core.search import PlannerContext, plan_adapipe
from repro.experiments.common import ExperimentResult
from repro.hardware.cluster import cluster_a
from repro.model.spec import model_by_name

# The validated flip fixture: p=4 wins nominally, p=2 wins at p95 once
# ranks 2 and 3 run 1.5x slow.
STRATEGIES = ((1, 2, 2), (1, 4, 1))
DEVICE_FACTORS = (1.0, 1.0, 1.5, 1.5)
JITTER_SIGMA = 0.03
SEED = 5
MEMORY_LIMIT_BYTES = int(2.0 * 1024**3)
MAX_DEVICES = max(p for _, p, _ in STRATEGIES)


def run(fast: bool = False) -> ExperimentResult:
    cluster = cluster_a(1).with_device_factors(DEVICE_FACTORS)
    spec = model_by_name("bert-large")
    train = TrainingConfig(sequence_length=4096, global_batch_size=16)
    draws = 4 if fast else 8
    result = ExperimentResult(
        name="robustness",
        title="BERT-large under perturbation: ranks 2-3 derated 1.5x, "
        f"jitter sigma {JITTER_SIGMA:g}, {draws} draws",
        headers=["(TP,PP,DP)", "nominal", "mean", "p95", "worst"]
        + [f"crit:dev{d}" for d in range(MAX_DEVICES)],
    )
    by_objective = {}
    for t, p, d in STRATEGIES:
        ctx = PlannerContext(
            cluster,
            spec,
            train,
            ParallelConfig(t, p, d),
            memory_limit_bytes=MEMORY_LIMIT_BYTES,
        )
        plan = plan_adapipe(ctx)
        if not plan.feasible:
            result.add_row((t, p, d), *(["OOM"] * (4 + MAX_DEVICES)))
            continue
        schedule = build_schedule_for_plan(plan, cluster, "1f1b")
        pert = cluster_perturbation(
            cluster, schedule.num_devices, jitter_sigma=JITTER_SIGMA, seed=SEED
        )
        report = evaluate_robustness(schedule, pert, draws)
        crit = [f"{c:.3f}" for c in report.device_criticality]
        crit += [""] * (MAX_DEVICES - len(crit))
        result.add_row(
            (t, p, d),
            f"{report.nominal_time:.3f}s",
            f"{report.mean_time:.3f}s",
            f"{report.p95_time:.3f}s",
            f"{report.worst_time:.3f}s",
            *crit,
        )
        for objective in ("nominal", "p95"):
            value = report.objective(objective)
            if objective not in by_objective or value < by_objective[objective][1]:
                by_objective[objective] = ((t, p, d), value)
    for objective, (strategy, value) in by_objective.items():
        result.add_note(f"best by {objective}: {strategy} at {value:.3f}s")
    if len(by_objective) == 2 and (
        by_objective["nominal"][0] != by_objective["p95"][0]
    ):
        result.add_note(
            "robust objective flips the plan choice: the nominal winner "
            "spreads work onto the derated ranks and loses at p95"
        )
    return result
