"""Artifact-style experiment workflow (paper appendix A.3/A.4).

The AdaPipe artifact drives everything through ``global_test.sh``: it
iterates training configurations and parallelism strategies, runs
profiling + searching + measuring for each, records per-worker logs with
"the timestamps and memory information of each forward and backward pass",
and ships ``collect_result.py`` to summarise everything against
``expected_result.txt``. This module reproduces that workflow on the
simulator:

* :func:`run_artifact_workflow` sweeps the cluster-A configurations,
  writing per-configuration result directories (``gpt_result/``,
  ``llama2_result/``) containing an ``output.txt`` (iteration summary) and
  a ``worker_trace.jsonl`` (per-task timestamps), plus a top-level
  ``expected_result.txt`` and ``results.json``.
* :func:`collect_results` re-reads ``results.json`` and prints the
  artifact-style summary with speedups — the ``collect_result.py``
  equivalent.
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Optional, Sequence

from repro.baselines import evaluate_method
from repro.config import ParallelConfig, TrainingConfig
from repro.core.search import PlannerContext
from repro.hardware.cluster import cluster_a
from repro.model.spec import ModelSpec, gpt3_175b, llama2_70b
from repro.pipeline.tracing import ResultCollector, write_trace_jsonl

METHODS = ("DAPPLE-Full", "DAPPLE-Non", "Even Partitioning", "AdaPipe")

# (model factory, result dir, num devices, (seq, batch) list, strategies)
_CONFIGS = (
    (
        gpt3_175b,
        "gpt_result",
        64,
        ((4096, 128), (8192, 64), (16384, 32)),
        (ParallelConfig(8, 8, 1), ParallelConfig(4, 8, 2)),
    ),
    (
        llama2_70b,
        "llama2_result",
        32,
        ((4096, 128), (8192, 64), (16384, 32)),
        (ParallelConfig(4, 8, 1), ParallelConfig(2, 8, 2)),
    ),
)


def _config_slug(model: ModelSpec, seq: int, strategy: ParallelConfig) -> str:
    t, p, d = strategy.as_tuple()
    return f"{model.name}_seq{seq}_tp{t}_pp{p}_dp{d}"


def run_artifact_workflow(
    output_dir: str,
    fast: bool = False,
    methods: Sequence[str] = METHODS,
) -> pathlib.Path:
    """Run the full sweep and write the artifact-style result tree.

    Args:
        output_dir: root directory to populate.
        fast: restrict to the first workload and strategy per model.
        methods: methods to measure.

    Returns:
        The root path written.
    """
    root = pathlib.Path(output_dir)
    root.mkdir(parents=True, exist_ok=True)
    collector = ResultCollector()

    for model_fn, result_dir, num_devices, workloads, strategies in _CONFIGS:
        spec = model_fn()
        cluster = cluster_a(max(1, num_devices // 8))
        sweep_workloads = workloads[:1] if fast else workloads
        sweep_strategies = strategies[:1] if fast else strategies
        for seq, batch in sweep_workloads:
            train = TrainingConfig(sequence_length=seq, global_batch_size=batch)
            for strategy in sweep_strategies:
                ctx = PlannerContext(cluster, spec, train, strategy)
                config_dir = root / result_dir / _config_slug(spec, seq, strategy)
                config_dir.mkdir(parents=True, exist_ok=True)
                lines = [
                    f"model={spec.name} seq={seq} batch={batch} "
                    f"strategy={strategy.as_tuple()}"
                ]
                for method in methods:
                    evaluation = evaluate_method(method, ctx)
                    time = evaluation.iteration_time
                    peak = max(evaluation.peak_memory_per_device())
                    collector.add(
                        spec.name, method, seq, strategy.as_tuple(), time, peak
                    )
                    if time is None:
                        lines.append(f"{method}: OOM (peak {peak / 1024**3:.1f} GiB)")
                        continue
                    lines.append(
                        f"{method}: iteration {time:.3f}s, "
                        f"peak {peak / 1024**3:.1f} GiB, "
                        f"bubble {evaluation.simulation.bubble_ratio:.1%}"
                    )
                    if method == "AdaPipe":
                        write_trace_jsonl(
                            evaluation.simulation,
                            str(config_dir / "worker_trace.jsonl"),
                        )
                (config_dir / "output.txt").write_text("\n".join(lines) + "\n")

    (root / "expected_result.txt").write_text(collector.render() + "\n")
    collector.write_json(str(root / "results.json"))
    return root


def collect_results(output_dir: str) -> str:
    """Summarise a finished workflow — the ``collect_result.py`` analogue.

    Reads ``results.json`` and prints, per (model, sequence length), the
    best strategy per method and AdaPipe's speedup over the best DAPPLE.
    """
    root = pathlib.Path(output_dir)
    entries = json.loads((root / "results.json").read_text())
    collector = ResultCollector()
    collector.entries = [
        {**entry, "strategy": tuple(entry["strategy"])} for entry in entries
    ]

    keys = sorted(
        {(entry["model"], entry["sequence_length"]) for entry in collector.entries}
    )
    lines: List[str] = []
    for model, seq in keys:
        best = collector.best_by_method(model, seq)
        lines.append(f"{model} @ seq {seq}:")
        for method in METHODS:
            entry = best.get(method)
            if entry is None:
                lines.append(f"  {method:18s} OOM everywhere")
            else:
                lines.append(
                    f"  {method:18s} {entry['iteration_time']:.3f}s "
                    f"at {entry['strategy']}"
                )
        speedup = _best_speedup(collector, model, seq)
        if speedup is not None:
            lines.append(f"  AdaPipe speedup over best DAPPLE: {speedup:.2f}x")
    return "\n".join(lines)


def _best_speedup(
    collector: ResultCollector, model: str, seq: int
) -> Optional[float]:
    candidates = [
        collector.speedup(model, seq, "AdaPipe", baseline)
        for baseline in ("DAPPLE-Full", "DAPPLE-Non")
    ]
    candidates = [c for c in candidates if c is not None]
    return min(candidates) if candidates else None
