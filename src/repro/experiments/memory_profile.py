"""Shared config for the per-stage analysis experiments (Figures 8, 9, Table 4).

All three profile GPT-3 on cluster A with sequence length 16384 and
strategy (8, 8, 1) — the configuration of Section 7.4.
"""

from __future__ import annotations

from typing import Dict

from repro.baselines import evaluate_method
from repro.config import ParallelConfig, TrainingConfig
from repro.core.evaluate import PlanEvaluation
from repro.core.isomorphism import StageEvalCache
from repro.core.search import PlannerContext
from repro.hardware.cluster import cluster_a
from repro.model.spec import gpt3_175b

PARALLEL = ParallelConfig(8, 8, 1)
TRAIN = TrainingConfig(sequence_length=16384, global_batch_size=32)
MEMORY_LIMIT = 70 * 1024**3  # the paper's conservative DP constraint


def profile_context() -> PlannerContext:
    return PlannerContext(
        cluster_a(),
        gpt3_175b(),
        TRAIN,
        PARALLEL,
        memory_limit_bytes=MEMORY_LIMIT,
        # The Section 7.4 experiments evaluate several methods on this one
        # context; a shared cache lets them reuse stage evaluations.
        eval_cache=StageEvalCache(),
    )


def evaluate_all(methods) -> Dict[str, PlanEvaluation]:
    """Evaluate the Section 7.4 methods, keeping OOM plans for inspection."""
    ctx = profile_context()
    return {method: evaluate_method(method, ctx) for method in methods}
