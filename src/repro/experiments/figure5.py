"""Figure 5: end-to-end performance of Llama 2 (70B) on cluster A, 32 GPUs."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.end_to_end import end_to_end_cluster_a
from repro.model.spec import llama2_70b

WORKLOADS = ((4096, 128), (8192, 64), (16384, 32))


def run(fast: bool = False) -> ExperimentResult:
    return end_to_end_cluster_a(
        name="figure5",
        spec=llama2_70b(),
        num_devices=32,
        workloads=WORKLOADS if not fast else WORKLOADS[::2],
        fast=fast,
    )
