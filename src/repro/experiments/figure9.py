"""Figure 9: per-stage micro-step (forward + backward) time.

GPT-3, cluster A, seq 16384, (8, 8, 1). Reproduced claims: the -Full
baselines are flat across stages; Even Partitioning *decreases* with stage
id (front stages recompute more; paper: slowest/fastest ~ 1.17x); AdaPipe
re-balances the stages by moving layers to later stages.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.memory_profile import evaluate_all

METHODS = (
    "DAPPLE-Full",
    "Chimera-Full",
    "ChimeraD-Full",
    "Even Partitioning",
    "AdaPipe",
)


def run(fast: bool = False) -> ExperimentResult:
    methods = METHODS if not fast else ("DAPPLE-Full", "Even Partitioning", "AdaPipe")
    evaluations = evaluate_all(methods)
    result = ExperimentResult(
        name="figure9",
        title="Micro-step time per stage (s), GPT-3, seq 16384, (8,8,1)",
        headers=["method"] + [f"stage{s}" for s in range(8)] + ["max/min"],
    )
    for method in methods:
        plan = evaluations[method].plan
        times = [stage.micro_step_time for stage in plan.stages]
        ratio = max(times) / min(times)
        result.add_row(
            method, *(f"{t:.3f}" for t in times), f"{ratio:.2f}x"
        )
    result.add_note(
        "expected shape: -Full methods flat; Even Partitioning decreasing "
        "(~1.17x spread in the paper); AdaPipe re-flattened."
    )
    return result
