"""Table 3: iteration time of GPT-3 across 3D-parallelism strategies.

GPT-3, cluster A, 64 GPUs, sequence 4096, global batch 128. The paper
lists seven strategies; the claims to reproduce: DAPPLE-Non is only
feasible at t = 8, AdaPipe/Even Partitioning find better optima at t = 4,
(1, 32, 2) OOMs for the adaptive methods (always-saved outputs are large at
t = 1), and mid-size tensor parallelism wins overall.
"""

from __future__ import annotations

import time as time_module

from repro.config import ParallelConfig, TrainingConfig
from repro.core.isomorphism import StageEvalCache
from repro.core.search import PlannerContext
from repro.baselines import evaluate_method
from repro.experiments.common import ExperimentResult
from repro.hardware.cluster import cluster_a
from repro.model.spec import gpt3_175b

STRATEGIES = (
    (1, 32, 2),
    (2, 16, 2),
    (2, 32, 1),
    (4, 8, 2),
    (4, 16, 1),
    (8, 4, 2),
    (8, 8, 1),
)
METHODS = ("DAPPLE-Full", "DAPPLE-Non", "Even Partitioning", "AdaPipe")


def run(fast: bool = False) -> ExperimentResult:
    cluster = cluster_a()
    spec = gpt3_175b()
    train = TrainingConfig(sequence_length=4096, global_batch_size=128)
    strategies = STRATEGIES if not fast else STRATEGIES[3:]
    result = ExperimentResult(
        name="table3",
        title="GPT-3 iteration time by (TP, PP, DP), cluster A, seq 4096",
        headers=["(TP,PP,DP)"] + list(METHODS) + ["search"],
    )
    # One evaluation cache across every (strategy, method) pair: the
    # adaptive methods hit identical stage-evaluation problems whenever
    # they share a (t, d) pair, and always across methods per strategy.
    cache = StageEvalCache()
    best = {method: (None, float("inf")) for method in METHODS}
    inner_dp_total = 0
    for t, p, d in strategies:
        parallel = ParallelConfig(t, p, d)
        ctx = PlannerContext(cluster, spec, train, parallel, eval_cache=cache)
        cells = []
        row_started = time_module.perf_counter()  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity
        for method in METHODS:
            evaluation = evaluate_method(method, ctx)
            inner_dp_total += int(
                evaluation.plan.metadata.get("inner_dp_invocations", 0)
            )
            time = evaluation.iteration_time
            if time is None:
                cells.append("OOM")
            else:
                cells.append(f"{time:.3f}s")
                if time < best[method][1]:
                    best[method] = ((t, p, d), time)
        cells.append(f"{time_module.perf_counter() - row_started:.1f}s")  # adalint: disable=determinism -- wall-clock observability metadata; never feeds a planned or simulated quantity
        result.add_row((t, p, d), *cells)
    for method, (strategy, time) in best.items():
        if strategy is not None:
            result.add_note(f"best {method}: {strategy} at {time:.3f}s")
    result.add_note(
        "expected shape: DAPPLE-Non feasible only at t=8; adaptive methods "
        "fastest at t=4; (1,32,2) OOM for adaptive methods."
    )
    result.add_note(
        f"search: {inner_dp_total} inner-DP invocations, shared eval-cache "
        f"hit rate {cache.hit_rate:.0%} "
        f"({cache.hits} hits / {cache.lookups} lookups)"
    )

    # Orchestrated AdaPipe sweep over the same strategies, streaming the
    # frontier (best-so-far plans as they land). It shares `cache`, so the
    # stage evaluations above make the re-plan nearly free — this surfaces
    # the search trajectory, while the table rows surface the end states.
    from repro.core.sweep import SweepConfig, run_sweep

    frontier = []

    def on_progress(event) -> None:
        if event.improved and event.per_sample_time is not None:
            iteration = event.per_sample_time * train.global_batch_size
            frontier.append(
                f"frontier [{event.completed}/{len(strategies)}]: "
                f"{event.parallel} at {iteration:.3f}s/iter (modelled)"
            )

    sweep = run_sweep(
        cluster,
        spec,
        train,
        64,
        planner="AdaPipe",
        strategies=[ParallelConfig(t, p, d) for t, p, d in strategies],
        config=SweepConfig(workers=1),
        progress=on_progress,
        eval_cache=cache,
    )
    for note in frontier:
        result.add_note(note)
    result.add_note(f"orchestrated sweep: {sweep.stats.describe()}")
    return result
