"""Figure 1: simulated per-stage memory of GPT-3 under full vs no recompute.

GPT-3, (t, p, d) = (8, 8, 1), micro-batch 1, sequences of 4096/8192/16384
tokens, sequence parallelism and FlashAttention on. The paper's claims this
reproduces: no-recompute memory is strongly imbalanced (stage 0 highest,
decreasing with stage id), grows past the 80 GB device limit as sequences
lengthen, while full recomputation stays flat and far below the limit.
"""

from __future__ import annotations

from repro.config import ParallelConfig, TrainingConfig
from repro.core.partition_dp import even_boundaries
from repro.core.strategies import RecomputePolicy, stage_costs_for_policy
from repro.core.search import PlannerContext
from repro.experiments.common import ExperimentResult
from repro.hardware.cluster import cluster_a
from repro.model.spec import gpt3_175b
from repro.model.tensors import gib

SEQUENCE_LENGTHS = (4096, 8192, 16384)
PARALLEL = ParallelConfig(8, 8, 1)


def run(fast: bool = False) -> ExperimentResult:
    del fast  # the analytic memory model is instantaneous either way
    cluster = cluster_a()
    spec = gpt3_175b()
    result = ExperimentResult(
        name="figure1",
        title="Per-stage memory (GiB), GPT-3, (t,p,d)=(8,8,1)",
        headers=["policy", "seq"] + [f"stage{s}" for s in range(8)],
    )
    limit_gib = cluster.device.memory_bytes / 1024**3
    # One micro-batch per pipeline stage: with n >= p the schedule-aware
    # in-flight count min(n, p - s) reaches the steady-state p - s the
    # paper's figure depicts. (A batch smaller than the pipeline would —
    # correctly — flatten the curves, since stage 0 can never hold more
    # micro-batches than exist.)
    batch = PARALLEL.data_parallel * PARALLEL.pipeline_parallel
    for seq in SEQUENCE_LENGTHS:
        train = TrainingConfig(sequence_length=seq, global_batch_size=batch)
        ctx = PlannerContext(cluster, spec, train, PARALLEL)
        boundaries = even_boundaries(len(ctx.layers), PARALLEL.pipeline_parallel)
        for policy, label in (
            (RecomputePolicy.FULL, "Full ReComp."),
            (RecomputePolicy.NONE, "No ReComp."),
        ):
            evals = stage_costs_for_policy(
                ctx.profiler, boundaries, ctx.layers, policy, ctx.hard_capacity_bytes
            )
            cells = [f"{gib(e.memory.total_bytes):.1f}" for e in evals]
            result.add_row(label, seq, *cells)
    result.add_note(f"hardware limit: {limit_gib:.0f} GiB per device")
    result.add_note(
        "expected shape: No ReComp. decreases with stage id and crosses the "
        "limit as sequences lengthen; Full ReComp. stays flat and low."
    )
    # GPT-3-era recipes carry dropout; its 1-byte masks nudge the curves up
    # (at seq 8192, stage 0 crosses the 80 GiB line exactly as the paper's
    # figure shows). Report the dropout-enabled stage-0 values alongside.
    dropout_points = []
    for seq in SEQUENCE_LENGTHS:
        train = TrainingConfig(
            sequence_length=seq,
            global_batch_size=batch,
            hidden_dropout=0.1,
        )
        ctx = PlannerContext(cluster, spec, train, PARALLEL)
        boundaries = even_boundaries(len(ctx.layers), PARALLEL.pipeline_parallel)
        evals = stage_costs_for_policy(
            ctx.profiler, boundaries, ctx.layers, RecomputePolicy.NONE,
            ctx.hard_capacity_bytes,
        )
        dropout_points.append(f"{seq}: {gib(evals[0].memory.total_bytes):.1f}")
    result.add_note(
        "No ReComp. stage-0 with hidden dropout 0.1 (GiB): "
        + ", ".join(dropout_points)
    )
    return result
