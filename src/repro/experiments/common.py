"""Shared experiment plumbing: method sweeps and result tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.baselines import evaluate_method
from repro.config import ParallelConfig, TrainingConfig
from repro.core.evaluate import PlanEvaluation
from repro.core.isomorphism import StageEvalCache
from repro.core.search import PlannerContext, enumerate_parallel_strategies
from repro.hardware.cluster import ClusterSpec
from repro.model.spec import ModelSpec


@dataclass
class MethodRow:
    """One method's best result across the strategy sweep."""

    method: str
    evaluation: Optional[PlanEvaluation]
    strategy: Optional[ParallelConfig]

    @property
    def iteration_time(self) -> Optional[float]:
        if self.evaluation is None:
            return None
        return self.evaluation.iteration_time

    @property
    def oom(self) -> bool:
        return self.iteration_time is None

    def cell(self) -> str:
        if self.oom:
            return "OOM"
        return f"{self.iteration_time:.3f}s"


@dataclass
class ExperimentResult:
    """A rendered experiment: headers, rows, and free-form notes."""

    name: str
    title: str
    headers: List[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        self.rows.append([str(cell) for cell in cells])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for col, cell in enumerate(row):
                widths[col] = max(widths[col], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

        lines = [f"== {self.name}: {self.title} ==", fmt(self.headers)]
        lines.append("-+-".join("-" * w for w in widths))
        lines.extend(fmt(row) for row in self.rows)
        lines.extend(f"note: {note}" for note in self.notes)
        return "\n".join(lines)


def sweep_method(
    method: str,
    cluster: ClusterSpec,
    spec: ModelSpec,
    train: TrainingConfig,
    num_devices: int,
    strategies: Optional[Iterable[ParallelConfig]] = None,
    **context_kwargs,
) -> MethodRow:
    """Evaluate one method over the strategy sweep, keeping the fastest.

    Mirrors the paper's protocol for cluster A: "we will iterate all
    possible 3D parallelism strategies, and report the best performance".
    """
    if strategies is None:
        strategies = enumerate_parallel_strategies(num_devices, cluster, spec, train)
    # One evaluation cache across the whole sweep: strategies sharing a
    # (t, d) pair — and in particular the same strategy planned by several
    # methods via sweep_methods — reuse inner-DP solutions.
    context_kwargs.setdefault("eval_cache", StageEvalCache())
    best: Optional[PlanEvaluation] = None
    best_strategy: Optional[ParallelConfig] = None
    first: Optional[PlanEvaluation] = None
    for parallel in strategies:
        ctx = PlannerContext(cluster, spec, train, parallel, **context_kwargs)
        evaluation = evaluate_method(method, ctx)
        if first is None:
            first = evaluation
        time = evaluation.iteration_time
        if time is not None and (best is None or time < best.iteration_time):
            best = evaluation
            best_strategy = parallel
    if best is None:
        return MethodRow(method, first, None)
    return MethodRow(method, best, best_strategy)


def sweep_methods(
    methods: Sequence[str],
    cluster: ClusterSpec,
    spec: ModelSpec,
    train: TrainingConfig,
    num_devices: int,
    strategies: Optional[Sequence[ParallelConfig]] = None,
    **context_kwargs,
) -> Dict[str, MethodRow]:
    # Shared across methods too: AdaPipe and Even Partitioning meet the
    # same stage-evaluation problems on every common strategy.
    context_kwargs.setdefault("eval_cache", StageEvalCache())
    return {
        method: sweep_method(
            method, cluster, spec, train, num_devices, strategies, **context_kwargs
        )
        for method in methods
    }


def speedup_over(
    rows: Dict[str, MethodRow], method: str, baselines: Sequence[str]
) -> Optional[Tuple[str, float]]:
    """Speedup of ``method`` over the fastest *feasible* baseline listed."""
    target = rows.get(method)
    if target is None or target.oom:
        return None
    candidates = [
        (name, rows[name].iteration_time)
        for name in baselines
        if name in rows and not rows[name].oom
    ]
    if not candidates:
        return None
    name, time = min(candidates, key=lambda item: item[1])
    return name, time / target.iteration_time


def fast_strategy_subset(
    cluster: ClusterSpec,
    spec: ModelSpec,
    train: TrainingConfig,
    num_devices: int,
    limit: int = 3,
) -> List[ParallelConfig]:
    """A small, representative strategy subset for fast benchmark runs.

    Prefers moderate tensor-parallel sizes with p = 8 pipelines (the
    region Table 3 shows the optima live in), falling back to whatever the
    full enumeration offers.
    """
    all_strategies = enumerate_parallel_strategies(num_devices, cluster, spec, train)
    preferred = [
        s
        for s in all_strategies
        if s.pipeline_parallel == 8 and s.tensor_parallel >= 2
    ]
    chosen = preferred or all_strategies
    return chosen[:limit]
