"""Parameterized sweep harness with CSV output.

The figure experiments each hard-code one of the paper's configurations;
this module provides the general tool behind them: a cartesian sweep over
(model, sequence length, strategy, method) evaluated on a cluster, with
rows collected into a :class:`~repro.pipeline.tracing.ResultCollector` and
exportable as CSV for downstream analysis.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.baselines import evaluate_method
from repro.config import ParallelConfig, TrainingConfig
from repro.core.search import PlannerContext, enumerate_parallel_strategies
from repro.hardware.cluster import ClusterSpec
from repro.model.spec import ModelSpec
from repro.pipeline.tracing import ResultCollector


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated cell of a sweep."""

    model: str
    method: str
    sequence_length: int
    global_batch_size: int
    strategy: Tuple[int, int, int]
    iteration_time: Optional[float]
    peak_memory_bytes: float
    bubble_ratio: Optional[float]

    @property
    def oom(self) -> bool:
        return self.iteration_time is None


@dataclass
class Sweep:
    """Sweep definition and execution.

    Attributes:
        cluster: target hardware.
        models: architectures to sweep.
        workloads: (sequence length, global batch) pairs.
        methods: method names from the baseline registry.
        num_devices: accelerators per run.
        strategies: explicit strategies, or ``None`` to enumerate all.
        memory_limit_bytes: optional DP constraint override.
    """

    cluster: ClusterSpec
    models: Sequence[ModelSpec]
    workloads: Sequence[Tuple[int, int]]
    methods: Sequence[str]
    num_devices: int
    strategies: Optional[Sequence[ParallelConfig]] = None
    memory_limit_bytes: Optional[float] = None
    points: List[SweepPoint] = field(default_factory=list)

    def run(self) -> List[SweepPoint]:
        """Evaluate every cell; returns (and stores) the sweep points."""
        self.points = []
        for spec in self.models:
            for seq, batch in self.workloads:
                train = TrainingConfig(sequence_length=seq, global_batch_size=batch)
                strategies = self.strategies or enumerate_parallel_strategies(
                    self.num_devices, self.cluster, spec, train
                )
                for strategy in strategies:
                    ctx = PlannerContext(
                        self.cluster,
                        spec,
                        train,
                        strategy,
                        memory_limit_bytes=self.memory_limit_bytes,
                    )
                    for method in self.methods:
                        evaluation = evaluate_method(method, ctx)
                        simulation = evaluation.simulation
                        self.points.append(
                            SweepPoint(
                                model=spec.name,
                                method=method,
                                sequence_length=seq,
                                global_batch_size=batch,
                                strategy=strategy.as_tuple(),
                                iteration_time=evaluation.iteration_time,
                                peak_memory_bytes=max(
                                    evaluation.peak_memory_per_device()
                                ),
                                bubble_ratio=(
                                    simulation.bubble_ratio
                                    if simulation is not None
                                    and evaluation.iteration_time is not None
                                    else None
                                ),
                            )
                        )
        return self.points

    def to_collector(self) -> ResultCollector:
        collector = ResultCollector()
        for point in self.points:
            collector.add(
                point.model,
                point.method,
                point.sequence_length,
                point.strategy,
                point.iteration_time,
                point.peak_memory_bytes,
            )
        return collector

    def to_csv(self) -> str:
        """The sweep as CSV text (OOM cells keep an empty time column)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(
            [
                "model",
                "method",
                "sequence_length",
                "global_batch_size",
                "tensor_parallel",
                "pipeline_parallel",
                "data_parallel",
                "iteration_time_s",
                "peak_memory_gib",
                "bubble_ratio",
                "oom",
            ]
        )
        for point in self.points:
            writer.writerow(
                [
                    point.model,
                    point.method,
                    point.sequence_length,
                    point.global_batch_size,
                    *point.strategy,
                    "" if point.iteration_time is None else f"{point.iteration_time:.6f}",
                    f"{point.peak_memory_bytes / 1024**3:.3f}",
                    "" if point.bubble_ratio is None else f"{point.bubble_ratio:.4f}",
                    point.oom,
                ]
            )
        return buffer.getvalue()

    def write_csv(self, path: str) -> None:
        with open(path, "w", newline="") as handle:
            handle.write(self.to_csv())


def best_per_method(points: Iterable[SweepPoint]) -> dict:
    """Fastest feasible point per (model, seq, method)."""
    best: dict = {}
    for point in points:
        if point.oom:
            continue
        key = (point.model, point.sequence_length, point.method)
        current = best.get(key)
        if current is None or point.iteration_time < current.iteration_time:
            best[key] = point
    return best
