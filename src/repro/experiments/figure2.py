"""Figure 2: GPipe vs 1F1B scheduling behaviour.

Three stages, six micro-batches, backward twice the forward cost — the
paper's illustrative configuration. Reproduced claims: both schedules have
the same bubble count (2p - 2) but GPipe pins all n micro-batches while
1F1B pins at most p - s on stage s; the 1F1B iteration splits into warmup /
steady / ending phases.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.pipeline import gpipe_schedule, one_f_one_b_schedule, render_timeline, simulate
from repro.pipeline.tasks import StageCosts


def run(fast: bool = False) -> ExperimentResult:
    del fast
    costs = [
        StageCosts(forward=1.0, backward=2.0, activation_bytes=1.0)
        for _ in range(3)
    ]
    result = ExperimentResult(
        name="figure2",
        title="GPipe vs 1F1B (3 stages, 6 micro-batches, B = 2F)",
        headers=["schedule", "iteration", "bubble", "peak activations per stage"],
    )
    for build in (gpipe_schedule, one_f_one_b_schedule):
        schedule = build(costs, 6)
        sim = simulate(schedule)
        result.add_row(
            schedule.name,
            f"{sim.iteration_time:.1f}",
            f"{sim.bubble_ratio:.1%}",
            "[" + ", ".join(f"{b:.0f}" for b in sim.device_peak_bytes) + "]",
        )
        for line in render_timeline(sim, width=72).splitlines():
            result.add_note(line)
    result.add_note(
        "expected: same makespan/bubbles, but GPipe pins n=6 activations on "
        "every stage while 1F1B pins p-s (3, 2, 1)."
    )
    return result
