"""Shared driver for the end-to-end figures (5, 6, 7).

For every sequence length the paper evaluates, each method is planned and
simulated across the 3D-parallelism sweep and its best feasible strategy is
reported — the exact protocol of Section 7.2. Speedups are quoted against
the best DAPPLE variant, matching the figures' annotations.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.config import ParallelConfig, TrainingConfig
from repro.experiments.common import (
    ExperimentResult,
    fast_strategy_subset,
    sweep_methods,
)

from repro.model.spec import ModelSpec

CLUSTER_A_METHODS = (
    "DAPPLE-Full",
    "DAPPLE-Non",
    "Chimera-Full",
    "Chimera-Non",
    "ChimeraD-Full",
    "ChimeraD-Non",
    "Even Partitioning",
    "AdaPipe",
)
DAPPLE_BASELINES = ("DAPPLE-Full", "DAPPLE-Non")


def end_to_end_cluster_a(
    name: str,
    spec: ModelSpec,
    num_devices: int,
    workloads: Sequence[Tuple[int, int]],
    fast: bool,
    methods: Sequence[str] = CLUSTER_A_METHODS,
) -> ExperimentResult:
    """Cluster-A end-to-end sweep (Figures 5 and 6).

    Args:
        name: experiment id for the report.
        spec: model under training.
        num_devices: GPUs used (64 for GPT-3, 32 for Llama 2).
        workloads: (sequence length, global batch size) pairs.
        fast: restrict the strategy sweep to a representative subset.
        methods: methods to compare.
    """
    from repro.hardware.cluster import cluster_a

    cluster = cluster_a(num_nodes=max(1, num_devices // 8))
    result = ExperimentResult(
        name=name,
        title=f"End-to-end iteration time, {spec.name}, cluster A, "
        f"{num_devices} GPUs",
        headers=["seq", "batch"] + list(methods) + ["AdaPipe speedup"],
    )
    for seq, batch in workloads:
        train = TrainingConfig(sequence_length=seq, global_batch_size=batch)
        strategies = (
            fast_strategy_subset(cluster, spec, train, num_devices)
            if fast
            else None
        )
        rows = sweep_methods(
            methods, cluster, spec, train, num_devices, strategies
        )
        speed = _speedup_text(rows)
        result.add_row(
            seq, batch, *(rows[m].cell() for m in methods), speed
        )
    result.add_note(
        "speedup is AdaPipe vs the best feasible DAPPLE variant, as "
        "annotated in the paper's bars (paper: up to 1.32x GPT-3, 1.22x Llama 2)."
    )
    result.add_note(
        "expected shape: DAPPLE-Non OOMs at long sequences; Chimera trails "
        "DAPPLE at n >> p; AdaPipe >= Even Partitioning >= DAPPLE."
    )
    return result


def end_to_end_cluster_b(
    name: str,
    configs: Sequence[Tuple[ModelSpec, int, ParallelConfig, int]],
    fast: bool,
) -> ExperimentResult:
    """Cluster-B end-to-end runs (Figure 7).

    Cluster B uses fixed strategies from experience (MindSpore compilation
    is too slow to sweep, Section 7.1): each entry is
    ``(model, num_devices, strategy, global_batch)``.
    """
    from repro.hardware.cluster import cluster_b

    methods = ("DAPPLE-Full", "DAPPLE-Non", "Even Partitioning", "AdaPipe")
    del fast  # configs are already sized by the caller
    result = ExperimentResult(
        name=name,
        title="End-to-end iteration time, cluster B (Ascend 910, 32 GB)",
        headers=["model", "#dev", "(t,p,d)"] + list(methods) + ["AdaPipe speedup"],
    )
    for spec, num_devices, strategy, batch in configs:
        train = TrainingConfig(sequence_length=4096, global_batch_size=batch)
        cluster = cluster_b(num_nodes=max(1, num_devices // 8))
        rows = sweep_methods(
            methods, cluster, spec, train, num_devices, [strategy]
        )
        result.add_row(
            spec.name,
            num_devices,
            strategy.as_tuple(),
            *(rows[m].cell() for m in methods),
            _speedup_text(rows),
        )
    result.add_note(
        "expected shape: DAPPLE-Non OOMs at 32 GB even at seq 4096; AdaPipe "
        "and Even Partitioning exploit adaptive recomputation (paper: up to "
        "1.22x / 1.18x) and scale weakly to the large configs."
    )
    return result


def _speedup_text(rows) -> str:
    from repro.experiments.common import speedup_over

    speed = speedup_over(rows, "AdaPipe", DAPPLE_BASELINES)
    if speed is None:
        return "n/a"
    baseline, factor = speed
    return f"{factor:.2f}x vs {baseline}"
