"""Table 4: recomputation and partitioning configuration per stage.

GPT-3, cluster A, seq 16384, (8, 8, 1). Reproduced claims: saved-unit
counts increase with stage id for both adaptive methods (later stages keep
fewer micro-batches in flight, so they can afford to save more); AdaPipe
additionally shifts layers from early to late stages while Even
Partitioning keeps ~24 layers everywhere.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.memory_profile import evaluate_all

METHODS = ("AdaPipe", "Even Partitioning")


def run(fast: bool = False) -> ExperimentResult:
    del fast
    evaluations = evaluate_all(METHODS)
    result = ExperimentResult(
        name="table4",
        title="Saved units and layer counts per stage, GPT-3, seq 16384",
        headers=["method", "row"] + [f"stage{s}" for s in range(8)],
    )
    for method in METHODS:
        plan = evaluations[method].plan
        result.add_row(method, "Saved Units", *plan.saved_unit_counts())
        result.add_row(method, "# Layers", *plan.layer_counts())
    result.add_note(
        "expected shape: saved units strictly growing with stage id; "
        "AdaPipe's layer counts increase toward later stages."
    )
    return result
