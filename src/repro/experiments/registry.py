"""Registry mapping paper artifact ids to experiment runners."""

from __future__ import annotations

from typing import Callable, Dict

from repro.config import ConfigError
from repro.experiments import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    heterogeneous,
    robustness,
    table3,
    table4,
)
from repro.experiments.common import ExperimentResult

EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "figure1": figure1.run,
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "figure7": figure7.run,
    "figure8": figure8.run,
    "figure9": figure9.run,
    "figure10": figure10.run,
    "heterogeneous": heterogeneous.run,
    "robustness": robustness.run,
    "table3": table3.run,
    "table4": table4.run,
}


def get_experiment(name: str) -> Callable[..., ExperimentResult]:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(name: str, fast: bool = False) -> ExperimentResult:
    return get_experiment(name)(fast=fast)
