"""Figure 8: peak per-stage memory of every method.

GPT-3, cluster A, seq 16384, (8, 8, 1). Reproduced claims: DAPPLE-Full's
edge stages are heavier (embedding / decoding head) and its middle stages
decrease with stage id with >30 GB wasted; DAPPLE-Non's stage 0 exceeds
capacity with ~2.33x imbalance over the last stage; Chimera replicates
parameters (higher Full-variant floors, middle-heavy Non profile); AdaPipe
and Even Partitioning sit balanced around the 70 GB DP constraint.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.memory_profile import MEMORY_LIMIT, evaluate_all
from repro.model.tensors import gib

METHODS = (
    "DAPPLE-Full",
    "DAPPLE-Non",
    "Chimera-Full",
    "Chimera-Non",
    "ChimeraD-Full",
    "ChimeraD-Non",
    "Even Partitioning",
    "AdaPipe",
)


def run(fast: bool = False) -> ExperimentResult:
    methods = METHODS if not fast else METHODS[:2] + METHODS[-2:]
    evaluations = evaluate_all(methods)
    result = ExperimentResult(
        name="figure8",
        title="Peak memory per stage (GiB), GPT-3, seq 16384, (8,8,1)",
        headers=["method"] + [f"stage{s}" for s in range(8)] + ["fits?"],
    )
    for method in methods:
        evaluation = evaluations[method]
        peaks = evaluation.peak_memory_per_device()
        result.add_row(
            method,
            *(f"{gib(peak):.1f}" for peak in peaks),
            "OOM" if evaluation.oom else "yes",
        )
    result.add_note(f"DP memory constraint: {gib(MEMORY_LIMIT):.0f} GiB; device 80 GiB")
    result.add_note(
        "expected shape: DAPPLE-Non decreasing with ~2.33x stage0/stage7 "
        "imbalance and OOM; Chimera-Non middle-heavy; AdaPipe balanced near "
        "the constraint."
    )
    return result
