"""Figure 3: the AdaPipe overview, executed.

The paper's overview figure walks a minimal two-stage pipeline through
three configurations: (top) full recomputation everywhere, (middle)
adaptive recomputation — stage 1 saves more than stage 0, shortening
warmup/ending but leaving stage 0 the steady-phase bottleneck — and
(bottom) adaptive partitioning, which shifts layers from stage 0 to
stage 1 and removes the imbalance bubble. This experiment *runs* that
story on a small GPT config and prints, per step, the per-stage micro-step
times, saved units, the simulated timelines, and the iteration time.
"""

from __future__ import annotations

from repro.config import ParallelConfig, TrainingConfig
from repro.core.evaluate import evaluate_plan
from repro.core.search import (
    PlannerContext,
    plan_adapipe,
    plan_even_partitioning,
    plan_policy,
)
from repro.core.strategies import RecomputePolicy
from repro.experiments.common import ExperimentResult
from repro.hardware.cluster import cluster_a
from repro.model.spec import gpt3_13b
from repro.pipeline.visualize import render_timeline

PARALLEL = ParallelConfig(8, 2, 1)
TRAIN = TrainingConfig(sequence_length=8192, global_batch_size=16)
MEMORY_LIMIT = 15 * 1024**3  # tight enough that stage 0 must recompute


def run(fast: bool = False) -> ExperimentResult:
    del fast
    ctx = PlannerContext(
        cluster_a(2), gpt3_13b(), TRAIN, PARALLEL, memory_limit_bytes=MEMORY_LIMIT
    )
    steps = [
        ("Original (full recomp.)",
         plan_policy(ctx, RecomputePolicy.FULL, "Full recomputation")),
        ("Opt. 1 (adaptive recomp.)", plan_even_partitioning(ctx)),
        ("Opt. 2 (+ adaptive partitioning)", plan_adapipe(ctx)),
    ]
    result = ExperimentResult(
        name="figure3",
        title="AdaPipe overview on a 2-stage pipeline (GPT-3 13B, seq 8192)",
        headers=[
            "step", "iteration", "stage0 f+b", "stage1 f+b",
            "saved units", "layers",
        ],
    )
    times = []
    for label, plan in steps:
        evaluation = evaluate_plan(plan, ctx.cluster)
        times.append(evaluation.iteration_time)
        result.add_row(
            label,
            f"{evaluation.iteration_time:.3f}s",
            f"{plan.stages[0].micro_step_time:.3f}s",
            f"{plan.stages[1].micro_step_time:.3f}s",
            plan.saved_unit_counts(),
            plan.layer_counts(),
        )
        for line in render_timeline(evaluation.simulation, width=64).splitlines()[:4]:
            result.add_note(line)
    result.add_note(
        "expected: opt. 1 speeds both stages but leaves stage 0 slower "
        "(steady-phase bottleneck); opt. 2 moves layers to stage 1 and "
        "re-balances — each step strictly faster than the last."
    )
    result.add_note(
        f"iteration times: {' -> '.join(f'{t:.2f}s' for t in times)}"
    )
    return result
