"""Forward dataflow facts for adalint: attribute read-sets and purity.

Two analyses live here, both computed over the
:class:`~repro.analysis.callgraph.CallGraph` closure of a root function.

**Read-sets.** ``direct_reads(func)`` is the flat lattice join of every
name and attribute a function loads; ``transitive_reads`` unions the
direct sets over the call-graph closure. Digest-coverage v2 asks "could
this digest possibly read field X?" — the union over-approximates along
resolved edges (no path sensitivity), so a field read anywhere in the
closure counts as covered. Unresolved callees contribute nothing, which
is the analysis's documented incompleteness: a field read only inside an
unresolvable dynamic call is reported missing, never silently covered.

**Purity.** A function is treated as impure if it (a) stores into an
attribute or subscript rooted at one of its parameters, or calls a
known mutating method (``append``/``update``/``sort``/...) on one,
(b) declares ``global``/``nonlocal`` or assigns a module-level name, or
(c) calls I/O — ``open``/``print``/``input``, or anything reached
through ``os``/``subprocess``/``shutil``/``socket``/``pathlib`` writes
(``os.path`` and ``os.environ`` *reads* are exempt). Mutating fresh
locals is allowed: purity here is the §9 duration-transform contract
(inputs unchanged, no hidden state), not referential transparency.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.analysis.project import FunctionInfo

__all__ = [
    "PurityViolation",
    "PurityReport",
    "check_purity",
    "direct_reads",
    "transitive_reads",
]

# Methods that mutate their receiver in place on builtin containers /
# numpy arrays. A call ``param.<one of these>(...)`` is an argument
# mutation.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "sort",
        "reverse",
        "fill",
        "sort_values",
        "popitem",
    }
)

# Callables whose invocation is I/O by definition.
IO_BUILTINS = frozenset({"open", "print", "input"})

# Modules any attribute-call into which counts as I/O (allowlist below).
IO_MODULES = frozenset({"os", "subprocess", "shutil", "socket", "pathlib"})

# os.path.* and os.environ reads are pure computations over strings /
# process state snapshots; json/hashlib are pure transformers.
IO_EXEMPT_PREFIXES = ("os.path.", "os.environ", "os.cpu_count", "os.getpid")


def direct_reads(func: ast.FunctionDef) -> Set[str]:
    """Every bare name loaded plus every attribute name loaded.

    Attribute reads contribute their terminal attribute (``task.overlap``
    contributes both ``task`` and ``overlap``) — field coverage is a
    question about attribute names, not access paths.
    """
    reads: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            reads.add(node.id)
        elif isinstance(node, ast.Attribute):
            reads.add(node.attr)
    return reads


def transitive_reads(
    graph: CallGraph, root: FunctionInfo
) -> Tuple[Set[str], Dict[str, FunctionInfo]]:
    """Union of ``direct_reads`` over the call-graph closure of ``root``.

    Returns ``(reads, witnesses)`` where ``witnesses`` maps each read
    name to one closure function that reads it — used to explain *where*
    a field is covered when a finding needs context.
    """
    reads: Set[str] = set()
    witnesses: Dict[str, FunctionInfo] = {}
    for func in graph.reachable([root]).values():
        for name in direct_reads(func.node):
            if name not in reads:
                reads.add(name)
                witnesses[name] = func
    return reads, witnesses


@dataclass(frozen=True)
class PurityViolation:
    """One impurity found in the closure of a transform root."""

    func: FunctionInfo
    line: int
    kind: str  # "arg-mutation" | "global-write" | "io-call"
    detail: str


@dataclass
class PurityReport:
    root: FunctionInfo
    violations: List[PurityViolation] = field(default_factory=list)
    # function key -> call chain from root, for finding messages
    chains: Dict[Tuple[str, str], List[FunctionInfo]] = field(default_factory=dict)

    @property
    def is_pure(self) -> bool:
        return not self.violations


def _store_root(node: ast.expr) -> Optional[str]:
    """The base name of an attribute/subscript store target chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _call_dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` as a dotted string, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _function_violations(func: FunctionInfo) -> List[PurityViolation]:
    node = func.node
    params = {
        arg.arg
        for arg in [
            *node.args.posonlyargs,
            *node.args.args,
            *node.args.kwonlyargs,
        ]
        if arg.arg != "self"
    }
    imports = func.module.imports
    violations: List[PurityViolation] = []

    def module_of(dotted: str) -> str:
        head = dotted.split(".", 1)[0]
        canonical = imports.get(head, head)
        return canonical.split(".", 1)[0]

    for inner in ast.walk(node):
        if isinstance(inner, (ast.Global, ast.Nonlocal)):
            violations.append(
                PurityViolation(
                    func,
                    inner.lineno,
                    "global-write",
                    f"declares {'global' if isinstance(inner, ast.Global) else 'nonlocal'} "
                    + ", ".join(inner.names),
                )
            )
        elif isinstance(inner, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                inner.targets
                if isinstance(inner, ast.Assign)
                else [inner.target]
            )
            for target in targets:
                flat = (
                    target.elts
                    if isinstance(target, (ast.Tuple, ast.List))
                    else [target]
                )
                for element in flat:
                    if isinstance(element, (ast.Attribute, ast.Subscript)):
                        base = _store_root(element)
                        if base is not None and base in params:
                            violations.append(
                                PurityViolation(
                                    func,
                                    element.lineno,
                                    "arg-mutation",
                                    f"stores into parameter '{base}'",
                                )
                            )
        elif isinstance(inner, ast.Call):
            callee = inner.func
            if isinstance(callee, ast.Name):
                if callee.id in IO_BUILTINS:
                    violations.append(
                        PurityViolation(
                            func, inner.lineno, "io-call", f"calls {callee.id}()"
                        )
                    )
            elif isinstance(callee, ast.Attribute):
                if (
                    callee.attr in MUTATING_METHODS
                    and isinstance(callee.value, ast.Name)
                    and callee.value.id in params
                ):
                    violations.append(
                        PurityViolation(
                            func,
                            inner.lineno,
                            "arg-mutation",
                            f"calls mutating .{callee.attr}() on parameter "
                            f"'{callee.value.id}'",
                        )
                    )
                dotted = _call_dotted(callee)
                if dotted is not None and "." in dotted:
                    canonical_head = module_of(dotted)
                    canonical = ".".join(
                        [canonical_head, *dotted.split(".")[1:]]
                    )
                    if canonical_head in IO_MODULES and not canonical.startswith(
                        IO_EXEMPT_PREFIXES
                    ):
                        violations.append(
                            PurityViolation(
                                func,
                                inner.lineno,
                                "io-call",
                                f"calls {canonical}()",
                            )
                        )
    return violations


def check_purity(graph: CallGraph, root: FunctionInfo) -> PurityReport:
    """Purity of ``root`` and everything reachable from it.

    Constructor calls (``ClassName(...)`` -> ``__init__``) are included
    in the closure like any resolved edge; ``self``-stores inside
    ``__init__`` are not argument mutations (``self`` is excluded from
    the parameter set), so frozen-dataclass ``object.__setattr__``
    idioms do not false-positive.
    """
    report = PurityReport(root=root)
    closure = graph.reachable([root])
    for func in closure.values():
        found = _function_violations(func)
        if found:
            chain = graph.call_chain(root, func)
            if chain is not None:
                report.chains[func.key()] = chain
            report.violations.extend(found)
    report.violations.sort(key=lambda v: (v.func.relpath, v.line, v.detail))
    return report
