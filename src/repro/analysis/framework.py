"""adalint core: rule registry, file walker, suppressions, baseline, runner.

The framework is deliberately small: a *rule* is an object with a ``name``
and a ``check(module, ctx)`` generator; the runner parses every ``.py``
file under the requested paths once, hands each parsed module to each
rule, and post-processes the findings through inline suppressions and the
optional baseline file.

Inline suppressions are line-scoped comments::

    elapsed = time.time() - t0  # adalint: disable=determinism -- wall clock is observability metadata only

Several rules may be listed (comma-separated) and ``disable=all`` mutes
every rule on the line. The text after ``--`` is the *reason*; a
suppression without one is itself reported (rule ``bare-suppression``), so
every accepted exception in the tree carries a written justification.
Suppressions naming a rule the registry does not know are reported too
(rule ``unknown-suppression``) — they are typos that silently mute
nothing.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

from repro.analysis.findings import Finding

#: Rules emitted by the framework itself (always enforceable, never
#: suppressible — muting the meta-rules would reopen the loophole they close).
FRAMEWORK_RULES = ("parse-error", "bare-suppression", "unknown-suppression")

_SUPPRESS_RE = re.compile(
    r"#\s*adalint:\s*disable=([A-Za-z0-9_,\- ]+?)(?:\s*--\s*(.*\S))?\s*$"
)


class Rule:
    """Base class of adalint rules.

    Subclasses set ``name``, ``severity`` and ``description`` and implement
    :meth:`check` as a generator of :class:`Finding`.
    """

    name: str = ""
    severity: str = "error"
    description: str = ""

    def check(self, module: "SourceModule", ctx: "LintContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: "SourceModule", line: int, message: str, col: int = 0
    ) -> Finding:
        return Finding(
            rule=self.name,
            severity=self.severity,
            path=module.relpath,
            line=line,
            message=message,
            col=col,
        )

    def finding_at(
        self, module: "SourceModule", node: ast.AST, message: str
    ) -> Finding:
        """Finding anchored to an AST node, threading line *and* column."""
        return self.finding(
            module,
            getattr(node, "lineno", 1),
            message,
            col=getattr(node, "col_offset", -1) + 1,
        )


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.name:
        raise ValueError(f"rule class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def registered_rule_names() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def rule_description(name: str) -> str:
    """Description of a registered rule; framework meta-rules included."""
    meta = {
        "parse-error": "file failed to parse; no rule could run on it",
        "bare-suppression": "inline suppression without a written reason",
        "unknown-suppression": "suppression names a rule the registry does not know",
    }
    if name in meta:
        return meta[name]
    cls = _REGISTRY.get(name)
    return cls.description if cls is not None else ""


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in name order."""
    import repro.analysis.rules  # noqa: F401  -- importing registers the rules

    return [_REGISTRY[name]() for name in registered_rule_names()]


@dataclass
class SourceModule:
    """One parsed file under lint."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, relpath: str) -> "SourceModule":
        source = path.read_text()
        return cls(
            path=path,
            relpath=relpath,
            source=source,
            tree=ast.parse(source, filename=str(path)),
            lines=source.splitlines(),
        )


#: Process-wide parse cache keyed (resolved path) -> (mtime_ns, size,
#: module). Repeated lint runs in one process — ``--changed`` loops, the
#: validate battery, the test suite — re-parse only files whose stat
#: signature moved. Entries are small (one AST per file) and the tree
#: under lint is bounded, so no eviction policy is needed.
_PARSE_CACHE: Dict[str, Tuple[int, int, "SourceModule"]] = {}


def parse_cached(path: Path, relpath: str) -> "SourceModule":
    """Parse ``path``, reusing the cache when (mtime, size) is unchanged.

    The cached module's ``relpath`` is rewritten to the caller's view:
    the same file can be ``pipeline/tasks.py`` under one lint root and
    ``src/repro/pipeline/tasks.py`` under another.
    """
    import dataclasses

    key = str(path)
    stat = path.stat()
    signature = (stat.st_mtime_ns, stat.st_size)
    entry = _PARSE_CACHE.get(key)
    if entry is not None and (entry[0], entry[1]) == signature:
        module = entry[2]
    else:
        module = SourceModule.parse(path, relpath)
        _PARSE_CACHE[key] = (signature[0], signature[1], module)
    if module.relpath != relpath:
        module = dataclasses.replace(module, relpath=relpath)
    return module


def clear_parse_cache() -> None:
    """Drop every cached parse (tests and benchmarks use this)."""
    _PARSE_CACHE.clear()


@dataclass(frozen=True)
class Suppression:
    """One ``# adalint: disable=...`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str

    def covers(self, rule: str) -> bool:
        return "all" in self.rules or rule in self.rules


def parse_suppressions(lines: Sequence[str]) -> Dict[int, Suppression]:
    """Line number -> suppression, for every disable comment in ``lines``."""
    table: Dict[int, Suppression] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        table[number] = Suppression(
            line=number, rules=rules, reason=(match.group(2) or "").strip()
        )
    return table


class LintContext:
    """Shared state of one lint run: the root and a parse cache.

    Rules that need *other* files than the one under check (e.g. the
    digest-coverage rule reads the dataclass definition feeding a digest
    function) go through :meth:`module_at`, so every file is parsed at
    most once per run even when several rules consult it.
    """

    def __init__(self, root: Path) -> None:
        self.root = root
        self._cache: Dict[Path, Optional[SourceModule]] = {}
        self._projects: Dict[Path, object] = {}

    def module_at(self, path: Path) -> Optional[SourceModule]:
        path = path.resolve()
        if path not in self._cache:
            try:
                relpath = path.relative_to(self.root).as_posix()
            except ValueError:
                relpath = path.as_posix()
            try:
                self._cache[path] = parse_cached(path, relpath)
            except (OSError, SyntaxError):
                self._cache[path] = None
        return self._cache[path]

    def project_at(self, root: Path) -> object:
        """The :class:`~repro.analysis.project.ProjectIndex` for ``root``.

        Built on first request and shared by every interprocedural rule
        consulting the same tree in this run. Typed ``object`` here only
        to keep the framework module import-light; the concrete type is
        ``ProjectIndex``.
        """
        root = root.resolve()
        if root not in self._projects:
            from repro.analysis.project import build_project

            self._projects[root] = build_project(self, root)
        return self._projects[root]


@dataclass
class LintResult:
    """Outcome of one :func:`run_lint` run.

    Attributes:
        findings: unsuppressed, non-baselined findings, sorted by location.
        suppressed: findings muted by an inline suppression comment.
        baselined: findings muted by the baseline file.
        files_scanned: number of ``.py`` files checked.
        rules: names of the rules that ran.
    """

    findings: List[Finding]
    suppressed: List[Finding]
    baselined: List[Finding]
    files_scanned: int
    rules: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.findings


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths``, deterministic order, no dupes."""
    seen: Set[Path] = set()
    ordered: List[Path] = []
    for path in paths:
        path = Path(path).resolve()
        if path.is_file():
            candidates = [path]
        else:
            candidates = sorted(path.rglob("*.py"))
        for candidate in candidates:
            if candidate.suffix != ".py" or candidate in seen:
                continue
            if any(
                part == "__pycache__" or part.startswith(".")
                for part in candidate.parts[1:]
            ):
                continue
            seen.add(candidate)
            ordered.append(candidate)
    return ordered


def load_baseline(path: Path) -> Set[Tuple[str, str, str]]:
    """Read a baseline file: the findings a tree is allowed to keep.

    The file is the ``findings`` list of a JSON report (or a full report);
    entries match on ``(rule, path, message)`` — line-insensitive, so
    unrelated edits do not invalidate the baseline.
    """
    document = json.loads(Path(path).read_text())
    entries = document["findings"] if isinstance(document, dict) else document
    return {
        (entry["rule"], entry["path"], entry["message"]) for entry in entries
    }


def _lint_root(paths: Sequence[Path]) -> Path:
    resolved = [Path(path).resolve() for path in paths]
    if len(resolved) == 1:
        only = resolved[0]
        return only if only.is_dir() else only.parent
    import os

    return Path(os.path.commonpath([str(path) for path in resolved]))


#: Public name for the root-inference rule: the directory findings are
#: reported relative to, given the paths a run was asked to lint. The CLI
#: uses it to pin ``--changed`` runs to the same root as full runs.
default_lint_root = _lint_root


def run_lint(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Set[Tuple[str, str, str]]] = None,
    root: Optional[Path] = None,
) -> LintResult:
    """Run ``rules`` (default: every registered rule) over ``paths``.

    Findings are filtered through inline suppressions first and the
    ``baseline`` set second; framework meta-findings (parse errors, bare
    or unknown suppressions) bypass both filters by design.
    """
    if rules is None:
        rules = default_rules()
    paths = [Path(path) for path in paths]
    root = Path(root).resolve() if root is not None else _lint_root(paths)
    ctx = LintContext(root)
    known_rules = set(registered_rule_names()) | {rule.name for rule in rules}

    raw: List[Finding] = []
    modules: List[SourceModule] = []
    for path in iter_python_files(paths):
        try:
            relpath = path.relative_to(root).as_posix()
        except ValueError:
            relpath = path.as_posix()
        try:
            module = parse_cached(path, relpath)
        except SyntaxError as err:
            raw.append(
                Finding(
                    rule="parse-error",
                    severity="error",
                    path=relpath,
                    line=err.lineno or 1,
                    message=f"file does not parse: {err.msg}",
                    col=err.offset or 0,
                )
            )
            continue
        ctx._cache[path.resolve()] = module
        modules.append(module)

    files_scanned = len(modules)
    for module in modules:
        for rule in rules:
            raw.extend(rule.check(module, ctx))
        for suppression in parse_suppressions(module.lines).values():
            if not suppression.reason:
                raw.append(
                    Finding(
                        rule="bare-suppression",
                        severity="error",
                        path=module.relpath,
                        line=suppression.line,
                        message=(
                            "suppression carries no reason; write "
                            "'# adalint: disable=<rule> -- <why this is sound>'"
                        ),
                    )
                )
            for name in suppression.rules:
                if name != "all" and name not in known_rules:
                    raw.append(
                        Finding(
                            rule="unknown-suppression",
                            severity="error",
                            path=module.relpath,
                            line=suppression.line,
                            message=f"suppression names unknown rule {name!r}",
                        )
                    )

    suppression_tables = {
        module.relpath: parse_suppressions(module.lines) for module in modules
    }
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    baselined: List[Finding] = []
    for finding in sorted(raw, key=Finding.sort_key):
        if finding.rule not in FRAMEWORK_RULES:
            table = suppression_tables.get(finding.path, {})
            entry = table.get(finding.line)
            if entry is not None and entry.covers(finding.rule) and entry.reason:
                suppressed.append(finding)
                continue
            if baseline and finding.baseline_key() in baseline:
                baselined.append(finding)
                continue
        findings.append(finding)

    return LintResult(
        findings=findings,
        suppressed=suppressed,
        baselined=baselined,
        files_scanned=files_scanned,
        rules=tuple(rule.name for rule in rules),
    )
