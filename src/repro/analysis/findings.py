"""Finding model of the adalint static analysis pass.

A :class:`Finding` is one rule violation at one source location. Findings
are plain frozen data so reporters, baselines, and tests can compare and
serialise them without knowing anything about the rule that produced them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

#: Recognised severities, most severe first.
SEVERITIES: Tuple[str, ...] = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation.

    Attributes:
        rule: name of the rule that fired (``"digest-coverage"``, ...).
        severity: ``"error"`` (gates CI) or ``"warning"``.
        path: file the finding is in, relative to the lint root (POSIX
            separators, stable across platforms).
        line: 1-based source line the finding anchors to.
        message: human-readable statement of the violated invariant.
        col: 1-based source column, or 0 when the rule could not anchor
            the finding to a column (file-level findings, old producers).
    """

    rule: str
    severity: str
    path: str
    line: int
    message: str
    col: int = 0

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def location(self) -> str:
        if self.col > 0:
            return f"{self.path}:{self.line}:{self.col}"
        return f"{self.path}:{self.line}"

    def baseline_key(self) -> Tuple[str, str, str]:
        """Identity used by baseline files.

        Deliberately excludes line *and* column, so unrelated edits that
        shift a known finding do not un-baseline it, and baselines
        written before columns existed stay valid.
        """
        return (self.rule, self.path, self.message)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
