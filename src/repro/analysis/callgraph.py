"""Call-graph construction over a :class:`~repro.analysis.project.ProjectIndex`.

Resolution is intentionally *syntactic plus import-table*: a call site is
mapped to a project function when its callee expression names one
directly, without type inference or heap modelling. The forms resolved
(§15 of ALGORITHMS.md gives the soundness argument):

* ``helper(...)`` — a bare name: a function in the same module, or a
  from-imported symbol resolved through the import table;
* ``module.helper(...)`` — an attribute on an imported module alias;
* ``self.method(...)`` — a method of the enclosing class (when the call
  site is itself inside a method);
* ``ClassName.method(...)`` — an explicit class-qualified method in the
  same module or an imported class;
* ``ClassName(...)`` — constructor calls resolve to ``__init__`` when
  the class is local or imported and defines one;
* ``param.method(...)`` where the parameter is annotated with a project
  class — resolved through the annotation (this is what lets the read-set
  analysis follow ``task.key.stage`` style accessors and the purity
  analysis follow ``schedule.with_durations(...)``).

Unresolvable callees (builtins, numpy, dynamic dispatch) are simply
absent from the graph; each analysis documents how it degrades there.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.project import FunctionInfo, ModuleInfo, ProjectIndex

__all__ = ["CallGraph", "annotation_class", "build_call_graph"]


def annotation_class(annotation: Optional[ast.expr]) -> Optional[str]:
    """Terminal class name of a parameter annotation, if any.

    Handles ``Schedule``, ``tasks.Schedule``, quoted forward references,
    and ``Optional[Schedule]`` / ``"Schedule | None"``-style wrappers by
    unwrapping one subscript level.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.Subscript):
        # Optional[X], Sequence[X]: only Optional is transparent enough
        # to resolve safely; container element types are not the receiver.
        base = annotation.value
        if isinstance(base, ast.Name) and base.id == "Optional":
            return annotation_class(annotation.slice)
        if isinstance(base, ast.Attribute) and base.attr == "Optional":
            return annotation_class(annotation.slice)
        return None
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        for side in (annotation.left, annotation.right):
            name = annotation_class(side)
            if name is not None and name != "None":
                return name
        return None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    return None


def _param_annotations(func: ast.FunctionDef) -> Dict[str, str]:
    """Parameter name -> annotated class name (terminal component)."""
    table: Dict[str, str] = {}
    args = func.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        name = annotation_class(arg.annotation)
        if name is not None:
            table[arg.arg] = name
    return table


class CallGraph:
    """Resolved call edges between project functions."""

    def __init__(self, project: ProjectIndex) -> None:
        self.project = project
        # (relpath, qualname) -> list of (callee FunctionInfo, call lineno)
        self.edges: Dict[Tuple[str, str], List[Tuple[FunctionInfo, int]]] = {}

    def callees(self, func: FunctionInfo) -> List[Tuple[FunctionInfo, int]]:
        return self.edges.get(func.key(), [])

    def reachable(self, roots: Iterable[FunctionInfo]) -> Dict[Tuple[str, str], FunctionInfo]:
        """BFS closure over call edges, keyed by function identity."""
        seen: Dict[Tuple[str, str], FunctionInfo] = {}
        frontier = [root for root in roots]
        for root in frontier:
            seen.setdefault(root.key(), root)
        while frontier:
            current = frontier.pop()
            for callee, _line in self.callees(current):
                if callee.key() not in seen:
                    seen[callee.key()] = callee
                    frontier.append(callee)
        return seen

    def call_chain(
        self, root: FunctionInfo, target: FunctionInfo
    ) -> Optional[List[FunctionInfo]]:
        """Shortest root -> target path, for explanatory finding messages."""
        if root.key() == target.key():
            return [root]
        parents: Dict[Tuple[str, str], FunctionInfo] = {}
        seen: Set[Tuple[str, str]] = {root.key()}
        frontier = [root]
        while frontier:
            next_frontier: List[FunctionInfo] = []
            for current in frontier:
                for callee, _line in self.callees(current):
                    if callee.key() in seen:
                        continue
                    seen.add(callee.key())
                    parents[callee.key()] = current
                    if callee.key() == target.key():
                        chain = [callee]
                        node = current
                        while node.key() != root.key():
                            chain.append(node)
                            node = parents[node.key()]
                        chain.append(root)
                        return list(reversed(chain))
                    next_frontier.append(callee)
            frontier = next_frontier
        return None


def _resolve_class_method(
    project: ProjectIndex, module: ModuleInfo, class_name: str, method: str
) -> Optional[FunctionInfo]:
    qualname = f"{class_name}.{method}"
    if class_name in module.classes:
        return module.function(qualname)
    resolved = project.resolve_imported(module, class_name)
    if resolved is not None:
        target_module, symbol = resolved
        if symbol is None or symbol == class_name:
            return target_module.function(qualname)
        return target_module.function(f"{symbol}.{method}")
    return None


def _resolve_call(
    project: ProjectIndex,
    caller: FunctionInfo,
    call: ast.Call,
    param_classes: Dict[str, str],
) -> Optional[FunctionInfo]:
    module = caller.module
    callee = call.func
    if isinstance(callee, ast.Name):
        name = callee.id
        local = module.function(name)
        if local is not None:
            return local
        if name in module.classes:
            return module.function(f"{name}.__init__")
        resolved = project.resolve_imported(module, name)
        if resolved is not None:
            target_module, symbol = resolved
            if symbol is None:
                return None  # a bare module alias is not callable here
            func = target_module.function(symbol)
            if func is not None:
                return func
            if symbol in target_module.classes:
                return target_module.function(f"{symbol}.__init__")
        return None
    if isinstance(callee, ast.Attribute):
        method = callee.attr
        receiver = callee.value
        if isinstance(receiver, ast.Name):
            base = receiver.id
            if base == "self" and caller.cls is not None:
                resolved_self = module.function(f"{caller.cls}.{method}")
                if resolved_self is not None:
                    return resolved_self
                return None
            # ClassName.method or imported-class.method
            class_hit = _resolve_class_method(project, module, base, method)
            if class_hit is not None:
                return class_hit
            # module alias: perturb.lower_spec_durations(...)
            resolved = project.resolve_imported(module, base)
            if resolved is not None:
                target_module, symbol = resolved
                if symbol is None:
                    return target_module.function(method)
                # from-imported class used as receiver was handled above;
                # a from-imported module attribute chain is out of scope.
                return None
            # annotated parameter: task.method(...) where task: Task
            class_name = param_classes.get(base)
            if class_name is not None:
                return _resolve_class_method(project, module, class_name, method)
        return None
    return None


def build_call_graph(project: ProjectIndex) -> CallGraph:
    graph = CallGraph(project)
    for module in project.modules.values():
        for func in module.functions.values():
            params = _param_annotations(func.node)
            edges: List[Tuple[FunctionInfo, int]] = []
            for node in ast.walk(func.node):
                if isinstance(node, ast.Call):
                    target = _resolve_call(project, func, node, params)
                    if target is not None and target.key() != func.key():
                        edges.append((target, node.lineno))
            if edges:
                graph.edges[func.key()] = edges
    return graph
