"""adalint: domain-aware static analysis for the AdaPipe reproduction.

An AST-based lint framework plus seven rules proving, on every file at
every CI run, the invariants the repo's correctness rests on but no test
suite can exhaustively cover.

The original file-local families (PR 5):

* **digest-coverage** — every field of a dataclass feeding a content
  digest/fingerprint (simulation cache, stage-eval fingerprint, plan
  serialization) is hashed or allowlisted with a reason; since v2 the
  read set is *transitive* over the project call graph, so digests may
  delegate to helpers;
* **determinism** — no module-level/unseeded RNG, no wall-clock reads
  outside the measurement layers, no iteration over sets without
  ``sorted()``;
* **unit-consistency** — ``_bytes``/``_seconds``/``_flops``/``_bps``
  identifiers are never added or compared across dimensions without an
  explicit conversion call (enforced over ``profiler/``, ``hardware/``,
  ``core/``);
* **frozen-mutation** — ``object.__setattr__`` only inside
  ``__post_init__``.

The interprocedural families (v2), built on the project symbol table /
import graph (:mod:`repro.analysis.project`), call graph
(:mod:`repro.analysis.callgraph`) and read-set/purity dataflow
(:mod:`repro.analysis.dataflow`):

* **registry-completeness** — every member of a contracted registry
  (``SCHEDULE_KINDS``, ``TaskKind``, experiments, baseline methods,
  robustness engines) appears at each declared registration site;
* **transform-purity** — nothing reachable from the §9 duration
  transforms mutates arguments, writes module state, or performs I/O;
* **float-order-divergence** — the paired lowering expressions the
  tri-engine bit-equivalence rests on share one canonical op order.

Entry points: ``adapipe lint`` (CLI; text/JSON/SARIF reporters), checks
9 and 12 of ``adapipe validate``, and :func:`run_lint` for programmatic
use. See ``docs/ALGORITHMS.md`` sections 10 and 15 for each rule's
soundness argument.
"""

from repro.analysis.findings import SEVERITIES, Finding
from repro.analysis.framework import (
    FRAMEWORK_RULES,
    LintContext,
    LintResult,
    Rule,
    SourceModule,
    clear_parse_cache,
    default_rules,
    load_baseline,
    parse_suppressions,
    register,
    registered_rule_names,
    rule_description,
    run_lint,
)
from repro.analysis.reporters import (
    REPORT_VERSION,
    render_json,
    render_sarif,
    render_text,
    result_to_dict,
    result_to_sarif,
)

__all__ = [
    "FRAMEWORK_RULES",
    "Finding",
    "LintContext",
    "LintResult",
    "REPORT_VERSION",
    "Rule",
    "SEVERITIES",
    "SourceModule",
    "clear_parse_cache",
    "default_rules",
    "load_baseline",
    "parse_suppressions",
    "register",
    "registered_rule_names",
    "render_json",
    "render_sarif",
    "render_text",
    "result_to_dict",
    "result_to_sarif",
    "rule_description",
    "run_lint",
]
