"""adalint: domain-aware static analysis for the AdaPipe reproduction.

A small AST-based lint framework plus four rules proving, on every file at
every CI run, the invariants the repo's correctness rests on but no test
suite can exhaustively cover:

* **digest-coverage** — every field of a dataclass feeding a content
  digest/fingerprint (simulation cache, stage-eval fingerprint, plan
  serialization) is hashed or allowlisted with a reason;
* **determinism** — no module-level/unseeded RNG, no wall-clock reads
  outside the measurement layers, no iteration over sets without
  ``sorted()``;
* **unit-consistency** — ``_bytes``/``_seconds``/``_flops``/``_bps``
  identifiers are never added or compared across dimensions without an
  explicit conversion call (enforced over ``profiler/``, ``hardware/``,
  ``core/``);
* **frozen-mutation** — ``object.__setattr__`` only inside
  ``__post_init__``.

Entry points: ``adapipe lint`` (CLI), check 9 of ``adapipe validate``,
and :func:`run_lint` for programmatic use. See ``docs/ALGORITHMS.md``
section 10 for each rule's soundness argument.
"""

from repro.analysis.findings import SEVERITIES, Finding
from repro.analysis.framework import (
    FRAMEWORK_RULES,
    LintContext,
    LintResult,
    Rule,
    SourceModule,
    default_rules,
    load_baseline,
    parse_suppressions,
    register,
    registered_rule_names,
    run_lint,
)
from repro.analysis.reporters import (
    REPORT_VERSION,
    render_json,
    render_text,
    result_to_dict,
)

__all__ = [
    "FRAMEWORK_RULES",
    "Finding",
    "LintContext",
    "LintResult",
    "REPORT_VERSION",
    "Rule",
    "SEVERITIES",
    "SourceModule",
    "default_rules",
    "load_baseline",
    "parse_suppressions",
    "register",
    "registered_rule_names",
    "render_json",
    "render_text",
    "result_to_dict",
    "run_lint",
]
