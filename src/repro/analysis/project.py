"""Whole-program symbol table and import graph for adalint.

The PR-5 rules were strictly file-local: each ``check()`` saw one parsed
module and could at best pull in other files by exact path. The
interprocedural rule families (registry-completeness, digest-coverage v2,
transform-purity, float-order-divergence) need to answer *project-level*
questions — which function does this call resolve to, which dataclass
fields does this function transitively read, which module-level registry
is this string inserted into. :class:`ProjectIndex` is the substrate they
share: one pass over every ``.py`` file under a tree root building

* a **symbol table** per module — functions (qualified ``Class.method``
  names), classes with their dataclass fields, and module-level
  registries (tuples/lists/dicts of string constants, and enum classes);
* an **import graph** — per-module alias tables mapping local names to
  canonical dotted targets, plus suffix-tolerant module resolution so the
  same machinery works on the real tree (``repro.pipeline.tasks``) and on
  fixture trees that mirror its layout (``pipeline/tasks.py`` imported as
  ``.tasks``).

Indexes are built lazily through
:meth:`~repro.analysis.framework.LintContext.project_at` and cached per
root, so every rule consulting the same tree shares one index and one
parse of every file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.framework import LintContext, SourceModule

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "RegistryMember",
    "build_project",
    "dotted_name_of",
    "find_class",
    "find_function",
    "import_aliases",
    "registry_members",
]


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    module: "ModuleInfo"
    qualname: str  # "lower" or "Class.lower"
    node: ast.FunctionDef
    cls: Optional[str] = None  # enclosing class name, if a method

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def relpath(self) -> str:
        return self.module.relpath

    def key(self) -> Tuple[str, str]:
        """Stable project-wide identity: (module relpath, qualname)."""
        return (self.module.relpath, self.qualname)


@dataclass(frozen=True)
class RegistryMember:
    """One member of a module-level registry.

    ``name`` is the symbolic identity (enum member name, or the string
    itself for string registries) and ``value`` the string payload sites
    match against (enum member value, tuple element, dict key).
    """

    name: str
    value: str
    line: int


def dotted_name_of(relpath: str) -> str:
    """``pipeline/simulator.py`` -> ``pipeline.simulator``; packages
    (``__init__.py``) map to their directory's dotted name."""
    parts = relpath[: -len(".py")].split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def import_aliases(tree: ast.Module, self_dotted: str) -> Dict[str, str]:
    """Alias -> canonical dotted target, for *every* import in the module.

    Function-local imports (the repo's lazy-import idiom) are included:
    the table is an over-approximation scoped to the whole module, which
    is sound for the read-set and call-resolution analyses built on it.
    Relative imports are canonicalised against ``self_dotted``.
    """
    aliases: Dict[str, str] = {}
    package = self_dotted.rsplit(".", 1)[0] if "." in self_dotted else ""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # ``from .tasks import Schedule`` inside pipeline/x.py
                # resolves against the enclosing package.
                hops = self_dotted.split(".")[: -(node.level)] if self_dotted else []
                prefix = ".".join(hops) if hops else package
                base = f"{prefix}.{base}" if prefix and base else (prefix or base)
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                aliases[alias.asname or alias.name] = target
    return aliases


def find_function(tree: ast.Module, dotted: str) -> Optional[ast.FunctionDef]:
    """Locate ``name`` or ``Class.method`` at module/class body level."""
    parts = dotted.split(".")
    body: List[ast.stmt] = list(tree.body)
    for part in parts[:-1]:
        for node in body:
            if isinstance(node, ast.ClassDef) and node.name == part:
                body = list(node.body)
                break
        else:
            return None
    for node in body:
        if isinstance(node, ast.FunctionDef) and node.name == parts[-1]:
            return node
    return None


def find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _string_members(node: ast.expr) -> Optional[List[RegistryMember]]:
    """Members of a tuple/list-of-strings or string-keyed dict literal."""
    if isinstance(node, (ast.Tuple, ast.List)):
        members = []
        for element in node.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                return None
            members.append(RegistryMember(element.value, element.value, element.lineno))
        return members
    if isinstance(node, ast.Dict):
        members = []
        for key in node.keys:
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                return None
            members.append(RegistryMember(key.value, key.value, key.lineno))
        return members
    return None


def registry_members(
    module: SourceModule, symbol: str
) -> Optional[List[RegistryMember]]:
    """The statically-evident members of a module-level registry.

    Three declaration shapes are understood, covering every registry the
    repo declares today:

    * ``SYMBOL = ("a", "b", ...)`` — tuple/list of string constants;
    * ``SYMBOL = {"a": ..., ...}`` — dict with string keys (the
      experiment and method registries);
    * ``class SYMBOL(enum.Enum)`` — enum members, ``name``/``value`` as
      declared (:class:`~repro.pipeline.tasks.TaskKind`).

    Returns ``None`` when the symbol is absent or its members cannot be
    read off the AST — callers treat that as a broken contract, never as
    an empty registry.
    """
    for stmt in module.tree.body:
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        if (
            target is not None
            and isinstance(target, ast.Name)
            and target.id == symbol
            and value is not None
        ):
            return _string_members(value)
        if isinstance(stmt, ast.ClassDef) and stmt.name == symbol:
            members = []
            for body_stmt in stmt.body:
                if (
                    isinstance(body_stmt, ast.Assign)
                    and len(body_stmt.targets) == 1
                    and isinstance(body_stmt.targets[0], ast.Name)
                    and isinstance(body_stmt.value, ast.Constant)
                    and isinstance(body_stmt.value.value, str)
                ):
                    members.append(
                        RegistryMember(
                            body_stmt.targets[0].id,
                            body_stmt.value.value,
                            body_stmt.lineno,
                        )
                    )
            return members or None
    return None


@dataclass
class ModuleInfo:
    """Symbol table of one module in a :class:`ProjectIndex`."""

    source: SourceModule
    dotted: str
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ast.ClassDef] = field(default_factory=dict)
    imports: Dict[str, str] = field(default_factory=dict)

    @property
    def relpath(self) -> str:
        return self.source.relpath

    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)


def _index_module(source: SourceModule) -> ModuleInfo:
    info = ModuleInfo(source=source, dotted=dotted_name_of(source.relpath))
    info.imports = import_aliases(source.tree, info.dotted)
    for stmt in source.tree.body:
        if isinstance(stmt, ast.FunctionDef):
            info.functions[stmt.name] = FunctionInfo(info, stmt.name, stmt)
        elif isinstance(stmt, ast.ClassDef):
            info.classes[stmt.name] = stmt
            for body_stmt in stmt.body:
                if isinstance(body_stmt, ast.FunctionDef):
                    qualname = f"{stmt.name}.{body_stmt.name}"
                    info.functions[qualname] = FunctionInfo(
                        info, qualname, body_stmt, cls=stmt.name
                    )
    return info


class ProjectIndex:
    """Symbol tables and the import graph of every module under a root."""

    def __init__(self, root: Path) -> None:
        self.root = root
        self.modules: Dict[str, ModuleInfo] = {}  # keyed by posix relpath
        self._by_dotted: Dict[str, ModuleInfo] = {}
        self._call_graph: Optional[object] = None

    def call_graph(self) -> "object":
        """The project's :class:`~repro.analysis.callgraph.CallGraph`,
        built once on first request (rules sharing an index share it)."""
        if self._call_graph is None:
            from repro.analysis.callgraph import build_call_graph

            self._call_graph = build_call_graph(self)
        return self._call_graph

    def add(self, source: SourceModule) -> ModuleInfo:
        info = _index_module(source)
        self.modules[info.relpath] = info
        if info.dotted:
            self._by_dotted[info.dotted] = info
        return info

    def module(self, relpath: str) -> Optional[ModuleInfo]:
        """Module by relpath; falls back to suffix matching so contract
        paths (``pipeline/tasks.py``) hit regardless of the lint root."""
        if relpath in self.modules:
            return self.modules[relpath]
        suffix = "/" + relpath
        matches = [
            info
            for path, info in sorted(self.modules.items())
            if path.endswith(suffix)
        ]
        return matches[0] if len(matches) == 1 else None

    def resolve_module(self, dotted: str) -> Optional[ModuleInfo]:
        """Resolve an imported dotted module name to an indexed module.

        Tries the full name, then progressively strips leading package
        components: inside a tree rooted at ``src/repro``, the import
        ``repro.pipeline.tasks`` resolves to the indexed module
        ``pipeline.tasks``. Fixture trees that import relatively get the
        exact-match fast path.
        """
        parts = dotted.split(".")
        for start in range(len(parts)):
            candidate = ".".join(parts[start:])
            info = self._by_dotted.get(candidate)
            if info is not None:
                return info
        return None

    def function(self, relpath: str, qualname: str) -> Optional[FunctionInfo]:
        info = self.module(relpath)
        return info.function(qualname) if info is not None else None

    def resolve_imported(
        self, module: ModuleInfo, alias: str
    ) -> Optional[Tuple[ModuleInfo, Optional[str]]]:
        """What an imported name refers to: ``(module, symbol-or-None)``.

        ``symbol`` is ``None`` when the alias names a module itself
        (``import repro.pipeline.perturb as perturb``); otherwise it is
        the terminal symbol of a from-import.
        """
        dotted = module.imports.get(alias)
        if dotted is None:
            return None
        target = self.resolve_module(dotted)
        if target is not None:
            return (target, None)
        if "." in dotted:
            base, symbol = dotted.rsplit(".", 1)
            target = self.resolve_module(base)
            if target is not None:
                return (target, symbol)
        return None


def build_project(ctx: LintContext, root: Path) -> ProjectIndex:
    """Index every ``.py`` file under ``root``, sharing ``ctx``'s parses."""
    project = ProjectIndex(root)
    for path in sorted(root.rglob("*.py")):
        if any(
            part == "__pycache__" or part.startswith(".")
            for part in path.parts[1:]
        ):
            continue
        source = ctx.module_at(path)
        if source is None:
            continue
        # Re-root the relpath against this project's root so contract
        # paths compare stably even when the lint root differs.
        try:
            relpath = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relpath = source.relpath
        if relpath != source.relpath:
            import dataclasses

            source = dataclasses.replace(source, relpath=relpath)
        project.add(source)
    return project
