"""Text, JSON, and SARIF renderings of a
:class:`~repro.analysis.framework.LintResult`."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.framework import LintResult, rule_description

#: Schema version of the JSON report. v2 adds the ``col`` field to every
#: finding (0 = column unknown); consumers of v1 reports keep working
#: because no field was removed or renamed.
REPORT_VERSION = 2

#: SARIF constants: the only schema/version pair GitHub code scanning
#: currently ingests.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult) -> str:
    """One finding per line, ``path:line: severity rule: message``."""
    lines = [
        f"{finding.location()}: {finding.severity} [{finding.rule}] "
        f"{finding.message}"
        for finding in result.findings
    ]
    verdict = "clean" if result.ok else f"{len(result.findings)} finding(s)"
    lines.append(
        f"adalint: {verdict} in {result.files_scanned} file(s) "
        f"({len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined; rules: {', '.join(result.rules)})"
    )
    return "\n".join(lines)


def result_to_dict(result: LintResult) -> Dict[str, Any]:
    """The JSON report document (schema v1).

    Shape::

        {
          "adalint_version": 1,
          "ok": bool,
          "files_scanned": int,
          "rules": [rule, ...],
          "counts": {"findings": n, "suppressed": n, "baselined": n},
          "findings": [{rule, severity, path, line, col, message}, ...],
          "suppressed": [...same shape...],
          "baselined": [...same shape...]
        }
    """
    return {
        "adalint_version": REPORT_VERSION,
        "ok": result.ok,
        "files_scanned": result.files_scanned,
        "rules": list(result.rules),
        "counts": {
            "findings": len(result.findings),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
        },
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "baselined": [finding.to_dict() for finding in result.baselined],
    }


def render_json(result: LintResult) -> str:
    return json.dumps(result_to_dict(result), indent=2, sort_keys=True)


def result_to_sarif(result: LintResult) -> Dict[str, Any]:
    """SARIF 2.1.0 document for GitHub code scanning.

    One run, one driver ("adalint"); only live ``findings`` become
    results — suppressed and baselined findings are accepted exceptions
    and must not annotate PRs. Severities map ``error`` -> ``error``,
    ``warning`` -> ``warning`` (SARIF levels share the names).
    """
    rule_ids: List[str] = sorted(
        {finding.rule for finding in result.findings} | set(result.rules)
    )
    rules = [
        {
            "id": rule_id,
            "shortDescription": {"text": rule_description(rule_id) or rule_id},
        }
        for rule_id in rule_ids
    ]
    index_of = {rule_id: index for index, rule_id in enumerate(rule_ids)}
    results = []
    for finding in result.findings:
        region: Dict[str, Any] = {"startLine": finding.line}
        if finding.col > 0:
            region["startColumn"] = finding.col
        results.append(
            {
                "ruleId": finding.rule,
                "ruleIndex": index_of[finding.rule],
                "level": finding.severity,
                "message": {"text": finding.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": finding.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": region,
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "adalint",
                        "version": str(REPORT_VERSION),
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def render_sarif(result: LintResult) -> str:
    return json.dumps(result_to_sarif(result), indent=2, sort_keys=True)
