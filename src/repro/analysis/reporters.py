"""Text and JSON renderings of a :class:`~repro.analysis.framework.LintResult`."""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.analysis.framework import LintResult

#: Schema version of the JSON report (bump on breaking shape changes).
REPORT_VERSION = 1


def render_text(result: LintResult) -> str:
    """One finding per line, ``path:line: severity rule: message``."""
    lines = [
        f"{finding.location()}: {finding.severity} [{finding.rule}] "
        f"{finding.message}"
        for finding in result.findings
    ]
    verdict = "clean" if result.ok else f"{len(result.findings)} finding(s)"
    lines.append(
        f"adalint: {verdict} in {result.files_scanned} file(s) "
        f"({len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined; rules: {', '.join(result.rules)})"
    )
    return "\n".join(lines)


def result_to_dict(result: LintResult) -> Dict[str, Any]:
    """The JSON report document (schema v1).

    Shape::

        {
          "adalint_version": 1,
          "ok": bool,
          "files_scanned": int,
          "rules": [rule, ...],
          "counts": {"findings": n, "suppressed": n, "baselined": n},
          "findings": [{rule, severity, path, line, message}, ...],
          "suppressed": [...same shape...],
          "baselined": [...same shape...]
        }
    """
    return {
        "adalint_version": REPORT_VERSION,
        "ok": result.ok,
        "files_scanned": result.files_scanned,
        "rules": list(result.rules),
        "counts": {
            "findings": len(result.findings),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
        },
        "findings": [finding.to_dict() for finding in result.findings],
        "suppressed": [finding.to_dict() for finding in result.suppressed],
        "baselined": [finding.to_dict() for finding in result.baselined],
    }


def render_json(result: LintResult) -> str:
    return json.dumps(result_to_dict(result), indent=2, sort_keys=True)
