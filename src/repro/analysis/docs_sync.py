"""Docs drift gate: the USAGE.md rule table must match the registry.

``adapipe lint --list-rules`` is generated from the rule registry; the
table in ``docs/USAGE.md`` ("Static analysis: adalint") is hand-written.
This module diffs the two so CI fails when a rule is added, renamed, or
re-severitied without the docs following — the same class of drift the
registry-completeness rule catches for schedule/task kinds, applied to
the linter's own documentation.

The table rows are recognised anywhere in the file by shape::

    | `rule-name` | severity | anything |

Run it directly (exit 1 on drift)::

    PYTHONPATH=src python -m repro.analysis.docs_sync docs/USAGE.md
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, List

#: A table row whose first cell is a backticked rule name and whose
#: second cell is a bare severity word.
_ROW = re.compile(r"^\|\s*`(?P<rule>[a-z][a-z0-9-]*)`\s*\|\s*(?P<severity>\w+)\s*\|")


def documented_rules(text: str) -> Dict[str, str]:
    """rule name -> documented severity, from USAGE.md table rows."""
    rows = {}
    for line in text.splitlines():
        match = _ROW.match(line.strip())
        if match:
            rows[match.group("rule")] = match.group("severity")
    return rows


def diff_rules(doc_path: Path) -> List[str]:
    """Human-readable drift lines; empty when docs and registry agree."""
    from repro.analysis import default_rules

    registered = {rule.name: rule.severity for rule in default_rules()}
    documented = documented_rules(doc_path.read_text())
    problems = []
    for name in sorted(set(registered) - set(documented)):
        problems.append(
            f"rule {name!r} is registered but missing from the "
            f"{doc_path.name} rule table"
        )
    for name in sorted(set(documented) - set(registered)):
        problems.append(
            f"rule {name!r} is documented in {doc_path.name} but not "
            "registered (renamed or removed?)"
        )
    for name in sorted(set(registered) & set(documented)):
        if registered[name] != documented[name]:
            problems.append(
                f"rule {name!r}: registry severity {registered[name]!r} "
                f"!= documented {documented[name]!r}"
            )
    return problems


def main(argv: List[str]) -> int:
    if len(argv) != 1:
        print("usage: python -m repro.analysis.docs_sync docs/USAGE.md",
              file=sys.stderr)
        return 2
    doc_path = Path(argv[0])
    if not doc_path.is_file():
        print(f"docs_sync: no such file: {doc_path}", file=sys.stderr)
        return 2
    problems = diff_rules(doc_path)
    for problem in problems:
        print(f"docs_sync: {problem}", file=sys.stderr)
    if problems:
        return 1
    print(f"docs_sync: {doc_path} rule table matches the registry")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
