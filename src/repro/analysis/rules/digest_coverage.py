"""digest-coverage: every field feeding a content digest must be hashed.

The correctness of every cross-run cache in this repo rests on a digest
function reading *all* state that moves the cached quantity: the
:class:`~repro.pipeline.tasks.Schedule` content digest keys the
:class:`~repro.pipeline.simulator.SimulationCache`, the evaluator
fingerprint keys the :class:`~repro.core.isomorphism.StageEvalCache`, and
plan serialization is the hand-off artifact replayed by executors. PR 4
shipped exactly this bug class: ``schedule_digest`` ignored
``Schedule.link_hops``, so the simulation cache served nominal results to
link-degraded schedules.

The check is *transitive read coverage* (v2): a dataclass field is
covered when its name is read — as an attribute or bare name — anywhere
in the call-graph closure of the contracted digest function, computed by
:func:`repro.analysis.dataflow.transitive_reads` over the project index.
v1 only looked inside the digest function's own body, so a digest that
delegated hashing to helpers either false-positived on every field or
forced the helpers inline; v2 follows resolved calls any depth. The set
still over-approximates true dataflow (reading ``task.weight`` into a
discarded local anywhere in the closure counts), but it is exactly the
property whose violation produced the historical bug: a field name read
*nowhere* in the closure cannot possibly be hashed. When the project
index cannot supply the function (lone-file lint of an unindexed tree),
the check degrades to the v1 single-function read set. Fields
deliberately excluded from a digest must be allowlisted *with a written
reason*; a reason-less or stale allowance is itself a finding, so the
exclusion list cannot rot silently.

Contracts bind a digest function (matched by path suffix, so fixture
trees exercise the same machinery) to the dataclasses whose fields feed
it, plus optional ``required_names`` for inputs that are not dataclass
fields (the evaluator fingerprint reads profiler attributes).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.framework import LintContext, Rule, SourceModule, register


@dataclass(frozen=True)
class FieldAllowance:
    """One deliberate digest omission: ``Class.field`` plus why it is sound."""

    field: str
    reason: str


@dataclass(frozen=True)
class DigestContract:
    """Binding of one digest function to the fields it must cover.

    Attributes:
        digest_path: path suffix of the file holding the digest function
            (``"pipeline/simulator.py"``). Matching by suffix lets the
            same contract fire on the real tree and on test fixtures that
            mirror its layout.
        digest_name: function name, or ``"Class.method"`` for methods.
        sources: ``(path suffix, class name)`` pairs naming the frozen
            dataclasses whose fields feed the digest. Paths resolve
            against the matched tree's root (the prefix left after
            stripping ``digest_path``).
        allow: fields deliberately excluded, each with a reason.
        required_names: non-field inputs the digest must also read.
    """

    digest_path: str
    digest_name: str
    sources: Tuple[Tuple[str, str], ...] = ()
    allow: Tuple[FieldAllowance, ...] = ()
    required_names: Tuple[str, ...] = ()


#: The repo's digest/fingerprint surfaces. Every frozen-state cache key or
#: serialization boundary added later should gain a contract here.
DEFAULT_CONTRACTS: Tuple[DigestContract, ...] = (
    DigestContract(
        digest_path="pipeline/simulator.py",
        digest_name="schedule_digest",
        sources=(
            ("pipeline/tasks.py", "Schedule"),
            ("pipeline/tasks.py", "Task"),
            ("pipeline/tasks.py", "TaskKey"),
        ),
        allow=(
            FieldAllowance(
                "Schedule.name",
                "a policy label; no simulated quantity depends on it, and "
                "excluding it lets relabelled schedules replay cached results",
            ),
            FieldAllowance(
                "Schedule.num_micro_batches",
                "redundant metadata — the tasks themselves carry every "
                "micro-batch; two schedules differing only here simulate "
                "identically",
            ),
        ),
    ),
    DigestContract(
        digest_path="pipeline/perturb.py",
        digest_name="PerturbationSpec.content_digest",
        sources=(
            ("pipeline/perturb.py", "PerturbationSpec"),
            ("pipeline/perturb.py", "TransientStall"),
            ("pipeline/perturb.py", "LinkDegradation"),
        ),
    ),
    DigestContract(
        digest_path="core/serialize.py",
        digest_name="plan_to_dict",
        sources=(
            ("core/plan.py", "PipelinePlan"),
            ("core/plan.py", "StagePlan"),
            ("profiler/memory.py", "StageMemory"),
        ),
    ),
    DigestContract(
        digest_path="core/robust.py",
        digest_name="ensemble_digest",
        # The ensemble cache key: one whole RobustnessReport per entry.
        # The subject is (schedule, spec, draws, epsilon) rather than a
        # single dataclass — schedule/spec content arrives through their
        # own contracted digests above. The engine is deliberately not an
        # input: batched and scalar paths are bit-equivalent (the tested
        # invariant), so one entry serves all of them.
        required_names=(
            "schedule",
            "spec",
            "draws",
            "criticality_epsilon",
        ),
    ),
    DigestContract(
        digest_path="pipeline/batched.py",
        digest_name="shape_digest",
        # The batch-grouping key of evaluate_robustness_many: schedules
        # sharing it execute through ONE lowered DAG, so any shape input
        # it missed would silently run one schedule under another's
        # structure. Durations/activation bytes/weights are excluded by
        # design — they never affect the execution plan — which is why
        # this digest must never key a result cache (results DO depend
        # on durations; ensemble_digest covers those via
        # schedule.digest()).
        required_names=(
            "num_devices",
            "hop_time",
            "link_hops",
            "device_tasks",
            "key",
            "deps",
            "pipe",
            "stage",
            "micro_batch",
            "kind",
        ),
    ),
    DigestContract(
        digest_path="core/orchestrator.py",
        digest_name="stage_eval_to_dict",
        # The value half of a persisted/checkpointed cache-shard entry:
        # warm starts and resumed sweeps replay these evaluations, so a
        # StageEval (or StageMemory) field this function fails to read
        # would be silently zeroed on every restore.
        sources=(
            ("core/isomorphism.py", "StageEval"),
            ("profiler/memory.py", "StageMemory"),
        ),
    ),
    DigestContract(
        digest_path="core/orchestrator.py",
        digest_name="checkpoint_to_dict",
        # The resume boundary: every SweepCheckpoint field must reach the
        # JSON document, or a killed-and-resumed sweep would silently
        # drop that part of its frontier (completed plans, prunes,
        # incumbent, cache shard).
        sources=(("core/orchestrator.py", "SweepCheckpoint"),),
    ),
    DigestContract(
        digest_path="core/isomorphism.py",
        digest_name="evaluator_fingerprint",
        # The fingerprint's subject (a Profiler) is not a dataclass, so the
        # coverage obligation is spelled out as explicit required reads:
        # every planner input that can change a StageEval. Robust-sweep
        # inputs (robust_objective, PerturbationSpec, robust_draws) are
        # deliberately absent — see the fingerprint's docstring and
        # tests/test_robustness.py::test_robust_sweep_shares_eval_cache_*.
        required_names=(
            "cluster",
            "spec",
            "train",
            "tensor_parallel",
            "data_parallel",
            "noise",
            "seed",
            "capacity_bytes",
        ),
    ),
)


def _path_matches(relpath: str, suffix: str) -> bool:
    return relpath == suffix or relpath.endswith("/" + suffix)


def _find_function(
    tree: ast.Module, dotted: str
) -> Optional[ast.FunctionDef]:
    """Locate ``name`` or ``Class.method`` at module/class body level."""
    parts = dotted.split(".")
    body: List[ast.stmt] = list(tree.body)
    for part in parts[:-1]:
        for node in body:
            if isinstance(node, ast.ClassDef) and node.name == part:
                body = list(node.body)
                break
        else:
            return None
    for node in body:
        if isinstance(node, ast.FunctionDef) and node.name == parts[-1]:
            return node
    return None


def _find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def dataclass_fields(node: ast.ClassDef) -> List[str]:
    """Field names of a dataclass body: annotated assignments, in order.

    ``ClassVar`` annotations and private (``_``-prefixed) names are not
    dataclass state and are excluded.
    """
    fields: List[str] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(
            stmt.target, ast.Name
        ):
            continue
        annotation = ast.unparse(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        if stmt.target.id.startswith("_"):
            continue
        fields.append(stmt.target.id)
    return fields


def names_read(func: ast.FunctionDef) -> Set[str]:
    """Every identifier the function body reads: bare names and attributes."""
    read: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute):
            read.add(node.attr)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            read.add(node.id)
    return read


@register
class DigestCoverageRule(Rule):
    name = "digest-coverage"
    severity = "error"
    description = (
        "every field of a dataclass feeding a content digest/fingerprint "
        "must be read in the digest function's call-graph closure or "
        "allowlisted with a reason"
    )

    def __init__(self, contracts: Tuple[DigestContract, ...] = DEFAULT_CONTRACTS):
        self.contracts = contracts

    def check(self, module: SourceModule, ctx: LintContext) -> Iterator[Finding]:
        for contract in self.contracts:
            if not _path_matches(module.relpath, contract.digest_path):
                continue
            yield from self._check_contract(module, ctx, contract)

    def _check_contract(
        self, module: SourceModule, ctx: LintContext, contract: DigestContract
    ) -> Iterator[Finding]:
        func = _find_function(module.tree, contract.digest_name)
        if func is None:
            yield self.finding(
                module,
                1,
                f"contract broken: digest function {contract.digest_name!r} "
                f"not found in {module.relpath}",
            )
            return
        allowed = {allowance.field: allowance for allowance in contract.allow}
        # The tree root this contract resolves against: the linted file's
        # path minus the contract's path suffix.
        tree_root = Path(str(module.path)[: -len(contract.digest_path)])

        # v2: union the read set over the call-graph closure of the digest
        # function. Falls back to the v1 single-function read set when the
        # project index cannot locate the function (e.g. the tree root is
        # not a directory adalint can index).
        read = names_read(func)
        project = ctx.project_at(tree_root) if tree_root.is_dir() else None
        if project is not None:
            root_fn = project.function(contract.digest_path, contract.digest_name)
            if root_fn is not None:
                from repro.analysis.dataflow import transitive_reads

                read, _witnesses = transitive_reads(
                    project.call_graph(), root_fn
                )

        known_fields: Set[str] = set()
        for source_path, class_name in contract.sources:
            source = ctx.module_at(tree_root / source_path)
            if source is None:
                yield self.finding(
                    module,
                    func.lineno,
                    f"contract broken: source file {source_path!r} for class "
                    f"{class_name!r} is missing or unparsable",
                    col=func.col_offset + 1,
                )
                continue
            cls = _find_class(source.tree, class_name)
            if cls is None:
                yield self.finding(
                    module,
                    func.lineno,
                    f"contract broken: class {class_name!r} not found in "
                    f"{source_path!r}",
                    col=func.col_offset + 1,
                )
                continue
            for field_name in dataclass_fields(cls):
                qualified = f"{class_name}.{field_name}"
                known_fields.add(qualified)
                allowance = allowed.get(qualified)
                if allowance is not None:
                    if not allowance.reason.strip():
                        yield self.finding(
                            module,
                            func.lineno,
                            f"allowlisted digest omission {qualified} carries "
                            "no reason",
                            col=func.col_offset + 1,
                        )
                    continue
                if field_name not in read:
                    yield self.finding(
                        module,
                        func.lineno,
                        f"field {qualified} is never read in the call-graph "
                        f"closure of digest function "
                        f"{contract.digest_name!r} and is not allowlisted — "
                        "a cache keyed by this digest would conflate states "
                        "differing only in that field",
                        col=func.col_offset + 1,
                    )
        for qualified in allowed:
            if contract.sources and qualified not in known_fields:
                yield self.finding(
                    module,
                    func.lineno,
                    f"stale allowance: {qualified} is not a field of any "
                    "contracted dataclass",
                    col=func.col_offset + 1,
                )
        for required in contract.required_names:
            if required not in read:
                yield self.finding(
                    module,
                    func.lineno,
                    f"required input {required!r} is never read by digest "
                    f"function {contract.digest_name!r}",
                    col=func.col_offset + 1,
                )
