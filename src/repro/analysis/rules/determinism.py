"""determinism: no unseeded randomness, stray wall clocks, or set iteration.

The DP search, the simulator, and plan serialization must be
bit-deterministic: the simulation cache replays results across runs, the
compiled engine is cross-checked bit-for-bit against the reference oracle,
and plan signatures are compared across sweep modes. Three syntactic
hazards undermine that:

* **module-level RNG state** — draws from the process-global ``random`` /
  ``numpy.random`` generators (or unseeded ``Random()`` /
  ``default_rng()`` constructions) depend on hidden mutable state, so two
  runs of one function disagree. Seeded generator objects
  (``random.Random(seed)``, ``np.random.default_rng(seed)``) are the
  sanctioned idiom and pass.
* **wall-clock reads** — ``time.time()`` and friends are nondeterministic
  by definition. They are legitimate only where measuring real elapsed
  time *is the contract*: benchmarks and the measuring profiler (see
  ``WALL_CLOCK_ALLOWED``). Observability timings elsewhere (sweep wall
  clocks, CLI progress) carry inline suppressions with reasons — the rule
  keeps them enumerable instead of invisible.
* **unordered iteration** — iterating a ``set``/``frozenset`` visits
  elements in hash order, which varies across processes for str-keyed
  sets under hash randomisation; any digest, schedule, or printed output
  built from such an iteration is run-dependent. Wrapping the iterable in
  ``sorted()`` is the fix (``dict`` iteration is insertion-ordered and
  deterministic, so it is not flagged).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.analysis.framework import LintContext, Rule, SourceModule, register

#: Drawing functions of the stdlib ``random`` module (module-level state).
RANDOM_DRAWS = frozenset(
    {
        "random", "randint", "randrange", "getrandbits", "randbytes",
        "choice", "choices", "shuffle", "sample", "uniform", "triangular",
        "gauss", "normalvariate", "lognormvariate", "expovariate",
        "betavariate", "gammavariate", "vonmisesvariate", "paretovariate",
        "weibullvariate", "seed",
    }
)

#: ``numpy.random`` attributes that are *not* module-level draws: seeded
#: generator/bit-generator construction and introspection.
NUMPY_NON_DRAWS = frozenset(
    {
        "default_rng", "Generator", "RandomState", "SeedSequence",
        "BitGenerator", "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
        "get_state", "set_state",
    }
)

#: Unseeded-when-argless constructors, by canonical dotted name.
SEEDABLE_CONSTRUCTORS = frozenset(
    {"random.Random", "numpy.random.default_rng", "numpy.random.RandomState"}
)

#: Wall-clock reads, by canonical dotted name.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

#: Path suffixes where wall-clock reads are the module's *contract*, with
#: the reason each is sound. Everything else needs an inline suppression.
WALL_CLOCK_ALLOWED: Dict[str, str] = {
    "benchmarks": "benchmarks exist to measure real elapsed time",
    "profiler/timing.py": "the paper's timing layer is the designated home "
    "for clock access (currently analytic, may calibrate)",
    "profiler/measured.py": "the measured profiler's contract is timing "
    "real kernel executions",
}


def _path_allowed(relpath: str) -> bool:
    parts = relpath.split("/")
    for suffix in WALL_CLOCK_ALLOWED:
        if "/" in suffix:
            if relpath == suffix or relpath.endswith("/" + suffix):
                return True
        elif suffix in parts[:-1]:
            return True
    return False


class _ImportTable(ast.NodeVisitor):
    """Alias -> canonical dotted module/name map for the tracked modules."""

    TRACKED = ("random", "numpy", "numpy.random", "time", "datetime")

    def __init__(self) -> None:
        self.aliases: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in self.TRACKED:
                self.aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name
                )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module in self.TRACKED and node.level == 0:
            for alias in node.names:
                canonical = f"{node.module}.{alias.name}"
                # ``from datetime import datetime`` must canonicalise to
                # the class, so datetime.now() resolves fully.
                self.aliases[alias.asname or alias.name] = canonical


def _canonical_call_name(
    func: ast.expr, aliases: Dict[str, str]
) -> Optional[str]:
    """Resolve ``np.random.shuffle`` -> ``numpy.random.shuffle`` etc."""
    chain = []
    node = func
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id)
    if base is None:
        return None
    return ".".join([base] + list(reversed(chain)))


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@register
class DeterminismRule(Rule):
    name = "determinism"
    severity = "error"
    description = (
        "no module-level/unseeded RNG, no wall-clock reads outside the "
        "measurement layers, no iteration over sets without sorted()"
    )

    def check(self, module: SourceModule, ctx: LintContext) -> Iterator:
        del ctx
        table = _ImportTable()
        table.visit(module.tree)
        aliases = table.aliases
        allowed_clock = _path_allowed(module.relpath)

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(module, node, aliases, allowed_clock)
            elif isinstance(node, ast.For):
                yield from self._check_iteration(module, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_iteration(module, generator.iter)

    def _check_call(
        self,
        module: SourceModule,
        node: ast.Call,
        aliases: Dict[str, str],
        allowed_clock: bool,
    ) -> Iterator:
        name = _canonical_call_name(node.func, aliases)
        if name is None:
            return
        argless = not node.args and not node.keywords
        if name in SEEDABLE_CONSTRUCTORS:
            if argless:
                yield self.finding_at(
                    module,
                    node,
                    f"{name}() without a seed draws OS entropy; pass an "
                    "explicit seed so runs are reproducible",
                )
            return
        tail = name.rsplit(".", 1)[-1]
        if name == f"random.{tail}" and tail in RANDOM_DRAWS:
            yield self.finding_at(
                module,
                node,
                f"{name}() uses the process-global RNG; construct a seeded "
                "random.Random(seed) instead",
            )
        elif name.startswith("numpy.random.") and name.count(".") == 2:
            if tail not in NUMPY_NON_DRAWS:
                yield self.finding_at(
                    module,
                    node,
                    f"{name}() uses numpy's module-level RNG; use a seeded "
                    "numpy.random.default_rng(seed) generator instead",
                )
        elif name in WALL_CLOCK_CALLS and not allowed_clock:
            yield self.finding_at(
                module,
                node,
                f"{name}() reads the wall clock outside the measurement "
                "layers; deterministic code must not depend on real time "
                "(suppress with a reason if this is observability metadata)",
            )

    def _check_iteration(self, module: SourceModule, iterable: ast.expr) -> Iterator:
        if _is_set_expression(iterable):
            yield self.finding_at(
                module,
                iterable,
                "iterating a set visits elements in hash order, which varies "
                "across runs; wrap the iterable in sorted()",
            )
