"""frozen-mutation: ``object.__setattr__`` only inside ``__post_init__``.

Frozen dataclasses are this repo's immutability backbone: plans, specs,
task keys, and perturbation specs are shared across caches and process
boundaries on the promise that they never change after construction —
hashes are precomputed, digests memoized, and cache keys assume value
semantics. ``object.__setattr__`` is the documented escape hatch for
*constructing* derived state inside ``__post_init__`` (e.g.
``TaskKey``'s precomputed hash); anywhere else it mutates an object
other code believes frozen, silently invalidating memoized digests and
cache entries.

The check is syntactic and over-approximate on purpose: every
``object.__setattr__(...)`` call outside a ``__post_init__`` (or
``__setstate__``, the pickle analogue) body is flagged, whether or not
the receiver is provably frozen — a non-frozen object never needs the
escape hatch, so the call site is suspicious either way.
"""

from __future__ import annotations

import ast
from typing import Iterator, Tuple

from repro.analysis.framework import LintContext, Rule, SourceModule, register

#: Methods in which the escape hatch is legitimate construction.
ALLOWED_METHODS: Tuple[str, ...] = ("__post_init__", "__setstate__")


def _is_object_setattr(node: ast.Call) -> bool:
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "__setattr__"
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == "object"
    )


@register
class FrozenMutationRule(Rule):
    name = "frozen-mutation"
    severity = "error"
    description = (
        "object.__setattr__ (the frozen-dataclass escape hatch) is only "
        "legitimate inside __post_init__/__setstate__"
    )

    def check(self, module: SourceModule, ctx: LintContext) -> Iterator:
        del ctx
        yield from self._walk(module, module.tree, enclosing=None)

    def _walk(self, module: SourceModule, node: ast.AST, enclosing) -> Iterator:
        for child in ast.iter_child_nodes(node):
            scope = enclosing
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = child.name
            if isinstance(child, ast.Call) and _is_object_setattr(child):
                if enclosing not in ALLOWED_METHODS:
                    where = (
                        f"function {enclosing!r}" if enclosing else "module level"
                    )
                    yield self.finding_at(
                        module,
                        child,
                        f"object.__setattr__ at {where} mutates a frozen "
                        "object after construction; derived state belongs "
                        "in __post_init__",
                    )
            yield from self._walk(module, child, scope)
