"""float-order-divergence: paired float expressions must share op order.

The tri-engine invariant (compiled / reference / batched produce
bit-identical iteration times) and the scalar/batched perturbation
equivalence both rest on *op-order agreement*: floating-point addition
and multiplication are not associative, so ``(d * f) * j + delay`` and
``d * (f * j) + delay`` can differ in the last ulp — enough to flip an
argmin and desynchronize caches keyed on simulated times. The repo keeps
these expression pairs aligned by convention (ALGORITHMS.md §9, §13);
this rule aligns them by construction.

A :class:`FloatOrderContract` names N *sites* — (file, function, role
map) — whose arithmetic must agree. In each site the rule extracts every
maximal ``BinOp``/``AugAssign`` over ``+ - * /`` whose leaves are all
*role-mapped*, normalising leaves through a small grammar (attribute ->
terminal name, subscript -> base, ``np.asarray``-style transparent
wrappers -> first argument, calls -> callee name) into canonical strings
like ``mul(dur, factor)``. The per-site fingerprint is the source-order
tuple of those strings; every site must equal the contract's declared
``expected`` tuple. An *empty* extraction is itself a finding — a
contract that stops matching anything must be re-anchored, not trusted.

Incompleteness (§15): the comparison is structural, not semantic — it
cannot see reordering hidden behind a helper call boundary (the purity
and call-graph layers cover mutation, not arithmetic shape), and only
expressions whose leaves all carry roles participate. Soundness: any
edit that changes the shape, order, or count of the mapped expressions
on one side breaks that side's fingerprint and is reported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.framework import LintContext, Rule, SourceModule, register

#: Call wrappers that forward their first argument's value unchanged for
#: op-order purposes (dtype casts and array views do not reassociate).
TRANSPARENT_WRAPPERS = frozenset(
    {"asarray", "array", "ascontiguousarray", "float", "float64"}
)

_OP_NAMES = {
    ast.Add: "add",
    ast.Sub: "sub",
    ast.Mult: "mul",
    ast.Div: "div",
}


@dataclass(frozen=True)
class FloatSite:
    """One side of an op-order pairing.

    Attributes:
        path: path suffix of the module.
        func: function name (``"name"`` or ``"Class.method"``).
        roles: identifier -> canonical role. Identifiers are matched
            after leaf normalisation: bare names by ``id``, attributes by
            terminal attribute, calls by terminal callee name.
    """

    path: str
    func: str
    roles: Tuple[Tuple[str, str], ...]

    def role_map(self) -> Dict[str, str]:
        return dict(self.roles)


@dataclass(frozen=True)
class FloatOrderContract:
    """N sites whose role-mapped arithmetic must share one fingerprint.

    The contract fires when the linted module matches ``anchor_path``
    (the first site's file, by convention); evidence for the other sites
    comes through the shared project index.
    """

    name: str
    anchor_path: str
    expected: Tuple[str, ...]
    sites: Tuple[FloatSite, ...]


#: The op-order pairings the engines' bit-equivalence tests rely on.
DEFAULT_FLOAT_CONTRACTS: Tuple[FloatOrderContract, ...] = (
    FloatOrderContract(
        # The overlap re-fold: every engine subtracts the overlap window
        # from the addend column the same way, once.
        name="overlap-addend",
        anchor_path="pipeline/compiled.py",
        expected=("sub(addend, overlap)",),
        sites=(
            FloatSite(
                path="pipeline/compiled.py",
                func="compile_schedule",
                roles=(("add", "addend"), ("overlap", "overlap")),
            ),
            FloatSite(
                path="pipeline/simulator.py",
                func="simulate_reference",
                roles=(("add", "addend"), ("overlap", "overlap")),
            ),
            FloatSite(
                path="pipeline/batched.py",
                func="BatchedSchedule._addend_columns",
                roles=(("add", "addend"), ("_overlap_vals", "overlap")),
            ),
        ),
    ),
    FloatOrderContract(
        # The §9 lowering chain: factor first, then jitter, then additive
        # delays — scalar (perturb_schedule) and vector
        # (lower_spec_durations) must apply them in the same order.
        name="perturb-duration-order",
        anchor_path="pipeline/perturb.py",
        expected=(
            "mul(dur, factor)",
            "mul(dur, jitter)",
            "add(dur, delay)",
        ),
        sites=(
            FloatSite(
                path="pipeline/perturb.py",
                func="perturb_schedule",
                roles=(
                    ("duration", "dur"),
                    ("factor", "factor"),
                    ("jitter_multiplier", "jitter"),
                    ("delay", "delay"),
                ),
            ),
            FloatSite(
                path="pipeline/perturb.py",
                func="lower_spec_durations",
                roles=(
                    ("durations", "dur"),
                    ("duration", "dur"),
                    ("factors", "factor"),
                    ("jitter", "jitter"),
                    ("delays", "delay"),
                ),
            ),
        ),
    ),
)


def _path_matches(relpath: str, suffix: str) -> bool:
    return relpath == suffix or relpath.endswith("/" + suffix)


def _leaf_role(node: ast.expr, roles: Dict[str, str]) -> Optional[str]:
    """Canonical role of a leaf expression, or None when unmapped."""
    if isinstance(node, ast.Name):
        return roles.get(node.id)
    if isinstance(node, ast.Attribute):
        return roles.get(node.attr)
    if isinstance(node, ast.Subscript):
        return _leaf_role(node.value, roles)
    if isinstance(node, ast.Call):
        callee = node.func
        callee_name = (
            callee.attr if isinstance(callee, ast.Attribute)
            else callee.id if isinstance(callee, ast.Name)
            else None
        )
        if callee_name in TRANSPARENT_WRAPPERS and node.args:
            return _leaf_role(node.args[0], roles)
        if callee_name is not None:
            return roles.get(callee_name)
    return None


def _canonical(node: ast.expr, roles: Dict[str, str]) -> Optional[str]:
    """Fully-role-mapped canonical form of an arithmetic expression."""
    if isinstance(node, ast.BinOp) and type(node.op) in _OP_NAMES:
        left = _canonical(node.left, roles)
        right = _canonical(node.right, roles)
        if left is None or right is None:
            return None
        return f"{_OP_NAMES[type(node.op)]}({left}, {right})"
    return _leaf_role(node, roles)


def extract_fingerprint(
    func: ast.FunctionDef, roles: Dict[str, str]
) -> Tuple[str, ...]:
    """Source-order tuple of maximal fully-mapped arithmetic expressions.

    ``AugAssign`` (``x -= y``) canonicalises as the equivalent ``BinOp``
    on (target, value); nested sub-expressions of an emitted expression
    are not emitted again.
    """
    emitted: List[Tuple[int, int, str]] = []
    covered: List[ast.AST] = []

    def in_covered(node: ast.AST) -> bool:
        return any(
            node in ast.walk(parent) and node is not parent
            for parent in covered
        )

    for node in ast.walk(func):
        if isinstance(node, ast.AugAssign) and type(node.op) in _OP_NAMES:
            target_role = _leaf_role(node.target, roles)
            value = _canonical(node.value, roles)
            if target_role is not None and value is not None:
                emitted.append(
                    (
                        node.lineno,
                        node.col_offset,
                        f"{_OP_NAMES[type(node.op)]}({target_role}, {value})",
                    )
                )
                covered.append(node)
    for node in ast.walk(func):
        if isinstance(node, ast.BinOp) and type(node.op) in _OP_NAMES:
            if in_covered(node):
                continue
            canonical = _canonical(node, roles)
            if canonical is not None:
                emitted.append((node.lineno, node.col_offset, canonical))
                covered.append(node)
    # ast.walk is breadth-first, so a parent BinOp lands in ``covered``
    # before its children are visited — nested sub-expressions of an
    # emitted expression never re-emit.
    return tuple(
        canonical for _line, _col, canonical in sorted(emitted)
    )


@register
class FloatOrderRule(Rule):
    name = "float-order-divergence"
    severity = "error"
    description = (
        "paired lowering expressions across the simulation engines and "
        "the perturbation transforms must share floating-point op order"
    )

    def __init__(
        self,
        contracts: Tuple[FloatOrderContract, ...] = DEFAULT_FLOAT_CONTRACTS,
    ):
        self.contracts = contracts

    def check(self, module: SourceModule, ctx: LintContext) -> Iterator[Finding]:
        for contract in self.contracts:
            if not _path_matches(module.relpath, contract.anchor_path):
                continue
            yield from self._check_contract(module, ctx, contract)

    def _check_contract(
        self,
        module: SourceModule,
        ctx: LintContext,
        contract: FloatOrderContract,
    ) -> Iterator[Finding]:
        from repro.analysis.project import find_function

        tree_root = Path(str(module.path)[: -len(contract.anchor_path)])
        for site in contract.sites:
            site_path = tree_root / site.path
            site_module = (
                ctx.module_at(site_path) if site_path.is_file() else None
            )
            if site_module is None:
                yield self.finding(
                    module,
                    1,
                    f"float-order contract {contract.name!r} broken: site "
                    f"file {site.path!r} is missing or unparsable",
                )
                continue
            func = find_function(site_module.tree, site.func)
            if func is None:
                yield self.finding(
                    module,
                    1,
                    f"float-order contract {contract.name!r} broken: "
                    f"function {site.func!r} not found in {site.path!r}",
                )
                continue
            fingerprint = extract_fingerprint(func, site.role_map())
            if not fingerprint:
                yield self.finding(
                    module,
                    func.lineno if site.path == contract.anchor_path else 1,
                    f"float-order contract {contract.name!r} matched no "
                    f"expressions in {site.path}::{site.func} — the "
                    "contract's role map no longer anchors to the code",
                )
                continue
            if fingerprint != contract.expected:
                anchored_here = _path_matches(
                    module.relpath, site.path
                ) or site.path == contract.anchor_path
                yield self.finding(
                    module,
                    func.lineno if anchored_here else 1,
                    f"float op order diverges in {site.path}::{site.func} "
                    f"({contract.name}): found "
                    f"({', '.join(fingerprint)}) but the paired engines "
                    f"agree on ({', '.join(contract.expected)}) — "
                    "bit-equivalence across engines requires identical "
                    "association order",
                    col=func.col_offset + 1 if anchored_here else 0,
                )


__all__ = [
    "DEFAULT_FLOAT_CONTRACTS",
    "FloatOrderContract",
    "FloatOrderRule",
    "FloatSite",
    "extract_fingerprint",
]
