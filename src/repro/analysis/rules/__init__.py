"""The adalint domain rules.

Importing this package registers every rule with the framework registry;
:func:`repro.analysis.framework.default_rules` does so lazily.
"""

from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.digest_coverage import (
    DEFAULT_CONTRACTS,
    DigestContract,
    DigestCoverageRule,
    FieldAllowance,
)
from repro.analysis.rules.float_order import (
    DEFAULT_FLOAT_CONTRACTS,
    FloatOrderContract,
    FloatOrderRule,
    FloatSite,
)
from repro.analysis.rules.frozen_mutation import FrozenMutationRule
from repro.analysis.rules.registry_completeness import (
    DEFAULT_REGISTRY_CONTRACTS,
    RegistryCompletenessRule,
    RegistryContract,
    RegistrySite,
    SiteExemption,
)
from repro.analysis.rules.transform_purity import (
    DEFAULT_PURITY_CONTRACTS,
    PurityContract,
    TransformPurityRule,
)
from repro.analysis.rules.units import UnitConsistencyRule

__all__ = [
    "DEFAULT_CONTRACTS",
    "DEFAULT_FLOAT_CONTRACTS",
    "DEFAULT_PURITY_CONTRACTS",
    "DEFAULT_REGISTRY_CONTRACTS",
    "DeterminismRule",
    "DigestContract",
    "DigestCoverageRule",
    "FieldAllowance",
    "FloatOrderContract",
    "FloatOrderRule",
    "FloatSite",
    "FrozenMutationRule",
    "PurityContract",
    "RegistryCompletenessRule",
    "RegistryContract",
    "RegistrySite",
    "SiteExemption",
    "TransformPurityRule",
    "UnitConsistencyRule",
]
