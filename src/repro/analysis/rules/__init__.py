"""The adalint domain rules.

Importing this package registers every rule with the framework registry;
:func:`repro.analysis.framework.default_rules` does so lazily.
"""

from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.digest_coverage import (
    DEFAULT_CONTRACTS,
    DigestContract,
    DigestCoverageRule,
    FieldAllowance,
)
from repro.analysis.rules.frozen_mutation import FrozenMutationRule
from repro.analysis.rules.units import UnitConsistencyRule

__all__ = [
    "DEFAULT_CONTRACTS",
    "DeterminismRule",
    "DigestContract",
    "DigestCoverageRule",
    "FieldAllowance",
    "FrozenMutationRule",
    "UnitConsistencyRule",
]
