"""transform-purity: duration transforms must be pure functions.

ALGORITHMS.md §9 argues the robustness machinery is sound because
perturbation is a *pure transform*: ``perturb_schedule`` and
``lower_spec_durations`` derive new duration vectors from (schedule,
spec, draw) without touching their inputs, module state, or the outside
world. Everything downstream leans on that argument — the ensemble cache
replays digests assuming the schedule object was not mutated in place,
the batched engine assumes lowering the same spec twice yields the same
vectors, and the scalar/batched bit-equivalence tests assume no hidden
state leaks between draws.

This rule machine-checks the argument: for each contracted *root*, every
function in its call-graph closure is scanned for (a) stores into
parameters (attribute/subscript assignment, or in-place mutating method
calls), (b) ``global``/``nonlocal`` declarations, (c) I/O calls (see
:mod:`repro.analysis.dataflow` for the exact denylist). Findings carry
the call chain from the root so a violation three helpers deep is
attributable.

Soundness: the closure only follows *resolved* edges, so a mutation
hidden behind dynamic dispatch escapes (documented incompleteness, §15);
conversely every reported mutation is a real store/call in reachable
code, so findings are not speculative.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Tuple

from repro.analysis.findings import Finding
from repro.analysis.framework import LintContext, Rule, SourceModule, register


@dataclass(frozen=True)
class PurityContract:
    """One pure-transform obligation: roots whose closures must be pure.

    Attributes:
        anchor_path: path suffix whose lint visit triggers the check (the
            module declaring the roots).
        roots: function names (``"name"`` or ``"Class.method"``) in the
            anchor module.
    """

    anchor_path: str
    roots: Tuple[str, ...]


#: The §9 transform surface. New perturbation lowering entry points must
#: be added here (the fuzz tests compare their outputs bit-for-bit, which
#: only holds if they stay pure).
DEFAULT_PURITY_CONTRACTS: Tuple[PurityContract, ...] = (
    PurityContract(
        anchor_path="pipeline/perturb.py",
        roots=(
            "perturb_schedule",
            "lower_spec_durations",
            "lower_spec_components",
            "lowered_link_hops",
        ),
    ),
)


def _path_matches(relpath: str, suffix: str) -> bool:
    return relpath == suffix or relpath.endswith("/" + suffix)


@register
class TransformPurityRule(Rule):
    name = "transform-purity"
    severity = "error"
    description = (
        "functions reachable from the duration-transform roots "
        "(perturb_schedule, lower_spec_durations, ...) must not mutate "
        "arguments, write module state, or perform I/O"
    )

    def __init__(
        self,
        contracts: Tuple[PurityContract, ...] = DEFAULT_PURITY_CONTRACTS,
    ):
        self.contracts = contracts

    def check(self, module: SourceModule, ctx: LintContext) -> Iterator[Finding]:
        for contract in self.contracts:
            if not _path_matches(module.relpath, contract.anchor_path):
                continue
            yield from self._check_contract(module, ctx, contract)

    def _check_contract(
        self, module: SourceModule, ctx: LintContext, contract: PurityContract
    ) -> Iterator[Finding]:
        from repro.analysis.dataflow import check_purity

        tree_root = Path(str(module.path)[: -len(contract.anchor_path)])
        if not tree_root.is_dir():
            return
        project = ctx.project_at(tree_root)
        graph = project.call_graph()
        for root_name in contract.roots:
            root = project.function(contract.anchor_path, root_name)
            if root is None:
                yield self.finding(
                    module,
                    1,
                    f"purity contract broken: root {root_name!r} not found "
                    f"in {contract.anchor_path!r}",
                )
                continue
            report = check_purity(graph, root)
            for violation in report.violations:
                chain = report.chains.get(violation.func.key())
                via = (
                    " (via "
                    + " -> ".join(step.qualname for step in chain)
                    + ")"
                    if chain is not None and len(chain) > 1
                    else ""
                )
                # Anchor at the violating line when it is in the firing
                # module; otherwise at the root declaration, with the
                # violating location spelled out in the message.
                if _path_matches(violation.func.relpath, contract.anchor_path):
                    line = violation.line
                    where = ""
                else:
                    line = root.node.lineno
                    where = f" at {violation.func.relpath}:{violation.line}"
                yield self.finding(
                    module,
                    line,
                    f"transform root {root_name!r} reaches impure code: "
                    f"{violation.func.qualname} {violation.detail}"
                    f"{where}{via} [{violation.kind}]",
                )


__all__ = [
    "DEFAULT_PURITY_CONTRACTS",
    "PurityContract",
    "TransformPurityRule",
]
