"""unit-consistency: suffix-driven dimensional analysis.

The cost model mixes three physical dimensions — bytes (memory model,
knapsack budgets), seconds (roofline times, DP objectives), and FLOPs
(device throughput) — as bare floats. Confusing them does not crash: it
silently corrupts every downstream figure. The repo's naming convention
carries the dimension in the identifier suffix (``capacity_bytes``,
``planning_seconds``, ``peak_flops``, bandwidth in ``_bps``), which makes
a sound *syntactic* check possible: two identifiers of **different**
known dimensions may never be added, subtracted, or compared directly.

Dimension inference is deliberately conservative:

* a ``Name``/``Attribute`` whose identifier ends in a known suffix has
  that dimension; anything else (calls, products, quotients, constants,
  unsuffixed names) is *unknown* and never flagged;
* ``+``/``-`` propagate a dimension only when both operands agree;
* a finding requires **both** sides to have known, different dimensions.

Any function call therefore acts as the explicit conversion escape hatch
(``busy_seconds + seconds_from_bytes(spill_bytes, bw_bps)`` passes), and
multiplying by a rate (``size_bytes / bandwidth_bps``) yields an unknown
dimension rather than a false positive. The rule is enforced over the
numeric core — ``profiler/``, ``hardware/``, ``core/`` — where every
scalar is one of these dimensions; presentation layers format freely.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.framework import LintContext, Rule, SourceModule, register

#: Identifier suffix -> dimension.
SUFFIX_DIMENSIONS = {
    "_bytes": "bytes",
    "_seconds": "seconds",
    "_flops": "flops",
    "_bps": "bytes/second",
}

#: Directory names under which the rule is enforced.
ENFORCED_DIRS: Tuple[str, ...] = ("profiler", "hardware", "core")

_COMPARE_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def identifier_dimension(name: str) -> Optional[str]:
    for suffix, dimension in SUFFIX_DIMENSIONS.items():
        if name.endswith(suffix):
            return dimension
    return None


def expression_dimension(node: ast.expr) -> Optional[str]:
    """The dimension of an expression, or ``None`` when not provable."""
    if isinstance(node, ast.Name):
        return identifier_dimension(node.id)
    if isinstance(node, ast.Attribute):
        return identifier_dimension(node.attr)
    if isinstance(node, ast.UnaryOp):
        return expression_dimension(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = expression_dimension(node.left)
        right = expression_dimension(node.right)
        if left is not None and left == right:
            return left
        return None
    return None


def _enforced(relpath: str) -> bool:
    parts = relpath.split("/")[:-1]
    return any(part in ENFORCED_DIRS for part in parts)


@register
class UnitConsistencyRule(Rule):
    name = "unit-consistency"
    severity = "error"
    description = (
        "identifiers suffixed _bytes/_seconds/_flops/_bps may not be "
        "added, subtracted, or compared across dimensions without an "
        "explicit conversion call"
    )

    def check(self, module: SourceModule, ctx: LintContext) -> Iterator:
        del ctx
        if not _enforced(module.relpath):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(module, node, node.left, node.right)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(module, node, node.target, node.value)
            elif isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                for op, left, right in zip(node.ops, operands, operands[1:]):
                    if isinstance(op, _COMPARE_OPS):
                        yield from self._check_pair(module, node, left, right)

    def _check_pair(
        self,
        module: SourceModule,
        anchor: ast.AST,
        left: ast.expr,
        right: ast.expr,
    ) -> Iterator:
        left_dim = expression_dimension(left)
        right_dim = expression_dimension(right)
        if left_dim is None or right_dim is None or left_dim == right_dim:
            return
        yield self.finding_at(
            module,
            anchor,
            f"mixing dimensions: {ast.unparse(left)!r} is {left_dim} but "
            f"{ast.unparse(right)!r} is {right_dim}; convert explicitly "
            "(any conversion call makes the dimension unknown and passes)",
        )
