"""registry-completeness: every registry member registered at every site.

PR 8 added the ``chimera``/``chimerad``/``interleaved`` schedule families
by hand-editing ~8 registration sites (the schedule builder, the memory
model's in-flight counter, the memory-audit defaults, the CLI choices,
the validate battery, two fuzz kind lists, the docs). Nothing checked the
edit was complete: a kind missing from one site fails late — or worse,
silently falls through to a default branch. The same shape recurs for
:class:`~repro.pipeline.tasks.TaskKind`, the experiment registry, the
baseline-method table, and the robustness engine list.

A :class:`RegistryContract` makes the obligation declarative, mirroring
PR 5's ``DigestContract``: one *member declaration* (a module-level tuple
/list of strings, a string-keyed dict, or an enum class — read by
:func:`repro.analysis.project.registry_members`) plus N *sites* where
every member must appear. A site names a file (path suffix, resolved
against the contract tree root with a bounded parent walk for files
outside it, e.g. ``tests/`` and ``*.md``), an optional function scope,
and a match mode:

* ``"string"`` — the member's *value* must occur as a string constant in
  the scope (dispatch comparisons, ``choices=[...]`` lists, kind tuples);
* ``"attribute"`` — ``SYMBOL.MEMBER`` must occur (enum registries whose
  sites dispatch on identity, e.g. ``TaskKind.BACKWARD_WEIGHT``);
* ``"text"`` — the member's value must occur as a substring of the raw
  file text (documentation sites; the file need not be Python).

Per-site *exemptions* record deliberate gaps with a written reason (the
memory audit cannot default-include ``interleaved`` because it needs a
chunked plan); a reason-less or stale exemption is itself a finding, the
same no-silent-rot policy the digest allowances follow.

The contract *fires* on its ``anchor_path`` — normally the module
declaring the registry. The firing module only triggers the check; all
evidence is gathered through the shared project index, so the whole
contract is checked exactly once per lint run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.framework import LintContext, Rule, SourceModule, register
from repro.analysis.project import find_function, registry_members

#: How many directory levels above the contract tree root a site path may
#: resolve (repo-level files like ``tests/`` and ``EXPERIMENTS.md`` sit
#: two levels above ``src/repro``).
_PARENT_WALK_LEVELS = 3


@dataclass(frozen=True)
class SiteExemption:
    """One member deliberately absent from one site, with its reason."""

    member: str
    reason: str


@dataclass(frozen=True)
class RegistrySite:
    """One place every registry member must be registered.

    Attributes:
        path: path suffix of the site file, resolved against the contract
            tree root, then against up to ``_PARENT_WALK_LEVELS`` parent
            directories (for ``tests/`` and docs outside the lint tree).
        scope: function (``"name"`` or ``"Class.method"``) the match is
            confined to; ``None`` scans the whole module / file.
        match: ``"string"`` | ``"attribute"`` | ``"text"`` (see module
            docstring).
        optional: a missing *file* is skipped instead of reported —
            for sites that only exist in the full repo checkout, not in
            an installed package tree. A present file with a missing
            ``scope`` function is always a broken contract.
        exempt: members deliberately unregistered here.
    """

    path: str
    scope: Optional[str] = None
    match: str = "string"
    optional: bool = False
    exempt: Tuple[SiteExemption, ...] = ()


@dataclass(frozen=True)
class RegistryContract:
    """Binding of one registry declaration to its registration sites.

    Attributes:
        name: short label used in finding messages (``"schedule-kinds"``).
        anchor_path: path suffix whose lint visit triggers the check.
            Chosen so fixture trees that merely *mirror* one site file do
            not fire the whole contract (see tests/fixtures/adalint).
        members_path: path suffix of the module declaring the registry.
        members_symbol: module-level symbol holding the members (tuple,
            dict, or enum class name).
        sites: every place each member must appear.
    """

    name: str
    anchor_path: str
    members_path: str
    members_symbol: str
    sites: Tuple[RegistrySite, ...] = ()


#: The repo's registries and their registration surfaces. A new schedule
#: family, experiment, baseline method, or engine added to one of these
#: declarations makes the tree lint-dirty until every site (or a reasoned
#: exemption) registers it.
DEFAULT_REGISTRY_CONTRACTS: Tuple[RegistryContract, ...] = (
    RegistryContract(
        name="schedule-kinds",
        anchor_path="profiler/memory.py",
        members_path="profiler/memory.py",
        members_symbol="SCHEDULE_KINDS",
        sites=(
            RegistrySite(
                path="profiler/memory.py", scope="in_flight_micro_batches"
            ),
            RegistrySite(
                path="core/evaluate.py", scope="build_schedule_for_plan"
            ),
            RegistrySite(
                path="pipeline/memory_audit.py",
                scope="audit_plan_over_schedules",
                exempt=(
                    SiteExemption(
                        "interleaved",
                        "the audit defaults run un-chunked plans; the "
                        "interleaved builder requires chunked stages and is "
                        "audited separately in tests/test_memory_audit.py",
                    ),
                ),
            ),
            RegistrySite(path="experiments/cli.py", scope="_build_parser"),
            RegistrySite(
                path="experiments/validate.py", scope="_check_memory_audit",
                exempt=(
                    SiteExemption(
                        "interleaved",
                        "same chunked-plan constraint as the memory-audit "
                        "defaults this check drives",
                    ),
                ),
            ),
            RegistrySite(path="tests/test_sim_engine.py", optional=True),
            RegistrySite(path="tests/test_batched.py", optional=True),
        ),
    ),
    RegistryContract(
        name="task-kinds",
        # Anchored on compiled.py (not tasks.py): the digest fixtures
        # mirror pipeline/tasks.py with a trimmed TaskKind and must not
        # fire this contract.
        anchor_path="pipeline/compiled.py",
        members_path="pipeline/tasks.py",
        members_symbol="TaskKind",
        sites=(
            RegistrySite(path="pipeline/compiled.py", match="attribute"),
            RegistrySite(path="pipeline/simulator.py", match="attribute"),
        ),
    ),
    RegistryContract(
        name="experiments",
        anchor_path="experiments/registry.py",
        members_path="experiments/registry.py",
        members_symbol="EXPERIMENTS",
        sites=(
            RegistrySite(path="EXPERIMENTS.md", match="text", optional=True),
        ),
    ),
    RegistryContract(
        name="baseline-methods",
        anchor_path="baselines/methods.py",
        members_path="baselines/methods.py",
        members_symbol="ALL_METHODS",
        sites=(
            RegistrySite(path="EXPERIMENTS.md", match="text", optional=True),
        ),
    ),
    RegistryContract(
        name="robust-engines",
        anchor_path="core/robust.py",
        members_path="core/robust.py",
        members_symbol="ROBUST_ENGINES",
        sites=(
            RegistrySite(path="experiments/cli.py", scope="_build_parser"),
            RegistrySite(path="docs/USAGE.md", match="text", optional=True),
        ),
    ),
)


def _path_matches(relpath: str, suffix: str) -> bool:
    return relpath == suffix or relpath.endswith("/" + suffix)


def _resolve_site_path(tree_root: Path, site_path: str) -> Optional[Path]:
    """Site file under the tree root, else under a bounded parent walk."""
    base = tree_root
    for _ in range(_PARENT_WALK_LEVELS + 1):
        candidate = base / site_path
        if candidate.is_file():
            return candidate
        if base.parent == base:
            break
        base = base.parent
    return None


def _scope_strings(scope: ast.AST) -> Set[str]:
    return {
        node.value
        for node in ast.walk(scope)
        if isinstance(node, ast.Constant) and isinstance(node.value, str)
    }


def _scope_attributes(scope: ast.AST, symbol: str) -> Set[str]:
    return {
        node.attr
        for node in ast.walk(scope)
        if isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == symbol
    }


@register
class RegistryCompletenessRule(Rule):
    name = "registry-completeness"
    severity = "error"
    description = (
        "every member of a contracted registry (schedule kinds, task "
        "kinds, experiments, methods, engines) must appear at each "
        "declared registration site or carry a reasoned exemption"
    )

    def __init__(
        self,
        contracts: Tuple[RegistryContract, ...] = DEFAULT_REGISTRY_CONTRACTS,
    ):
        self.contracts = contracts

    def check(self, module: SourceModule, ctx: LintContext) -> Iterator[Finding]:
        for contract in self.contracts:
            if not _path_matches(module.relpath, contract.anchor_path):
                continue
            yield from self._check_contract(module, ctx, contract)

    def _check_contract(
        self, module: SourceModule, ctx: LintContext, contract: RegistryContract
    ) -> Iterator[Finding]:
        tree_root = Path(str(module.path)[: -len(contract.anchor_path)])
        members_path = _resolve_site_path(tree_root, contract.members_path)
        members_module = (
            ctx.module_at(members_path) if members_path is not None else None
        )
        if members_module is None:
            yield self.finding(
                module,
                1,
                f"contract {contract.name!r} broken: members module "
                f"{contract.members_path!r} is missing or unparsable",
            )
            return
        members = registry_members(members_module, contract.members_symbol)
        if not members:
            yield self.finding(
                module,
                1,
                f"contract {contract.name!r} broken: registry "
                f"{contract.members_symbol!r} not found in "
                f"{contract.members_path!r} (or its members are not "
                "statically evident)",
            )
            return

        # Findings anchor on the member's declaration line when the
        # registry lives in the firing module, else on the module head.
        def anchor(member_line: int) -> int:
            if _path_matches(module.relpath, contract.members_path):
                return member_line
            return 1

        for site in contract.sites:
            site_path = _resolve_site_path(tree_root, site.path)
            if site_path is None:
                if site.optional:
                    continue
                yield self.finding(
                    module,
                    1,
                    f"contract {contract.name!r} broken: site file "
                    f"{site.path!r} not found under {tree_root}",
                )
                continue

            exempt = {exemption.member: exemption for exemption in site.exempt}
            member_values = {member.value for member in members}
            for exemption in site.exempt:
                if exemption.member not in member_values:
                    yield self.finding(
                        module,
                        1,
                        f"stale exemption: {exemption.member!r} is not a "
                        f"member of {contract.members_symbol!r} (site "
                        f"{site.path})",
                    )
                elif not exemption.reason.strip():
                    yield self.finding(
                        module,
                        1,
                        f"exemption for {exemption.member!r} at site "
                        f"{site.path} carries no reason",
                    )

            if site.match == "text":
                text = site_path.read_text()
                covered = {
                    member.value
                    for member in members
                    if member.value in text
                }
            else:
                site_module = ctx.module_at(site_path)
                if site_module is None:
                    yield self.finding(
                        module,
                        1,
                        f"contract {contract.name!r} broken: site file "
                        f"{site.path!r} does not parse",
                    )
                    continue
                scope: Optional[ast.AST] = site_module.tree
                if site.scope is not None:
                    scope = find_function(site_module.tree, site.scope)
                    if scope is None:
                        yield self.finding(
                            module,
                            1,
                            f"contract {contract.name!r} broken: scope "
                            f"{site.scope!r} not found in {site.path!r}",
                        )
                        continue
                if site.match == "attribute":
                    names = _scope_attributes(scope, contract.members_symbol)
                    covered = {
                        member.value
                        for member in members
                        if member.name in names
                    }
                else:
                    covered = _scope_strings(scope) & member_values

            for member in members:
                if member.value in covered:
                    continue
                if member.value in exempt:
                    continue
                where = (
                    f"{site.path}::{site.scope}" if site.scope else site.path
                )
                yield self.finding(
                    module,
                    anchor(member.line),
                    f"registry member {member.value!r} of "
                    f"{contract.members_symbol} ({contract.name}) is not "
                    f"registered at site {where} — a kind reaching that "
                    "code path would fail late or fall through silently",
                )


__all__ = [
    "DEFAULT_REGISTRY_CONTRACTS",
    "RegistryCompletenessRule",
    "RegistryContract",
    "RegistrySite",
    "SiteExemption",
]
