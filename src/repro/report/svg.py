"""A minimal SVG document builder (no third-party dependencies).

Only the elements the chart layer needs: rects with selectively rounded
corners, lines, polylines, circles, and text, with numeric attributes
rounded to keep the output diffable.
"""

from __future__ import annotations

import html
from typing import List, Optional, Sequence, Tuple

# Visual tokens (light mode, from the validated reference palette).
SURFACE = "#fcfcfb"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
TEXT_MUTED = "#8a897f"
GRIDLINE = "#e9e8e4"
SERIES = (
    "#2a78d6",  # blue
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
    "#e87ba4",  # magenta
    "#eb6834",  # orange
)
FONT = "system-ui, -apple-system, 'Segoe UI', Helvetica, Arial, sans-serif"


def _fmt(value: float) -> str:
    text = f"{value:.2f}".rstrip("0").rstrip(".")
    return text if text else "0"


class SvgCanvas:
    """Accumulates SVG elements and serialises the document."""

    def __init__(self, width: int, height: int) -> None:
        self.width = width
        self.height = height
        self._body: List[str] = []
        self.rect(0, 0, width, height, fill=SURFACE)

    def rect(
        self,
        x: float,
        y: float,
        width: float,
        height: float,
        fill: str,
        rx_top: float = 0.0,
    ) -> None:
        """A rectangle; ``rx_top`` rounds only the two top corners (the
        data-end of an upward bar), keeping the baseline square."""
        if width <= 0 or height <= 0:
            return
        if rx_top <= 0:
            self._body.append(
                f'<rect x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(width)}" '
                f'height="{_fmt(height)}" fill="{fill}"/>'
            )
            return
        r = min(rx_top, width / 2, height)
        path = (
            f"M {_fmt(x)} {_fmt(y + height)} "
            f"L {_fmt(x)} {_fmt(y + r)} "
            f"Q {_fmt(x)} {_fmt(y)} {_fmt(x + r)} {_fmt(y)} "
            f"L {_fmt(x + width - r)} {_fmt(y)} "
            f"Q {_fmt(x + width)} {_fmt(y)} {_fmt(x + width)} {_fmt(y + r)} "
            f"L {_fmt(x + width)} {_fmt(y + height)} Z"
        )
        self._body.append(f'<path d="{path}" fill="{fill}"/>')

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        stroke: str = GRIDLINE,
        width: float = 1.0,
    ) -> None:
        self._body.append(
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" '
            f'y2="{_fmt(y2)}" stroke="{stroke}" stroke-width="{_fmt(width)}"/>'
        )

    def polyline(
        self,
        points: Sequence[Tuple[float, float]],
        stroke: str,
        width: float = 2.0,
        dasharray: Optional[str] = None,
    ) -> None:
        if len(points) < 2:
            return
        coords = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        dash = f' stroke-dasharray="{dasharray}"' if dasharray else ""
        self._body.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{_fmt(width)}" stroke-linejoin="round" '
            f'stroke-linecap="round"{dash}/>'
        )

    def circle(
        self,
        cx: float,
        cy: float,
        r: float,
        fill: str,
        ring: Optional[str] = SURFACE,
        ring_width: float = 2.0,
    ) -> None:
        stroke = (
            f' stroke="{ring}" stroke-width="{_fmt(ring_width)}"' if ring else ""
        )
        self._body.append(
            f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{_fmt(r)}" '
            f'fill="{fill}"{stroke}/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: int = 11,
        fill: str = TEXT_SECONDARY,
        anchor: str = "start",
        weight: str = "normal",
    ) -> None:
        self._body.append(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}" font-family="{FONT}" '
            f'font-size="{size}" fill="{fill}" text-anchor="{anchor}" '
            f'font-weight="{weight}">{html.escape(content)}</text>'
        )

    def to_string(self) -> str:
        header = (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}" '
            f'role="img">'
        )
        return "\n".join([header, *self._body, "</svg>"])


def nice_ticks(low: float, high: float, target: int = 5) -> List[float]:
    """Round tick values (1/2/5 ladder) covering [low, high]."""
    if high <= low:
        high = low + 1.0
    span = high - low
    raw_step = span / max(1, target)
    magnitude = 10 ** __import__("math").floor(__import__("math").log10(raw_step))
    for multiple in (1, 2, 5, 10):
        step = multiple * magnitude
        if span / step <= target:
            break
    first = __import__("math").floor(low / step) * step
    ticks = []
    value = first
    while value <= high + 1e-9:
        if value >= low - 1e-9:
            ticks.append(round(value, 10))
        value += step
    return ticks


def format_tick(value: float) -> str:
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:g}"
