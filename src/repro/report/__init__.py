"""SVG report generation: the paper's figures as actual figures.

Every end-to-end experiment renders to a text table (``results/*.txt``);
this package additionally renders the headline artifacts as standalone SVG
charts (``results/svg/*.svg``) — per-stage memory lines for Figures 1/8,
micro-step lines for Figure 9, grouped end-to-end bars for Figures 5/6/7,
loss curves for Figure 10, and a per-device straggler-criticality heat map
for the robustness artifact.

Charts follow a fixed visual spec: a validated 8-slot categorical palette
assigned in fixed order, 2px lines with ringed end-markers and direct end
labels, ≤24px bars with rounded data-ends and 2px surface gaps, hairline
gridlines, and all text in neutral ink (the accompanying text tables are
the table view for low-contrast slots).
"""

from repro.report.charts import grouped_bar_chart, heat_map, line_chart
from repro.report.render import render_experiment_svg, save_experiment_svgs

__all__ = [
    "grouped_bar_chart",
    "heat_map",
    "line_chart",
    "render_experiment_svg",
    "save_experiment_svgs",
]
