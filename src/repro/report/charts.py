"""Chart layer: line charts, grouped bar charts and heat maps on the SVG
builder.

Mark specs (fixed): 2px lines with round joins, >=8px end markers carrying
a 2px surface ring, bars capped at 24px with a 4px rounded data-end and a
square baseline, 2px surface gaps between adjacent bars, 1px solid
gridlines, selective direct labels (line ends only, and only while four or
fewer series share the panel — beyond that the legend and the text table
carry identity). Categorical hues come from the validated palette in fixed
slot order. All text uses neutral ink, never a series color.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.report.svg import (
    GRIDLINE,
    SERIES,
    TEXT_MUTED,
    TEXT_PRIMARY,
    TEXT_SECONDARY,
    SvgCanvas,
    format_tick,
    nice_ticks,
)

MARGIN_LEFT = 64
MARGIN_RIGHT = 150
MARGIN_TOP = 56
MARGIN_BOTTOM = 46
BAR_MAX_WIDTH = 24.0
BAR_GAP = 2.0
HEAT_CELL_HEIGHT = 26.0
HEAT_LOW = "#f3f2ef"  # near-surface end of the sequential ramp


@dataclass
class Series:
    """One plotted series.

    Attributes:
        name: legend label.
        values: y-values; ``None`` marks a missing/OOM point.
        dashed: render the line dashed (used for reference levels).
    """

    name: str
    values: Sequence[Optional[float]]
    dashed: bool = False


@dataclass
class ChartSpec:
    title: str
    subtitle: str = ""
    x_labels: Sequence[str] = field(default_factory=list)
    x_title: str = ""
    y_title: str = ""
    reference_line: Optional[Tuple[float, str]] = None  # (y-value, label)


def _plot_area(width: int, height: int) -> Tuple[float, float, float, float]:
    return (
        MARGIN_LEFT,
        MARGIN_TOP,
        width - MARGIN_LEFT - MARGIN_RIGHT,
        height - MARGIN_TOP - MARGIN_BOTTOM,
    )


def _value_range(series: Sequence[Series], reference: Optional[float]) -> Tuple[float, float]:
    values = [
        v for s in series for v in s.values if v is not None and math.isfinite(v)
    ]
    if reference is not None:
        values.append(reference)
    if not values:
        return 0.0, 1.0
    low = min(0.0, min(values))
    high = max(values)
    if high == low:
        high = low + 1.0
    return low, high * 1.06


def _frame(
    canvas: SvgCanvas,
    spec: ChartSpec,
    x0: float,
    y0: float,
    plot_w: float,
    plot_h: float,
    y_low: float,
    y_high: float,
) -> None:
    canvas.text(x0, 22, spec.title, size=14, fill=TEXT_PRIMARY, weight="600")
    if spec.subtitle:
        canvas.text(x0, 38, spec.subtitle, size=11, fill=TEXT_SECONDARY)
    for tick in nice_ticks(y_low, y_high):
        y = y0 + plot_h - (tick - y_low) / (y_high - y_low) * plot_h
        canvas.line(x0, y, x0 + plot_w, y, stroke=GRIDLINE, width=1.0)
        canvas.text(x0 - 8, y + 3.5, format_tick(tick), size=10, anchor="end")
    canvas.line(x0, y0 + plot_h, x0 + plot_w, y0 + plot_h, stroke="#cfcec8", width=1.0)
    if spec.y_title:
        canvas.text(12, y0 - 12, spec.y_title, size=10, fill=TEXT_MUTED)
    if spec.x_title:
        canvas.text(
            x0 + plot_w / 2,
            y0 + plot_h + 34,
            spec.x_title,
            size=10,
            fill=TEXT_MUTED,
            anchor="middle",
        )
    if spec.reference_line is not None:
        ref_value, ref_label = spec.reference_line
        y = y0 + plot_h - (ref_value - y_low) / (y_high - y_low) * plot_h
        canvas.polyline(
            [(x0, y), (x0 + plot_w, y)],
            stroke="#9b9a92",
            width=1.0,
            dasharray="5,4",
        )
        canvas.text(x0 + plot_w + 6, y + 3.5, ref_label, size=10, fill=TEXT_MUTED)


def _legend(canvas: SvgCanvas, series: Sequence[Series], x: float, y: float) -> None:
    if len(series) < 2:
        return  # a single series is named by the title
    for index, entry in enumerate(series):
        color = SERIES[index % len(SERIES)]
        row_y = y + index * 18
        canvas.rect(x, row_y - 8, 12, 12, fill=color, rx_top=2)
        canvas.text(x + 18, row_y + 2, entry.name, size=11)


def line_chart(spec: ChartSpec, series: Sequence[Series], width: int = 760, height: int = 380) -> str:
    """Render a multi-series line chart; None values break the line."""
    canvas = SvgCanvas(width, height)
    x0, y0, plot_w, plot_h = _plot_area(width, height)
    reference = spec.reference_line[0] if spec.reference_line else None
    y_low, y_high = _value_range(series, reference)
    _frame(canvas, spec, x0, y0, plot_w, plot_h, y_low, y_high)

    n = max(len(entry.values) for entry in series)
    step = plot_w / max(1, n - 1)

    def position(index: int, value: float) -> Tuple[float, float]:
        return (
            x0 + index * step,
            y0 + plot_h - (value - y_low) / (y_high - y_low) * plot_h,
        )

    for index, label in enumerate(spec.x_labels):
        canvas.text(
            x0 + index * step, y0 + plot_h + 16, str(label), size=10, anchor="middle"
        )

    direct_labels = len(series) <= 4
    for s_index, entry in enumerate(series):
        color = SERIES[s_index % len(SERIES)]
        segment: List[Tuple[float, float]] = []
        for index, value in enumerate(entry.values):
            if value is None or not math.isfinite(value):
                canvas.polyline(
                    segment, color, 2.0, dasharray="2,3" if entry.dashed else None
                )
                segment = []
                continue
            segment.append(position(index, value))
        canvas.polyline(
            segment, color, 2.0, dasharray="2,3" if entry.dashed else None
        )
        last_point = None
        for index in range(len(entry.values) - 1, -1, -1):
            value = entry.values[index]
            if value is not None and math.isfinite(value):
                last_point = position(index, value)
                break
        if last_point is not None:
            canvas.circle(last_point[0], last_point[1], 4.0, color)
            if direct_labels:
                canvas.text(
                    last_point[0] + 10,
                    last_point[1] + 4,
                    entry.name,
                    size=11,
                    fill=TEXT_SECONDARY,
                )
    if not direct_labels:
        _legend(canvas, series, x0 + plot_w + 16, y0 + 8)
    return canvas.to_string()


def _blend(start: str, end: str, t: float) -> str:
    """Linear interpolation between two ``#rrggbb`` colors, t in [0, 1]."""
    t = min(1.0, max(0.0, t))
    channels = (
        round(
            int(start[i : i + 2], 16)
            + (int(end[i : i + 2], 16) - int(start[i : i + 2], 16)) * t
        )
        for i in (1, 3, 5)
    )
    return "#" + "".join(f"{c:02x}" for c in channels)


def heat_map(
    spec: ChartSpec,
    row_labels: Sequence[str],
    values: Sequence[Sequence[Optional[float]]],
    width: int = 640,
    value_format: str = "{:.3f}",
) -> str:
    """Render a row/column grid of scalar cells on a sequential ramp.

    Columns come from ``spec.x_labels``; each cell's fill interpolates
    from near-surface to the first series hue, normalised *per column*
    (columns may carry different units — e.g. slowdown factors next to
    criticalities). ``None`` cells render as a muted dash. Every cell also
    carries its numeric label, so the chart stays readable without a
    color key.
    """
    rows = len(row_labels)
    cols = len(spec.x_labels)
    left = MARGIN_LEFT + 46
    right = 24
    height = int(MARGIN_TOP + rows * HEAT_CELL_HEIGHT + 22)
    canvas = SvgCanvas(width, height)
    canvas.text(left, 22, spec.title, size=14, fill=TEXT_PRIMARY, weight="600")
    if spec.subtitle:
        canvas.text(left, 38, spec.subtitle, size=11, fill=TEXT_SECONDARY)
    cell_w = (width - left - right) / max(1, cols)

    ranges = []
    for col in range(cols):
        present = [
            row[col]
            for row in values
            if col < len(row) and row[col] is not None and math.isfinite(row[col])
        ]
        low = min(present) if present else 0.0
        high = max(present) if present else 1.0
        ranges.append((low, high - low))

    for col, label in enumerate(spec.x_labels):
        canvas.text(
            left + col * cell_w + cell_w / 2,
            MARGIN_TOP - 8,
            str(label),
            size=10,
            anchor="middle",
        )
    for row_index, label in enumerate(row_labels):
        y = MARGIN_TOP + row_index * HEAT_CELL_HEIGHT
        canvas.text(
            left - 10,
            y + HEAT_CELL_HEIGHT / 2 + 3.5,
            str(label),
            size=10,
            anchor="end",
        )
        for col in range(cols):
            value = values[row_index][col] if col < len(values[row_index]) else None
            x = left + col * cell_w
            if value is None or not math.isfinite(value):
                canvas.rect(x + 1, y + 1, cell_w - 2, HEAT_CELL_HEIGHT - 2, fill=GRIDLINE)
                canvas.text(
                    x + cell_w / 2,
                    y + HEAT_CELL_HEIGHT / 2 + 3.5,
                    "–",
                    size=10,
                    fill=TEXT_MUTED,
                    anchor="middle",
                )
                continue
            low, span = ranges[col]
            t = (value - low) / span if span > 0 else 0.0
            canvas.rect(
                x + 1,
                y + 1,
                cell_w - 2,
                HEAT_CELL_HEIGHT - 2,
                fill=_blend(HEAT_LOW, SERIES[0], t),
            )
            canvas.text(
                x + cell_w / 2,
                y + HEAT_CELL_HEIGHT / 2 + 3.5,
                value_format.format(value),
                size=10,
                fill="#ffffff" if t > 0.55 else TEXT_PRIMARY,
                anchor="middle",
            )
    return canvas.to_string()


def grouped_bar_chart(
    spec: ChartSpec, series: Sequence[Series], width: int = 860, height: int = 400
) -> str:
    """Render grouped bars; None values render an 'OOM' marker instead."""
    canvas = SvgCanvas(width, height)
    x0, y0, plot_w, plot_h = _plot_area(width, height)
    y_low, y_high = _value_range(series, None)
    y_low = 0.0
    _frame(canvas, spec, x0, y0, plot_w, plot_h, y_low, y_high)

    groups = len(spec.x_labels)
    per_group = len(series)
    band = plot_w / max(1, groups)
    bar_w = min(BAR_MAX_WIDTH, (band * 0.8 - (per_group - 1) * BAR_GAP) / per_group)
    cluster_w = per_group * bar_w + (per_group - 1) * BAR_GAP

    for g_index, label in enumerate(spec.x_labels):
        base_x = x0 + g_index * band + (band - cluster_w) / 2
        canvas.text(
            x0 + g_index * band + band / 2,
            y0 + plot_h + 16,
            str(label),
            size=10,
            anchor="middle",
        )
        for s_index, entry in enumerate(series):
            value = entry.values[g_index] if g_index < len(entry.values) else None
            x = base_x + s_index * (bar_w + BAR_GAP)
            color = SERIES[s_index % len(SERIES)]
            if value is None or not math.isfinite(value):
                canvas.text(
                    x + bar_w / 2,
                    y0 + plot_h - 6,
                    "OOM",
                    size=8,
                    fill=TEXT_MUTED,
                    anchor="middle",
                )
                continue
            bar_h = (value - y_low) / (y_high - y_low) * plot_h
            canvas.rect(
                x, y0 + plot_h - bar_h, bar_w, bar_h, fill=color, rx_top=4.0
            )
    _legend(canvas, series, x0 + plot_w + 16, y0 + 8)
    return canvas.to_string()
