"""Single-file HTML report: every artifact's chart and table in one page.

``build_html_report`` takes finished experiment results and assembles a
self-contained ``report.html`` — inline SVG charts (from
:mod:`repro.report.render`) each paired with its data table (the table
view backing the chart), styled with the same neutral-ink/light-surface
tokens as the charts, with an automatic dark mode.
"""

from __future__ import annotations

import html as html_escape
import pathlib
from typing import Dict, List, Optional

from repro.experiments.common import ExperimentResult
from repro.report.render import render_experiment_svg

_PAGE_STYLE = """
:root {
  --surface: #fcfcfb; --text-primary: #0b0b0b; --text-secondary: #52514e;
  --rule: #e9e8e4;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --rule: #383835;
  }
  svg { filter: invert(0.92) hue-rotate(180deg); }
}
body {
  background: var(--surface); color: var(--text-primary);
  font-family: system-ui, -apple-system, 'Segoe UI', Helvetica, Arial, sans-serif;
  max-width: 960px; margin: 2rem auto; padding: 0 1rem; line-height: 1.45;
}
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2.2rem; }
table { border-collapse: collapse; font-size: 0.8rem; margin: 0.8rem 0; }
th, td {
  padding: 0.25rem 0.6rem; text-align: left;
  border-bottom: 1px solid var(--rule);
  font-variant-numeric: tabular-nums;
}
th { color: var(--text-secondary); font-weight: 600; }
p.note { color: var(--text-secondary); font-size: 0.8rem; margin: 0.2rem 0; }
"""


def _table_html(result: ExperimentResult) -> str:
    head = "".join(f"<th>{html_escape.escape(h)}</th>" for h in result.headers)
    rows = "".join(
        "<tr>" + "".join(f"<td>{html_escape.escape(c)}</td>" for c in row) + "</tr>"
        for row in result.rows
    )
    notes = "".join(
        f'<p class="note">{html_escape.escape(note)}</p>' for note in result.notes
    )
    return (
        f"<table><thead><tr>{head}</tr></thead><tbody>{rows}</tbody></table>{notes}"
    )


def build_html_report(
    results: Dict[str, ExperimentResult],
    title: str = "AdaPipe reproduction — results",
) -> str:
    """Assemble the report page from finished experiments (in dict order)."""
    sections: List[str] = []
    for name, result in results.items():
        svg = render_experiment_svg(name, result)
        chart = svg if svg is not None else ""
        sections.append(
            f'<section id="{name}"><h2>{html_escape.escape(result.title)}'
            f"</h2>{chart}{_table_html(result)}</section>"
        )
    toc = "".join(
        f'<li><a href="#{name}">{html_escape.escape(name)}</a></li>'
        for name in results
    )
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{html_escape.escape(title)}</title>"
        f"<style>{_PAGE_STYLE}</style></head><body>"
        f"<h1>{html_escape.escape(title)}</h1>"
        f"<ul>{toc}</ul>{''.join(sections)}</body></html>"
    )


def write_html_report(
    results: Dict[str, ExperimentResult],
    path: str,
    title: Optional[str] = None,
) -> str:
    """Write the report; returns the path written."""
    document = build_html_report(
        results, title or "AdaPipe reproduction — results"
    )
    output = pathlib.Path(path)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(document)
    return str(output)
