"""Mapping experiment results onto charts.

Each renderable experiment id gets a small adapter that reads the
experiment's row format (which this repo controls) and emits the chart the
paper prints: per-stage memory lines (Figures 1 and 8, with the 80 GiB
device limit as a dashed reference), per-stage micro-step lines (Figure 9),
grouped end-to-end bars with OOM markers (Figures 5-7, Table 3), saved-unit
profiles (Table 4), and loss curves (Figure 10). Every chart's underlying
numbers are also written as the text table next to it — the table view.
"""

from __future__ import annotations

import pathlib
from typing import Callable, Dict, List, Optional

from repro.experiments.common import ExperimentResult
from repro.report.charts import (
    ChartSpec,
    Series,
    grouped_bar_chart,
    heat_map,
    line_chart,
)


def _parse_cell(cell: str) -> Optional[float]:
    cell = cell.strip()
    if cell == "OOM" or not cell:
        return None
    return float(cell.rstrip("sx%"))


def _render_figure1(result: ExperimentResult) -> str:
    series = [
        Series(f"{row[0]} ({row[1]})", [float(v) for v in row[2:]])
        for row in result.rows
    ]
    spec = ChartSpec(
        title="Figure 1 — per-stage memory, GPT-3 (t,p,d)=(8,8,1)",
        subtitle="full vs no recomputation across sequence lengths",
        x_labels=[f"{s}" for s in range(len(result.rows[0]) - 2)],
        x_title="stage id",
        y_title="GiB",
        reference_line=(80.0, "80 GiB limit"),
    )
    return line_chart(spec, series)


def _render_stage_lines(
    result: ExperimentResult,
    title: str,
    y_title: str,
    reference: Optional[float],
    value_slice: slice,
) -> str:
    series = [
        Series(row[0], [_parse_cell(v) for v in row[value_slice]])
        for row in result.rows
    ]
    stages = len(result.rows[0][value_slice])
    spec = ChartSpec(
        title=title,
        x_labels=[str(s) for s in range(stages)],
        x_title="stage id",
        y_title=y_title,
        reference_line=(reference, "80 GiB limit") if reference else None,
    )
    return line_chart(spec, series)


def _render_figure8(result: ExperimentResult) -> str:
    return _render_stage_lines(
        result,
        "Figure 8 — peak memory per stage, GPT-3, seq 16384",
        "GiB",
        80.0,
        slice(1, 9),
    )


def _render_figure9(result: ExperimentResult) -> str:
    return _render_stage_lines(
        result,
        "Figure 9 — micro-step time per stage, GPT-3, seq 16384",
        "seconds",
        None,
        slice(1, 9),
    )


def _render_end_to_end_bars(
    result: ExperimentResult, title: str, group_col: int, first_method_col: int
) -> str:
    methods = result.headers[first_method_col:-1]
    labels = [row[group_col] for row in result.rows]
    series = [
        Series(
            method,
            [
                _parse_cell(row[first_method_col + index])
                for row in result.rows
            ],
        )
        for index, method in enumerate(methods)
    ]
    spec = ChartSpec(
        title=title,
        subtitle="iteration time; missing bars are OOM",
        x_labels=labels,
        y_title="seconds",
    )
    return grouped_bar_chart(spec, series)


def _render_figure5(result: ExperimentResult) -> str:
    return _render_end_to_end_bars(
        result, "Figure 5 — Llama 2 end-to-end, cluster A", 0, 2
    )


def _render_figure6(result: ExperimentResult) -> str:
    return _render_end_to_end_bars(
        result, "Figure 6 — GPT-3 end-to-end, cluster A", 0, 2
    )


def _render_figure7(result: ExperimentResult) -> str:
    methods = result.headers[3:-1]
    labels = [f"{row[0]}×{row[1]}" for row in result.rows]
    series = [
        Series(method, [_parse_cell(row[3 + index]) for row in result.rows])
        for index, method in enumerate(methods)
    ]
    spec = ChartSpec(
        title="Figure 7 — cluster B end-to-end (Ascend 910, 32 GB)",
        subtitle="iteration time; missing bars are OOM",
        x_labels=labels,
        y_title="seconds",
    )
    return grouped_bar_chart(spec, series)


def _render_table3(result: ExperimentResult) -> str:
    # The trailing "search" column is per-row planning wall clock, not an
    # iteration-time series.
    methods = [h for h in result.headers[1:] if h != "search"]
    series = [
        Series(method, [_parse_cell(row[1 + index]) for row in result.rows])
        for index, method in enumerate(methods)
    ]
    spec = ChartSpec(
        title="Table 3 — GPT-3 by (TP, PP, DP), cluster A, seq 4096",
        subtitle="iteration time; missing bars are OOM",
        x_labels=[row[0] for row in result.rows],
        y_title="seconds",
    )
    return grouped_bar_chart(spec, series)


def _render_table4(result: ExperimentResult) -> str:
    series = [
        Series(f"{row[0]}", [float(v) for v in row[2:]])
        for row in result.rows
        if row[1] == "Saved Units"
    ]
    stages = len(result.rows[0]) - 2
    spec = ChartSpec(
        title="Table 4 — saved computation units per stage",
        subtitle="GPT-3, seq 16384, (8,8,1); later stages save more",
        x_labels=[str(s) for s in range(stages)],
        x_title="stage id",
        y_title="saved units",
    )
    return line_chart(spec, series)


def _render_figure10(result: ExperimentResult) -> str:
    methods = result.headers[1:]
    series = [
        Series(method, [float(row[1 + index]) for row in result.rows])
        for index, method in enumerate(methods)
    ]
    spec = ChartSpec(
        title="Figure 10 — loss curves (real training, tiny Llama)",
        subtitle="same-seed curves coincide exactly",
        x_labels=[row[0] for row in result.rows],
        x_title="step",
        y_title="loss",
    )
    return line_chart(spec, series)


def _render_robustness(result: ExperimentResult) -> str:
    # Device-criticality columns are the trailing "crit:devN" headers; a
    # strategy with fewer pipeline ranks leaves the tail cells blank.
    first_crit = next(
        i for i, h in enumerate(result.headers) if h.startswith("crit:")
    )
    devices = result.headers[first_crit:]
    values = [
        [_parse_cell(cell) for cell in row[first_crit:]] for row in result.rows
    ]
    spec = ChartSpec(
        title="Robustness — per-device straggler criticality",
        subtitle="marginal iteration-time slowdown per unit device slowdown",
        x_labels=[h.replace("crit:", "") for h in devices],
    )
    return heat_map(spec, [row[0] for row in result.rows], values)


_RENDERERS: Dict[str, Callable[[ExperimentResult], str]] = {
    "figure1": _render_figure1,
    "figure5": _render_figure5,
    "figure6": _render_figure6,
    "figure7": _render_figure7,
    "figure8": _render_figure8,
    "figure9": _render_figure9,
    "figure10": _render_figure10,
    "robustness": _render_robustness,
    "table3": _render_table3,
    "table4": _render_table4,
}


def render_experiment_svg(name: str, result: ExperimentResult) -> Optional[str]:
    """SVG for a finished experiment, or ``None`` for text-only artifacts
    (Figure 2's schedule diagram is best read as its ASCII timeline)."""
    renderer = _RENDERERS.get(name)
    if renderer is None:
        return None
    return renderer(result)


def save_experiment_svgs(
    results: Dict[str, ExperimentResult], directory: str
) -> List[str]:
    """Render every renderable result into ``directory``; returns paths."""
    out_dir = pathlib.Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for name, result in results.items():
        svg = render_experiment_svg(name, result)
        if svg is None:
            continue
        path = out_dir / f"{name}.svg"
        path.write_text(svg)
        written.append(str(path))
    return written
