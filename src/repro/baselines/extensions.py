"""Extension baselines beyond the paper's evaluated set.

These implement techniques the paper discusses in Sections 2 and 8 but does
not carry into its figures, so AdaPipe can be compared against the wider
design space:

* **sqrt(L) checkpointing** (Chen et al. 2016, Section 2.2): keep only a
  layer-boundary activation every ``k`` layers, re-running whole segments
  in backward; the recompute buffer grows to ``k`` layers. Per stage we
  pick the fastest feasible ``k`` — the classic memory/time curve AdaPipe's
  unit knapsack dominates.
* **BPipe-style activation balancing** (Kim et al. 2023, Section 8):
  no recomputation anywhere; instead, stage ``s`` (holding ``p - s``
  micro-batches) evicts activations to its memory-rich partner stage
  ``p - 1 - s``, balancing the pair's load at the price of extra
  point-to-point traffic.
* **Interleaved 1F1B** (Megatron, Section 2.1): ``v`` model chunks per
  device shrink bubbles to ``1/v`` at ``v``-fold stage-boundary
  communication; combined here with full/no recomputation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.evaluate import PlanEvaluation
from repro.core.isomorphism import StageEval
from repro.core.partition_dp import even_boundaries
from repro.core.plan import PipelinePlan, StagePlan
from repro.core.search import PlannerContext, evaluate_fixed_partition_from_evals
from repro.core.strategies import RecomputePolicy, stage_eval_for_policy
from repro.hardware.comm import CommModel

from repro.profiler.memory import StageMemory


# -- sqrt(L) checkpointing ----------------------------------------------------


def _boundary_bytes(profile) -> float:
    return sum(u.saved_bytes for u in profile.units if u.always_saved)


def sqrt_checkpoint_stage_eval(
    ctx: PlannerContext,
    stage: int,
    stage_layers,
    capacity_bytes: float,
    segment_length: Optional[int] = None,
) -> StageEval:
    """Evaluate one stage under segment checkpointing.

    Args:
        ctx: planning context.
        stage: stage index (sets the ``p - s`` in-flight multiplier).
        stage_layers: the stage's layer slice.
        capacity_bytes: device capacity.
        segment_length: checkpoint spacing ``k`` in layers; ``None`` picks
            the fastest feasible ``k`` per stage (k = sqrt(L) is the
            classic memory-optimal point).
    """
    memory_model = ctx.profiler.memory
    in_flight = memory_model.in_flight(stage)
    profiles = [ctx.profiler.profile_layer(layer.kind) for layer in stage_layers]
    num_layers = len(stage_layers)

    forward = sum(p.time_forward for p in profiles)
    backward_fixed = sum(p.time_backward for p in profiles)
    static = memory_model.static_bytes(stage_layers)
    per_layer_all_bytes = [p.saved_bytes_all for p in profiles]
    per_layer_boundary = [_boundary_bytes(p) for p in profiles]

    candidates = (
        [segment_length]
        if segment_length is not None
        else list(range(1, num_layers + 1))
    )
    best: Optional[StageEval] = None
    for k in candidates:
        # One checkpoint at the entry of every segment of k layers.
        num_segments = math.ceil(num_layers / k)
        saved = sum(
            per_layer_boundary[seg * k - 1] if seg > 0 else per_layer_boundary[0]
            for seg in range(num_segments)
        )
        # Backward recomputes every segment's forward (including the
        # units a per-layer scheme would keep), buffering k layers.
        recompute = forward
        buffer = max(
            (
                sum(per_layer_all_bytes[i : i + k])
                for i in range(0, num_layers, k)
            ),
            default=0.0,
        )
        memory = StageMemory(
            static_bytes=static,
            buffer_bytes=buffer,
            saved_per_microbatch=saved,
            in_flight_microbatches=in_flight,
        )
        feasible = memory.fits(capacity_bytes)
        eval_ = StageEval(
            feasible=feasible,
            forward=forward,
            backward=backward_fixed + recompute,
            saved_unit_counts={"segment.boundary": num_segments},
            saved_bytes_per_microbatch=saved,
            memory=memory,
        )
        if feasible and (best is None or eval_.memory.total_bytes < best.memory.total_bytes):
            best = eval_
    if best is not None:
        return best
    # Nothing fits: report the smallest-memory candidate as infeasible.
    return StageEval(
        feasible=False,
        forward=forward,
        backward=math.inf,
        saved_unit_counts={},
        saved_bytes_per_microbatch=0.0,
        memory=StageMemory(static, 0.0, 0.0, in_flight),
    )


def plan_sqrt_checkpoint(
    ctx: PlannerContext, method: str = "Checkpoint-sqrtL"
) -> PipelinePlan:
    """Uniform partition with per-stage segment checkpointing."""
    boundaries = even_boundaries(len(ctx.layers), ctx.parallel.pipeline_parallel)
    evals = [
        sqrt_checkpoint_stage_eval(
            ctx, s, ctx.layers[lo:hi], ctx.hard_capacity_bytes
        )
        for s, (lo, hi) in enumerate(boundaries)
    ]
    feasible = all(e.feasible for e in evals)
    total = (
        evaluate_fixed_partition_from_evals(
            evals, ctx.num_micro_batches, ctx.hop_time
        )
        if feasible
        else None
    )
    return _assemble(method, ctx, boundaries, evals, total, feasible)


# -- BPipe-style activation balancing -----------------------------------------


@dataclass(frozen=True)
class BPipeOverheads:
    """Transfer accounting for one stage pair."""

    moved_bytes_per_microbatch: float
    transfer_time_per_microbatch: float


def plan_bpipe(
    ctx: PlannerContext,
    method: str = "BPipe",
    overlap_fraction: float = 0.7,
) -> PipelinePlan:
    """No recomputation; pair stages (s, p-1-s) and balance their loads.

    Stage ``s`` holds ``(p - s) * A`` activation bytes under 1F1B; its
    partner holds ``(s + 1) * A``. BPipe evicts the difference/2 to the
    partner, so both sit at the pair average. The evicted bytes travel over
    the inter-node network twice per micro-batch (evict + fetch-back);
    ``overlap_fraction`` of that hides under computation.
    """
    p = ctx.parallel.pipeline_parallel
    boundaries = even_boundaries(len(ctx.layers), p)
    base = [
        stage_eval_for_policy(
            ctx.profiler,
            s,
            ctx.layers[lo:hi],
            RecomputePolicy.NONE,
            float("inf"),  # feasibility judged after balancing
        )
        for s, (lo, hi) in enumerate(boundaries)
    ]
    comm = CommModel(ctx.cluster)
    evals: List[StageEval] = []
    for s, eval_ in enumerate(base):
        partner = p - 1 - s
        own_load = eval_.memory.in_flight_microbatches * eval_.saved_bytes_per_microbatch
        partner_load = (
            base[partner].memory.in_flight_microbatches
            * base[partner].saved_bytes_per_microbatch
        )
        balanced = (own_load + partner_load) / 2.0
        moved = max(0.0, own_load - balanced)
        transfer = 2.0 * comm.p2p_time(
            moved / max(1, eval_.memory.in_flight_microbatches)
        )
        exposed = (1.0 - overlap_fraction) * transfer
        memory = StageMemory(
            static_bytes=eval_.memory.static_bytes,
            buffer_bytes=eval_.memory.buffer_bytes,
            saved_per_microbatch=balanced
            / max(1, eval_.memory.in_flight_microbatches),
            in_flight_microbatches=eval_.memory.in_flight_microbatches,
        )
        evals.append(
            StageEval(
                feasible=memory.fits(ctx.hard_capacity_bytes),
                forward=eval_.forward + exposed / 2.0,
                backward=eval_.backward + exposed / 2.0,
                saved_unit_counts=dict(eval_.saved_unit_counts),
                saved_bytes_per_microbatch=memory.saved_per_microbatch,
                memory=memory,
            )
        )
    feasible = all(e.feasible for e in evals)
    total = (
        evaluate_fixed_partition_from_evals(
            evals, ctx.num_micro_batches, ctx.hop_time
        )
        if feasible
        else None
    )
    return _assemble(method, ctx, boundaries, evals, total, feasible)


# -- interleaved 1F1B ----------------------------------------------------------


def plan_interleaved(
    ctx: PlannerContext,
    policy: RecomputePolicy = RecomputePolicy.FULL,
    chunks: int = 2,
    method: Optional[str] = None,
) -> PipelinePlan:
    """Even partition into ``chunks * p`` global stages, fixed policy.

    Feasibility is judged by the simulator (devices host several chunks, so
    the 1F1B ``p - s`` in-flight model does not apply).
    """
    p = ctx.parallel.pipeline_parallel
    method = method or f"Interleaved-{policy.value.capitalize()}(v={chunks})"
    boundaries = even_boundaries(len(ctx.layers), chunks * p)
    evals = [
        stage_eval_for_policy(
            ctx.profiler, min(s, p - 1), ctx.layers[lo:hi], policy, float("inf")
        )
        for s, (lo, hi) in enumerate(boundaries)
    ]
    return _assemble(method, ctx, boundaries, evals, None, True)


def evaluate_interleaved(
    ctx: PlannerContext,
    policy: RecomputePolicy = RecomputePolicy.FULL,
    chunks: int = 2,
) -> PlanEvaluation:
    """Plan + simulate an interleaved configuration.

    Like :func:`repro.core.evaluate.evaluate_plan`, the returned plan's
    metadata records which simulator engine ran and whether the cross-run
    simulation cache replayed a memoized result.
    """
    from repro.pipeline.schedules import interleaved_1f1b_schedule
    from repro.pipeline.simulator import simulate_with_info

    plan = plan_interleaved(ctx, policy, chunks)
    schedule = interleaved_1f1b_schedule(
        list(plan.stage_costs()),
        ctx.num_micro_batches,
        ctx.parallel.pipeline_parallel,
        hop_time=ctx.hop_time,
    )
    result, sim_info = simulate_with_info(schedule)
    oom = bool(result.oom_devices(ctx.cluster.device.usable_memory_bytes))
    plan = plan.with_metadata(
        sim_engine=sim_info["engine"],
        sim_cache_hit=sim_info["cache_hit"],
        sim_cache_hits=sim_info["cache_hits"],
        sim_cache_misses=sim_info["cache_misses"],
    )
    return PlanEvaluation(plan=plan, simulation=result, oom=oom)


# -- shared ---------------------------------------------------------------------


def _assemble(method, ctx, boundaries, evals, total, feasible) -> PipelinePlan:
    stages = tuple(
        StagePlan(
            stage=s,
            layer_start=lo,
            layer_end=hi,
            saved_unit_counts=dict(evals[s].saved_unit_counts),
            forward_time=evals[s].forward,
            backward_time=evals[s].backward,
            memory=evals[s].memory,
        )
        for s, (lo, hi) in enumerate(boundaries)
    )
    return PipelinePlan(
        method=method,
        parallel=ctx.parallel,
        train=ctx.train,
        stages=stages,
        modeled_iteration_time=total,
        feasible=feasible,
        hidden_size=ctx.spec.hidden_size,
    )
