"""Baseline planners: every method the paper compares against.

The evaluation (Section 7) measures eight methods; all of them are
available here behind one registry so the experiment harness can sweep
them uniformly:

====================  =========================================  ==========
method                recomputation                              schedule
====================  =========================================  ==========
DAPPLE-Full           full (uniform)                             1F1B
DAPPLE-Non            none (uniform)                             1F1B
Chimera-Full          full (uniform)                             bidirectional
Chimera-Non           none (uniform)                             bidirectional
ChimeraD-Full         full (uniform)                             bidir. + fwd doubling
ChimeraD-Non          none (uniform)                             bidir. + fwd doubling
Even Partitioning     adaptive per stage (AdaPipe's inner DP)    1F1B
AdaPipe               adaptive + adaptive partitioning           1F1B
====================  =========================================  ==========
"""

from repro.baselines.extensions import (
    evaluate_interleaved,
    plan_bpipe,
    plan_interleaved,
    plan_sqrt_checkpoint,
)
from repro.baselines.offload import OffloadModel, plan_offload
from repro.baselines.methods import (
    ALL_METHODS,
    BASELINE_METHODS,
    MethodSpec,
    evaluate_method,
    method_spec,
)

__all__ = [
    "ALL_METHODS",
    "BASELINE_METHODS",
    "MethodSpec",
    "OffloadModel",
    "evaluate_interleaved",
    "evaluate_method",
    "method_spec",
    "plan_bpipe",
    "plan_interleaved",
    "plan_offload",
    "plan_sqrt_checkpoint",
]
