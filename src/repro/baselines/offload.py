"""Offloading-augmented recomputation (MPress / SuperNeurons style, §8).

The paper's related work discusses systems that *offload* activations to
host memory instead of (or combined with) recomputing them, and argues the
CPU-GPU link makes this increasingly hard to overlap. This module models
that third option so it can be compared quantitatively:

Every optional unit now has three dispositions — **save** in HBM,
**recompute**, or **offload** over the host link. A unit not kept in HBM
pays ``min(recompute_cost, exposed_offload_cost)`` of backward time, where
the offload cost is its round-trip bytes over the host link minus whatever
overlaps with compute. The keep-in-HBM knapsack then runs with *capped*
values: AdaPipe's plain knapsack is recovered exactly when the host link is
slow (offload never wins), and a free host link collapses every value to ~0
(keeping HBM space becomes worthless).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.isomorphism import StageEval
from repro.core.partition_dp import even_boundaries
from repro.core.plan import PipelinePlan, StagePlan
from repro.core.recompute_dp import UnitItem, optimize_stage_recompute
from repro.core.search import PlannerContext, evaluate_fixed_partition_from_evals
from repro.profiler.memory import StageMemory

DEFAULT_HOST_LINK_BANDWIDTH = 25e9  # PCIe 4.0 x16, achievable


@dataclass(frozen=True)
class OffloadModel:
    """Cost model for the host link.

    Attributes:
        bandwidth: bytes/s to host memory (per direction).
        overlap_fraction: share of the transfer hidden under compute;
            the paper argues this shrinks as accelerators get faster.
    """

    bandwidth: float = DEFAULT_HOST_LINK_BANDWIDTH
    overlap_fraction: float = 0.5

    def exposed_cost(self, num_bytes: float) -> float:
        """Visible backward-time cost of round-tripping ``num_bytes``."""
        round_trip = 2.0 * num_bytes / self.bandwidth
        return (1.0 - self.overlap_fraction) * round_trip


def offload_stage_eval(
    ctx: PlannerContext,
    stage: int,
    stage_layers,
    capacity_bytes: float,
    offload: OffloadModel,
) -> StageEval:
    """Per-stage optimum when units may be saved, recomputed, or offloaded."""
    memory_model = ctx.profiler.memory
    in_flight = memory_model.in_flight(stage)

    forward = 0.0
    backward_fixed = 0.0
    always_bytes = 0.0
    counts = {}
    items: dict = {}
    evicted_cost_total = 0.0
    for layer in stage_layers:
        profile = ctx.profiler.profile_layer(layer.kind)
        for unit in profile.units:
            forward += unit.time_forward
            backward_fixed += unit.time_backward
            if unit.always_saved:
                always_bytes += unit.saved_bytes
                counts[unit.name] = counts.get(unit.name, 0) + 1
                continue
            # Not keeping the unit in HBM costs the cheaper of recompute
            # and offload; keeping it earns exactly that much back.
            eviction = min(
                unit.time_forward, offload.exposed_cost(unit.saved_bytes)
            )
            evicted_cost_total += eviction
            existing = items.get(unit.name)
            if existing is None:
                items[unit.name] = UnitItem(
                    name=unit.name,
                    value=eviction,
                    weight_bytes=unit.saved_bytes,
                    copies=1,
                )
            else:
                items[unit.name] = UnitItem(
                    existing.name, existing.value, existing.weight_bytes,
                    existing.copies + 1,
                )

    static = memory_model.static_bytes(stage_layers)
    buffer = memory_model.recompute_buffer_bytes()
    budget = capacity_bytes - static - buffer - in_flight * always_bytes
    result = optimize_stage_recompute(list(items.values()), budget, in_flight)
    if not result.feasible:
        return StageEval(
            feasible=False,
            forward=forward,
            backward=float("inf"),
            saved_unit_counts={},
            saved_bytes_per_microbatch=0.0,
            memory=StageMemory(static, buffer, always_bytes, in_flight),
        )
    backward = backward_fixed + evicted_cost_total - result.saved_value
    for name, count in result.saved_counts.items():
        counts[name] = counts.get(name, 0) + count
    saved_bytes = always_bytes + result.saved_bytes
    memory = StageMemory(static, buffer, saved_bytes, in_flight)
    return StageEval(
        feasible=True,
        forward=forward,
        backward=backward,
        saved_unit_counts=counts,
        saved_bytes_per_microbatch=saved_bytes,
        memory=memory,
    )


def plan_offload(
    ctx: PlannerContext,
    offload: Optional[OffloadModel] = None,
    method: str = "Recompute+Offload",
) -> PipelinePlan:
    """Uniform partition with the three-way save/recompute/offload optimum."""
    offload = offload or OffloadModel()
    boundaries = even_boundaries(len(ctx.layers), ctx.parallel.pipeline_parallel)
    evals: List[StageEval] = [
        offload_stage_eval(ctx, s, ctx.layers[lo:hi], ctx.capacity_bytes, offload)
        for s, (lo, hi) in enumerate(boundaries)
    ]
    feasible = all(e.feasible for e in evals)
    total = (
        evaluate_fixed_partition_from_evals(evals, ctx.num_micro_batches, ctx.hop_time)
        if feasible
        else None
    )
    stages = tuple(
        StagePlan(
            stage=s,
            layer_start=lo,
            layer_end=hi,
            saved_unit_counts=dict(evals[s].saved_unit_counts),
            forward_time=evals[s].forward,
            backward_time=evals[s].backward,
            memory=evals[s].memory,
        )
        for s, (lo, hi) in enumerate(boundaries)
    )
    return PipelinePlan(
        method=method,
        parallel=ctx.parallel,
        train=ctx.train,
        stages=stages,
        modeled_iteration_time=total,
        feasible=feasible,
        hidden_size=ctx.spec.hidden_size,
    )
