"""The method registry: plan + schedule for every evaluated system."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.config import ConfigError
from repro.core.evaluate import PlanEvaluation, evaluate_plan
from repro.core.plan import PipelinePlan
from repro.core.search import (
    PlannerContext,
    plan_adapipe,
    plan_even_partitioning,
    plan_policy,
)
from repro.core.strategies import RecomputePolicy


@dataclass(frozen=True)
class MethodSpec:
    """One evaluated method: how to plan and how to schedule it.

    Attributes:
        name: figure label.
        planner: builds the pipeline plan from a context.
        schedule_kind: simulator schedule ("1f1b", "chimera", "chimerad").
        memory_by_simulation: judge OOM from the simulator's memory
            tracker instead of the planner's 1F1B model (needed for
            Chimera, whose bidirectional replicas double static memory).
    """

    name: str
    planner: Callable[[PlannerContext], PipelinePlan]
    schedule_kind: str = "1f1b"
    memory_by_simulation: bool = False


def _policy_planner(policy: RecomputePolicy, name: str, for_chimera: bool = False):
    def planner(ctx: PlannerContext) -> PipelinePlan:
        plan = plan_policy(ctx, policy, name)
        if for_chimera and not plan.feasible:
            # Chimera feasibility is decided by the simulator's memory
            # tracker (its in-flight profile differs from 1F1B); keep the
            # plan alive so the simulation can run and judge it.
            plan = PipelinePlan(
                method=plan.method,
                parallel=plan.parallel,
                train=plan.train,
                stages=plan.stages,
                modeled_iteration_time=None,
                feasible=True,
                hidden_size=plan.hidden_size,
            )
        return plan

    return planner


ALL_METHODS: Dict[str, MethodSpec] = {
    "DAPPLE-Full": MethodSpec(
        "DAPPLE-Full", _policy_planner(RecomputePolicy.FULL, "DAPPLE-Full")
    ),
    "DAPPLE-Non": MethodSpec(
        "DAPPLE-Non", _policy_planner(RecomputePolicy.NONE, "DAPPLE-Non")
    ),
    "Chimera-Full": MethodSpec(
        "Chimera-Full",
        _policy_planner(RecomputePolicy.FULL, "Chimera-Full", for_chimera=True),
        schedule_kind="chimera",
        memory_by_simulation=True,
    ),
    "Chimera-Non": MethodSpec(
        "Chimera-Non",
        _policy_planner(RecomputePolicy.NONE, "Chimera-Non", for_chimera=True),
        schedule_kind="chimera",
        memory_by_simulation=True,
    ),
    "ChimeraD-Full": MethodSpec(
        "ChimeraD-Full",
        _policy_planner(RecomputePolicy.FULL, "ChimeraD-Full", for_chimera=True),
        schedule_kind="chimerad",
        memory_by_simulation=True,
    ),
    "ChimeraD-Non": MethodSpec(
        "ChimeraD-Non",
        _policy_planner(RecomputePolicy.NONE, "ChimeraD-Non", for_chimera=True),
        schedule_kind="chimerad",
        memory_by_simulation=True,
    ),
    "Even Partitioning": MethodSpec("Even Partitioning", plan_even_partitioning),
    "AdaPipe": MethodSpec("AdaPipe", plan_adapipe),
}

BASELINE_METHODS: Tuple[str, ...] = (
    "DAPPLE-Full",
    "DAPPLE-Non",
    "Chimera-Full",
    "Chimera-Non",
    "ChimeraD-Full",
    "ChimeraD-Non",
)


def method_spec(name: str) -> MethodSpec:
    try:
        return ALL_METHODS[name]
    except KeyError:
        raise ConfigError(
            f"unknown method {name!r}; known: {sorted(ALL_METHODS)}"
        ) from None


def evaluate_method(name: str, ctx: PlannerContext) -> PlanEvaluation:
    """Plan and simulate one method on one context.

    Chimera variants that cannot split the micro-batches over two
    directions (odd counts) are reported as infeasible, mirroring how such
    configurations are simply absent from the paper's figures.
    """
    spec = method_spec(name)
    plan = spec.planner(ctx)
    try:
        return evaluate_plan(
            plan,
            ctx.cluster,
            schedule_kind=spec.schedule_kind,
            enforce_memory=True,
        )
    except ConfigError:
        return PlanEvaluation(plan=plan, simulation=None, oom=True)
