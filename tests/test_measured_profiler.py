"""Tests for the measured profiler (profile -> search -> execute loop)."""

import numpy as np
import pytest

from repro.config import ParallelConfig, TrainingConfig
from repro.model.layers import LayerKind
from repro.model.spec import tiny_gpt, tiny_llama
from repro.profiler.measured import MeasuredProfiler, plan_with_measured_profile
from repro.training.modules import build_model
from repro.training.pipeline_exec import PipelineExecutor


@pytest.fixture
def setup():
    spec = tiny_gpt(num_layers=3, hidden_size=32, vocab_size=50)
    train = TrainingConfig(
        sequence_length=16,
        global_batch_size=4,
        micro_batch_size=1,
        sequence_parallel=False,
        flash_attention=False,
    )
    parallel = ParallelConfig(1, 2, 1)
    model = build_model(spec, seed=0)
    return spec, train, parallel, model


class TestMeasurement:
    def test_times_positive(self, setup):
        _, train, parallel, model = setup
        profiler = MeasuredProfiler(model, train, parallel, iterations=2)
        for kind in LayerKind:
            profile = profiler.profile_layer(kind)
            for unit in profile.units:
                assert unit.time_forward > 0
                assert unit.time_backward > 0

    def test_profiles_cached(self, setup):
        _, train, parallel, model = setup
        profiler = MeasuredProfiler(model, train, parallel, iterations=1)
        assert profiler.profile_layer(LayerKind.FFN) is profiler.profile_layer(
            LayerKind.FFN
        )

    def test_unit_names_align_with_analytic_model(self, setup):
        _, train, parallel, model = setup
        profiler = MeasuredProfiler(model, train, parallel, iterations=1)
        attention = profiler.profile_layer(LayerKind.ATTENTION)
        assert [u.name for u in attention.units] == [
            "attn.norm", "attn.q", "attn.k", "attn.v", "attn.core", "attn.out",
        ]
        assert [u.always_saved for u in attention.units] == [
            False, False, False, False, False, True,
        ]

    def test_measured_bytes_are_real_array_sizes(self, setup):
        spec, train, parallel, model = setup
        profiler = MeasuredProfiler(model, train, parallel, iterations=1)
        ffn = profiler.profile_layer(LayerKind.FFN)
        act = next(u for u in ffn.units if u.name == "ffn.act")
        # float64 activations of shape (1, 16, 4*32): at least the output.
        assert act.saved_bytes >= 16 * 4 * 32 * 8

    def test_larger_model_measures_slower(self):
        train = TrainingConfig(
            sequence_length=16,
            global_batch_size=4,
            micro_batch_size=1,
            sequence_parallel=False,
            flash_attention=False,
        )
        parallel = ParallelConfig(1, 2, 1)
        small = MeasuredProfiler(
            build_model(tiny_gpt(2, 32, 50), seed=0), train, parallel, iterations=3
        )
        big = MeasuredProfiler(
            build_model(tiny_gpt(2, 256, 50), seed=0), train, parallel, iterations=3
        )
        assert big.profile_layer(LayerKind.FFN).time_forward > (
            small.profile_layer(LayerKind.FFN).time_forward
        )


class TestMeasuredPlanning:
    def test_plan_is_feasible_and_executable(self, setup):
        spec, train, parallel, model = setup
        plan = plan_with_measured_profile(
            model, train, parallel, capacity_bytes=64 * 1024**2, iterations=1
        )
        assert plan.feasible
        assert plan.stages[-1].layer_end == len(model.layers)
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, spec.vocab_size, size=(4, 16))
        targets = rng.integers(0, spec.vocab_size, size=(4, 16))
        stats = PipelineExecutor(model, plan).train_step(tokens, targets)
        assert np.isfinite(stats.loss)

    def test_tight_budget_forces_recomputation(self, setup):
        spec, train, parallel, model = setup
        roomy = plan_with_measured_profile(
            model, train, parallel, capacity_bytes=64 * 1024**2, iterations=1
        )
        tight = plan_with_measured_profile(
            model, train, parallel, capacity_bytes=1024**2, iterations=1
        )
        assert tight.feasible
        assert sum(tight.saved_unit_counts()) < sum(roomy.saved_unit_counts())
        assert sum(s.memory.saved_per_microbatch for s in tight.stages) < sum(
            s.memory.saved_per_microbatch for s in roomy.stages
        )

    def test_gqa_model_measurable(self):
        spec = tiny_llama(num_layers=2, hidden_size=32, vocab_size=50)
        train = TrainingConfig(
            sequence_length=8,
            global_batch_size=2,
            micro_batch_size=1,
            sequence_parallel=False,
            flash_attention=False,
        )
        model = build_model(spec, seed=0)
        profiler = MeasuredProfiler(model, train, ParallelConfig(1, 2, 1), iterations=1)
        profile = profiler.profile_layer(LayerKind.ATTENTION)
        assert profile.time_forward > 0
